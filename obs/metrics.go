package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency histogram layout, in seconds: wide enough
// to cover both a sub-100us in-memory commit and a multi-second compaction.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default layout for count-valued histograms (batch sizes,
// bytes): powers of four from 1 to ~16M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to use;
// all methods are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative at exposition,
// per-bucket internally) and tracks their sum. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches everything above the last
// bound. All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, accumulated by CAS
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v, i.e. the tightest le bucket; +Inf when none.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the usual way to time
// a code path against a latency histogram.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// labelKey joins label values into a map key. \xff cannot appear in valid
// UTF-8 label values, so the join is unambiguous.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

// vec is the shared child table behind the labeled metric types.
type vec[T any] struct {
	labels []string
	make   func() *T

	mu       sync.RWMutex
	children map[string]*T
	values   map[string][]string // key -> label values, for exposition
}

func newVec[T any](labels []string, mk func() *T) *vec[T] {
	return &vec[T]{labels: labels, make: mk, children: map[string]*T{}, values: map[string][]string{}}
}

func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labels) {
		panic("obs: wrong number of label values")
	}
	k := labelKey(values)
	v.mu.RLock()
	c := v.children[k]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[k]; c != nil {
		return c
	}
	c = v.make()
	v.children[k] = c
	v.values[k] = append([]string(nil), values...)
	return c
}

// snapshot returns the children in deterministic (sorted-key) order.
func (v *vec[T]) snapshot() (keys []string, values [][]string, children []*T) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys = make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		values = append(values, v.values[k])
		children = append(children, v.children[k])
	}
	return keys, values, children
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ *vec[Counter] }

// With returns (creating on first use) the child counter for the given label
// values, which must match the label names in number and order.
func (v CounterVec) With(values ...string) *Counter { return v.with(values) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ *vec[Gauge] }

// With returns (creating on first use) the child gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.with(values) }

// HistogramVec is a histogram family partitioned by label values; every child
// shares the family's bucket layout.
type HistogramVec struct {
	*vec[Histogram]
}

// With returns (creating on first use) the child histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.with(values) }
