package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a concurrency-safe collection of named metric families, exposed
// in the Prometheus/OpenMetrics text format by WriteText. Registration is
// get-or-create: asking for an existing name with the same type, labels and
// buckets returns the existing metric (so independent components can share
// series), while a conflicting re-registration panics — metric identity is a
// programming-time contract, not a runtime condition.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is one registered metric family: exactly one of single, counterVec,
// histogramVec, gaugeVec, fn or cfn is set, according to kind.
type family struct {
	name    string
	help    string
	kind    string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64

	counter      *Counter
	gauge        *Gauge
	histogram    *Histogram
	counterVec   *CounterVec
	gaugeVec     *GaugeVec
	histogramVec *HistogramVec
	gaugeFn      func() float64
	counterFn    func() uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register implements the get-or-create contract shared by every constructor.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64, build func(*family)) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type, labels or buckets", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets}
	build(f)
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil, func(f *family) { f.counter = &Counter{} })
	if f.counter == nil {
		panic(fmt.Sprintf("obs: metric %s is not a plain counter", name))
	}
	return f.counter
}

// CounterVec registers (or returns) a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, "counter", labels, nil, func(f *family) {
		f.counterVec = &CounterVec{newVec(labels, func() *Counter { return &Counter{} })}
	})
	if f.counterVec == nil {
		panic(fmt.Sprintf("obs: metric %s is not a counter vec", name))
	}
	return f.counterVec
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for monotonic totals a component already tracks itself.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", nil, nil, func(f *family) { f.counterFn = fn })
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil, func(f *family) { f.gauge = &Gauge{} })
	if f.gauge == nil {
		panic(fmt.Sprintf("obs: metric %s is not a plain gauge", name))
	}
	return f.gauge
}

// GaugeVec registers (or returns) a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, "gauge", labels, nil, func(f *family) {
		f.gaugeVec = &GaugeVec{newVec(labels, func() *Gauge { return &Gauge{} })}
	})
	if f.gaugeVec == nil {
		panic(fmt.Sprintf("obs: metric %s is not a gauge vec", name))
	}
	return f.gaugeVec
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time —
// the zero-hot-path-cost way to expose state a component can already report
// (queue depths, epochs, sizes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, func(f *family) { f.gaugeFn = fn })
}

// Histogram registers (or returns) an unlabeled histogram with the given
// bucket upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, buckets, func(f *family) { f.histogram = newHistogram(buckets) })
	if f.histogram == nil {
		panic(fmt.Sprintf("obs: metric %s is not a plain histogram", name))
	}
	return f.histogram
}

// HistogramVec registers (or returns) a histogram family with the given bucket
// layout and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels, buckets, func(f *family) {
		f.histogramVec = &HistogramVec{newVec(labels, func() *Histogram { return newHistogram(buckets) })}
	})
	if f.histogramVec == nil {
		panic(fmt.Sprintf("obs: metric %s is not a histogram vec", name))
	}
	return f.histogramVec
}

// Names returns the registered family names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteText writes every family in the Prometheus text exposition format
// (readable by any Prometheus/OpenMetrics scraper), families sorted by name,
// children sorted by label values, terminated by the OpenMetrics "# EOF"
// trailer. Func-backed metrics are evaluated here, at scrape time.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counter.Value())
		case f.counterFn != nil:
			fmt.Fprintf(&b, "%s %d\n", f.name, f.counterFn())
		case f.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
		case f.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		case f.histogram != nil:
			writeHistogram(&b, f.name, "", f.histogram)
		case f.counterVec != nil:
			_, values, children := f.counterVec.snapshot()
			for i, c := range children {
				fmt.Fprintf(&b, "%s{%s} %d\n", f.name, formatLabels(f.labels, values[i]), c.Value())
			}
		case f.gaugeVec != nil:
			_, values, children := f.gaugeVec.snapshot()
			for i, g := range children {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, formatLabels(f.labels, values[i]), formatFloat(g.Value()))
			}
		case f.histogramVec != nil:
			_, values, children := f.histogramVec.snapshot()
			for i, h := range children {
				writeHistogram(&b, f.name, formatLabels(f.labels, values[i]), h)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
// labels is the pre-formatted shared label pairs ("" when unlabeled).
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	joint := func(extra string) string {
		switch {
		case labels == "":
			return extra
		case extra == "":
			return labels
		default:
			return labels + "," + extra
		}
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joint(`le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, joint(`le="+Inf"`), cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler serves the registry over HTTP — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
