package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"": "INFO", "info": "INFO", "debug": "DEBUG",
		"warn": "WARN", "warning": "WARN", "error": "ERROR", "WARN": "WARN",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) must fail")
	}
}

func TestNewLoggerRejectsBadInputs(t *testing.T) {
	var b strings.Builder
	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Fatal("bad level must fail")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Fatal("bad format must fail")
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Fatalf("level filtering broken:\n%s", out)
	}
}

func TestLoggerJSONRequestID(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "req-123")
	log.InfoContext(ctx, "served", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, b.String())
	}
	if rec["request_id"] != "req-123" {
		t.Errorf("request_id = %v, want req-123", rec["request_id"])
	}
	if rec["msg"] != "served" {
		t.Errorf("msg = %v", rec["msg"])
	}
}

func TestLoggerTextRequestIDAndWithAttrs(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "", "")
	if err != nil {
		t.Fatal(err)
	}
	// WithAttrs/WithGroup must keep the request-id decoration.
	log = log.With("component", "test").WithGroup("g")
	log.InfoContext(WithRequestID(context.Background(), "abc"), "hello", "k", "v")
	out := b.String()
	for _, want := range []string{"request_id=abc", "component=test", "g.k=v"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerNoRequestID(t *testing.T) {
	var b strings.Builder
	log, _ := NewLogger(&b, "info", "text")
	log.Info("plain")
	if strings.Contains(b.String(), "request_id") {
		t.Fatalf("no-id context must not emit request_id:\n%s", b.String())
	}
}

func TestRequestIDHelpers(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Fatal("empty context must yield empty id")
	}
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("ids %q/%q are not 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("ids must be unique, got %q twice", a)
	}
}
