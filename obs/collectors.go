package obs

import (
	"repro/violation"
)

// engineCollector implements violation.EngineObserver over registry metrics.
type engineCollector struct {
	commits      *CounterVec   // kind
	commitDur    *HistogramVec // kind
	batchSize    *Histogram
	swaps        *Counter
	swapDur      *Histogram
	rulesAdded   *Counter
	rulesRemoved *Counter
	snapshots    *CounterVec   // mode
	snapshotDur  *HistogramVec // mode
}

func (c *engineCollector) ObserveCommit(kind string, ops int, seconds float64) {
	c.commits.With(kind).Inc()
	c.commitDur.With(kind).Observe(seconds)
	c.batchSize.Observe(float64(ops))
}

func (c *engineCollector) ObserveSwap(added, removed, retained int, seconds float64) {
	c.swaps.Inc()
	c.swapDur.Observe(seconds)
	c.rulesAdded.Add(uint64(added))
	c.rulesRemoved.Add(uint64(removed))
}

func (c *engineCollector) ObserveSnapshot(patched bool, seconds float64) {
	mode := "rebuild"
	if patched {
		mode = "patch"
	}
	c.snapshots.With(mode).Inc()
	c.snapshotDur.With(mode).Observe(seconds)
}

// InstrumentEngine registers the engine's metric families on r and attaches an
// observer to e that feeds them. Gauges (epoch, tuple/rule counts, delta-ring
// state) are func-backed: they read the engine at scrape time and cost the hot
// path nothing. Call it once per engine, after the initial load; passing a new
// engine for the same registry (a serving layer that reloaded) re-points the
// func-backed gauges if re-registered on a fresh registry — with one shared
// registry, instrument the engine that lives as long as the process.
func InstrumentEngine(r *Registry, e *violation.Engine) {
	c := &engineCollector{
		commits:      r.CounterVec("cfd_engine_commits_total", "Committed engine mutations by op kind (insert, delete, update, batch, bulkload).", "kind"),
		commitDur:    r.HistogramVec("cfd_engine_commit_duration_seconds", "Wall-clock duration of committed engine mutations by op kind.", DefBuckets, "kind"),
		batchSize:    r.Histogram("cfd_engine_batch_size_ops", "Tuple ops carried per committed mutation.", SizeBuckets),
		swaps:        r.Counter("cfd_engine_rule_swaps_total", "Committed SwapRules calls."),
		swapDur:      r.Histogram("cfd_engine_swap_duration_seconds", "Wall-clock duration of committed rule swaps.", DefBuckets),
		rulesAdded:   r.Counter("cfd_engine_rules_added_total", "Rules added across all committed swaps."),
		rulesRemoved: r.Counter("cfd_engine_rules_removed_total", "Rules removed across all committed swaps."),
		snapshots:    r.CounterVec("cfd_engine_snapshots_total", "Snapshot refreshes by mode (patch = incremental delta patch, rebuild = full parallel rebuild).", "mode"),
		snapshotDur:  r.HistogramVec("cfd_engine_snapshot_duration_seconds", "Wall-clock duration of snapshot refreshes by mode.", DefBuckets, "mode"),
	}
	r.GaugeFunc("cfd_engine_epoch", "Current mutation epoch.", func() float64 { return float64(e.Epoch()) })
	r.GaugeFunc("cfd_engine_tuples", "Live tuples in the engine.", func() float64 { return float64(e.Size()) })
	r.GaugeFunc("cfd_engine_rules", "Rules the engine currently serves.", func() float64 { return float64(len(e.Rules())) })
	r.GaugeFunc("cfd_engine_dirty_tuples", "Tuples currently violating at least one rule.", func() float64 { return float64(e.DirtyCount()) })
	r.GaugeFunc("cfd_engine_delta_ring_occupancy", "Consecutive epochs answerable from the delta ring.", func() float64 { return float64(e.DeltaStats().Occupancy) })
	r.GaugeFunc("cfd_engine_delta_ring_capacity", "Configured delta-ring capacity (Options.DeltaHistory).", func() float64 { return float64(e.DeltaStats().Capacity) })
	r.GaugeFunc("cfd_engine_wait_waiters", "WaitChange calls currently blocked (long-poll/SSE fan-out depth).", func() float64 { return float64(e.DeltaStats().Waiters) })
	r.CounterFunc("cfd_engine_delta_evictions_total", "Delta-ring entries overwritten while the ring was full.", func() uint64 { return e.DeltaStats().Evictions })
	r.CounterFunc("cfd_engine_delta_compacted_reads_total", "Changes calls answered with ErrCompacted (clients forced to resync).", func() uint64 { return e.DeltaStats().CompactedReads })
	e.SetObserver(c)
}

// storeCollector implements violation.StoreObserver over registry metrics.
type storeCollector struct {
	appends        *CounterVec // result
	appendDur      *Histogram
	fsyncDur       *Histogram
	compactions    *CounterVec // result
	compactionDur  *Histogram
	compactionSize *Histogram
}

func result(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

func (c *storeCollector) ObserveWALAppend(ops int, seconds float64, err error) {
	c.appends.With(result(err)).Inc()
	c.appendDur.Observe(seconds)
}

func (c *storeCollector) ObserveWALFsync(seconds float64) {
	c.fsyncDur.Observe(seconds)
}

func (c *storeCollector) ObserveCompaction(bytes int, seconds float64, err error) {
	c.compactions.With(result(err)).Inc()
	c.compactionDur.Observe(seconds)
	if err == nil {
		c.compactionSize.Observe(float64(bytes))
	}
}

// InstrumentStore registers the persistence layer's metric families on r and
// attaches an observer to st that feeds them. Like InstrumentEngine, the
// pending/seq gauges are func-backed and read the store only at scrape time.
func InstrumentStore(r *Registry, st *violation.Store) {
	c := &storeCollector{
		appends:        r.CounterVec("cfd_wal_appends_total", "WAL append attempts by result.", "result"),
		appendDur:      r.Histogram("cfd_wal_append_duration_seconds", "Wall-clock duration of WAL appends (fsync included when enabled).", DefBuckets),
		fsyncDur:       r.Histogram("cfd_wal_fsync_duration_seconds", "Wall-clock duration of successful WAL fsyncs.", DefBuckets),
		compactions:    r.CounterVec("cfd_store_compactions_total", "Snapshot compactions by result.", "result"),
		compactionDur:  r.Histogram("cfd_store_compaction_duration_seconds", "Wall-clock duration of snapshot compactions.", DefBuckets),
		compactionSize: r.Histogram("cfd_store_compaction_bytes", "Encoded size of written snapshots.", SizeBuckets),
	}
	r.GaugeFunc("cfd_wal_pending_ops", "Ops appended to the WAL since the last compaction.", func() float64 { return float64(st.Pending()) })
	r.GaugeFunc("cfd_wal_seq", "Sequence number of the last committed WAL record.", func() float64 { return float64(st.Seq()) })
	st.SetObserver(c)
}
