// Package obs is the zero-dependency observability layer of the serving
// system: a concurrency-safe metrics registry (counters, gauges, histograms)
// with Prometheus/OpenMetrics text exposition, structured logging helpers on
// log/slog with per-request ids propagated via context, and ready-made
// collectors that instrument a violation.Engine and violation.Store through
// their observer hooks.
//
// The layering is deliberate: repro/violation defines the small observer
// interfaces and never imports this package, so the engine stays importable
// with no metrics at all and its hot path pays one atomic nil-check when
// nothing is attached. This package implements those interfaces over a
// Registry (InstrumentEngine, InstrumentStore); cmd/cfdserve wires the
// registry to GET /metrics and adds the HTTP-layer series on top.
//
// Everything here is stdlib-only. The exposition format is the Prometheus
// text format (readable by any Prometheus or OpenMetrics scraper); metric
// names follow the repository convention checked by scripts/check_metrics.sh:
// a cfd_ prefix, _total on counters, and a unit suffix (_seconds, _bytes,
// _ops) on histograms.
package obs
