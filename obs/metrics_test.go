package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	g.Add(-10)
	if got := g.Value(); got != -6 {
		t.Fatalf("gauge = %v, want -6", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bucket's upper bound lands in that bucket (cumulative "less than or equal"),
// a value above every bound lands only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	cases := []struct {
		value float64
		// counts of the non-cumulative buckets (0.001, 0.01, 0.1, 1, +Inf)
		want [5]uint64
	}{
		{0, [5]uint64{1, 0, 0, 0, 0}},
		{0.0005, [5]uint64{1, 0, 0, 0, 0}},
		{0.001, [5]uint64{1, 0, 0, 0, 0}}, // on the boundary: le includes it
		{0.0010001, [5]uint64{0, 1, 0, 0, 0}},
		{0.01, [5]uint64{0, 1, 0, 0, 0}},
		{0.05, [5]uint64{0, 0, 1, 0, 0}},
		{1, [5]uint64{0, 0, 0, 1, 0}},
		{1.5, [5]uint64{0, 0, 0, 0, 1}},
		{math.Inf(1), [5]uint64{0, 0, 0, 0, 1}},
	}
	for _, tc := range cases {
		h := newHistogram(bounds)
		h.Observe(tc.value)
		for i := range tc.want {
			if got := h.counts[i].Load(); got != tc.want[i] {
				t.Errorf("Observe(%v): bucket %d = %d, want %d", tc.value, i, got, tc.want[i])
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%v): count = %d, want 1", tc.value, h.Count())
		}
	}
}

func TestHistogramSumAndDefaults(t *testing.T) {
	h := newHistogram(nil) // nil buckets adopt DefBuckets
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	h.Observe(0.25)
	h.Observe(0.75)
	if got := h.Sum(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("sum = %v, want 1.0", got)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestHistogramSortsBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 0.1, 10})
	if h.bounds[0] != 0.1 || h.bounds[1] != 1 || h.bounds[2] != 10 {
		t.Fatalf("bounds not sorted: %v", h.bounds)
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cfd_test_total", "t", "kind")
	a, b := v.With("x"), v.With("x")
	if a != b {
		t.Fatal("same label values must return the same child")
	}
	if v.With("y") == a {
		t.Fatal("different label values must return different children")
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cfd_test_total", "t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	v.With("only-one")
}

// TestRegistryConcurrency hammers one registry from many goroutines — child
// creation, observations and exposition interleaved — and relies on -race to
// catch unsynchronised access.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("cfd_conc_total", "c", "kind")
	hv := r.HistogramVec("cfd_conc_seconds", "h", nil, "kind")
	g := r.Gauge("cfd_conc_inflight", "g")
	kinds := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := kinds[(w+i)%len(kinds)]
				cv.With(k).Inc()
				hv.With(k).Observe(float64(i) / 1000)
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	// Scrapes run concurrently with the writers.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb discardWriter
				if err := r.WriteText(&sb); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := uint64(0)
	for _, k := range kinds {
		total += cv.With(k).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
