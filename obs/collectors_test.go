package obs_test

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/cfd"
	"repro/dataset"
	"repro/obs"
	"repro/rules"
	"repro/violation"
)

// scrape renders the registry and parses every sample line into a
// series → value map, keyed exactly as exposed ("name" or "name{labels}").
func scrape(t *testing.T, r *obs.Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		m[line[:i]] = v
	}
	return m
}

func val(t *testing.T, m map[string]float64, series string) float64 {
	t.Helper()
	v, ok := m[series]
	if !ok {
		t.Fatalf("series %q not exposed", series)
	}
	return v
}

var custRule = cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"}

// TestInstrumentEngineAndStore drives the full durable write path — bulk load,
// batch, single ops, rule swap, compaction — and asserts every instrumented
// series moves: commit counters and latency histograms by kind, WAL
// append/fsync, compaction duration/bytes, snapshot refreshes, delta-ring
// evictions and forced resyncs, and the func-backed gauges.
func TestInstrumentEngineAndStore(t *testing.T) {
	rel := dataset.Cust()
	eng, err := violation.New(rel.Attributes(), rules.Of(custRule), violation.Options{DeltaHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := violation.OpenStore(t.TempDir(), violation.StoreOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng.AttachWAL(store)

	r := obs.NewRegistry()
	obs.InstrumentEngine(r, eng)
	obs.InstrumentStore(r, store)

	if err := eng.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	eng.Dirty() // force a snapshot rebuild

	ops := []violation.Op{
		{Kind: violation.OpInsert, Values: []string{"01", "212", "5555555", "Ann", "5th Ave", "NYC", "01202"}},
		{Kind: violation.OpDelete, ID: 7},
	}
	if _, err := eng.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("01", "212", "6666666", "Bea", "5th Ave", "NYC", "01202"); err != nil {
		t.Fatal(err)
	}
	eng.Dirty() // snapshot again, now via the incremental patch path

	rule2 := cfd.CFD{LHS: []string{"ZIP"}, RHS: "CT", LHSPattern: []string{"_"}, RHSPattern: "_"}
	if _, err := eng.SwapRules(context.Background(), rules.Of(custRule, rule2)); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(eng); err != nil {
		t.Fatal(err)
	}

	// Overflow the 2-slot delta ring, then read from behind it: evictions and
	// forced resyncs must both surface.
	for i := 0; i < 4; i++ {
		if _, err := eng.Insert("01", "212", "777777"+strconv.Itoa(i), "Cam", "5th Ave", "NYC", "01202"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Changes(1); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes(1) err = %v, want ErrCompacted", err)
	}

	m := scrape(t, r)

	// Engine commit metrics by kind.
	if got := val(t, m, `cfd_engine_commits_total{kind="bulkload"}`); got != 1 {
		t.Errorf("bulkload commits = %v, want 1", got)
	}
	if got := val(t, m, `cfd_engine_commits_total{kind="batch"}`); got != 1 {
		t.Errorf("batch commits = %v, want 1", got)
	}
	if got := val(t, m, `cfd_engine_commits_total{kind="insert"}`); got != 5 {
		t.Errorf("insert commits = %v, want 5", got)
	}
	if got := val(t, m, `cfd_engine_commit_duration_seconds_count{kind="batch"}`); got != 1 {
		t.Errorf("batch commit duration count = %v, want 1", got)
	}
	if got := val(t, m, "cfd_engine_batch_size_ops_count"); got != 7 {
		t.Errorf("batch size observations = %v, want 7", got)
	}
	// The bulk load carried all 8 tuples: the size histogram's sum sees them.
	if got := val(t, m, "cfd_engine_batch_size_ops_sum"); got < 8 {
		t.Errorf("batch size sum = %v, want >= 8", got)
	}

	// Rule swap metrics.
	if got := val(t, m, "cfd_engine_rule_swaps_total"); got != 1 {
		t.Errorf("rule swaps = %v, want 1", got)
	}
	if got := val(t, m, "cfd_engine_rules_added_total"); got != 1 {
		t.Errorf("rules added = %v, want 1", got)
	}
	if got := val(t, m, "cfd_engine_rules_removed_total"); got != 0 {
		t.Errorf("rules removed = %v, want 0", got)
	}
	if got := val(t, m, "cfd_engine_swap_duration_seconds_count"); got != 1 {
		t.Errorf("swap duration count = %v, want 1", got)
	}

	// Snapshot refreshes: at least the explicit rebuild and patch reads above.
	snapTotal := m[`cfd_engine_snapshots_total{mode="rebuild"}`] + m[`cfd_engine_snapshots_total{mode="patch"}`]
	if snapTotal < 2 {
		t.Errorf("snapshot refreshes = %v, want >= 2", snapTotal)
	}

	// WAL + compaction metrics: every commit above was logged, fsync on.
	if got := val(t, m, `cfd_wal_appends_total{result="ok"}`); got != 7 {
		t.Errorf("WAL appends = %v, want 7", got)
	}
	if got := val(t, m, "cfd_wal_fsync_duration_seconds_count"); got < 7 {
		t.Errorf("WAL fsyncs = %v, want >= 7", got)
	}
	if got := val(t, m, `cfd_store_compactions_total{result="ok"}`); got != 1 {
		t.Errorf("compactions = %v, want 1", got)
	}
	if got := val(t, m, "cfd_store_compaction_bytes_count"); got != 1 {
		t.Errorf("compaction size observations = %v, want 1", got)
	}

	// Delta-ring accounting.
	if got := val(t, m, "cfd_engine_delta_ring_capacity"); got != 2 {
		t.Errorf("delta ring capacity = %v, want 2", got)
	}
	if got := val(t, m, "cfd_engine_delta_evictions_total"); got < 1 {
		t.Errorf("delta evictions = %v, want >= 1", got)
	}
	if got := val(t, m, "cfd_engine_delta_compacted_reads_total"); got != 1 {
		t.Errorf("compacted reads = %v, want 1", got)
	}

	// Func-backed gauges read live engine/store state at scrape time.
	if got := val(t, m, "cfd_engine_tuples"); got != float64(eng.Size()) {
		t.Errorf("tuples gauge = %v, want %d", got, eng.Size())
	}
	if got := val(t, m, "cfd_engine_rules"); got != 2 {
		t.Errorf("rules gauge = %v, want 2", got)
	}
	if got := val(t, m, "cfd_engine_epoch"); got != float64(eng.Epoch()) {
		t.Errorf("epoch gauge = %v, want %d", got, eng.Epoch())
	}
	if got := val(t, m, "cfd_wal_seq"); got < 7 {
		t.Errorf("wal seq gauge = %v, want >= 7", got)
	}
	if _, ok := m["cfd_wal_pending_ops"]; !ok {
		t.Error("cfd_wal_pending_ops not exposed")
	}
	if _, ok := m["cfd_engine_dirty_tuples"]; !ok {
		t.Error("cfd_engine_dirty_tuples not exposed")
	}
}

// TestWaitersGauge pins the long-poll depth gauge: a blocked WaitChange is
// visible at scrape time and disappears once the commit wakes it.
func TestWaitersGauge(t *testing.T) {
	rel := dataset.Cust()
	eng, err := violation.New(rel.Attributes(), rules.Of(custRule), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	obs.InstrumentEngine(r, eng)

	done := make(chan error, 1)
	go func() {
		_, err := eng.WaitChange(context.Background(), eng.Epoch())
		done <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for val(t, scrape(t, r), "cfd_engine_wait_waiters") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never appeared in cfd_engine_wait_waiters")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := eng.Insert("01", "212", "8888888", "Dot", "5th Ave", "NYC", "01202"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WaitChange: %v", err)
	}
	for val(t, scrape(t, r), "cfd_engine_wait_waiters") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter gauge never returned to 0")
		}
		time.Sleep(time.Millisecond)
	}
}
