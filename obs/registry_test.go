package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exposition format byte for byte: HELP/TYPE
// lines, sorted families, sorted children, cumulative histogram buckets with
// _sum/_count, func-backed metrics evaluated at scrape time, and the
// OpenMetrics EOF trailer.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cfd_z_total", "a plain counter").Add(3)
	cv := r.CounterVec("cfd_b_total", "a labeled counter", "kind")
	cv.With("insert").Add(2)
	cv.With("delete").Inc()
	r.Gauge("cfd_a_gauge", "a plain gauge").Set(1.5)
	r.GaugeFunc("cfd_f_gauge", "a func gauge", func() float64 { return 7 })
	r.CounterFunc("cfd_g_total", "a func counter", func() uint64 { return 9 })
	h := r.Histogram("cfd_h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := `# HELP cfd_a_gauge a plain gauge
# TYPE cfd_a_gauge gauge
cfd_a_gauge 1.5
# HELP cfd_b_total a labeled counter
# TYPE cfd_b_total counter
cfd_b_total{kind="delete"} 1
cfd_b_total{kind="insert"} 2
# HELP cfd_f_gauge a func gauge
# TYPE cfd_f_gauge gauge
cfd_f_gauge 7
# HELP cfd_g_total a func counter
# TYPE cfd_g_total counter
cfd_g_total 9
# HELP cfd_h_seconds a histogram
# TYPE cfd_h_seconds histogram
cfd_h_seconds_bucket{le="0.1"} 1
cfd_h_seconds_bucket{le="1"} 2
cfd_h_seconds_bucket{le="+Inf"} 3
cfd_h_seconds_sum 5.55
cfd_h_seconds_count 3
# HELP cfd_z_total a plain counter
# TYPE cfd_z_total counter
cfd_z_total 3
# EOF
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteTextHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("cfd_hv_seconds", "labeled histogram", []float64{1}, "mode")
	hv.With("patch").Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{
		`cfd_hv_seconds_bucket{mode="patch",le="1"} 1`,
		`cfd_hv_seconds_bucket{mode="patch",le="+Inf"} 1`,
		`cfd_hv_seconds_sum{mode="patch"} 0.5`,
		`cfd_hv_seconds_count{mode="patch"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

func TestWriteTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("cfd_esc_total", "help with \\ and\nnewline", "val").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP cfd_esc_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `cfd_esc_total{val="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegisterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("cfd_same_total", "one")
	b := r.Counter("cfd_same_total", "two") // same identity: returns the first
	if a != b {
		t.Fatal("re-registration with the same identity must return the same metric")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.Counter("cfd_x", "c"); r.Gauge("cfd_x", "g") }},
		{"labels", func(r *Registry) { r.CounterVec("cfd_x", "c", "a"); r.CounterVec("cfd_x", "c", "b") }},
		{"buckets", func(r *Registry) {
			r.Histogram("cfd_x", "h", []float64{1})
			r.Histogram("cfd_x", "h", []float64{2})
		}},
		{"bad-name", func(r *Registry) { r.Counter("cfd bad name", "c") }},
		{"bad-label", func(r *Registry) { r.CounterVec("cfd_x", "c", "bad label") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s conflict must panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("cfd_b_total", "b")
	r.Gauge("cfd_a_gauge", "a")
	got := r.Names()
	if len(got) != 2 || got[0] != "cfd_a_gauge" || got[1] != "cfd_b_total" {
		t.Fatalf("Names() = %v, want sorted [cfd_a_gauge cfd_b_total]", got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("cfd_req_total", "requests").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "cfd_req_total 1\n") || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("unexpected body:\n%s", body)
	}
}
