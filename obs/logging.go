package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the structured logger behind the -log-level/-log-format
// flag pair: leveled slog output in text (logfmt-style) or json form, with the
// request id of the context automatically attached to every record logged
// through a *Context method (see WithRequestID).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(requestIDHandler{h}), nil
}

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request id, which the logger
// built by NewLogger attaches to every record logged under that context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request id carried by the context, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// reqSeq backs the fallback id source when crypto/rand fails.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// requestIDHandler decorates records with the context's request id, so every
// log line emitted while serving a request carries the same id the response's
// X-Request-Id header does.
type requestIDHandler struct{ slog.Handler }

func (h requestIDHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	return h.Handler.Handle(ctx, rec)
}

func (h requestIDHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return requestIDHandler{h.Handler.WithAttrs(attrs)}
}

func (h requestIDHandler) WithGroup(name string) slog.Handler {
	return requestIDHandler{h.Handler.WithGroup(name)}
}
