// Package repro is a from-scratch Go reproduction of "Discovering Conditional
// Functional Dependencies" (Fan, Geerts, Li, Xiong; ICDE 2009 / TKDE 2011).
//
// The library is organised as follows:
//
//   - repro/cfd       — the public data model: relations, CFDs, pattern
//     tableaux, satisfaction/violation/support/minimality.
//   - repro/discovery — the discovery algorithms: CFDMiner, CTANE, FastCFD,
//     NaiveFast, plus the TANE and FastFD baselines.
//   - repro/dataset   — CSV IO, the synthetic Tax generator (ARITY/DBSIZE/CF)
//     and shape-preserving stand-ins for the UCI data sets.
//   - repro/cleaning  — CFD-based violation detection and repair suggestions.
//   - repro/experiments — regeneration of every figure of the paper's §6.
//
// The root package only hosts the repository-level benchmarks
// (bench_test.go); see README.md for a walkthrough and the package map.
package repro
