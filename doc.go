// Package repro is a from-scratch Go reproduction of "Discovering Conditional
// Functional Dependencies" (Fan, Geerts, Li, Xiong; ICDE 2009 / TKDE 2011).
//
// The library is organised as follows:
//
//   - repro/cfd       — the public data model: relations, CFDs, pattern
//     tableaux, satisfaction/violation/support/minimality.
//   - repro/rules     — the first-class rule set (rules.Set): rules with
//     provenance, lazy tableaux/class counts, text and JSON codecs; the
//     currency between discovery and every consumer.
//   - repro/discovery — the streaming discovery engine (Engine.Stream /
//     Engine.Run) over CFDMiner, CTANE, FastCFD, NaiveFast, plus the TANE
//     and FastFD baselines.
//   - repro/dataset   — CSV IO, the synthetic Tax generator (ARITY/DBSIZE/CF)
//     and shape-preserving stand-ins for the UCI data sets.
//   - repro/violation — the concurrent incremental violation-detection
//     engine: sharded per-rule hash indexes, bulk load plus O(rules)
//     Insert/Delete/Update, atomic ApplyBatch, copy-on-write epoch snapshots
//     for lock-free consistent reads, and the Store persistence layer
//     (JSONL write-ahead log + compacted snapshots); served over HTTP by
//     cmd/cfdserve.
//   - repro/cleaning  — CFD-based violation detection (delegating to
//     repro/violation) and repair suggestions.
//   - repro/experiments — regeneration of every figure of the paper's §6.
//
// The root package only hosts the repository-level benchmarks
// (bench_test.go); see README.md for a walkthrough and the operations guide,
// and ARCHITECTURE.md for the package-layer map, the data flow from the
// paper's algorithms to the serving layer, and the snapshot/WAL lifecycle.
package repro
