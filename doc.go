// Package repro is a from-scratch Go reproduction of "Discovering Conditional
// Functional Dependencies" (Fan, Geerts, Li, Xiong; ICDE 2009 / TKDE 2011).
//
// The library is organised as follows:
//
//   - repro/cfd       — the public data model: relations, CFDs, pattern
//     tableaux, satisfaction/violation/support/minimality.
//   - repro/rules     — the first-class rule set (rules.Set): rules with
//     provenance, lazy tableaux/class counts, text and JSON codecs; the
//     currency between discovery and every consumer.
//   - repro/discovery — the streaming discovery engine (Engine.Stream /
//     Engine.Run) over CFDMiner, CTANE, FastCFD, NaiveFast, plus the TANE
//     and FastFD baselines.
//   - repro/dataset   — CSV IO, the synthetic Tax generator (ARITY/DBSIZE/CF)
//     and shape-preserving stand-ins for the UCI data sets.
//   - repro/violation — the incremental violation-detection engine: per-rule
//     hash indexes, bulk load plus O(rules) Insert/Delete/Update, streaming
//     snapshots and per-tuple lookup; served over HTTP by cmd/cfdserve.
//   - repro/cleaning  — CFD-based violation detection (delegating to
//     repro/violation) and repair suggestions.
//   - repro/experiments — regeneration of every figure of the paper's §6.
//
// The root package only hosts the repository-level benchmarks
// (bench_test.go); see README.md for a walkthrough and the package map.
package repro
