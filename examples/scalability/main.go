// The scalability example is a miniature of the paper's §6 evaluation: it
// compares CFDMiner, CTANE, NaiveFast and FastCFD on generated tax data while
// one parameter (DBSIZE or ARITY) grows, and prints the response times side by
// side so the trade-offs of §6.2.3 are visible on a laptop within a minute.
// Run it with:
//
//	go run ./examples/scalability
//
// For the full reproduction of every figure use cmd/cfdbench instead.
package main

import (
	"fmt"
	"log"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	fmt.Println("== response time vs DBSIZE (ARITY=7, CF=0.7, k=0.5% of DBSIZE) ==")
	fmt.Printf("%-8s %16s %16s %16s %16s\n", "DBSIZE", "CFDMiner", "CTANE", "NaiveFast", "FastCFD")
	for _, size := range []int{1000, 2000, 4000} {
		rel, err := dataset.Tax(dataset.TaxConfig{Size: size, Arity: 7, CF: 0.7, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		k := maxInt(5, size/200)
		fmt.Printf("%-8d %16s %16s %16s %16s\n", size,
			timeOf(discovery.AlgCFDMiner, rel, k),
			timeOf(discovery.AlgCTANE, rel, k),
			timeOf(discovery.AlgNaiveFast, rel, k),
			timeOf(discovery.AlgFastCFD, rel, k))
	}

	fmt.Println("\n== response time vs ARITY (DBSIZE=1500, CF=0.7, k=8) ==")
	fmt.Printf("%-8s %16s %16s %16s\n", "ARITY", "CTANE", "NaiveFast", "FastCFD")
	for _, arity := range []int{7, 9, 11, 13} {
		rel, err := dataset.Tax(dataset.TaxConfig{Size: 1500, Arity: arity, CF: 0.7, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		ctane := "skipped"
		if arity <= 11 {
			ctane = timeOf(discovery.AlgCTANE, rel, 8)
		}
		fmt.Printf("%-8d %16s %16s %16s\n", arity,
			ctane,
			timeOf(discovery.AlgNaiveFast, rel, 8),
			timeOf(discovery.AlgFastCFD, rel, 8))
	}

	fmt.Println("\nTakeaways (matching §6.2.3 of the paper):")
	fmt.Println("  1. CFDMiner, which only mines constant CFDs, is far faster than the general algorithms.")
	fmt.Println("  2. CTANE degrades quickly as the arity grows; the depth-first algorithms do not.")
	fmt.Println("  3. FastCFD's closed-item-set difference sets beat NaiveFast as DBSIZE grows.")
}

// timeOf runs one algorithm and renders "elapsed (count CFDs)".
func timeOf(alg discovery.Algorithm, rel *cfd.Relation, k int) string {
	res, err := discovery.Discover(alg, rel, discovery.Options{Support: k})
	if err != nil {
		log.Fatal(err)
	}
	return fmt.Sprintf("%s (%d)", res.Elapsed.Round(1e6), len(res.CFDs))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
