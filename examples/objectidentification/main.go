// The object-identification example shows the use case that motivates constant
// CFDs in the paper (§1): instance-level rules that tie constants together
// (area code 908 implies city MH, ZIP 07974 implies country code 01, ...) are
// exactly what record matching and object identification need. It mines them
// with CFDMiner — without paying the price of general CFD discovery — on a
// synthetic customer/tax data set, and then uses them to enrich a partial
// record. Run it with:
//
//	go run ./examples/objectidentification
package main

import (
	"fmt"
	"log"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	// A synthetic customer/tax data set with embedded value-level correlations.
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 5000, Arity: 9, CF: 0.5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer data: %d tuples over %v\n\n", rel.Size(), rel.Attributes())

	// Constant CFDs only: CFDMiner is orders of magnitude cheaper than general
	// CFD discovery (Fig. 5 of the paper), which matters when rules are refreshed
	// often.
	res, err := discovery.CFDMiner(rel, discovery.Options{Support: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CFDMiner found %d constant CFDs with support >= 50 in %s\n",
		len(res.CFDs), res.Elapsed.Round(1e6))

	// Keep the compact, single-antecedent rules: they link one known value to
	// one implied value, which is the form object identification consumes.
	var linkRules []cfd.CFD
	for _, c := range res.CFDs {
		if len(c.LHS) == 1 {
			linkRules = append(linkRules, c)
		}
	}
	cfd.SortCFDs(linkRules)
	fmt.Printf("%d of them are single-antecedent value links; the first few:\n", len(linkRules))
	for i, c := range linkRules {
		if i == 8 {
			break
		}
		fmt.Println("  ", c)
	}

	// Enrich a partial record: we only know the customer's area code, and the
	// rules fill in every attribute the area code determines.
	partial := map[string]string{"AC": "A0"}
	fmt.Printf("\nenriching the partial record %v:\n", partial)
	inferred := enrich(partial, linkRules)
	for attr, val := range inferred {
		if _, known := partial[attr]; !known {
			fmt.Printf("  inferred %s = %s\n", attr, val)
		}
	}
	if len(inferred) == len(partial) {
		fmt.Println("  (no rule applies to this record)")
	}
}

// enrich repeatedly applies single-antecedent constant rules until a fixpoint:
// whenever a known (attribute, value) pair matches a rule's LHS, the rule's
// RHS constant is added to the record.
func enrich(record map[string]string, rules []cfd.CFD) map[string]string {
	out := make(map[string]string, len(record))
	for k, v := range record {
		out[k] = v
	}
	for changed := true; changed; {
		changed = false
		for _, rule := range rules {
			if len(rule.LHS) != 1 || rule.RHSPattern == cfd.Wildcard {
				continue
			}
			if out[rule.LHS[0]] != rule.LHSPattern[0] {
				continue
			}
			if _, known := out[rule.RHS]; known {
				continue
			}
			out[rule.RHS] = rule.RHSPattern
			changed = true
		}
	}
	return out
}
