// The quickstart example builds the cust relation of Fig. 1 of the paper and
// discovers its minimal 2-frequent CFDs with FastCFD, printing both the flat
// list and the pattern-tableau view. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	// The cust relation of Fig. 1: customers with phone, name and address.
	rel := dataset.Cust()
	fmt.Printf("cust relation: %d tuples over %v\n\n", rel.Size(), rel.Attributes())

	// Discover a canonical cover of minimal, 2-frequent CFDs.
	res, err := discovery.FastCFD(rel, discovery.Options{Support: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FastCFD found %d minimal 2-frequent CFDs (%d constant, %d variable) in %s:\n",
		len(res.CFDs), res.Constant, res.Variable, res.Elapsed.Round(1e6))
	sorted := append([]cfd.CFD(nil), res.CFDs...)
	cfd.SortCFDs(sorted)
	for _, c := range sorted {
		fmt.Println("  ", c)
	}

	// The same rules grouped into pattern tableaux (§2.3 of the paper): one
	// tableau per embedded FD.
	fmt.Println("\nPattern-tableau view:")
	for _, t := range cfd.BuildTableaux(res.CFDs) {
		sup, err := rel.TableauSupport(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  (tableau support %d)\n", t, sup)
	}

	// Check one of the paper's own examples: phi_2 = ([CC,AC] -> CT, (44,131 || EDI)).
	phi2 := cfd.CFD{
		LHS: []string{"CC", "AC"}, RHS: "CT",
		LHSPattern: []string{"44", "131"}, RHSPattern: "EDI",
	}
	minimal, err := rel.IsMinimal(phi2)
	if err != nil {
		log.Fatal(err)
	}
	support, _ := rel.Support(phi2)
	fmt.Printf("\n%s: minimal=%v support=%d (Example 5 of the paper)\n", phi2, minimal, support)
}
