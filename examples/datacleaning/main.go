// The data-cleaning example runs the end-to-end workflow that motivates the
// paper (§1): discover CFDs on a trusted sample, use them as data quality
// rules on a dirty copy of the data, localise the errors, and apply suggested
// repairs. It reports how many of the injected errors the discovered rules
// catch. Run it with:
//
//	go run ./examples/datacleaning
package main

import (
	"context"
	"fmt"
	"log"

	"repro/cleaning"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	// 1. A clean customer/tax data set plays the role of the trusted sample.
	clean, err := dataset.Tax(dataset.TaxConfig{Size: 4000, Arity: 9, CF: 0.6, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trusted sample: %d tuples over %v\n", clean.Size(), clean.Attributes())

	// 2. Discover data-quality rules on the sample through the streaming
	// engine; Run collects the stream into a rules.Set whose provenance
	// records the run. A moderate support keeps the rules robust against
	// noise, as §2.2.2 of the paper argues.
	eng := discovery.NewEngine(discovery.AlgFastCFD, clean,
		discovery.WithSupport(40), discovery.WithMaxLHS(2))
	ruleSet, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d rules (%d constant, %d variable) in %s\n\n",
		ruleSet.Len(), ruleSet.Constant(), ruleSet.Variable(), ruleSet.Provenance().Elapsed.Round(1e6))

	// 3. Corrupt a copy of the data: 3% of the tuples get one wrong value.
	dirty, injected := dataset.InjectNoise(clean, 0.03, 99)
	fmt.Printf("injected errors into %d of %d tuples\n", len(injected), dirty.Size())

	// 4. Detect violations of the discovered rules on the dirty data. The
	// suspects list narrows the violating tuples down to the likely culprits
	// (minority values within their group), which is what a reviewer wants.
	report, err := cleaning.Detect(dirty, ruleSet)
	if err != nil {
		log.Fatal(err)
	}
	suspects, err := cleaning.Suspects(dirty, ruleSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rules are violated; %d tuples are involved, %d are prime suspects\n",
		len(report.Violations), len(report.DirtyTuples), len(suspects))

	injectedSet := make(map[int]bool, len(injected))
	for _, t := range injected {
		injectedSet[t] = true
	}
	caught, truePositives := 0, 0
	for _, t := range suspects {
		if injectedSet[t] {
			truePositives++
		}
	}
	for _, t := range report.DirtyTuples {
		if injectedSet[t] {
			caught++
		}
	}
	fmt.Printf("of the %d injected errors, %d are involved in some violation and %d are prime suspects\n",
		len(injected), caught, truePositives)
	fmt.Printf("suspect precision %.0f%%, recall %.0f%%\n\n",
		100*float64(truePositives)/float64(maxInt(1, len(suspects))),
		100*float64(truePositives)/float64(maxInt(1, len(injected))))

	// 5. Show a few per-tuple reports, the view a reviewer would work from.
	byTuple := cleaning.ByTuple(report)
	for i, tr := range byTuple {
		if i == 3 {
			break
		}
		fmt.Printf("tuple %d (%v) violates %d rules, e.g. %s\n",
			tr.Tuple, dirty.Row(tr.Tuple), len(tr.Rules), tr.Rules[0])
	}

	// 6. Suggest and apply repairs, then re-check.
	repairs, err := cleaning.SuggestRepairs(dirty, ruleSet)
	if err != nil {
		log.Fatal(err)
	}
	repaired := cleaning.ApplyRepairs(dirty, repairs)
	after, err := cleaning.Detect(repaired, ruleSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied %d repairs: dirty tuples %d -> %d\n",
		len(repairs), len(report.DirtyTuples), len(after.DirtyTuples))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
