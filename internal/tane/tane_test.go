package tane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// bruteForceFDs returns every minimal FD of r by exhaustive enumeration.
func bruteForceFDs(r *core.Relation) []core.CFD {
	arity := r.Arity()
	all := r.Schema().All()
	wild := core.NewPattern(arity)
	var out []core.CFD
	for rhs := 0; rhs < arity; rhs++ {
		all.Remove(rhs).Subsets(func(X core.AttrSet) bool {
			c := core.CFD{LHS: X, RHS: rhs, Tp: wild}
			if !core.Satisfies(r, c) {
				return true
			}
			minimal := true
			X.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
				if core.Satisfies(r, core.CFD{LHS: sub, RHS: rhs, Tp: wild}) {
					minimal = false
					return false
				}
				return true
			})
			if minimal {
				out = append(out, c)
			}
			return true
		})
	}
	core.SortCFDs(out)
	return out
}

func sameCFDs(a, b []core.CFD) bool {
	if len(a) != len(b) {
		return false
	}
	core.SortCFDs(a)
	core.SortCFDs(b)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestMineCustKnownFDs checks the FDs quoted in the paper on the Fig. 1 relation.
func TestMineCustKnownFDs(t *testing.T) {
	r := fixture.Cust()
	got := Mine(r)
	index := make(map[string]bool, len(got))
	for _, c := range got {
		index[c.Key()] = true
	}
	lhsF1, _ := r.Schema().AttrSetOf("CC", "AC")
	ct, _ := r.Schema().Index("CT")
	f1 := core.CFD{LHS: lhsF1, RHS: ct, Tp: core.NewPattern(r.Arity())}
	if !index[f1.Key()] {
		t.Errorf("f1 = [CC,AC] -> CT missing from TANE output")
	}
	// f2 = [CC,AC,PN] -> STR is minimal on r0.
	lhsF2, _ := r.Schema().AttrSetOf("CC", "AC", "PN")
	str, _ := r.Schema().Index("STR")
	f2 := core.CFD{LHS: lhsF2, RHS: str, Tp: core.NewPattern(r.Arity())}
	if !index[f2.Key()] {
		t.Errorf("f2 = [CC,AC,PN] -> STR missing from TANE output")
	}
	// [CC,ZIP] -> STR does not hold and must not appear.
	lhsBad, _ := r.Schema().AttrSetOf("CC", "ZIP")
	bad := core.CFD{LHS: lhsBad, RHS: str, Tp: core.NewPattern(r.Arity())}
	if index[bad.Key()] {
		t.Errorf("[CC,ZIP] -> STR should not be reported")
	}
}

// TestMineMatchesBruteForce compares TANE against exhaustive enumeration on
// several small relations.
func TestMineMatchesBruteForce(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust":     fixture.Cust(),
		"custNoNM": fixture.CustNoNM(),
		"random1":  fixture.Random(3, 50, []int{2, 3, 4, 2}),
		"random2":  fixture.Random(8, 80, []int{3, 3, 2, 2, 4}),
		"corr":     fixture.RandomCorrelated(12, 70, 5, 4),
		"constant": constantColumnRelation(),
	}
	for name, r := range rels {
		got := Mine(r)
		want := bruteForceFDs(r)
		if !sameCFDs(got, want) {
			t.Errorf("%s: TANE found %d FDs, brute force %d", name, len(got), len(want))
			gk := map[string]bool{}
			for _, c := range got {
				gk[c.Key()] = true
			}
			for _, c := range want {
				if !gk[c.Key()] {
					t.Errorf("%s: missing %s", name, c.Format(r))
				}
			}
			wk := map[string]bool{}
			for _, c := range want {
				wk[c.Key()] = true
			}
			for _, c := range got {
				if !wk[c.Key()] {
					t.Errorf("%s: spurious %s", name, c.Format(r))
				}
			}
		}
	}
}

// TestMineOutputsAreMinimalFDs validates output invariants.
func TestMineOutputsAreMinimalFDs(t *testing.T) {
	r := fixture.RandomCorrelated(4, 90, 5, 5)
	for _, c := range Mine(r) {
		if !c.IsVariable() || c.Tp.ConstAttrs(c.LHS).Len() != 0 {
			t.Errorf("TANE emitted a non-FD: %s", c.Format(r))
		}
		if !core.IsMinimal(r, c) {
			t.Errorf("TANE emitted a non-minimal FD: %s", c.Format(r))
		}
	}
}

func constantColumnRelation() *core.Relation {
	r := core.NewRelation(core.MustSchema("A", "B", "C"))
	rows := [][]string{{"1", "k", "x"}, {"2", "k", "y"}, {"3", "k", "x"}, {"1", "k", "x"}}
	for _, row := range rows {
		if err := r.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return r
}
