// Package tane implements TANE (Huhtala et al., 1999), the levelwise algorithm
// for discovering minimal functional dependencies that CTANE extends. It is
// included both as the classical baseline the paper builds on (§1.1) and for
// use in tests and benchmarks that compare FD discovery with CFD discovery.
//
// FDs are returned as core.CFD values with all-wildcard pattern tuples.
package tane

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/partition"
)

// element is one node of the attribute-set lattice: an attribute set, its
// stripped partition, and the candidate RHS set C+.
type element struct {
	attrs core.AttrSet
	part  *partition.Partition
	cplus core.AttrSet
}

// Mine returns the minimal functional dependencies X -> A that hold on r,
// expressed as CFDs with all-wildcard patterns. Dependencies with an empty
// left-hand side (constant attributes) are included.
func Mine(r *core.Relation) []core.CFD {
	out, err := MineContext(context.Background(), r)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineContext is Mine with a cancellation context, observed once per lattice
// level; a cancelled run returns (nil, ctx.Err()).
func MineContext(ctx context.Context, r *core.Relation) ([]core.CFD, error) {
	arity := r.Arity()
	all := r.Schema().All()
	n := r.Size()
	var out []core.CFD

	emit := func(lhs core.AttrSet, rhs int) {
		out = append(out, core.CFD{LHS: lhs, RHS: rhs, Tp: core.NewPattern(arity)})
	}

	// Virtual empty-set element: one equivalence class holding every tuple.
	emptyPart := &partition.Partition{Covered: n}
	if n >= 2 {
		allTids := make([]int32, n)
		for t := range allTids {
			allTids[t] = int32(t)
		}
		emptyPart.Classes = [][]int32{allTids}
	}

	prev := map[core.AttrSet]*element{
		core.EmptyAttrSet: {attrs: core.EmptyAttrSet, part: emptyPart, cplus: all},
	}

	// Scratch buffer reused by every partition product.
	scratch := make([]int32, n)

	// Level 1.
	level := make([]*element, 0, arity)
	for a := 0; a < arity; a++ {
		level = append(level, &element{
			attrs: core.SingleAttr(a),
			part:  partition.FromAttribute(r, a),
		})
	}

	for len(level) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sort.Slice(level, func(i, j int) bool { return level[i].attrs < level[j].attrs })
		byAttrs := make(map[core.AttrSet]*element, len(level))
		for _, e := range level {
			byAttrs[e.attrs] = e
		}
		// Step 1: candidate RHS sets.
		for _, e := range level {
			c := all
			e.attrs.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
				parent, ok := prev[sub]
				if !ok {
					c = core.EmptyAttrSet
					return false
				}
				c = c.Intersect(parent.cplus)
				return true
			})
			e.cplus = c
		}
		// Step 2: dependency checks.
		for _, e := range level {
			candidates := e.attrs.Intersect(e.cplus)
			candidates.ForEach(func(a int) {
				parent, ok := prev[e.attrs.Remove(a)]
				if !ok {
					return
				}
				if parent.part.NumClasses() == e.part.NumClasses() {
					emit(e.attrs.Remove(a), a)
					e.cplus = e.cplus.Remove(a)
					e.cplus = e.cplus.Diff(all.Diff(e.attrs))
				}
			})
		}
		// Step 3: prune elements with empty C+.
		kept := level[:0]
		for _, e := range level {
			if !e.cplus.IsEmpty() {
				kept = append(kept, e)
			} else {
				delete(byAttrs, e.attrs)
			}
		}
		level = kept
		// Step 4: generate the next level by prefix join: two sets join iff they
		// share everything but their largest attribute.
		groups := make(map[core.AttrSet][]*element)
		for _, e := range level {
			prefix := e.attrs.Remove(e.attrs.Last())
			groups[prefix] = append(groups[prefix], e)
		}
		var next []*element
		for _, group := range groups {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					x, y := group[i], group[j]
					z := x.attrs.Union(y.attrs)
					ok := true
					z.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
						if _, present := byAttrs[sub]; !present {
							ok = false
							return false
						}
						return true
					})
					if !ok {
						continue
					}
					part := partition.ProductWith(x.part, y.part, scratch)
					part.Covered = n
					next = append(next, &element{attrs: z, part: part})
				}
			}
		}
		prev = byAttrs
		level = next
	}

	core.SortCFDs(out)
	return out, nil
}
