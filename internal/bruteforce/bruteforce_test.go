package bruteforce

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/fixture"
)

// TestMineProducesExactlyMinimalFrequentCFDs re-derives the defining property
// of the oracle's output on the cust relation: a CFD is returned iff it is
// minimal and k-frequent.
func TestMineProducesExactlyMinimalFrequentCFDs(t *testing.T) {
	r := fixture.CustNoNM()
	k := 2
	got := Mine(r, k)
	index := make(map[string]bool, len(got))
	for _, c := range got {
		index[c.Key()] = true
		if !core.IsMinimal(r, c) {
			t.Errorf("oracle returned a non-minimal CFD: %s", c.Format(r))
		}
		if core.Support(r, c) < k {
			t.Errorf("oracle returned an infrequent CFD: %s", c.Format(r))
		}
	}
	// Spot-check membership: phi2 restricted to the projection is minimal and
	// 2-frequent, so it must be present.
	lhs, _ := r.Schema().AttrSetOf("CC", "AC")
	ct, _ := r.Schema().Index("CT")
	tp := core.NewPattern(r.Arity())
	cc, _ := r.Schema().Index("CC")
	ac, _ := r.Schema().Index("AC")
	tp[cc], _ = r.Dict(cc).Lookup("44")
	tp[ac], _ = r.Dict(ac).Lookup("131")
	tp[ct], _ = r.Dict(ct).Lookup("EDI")
	phi2 := core.CFD{LHS: lhs, RHS: ct, Tp: tp}
	if !index[phi2.Key()] {
		t.Error("phi2 missing from the oracle output")
	}
}

// TestConstantPlusVariableEqualsMine checks that Mine is the union of the two
// class-specific enumerations.
func TestConstantPlusVariableEqualsMine(t *testing.T) {
	r := fixture.Random(5, 40, []int{2, 3, 2})
	for _, k := range []int{1, 2, 4} {
		all := Mine(r, k)
		split := append(MineConstant(r, k), MineVariable(r, k)...)
		if len(all) != len(split) {
			t.Fatalf("k=%d: Mine has %d CFDs, constant+variable %d", k, len(all), len(split))
		}
		index := make(map[string]bool, len(all))
		for _, c := range all {
			index[c.Key()] = true
		}
		for _, c := range split {
			if !index[c.Key()] {
				t.Errorf("k=%d: %s missing from Mine", k, c.Format(r))
			}
		}
	}
}

// TestMonotoneInK checks that raising the threshold never adds CFDs that were
// not already minimal: every k-frequent minimal CFD is also in the (k-1) cover.
func TestMonotoneInK(t *testing.T) {
	r := fixture.RandomCorrelated(3, 50, 4, 3)
	prev := Mine(r, 1)
	prevIndex := make(map[string]bool, len(prev))
	for _, c := range prev {
		prevIndex[c.Key()] = true
	}
	for _, k := range []int{2, 3, 4} {
		cur := Mine(r, k)
		if len(cur) > len(prev) {
			t.Errorf("k=%d: cover grew from %d to %d", k, len(prev), len(cur))
		}
		for _, c := range cur {
			if !prevIndex[c.Key()] {
				t.Errorf("k=%d: %s not present at smaller k", k, c.Format(r))
			}
		}
	}
}

// TestOutputsHoldOnRandomRelations is a property-style check over random
// relations: everything the oracle returns is satisfied.
func TestOutputsHoldOnRandomRelations(t *testing.T) {
	f := func(seed int64) bool {
		r := fixture.Random(seed%100, 25, []int{2, 2, 3})
		for _, c := range Mine(r, 2) {
			if !core.Satisfies(r, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
