// Package bruteforce enumerates canonical covers of CFDs by exhaustive search.
// It exists purely as a test oracle: on tiny relations it produces the exact
// set of minimal k-frequent CFDs against which CFDMiner, CTANE, FastCFD and
// NaiveFast are validated.
package bruteforce

import (
	"context"

	"repro/internal/core"
)

// Mine returns every minimal k-frequent CFD of r: all constant CFDs and all
// variable CFDs that are nontrivial, satisfied, left-reduced and k-frequent.
// Minimal CFDs with a constant right-hand side always have an all-constant
// left-hand side pattern (Lemma 1 of the paper), so only those are enumerated.
func Mine(r *core.Relation, k int) []core.CFD {
	out, err := MineContext(context.Background(), r, k)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineContext is Mine with a cancellation context, observed between the two
// enumeration passes; a cancelled run returns (nil, ctx.Err()). The oracle
// stays intentionally simple — it is only ever run on tiny relations.
func MineContext(ctx context.Context, r *core.Relation, k int) ([]core.CFD, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := MineConstant(r, k)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out = append(out, MineVariable(r, k)...)
	core.SortCFDs(out)
	return out, nil
}

// MineConstant returns every minimal k-frequent constant CFD of r.
func MineConstant(r *core.Relation, k int) []core.CFD {
	var out []core.CFD
	arity := r.Arity()
	all := r.Schema().All()
	for rhs := 0; rhs < arity; rhs++ {
		lhsSpace := all.Remove(rhs)
		lhsSpace.Subsets(func(X core.AttrSet) bool {
			forEachConstantPattern(r, X, func(tp core.Pattern) {
				for a := 0; a < r.DomainSize(rhs); a++ {
					cand := tp.Clone()
					cand[rhs] = int32(a)
					c := core.CFD{LHS: X, RHS: rhs, Tp: cand}
					if core.Support(r, c) < k {
						continue
					}
					if !core.Satisfies(r, c) || !core.IsLeftReduced(r, c) {
						continue
					}
					out = append(out, c)
				}
			})
			return true
		})
	}
	core.SortCFDs(out)
	return out
}

// MineVariable returns every minimal k-frequent variable CFD of r.
func MineVariable(r *core.Relation, k int) []core.CFD {
	var out []core.CFD
	arity := r.Arity()
	all := r.Schema().All()
	for rhs := 0; rhs < arity; rhs++ {
		lhsSpace := all.Remove(rhs)
		lhsSpace.Subsets(func(X core.AttrSet) bool {
			forEachPattern(r, X, func(tp core.Pattern) {
				c := core.CFD{LHS: X, RHS: rhs, Tp: tp.Clone()}
				if core.Support(r, c) < k {
					return
				}
				if !core.Satisfies(r, c) || !core.IsLeftReduced(r, c) {
					return
				}
				out = append(out, c)
			})
			return true
		})
	}
	core.SortCFDs(out)
	return out
}

// forEachConstantPattern enumerates every all-constant pattern over X drawn
// from the active domains of r.
func forEachConstantPattern(r *core.Relation, X core.AttrSet, fn func(core.Pattern)) {
	attrs := X.Attrs()
	tp := core.NewPattern(r.Arity())
	var rec func(i int)
	rec = func(i int) {
		if i == len(attrs) {
			fn(tp)
			return
		}
		a := attrs[i]
		for v := 0; v < r.DomainSize(a); v++ {
			tp[a] = int32(v)
			rec(i + 1)
		}
		tp[a] = core.Wildcard
	}
	rec(0)
}

// forEachPattern enumerates every pattern over X whose entries are either the
// unnamed variable or a constant from the active domain of the attribute.
func forEachPattern(r *core.Relation, X core.AttrSet, fn func(core.Pattern)) {
	attrs := X.Attrs()
	tp := core.NewPattern(r.Arity())
	var rec func(i int)
	rec = func(i int) {
		if i == len(attrs) {
			fn(tp)
			return
		}
		a := attrs[i]
		tp[a] = core.Wildcard
		rec(i + 1)
		for v := 0; v < r.DomainSize(a); v++ {
			tp[a] = int32(v)
			rec(i + 1)
		}
		tp[a] = core.Wildcard
	}
	rec(0)
}
