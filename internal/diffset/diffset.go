// Package diffset computes the difference sets used by FastCFD and FastFD
// (§5.1 of the paper). For a constant pattern tp over attributes X, the
// sub-relation r_tp consists of the tuples matching tp; D(r_tp) contains, for
// every pair of tuples of r_tp, the set of attributes on which the pair
// disagrees; and D^m_A(r_tp) contains the minimal sets of D(r_tp) restricted to
// pairs that disagree on A, with A itself removed.
//
// Two backends implement the computation:
//
//   - Naive follows FastFD: it enumerates tuple pairs of r_tp directly. This
//     is the backend of the NaiveFast variant evaluated in §6.
//   - Closed derives the difference sets from the 2-frequent closed item sets
//     of the whole relation, mined once and filtered per pattern, which is the
//     optimisation that distinguishes FastCFD (§5.5).
package diffset

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/itemset"
)

// Computer produces minimal difference sets for constant patterns.
type Computer interface {
	// MinimalDiffSets returns D^m_A(r_tp) for the sub-relation of tuples
	// matching the constants of tp on attrs: the minimal attribute sets
	// (excluding A itself) on which some pair of r_tp tuples that disagrees on A
	// also disagrees.
	MinimalDiffSets(attrs core.AttrSet, tp core.Pattern, rhs int) []core.AttrSet
}

// Minimize returns the minimal sets of the input under set inclusion, with
// duplicates removed, sorted by size then bit pattern for determinism.
func Minimize(sets []core.AttrSet) []core.AttrSet {
	uniq := make(map[core.AttrSet]bool, len(sets))
	for _, s := range sets {
		uniq[s] = true
	}
	all := make([]core.AttrSet, 0, len(uniq))
	for s := range uniq {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Len() != all[j].Len() {
			return all[i].Len() < all[j].Len()
		}
		return all[i] < all[j]
	})
	var out []core.AttrSet
	for _, s := range all {
		minimal := true
		for _, m := range out {
			if m.SubsetOf(s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

// restrictToRHS keeps the difference sets containing rhs, removes rhs from
// them, and minimizes the result — turning D(r_tp) into D^m_A(r_tp).
func restrictToRHS(diffs []core.AttrSet, rhs int) []core.AttrSet {
	var out []core.AttrSet
	for _, d := range diffs {
		if d.Has(rhs) {
			out = append(out, d.Remove(rhs))
		}
	}
	return Minimize(out)
}

// Covers reports whether Z covers the collection of difference sets: every set
// shares at least one attribute with Z. The empty collection is covered by any
// set; a collection containing the empty set is covered by none.
func Covers(Z core.AttrSet, diffs []core.AttrSet) bool {
	for _, d := range diffs {
		if !Z.Intersects(d) {
			return false
		}
	}
	return true
}

// IsMinimalCover reports whether Z covers diffs and no proper subset of Z does.
// Because removing a single attribute from a non-minimal cover still yields a
// cover, it suffices to check the immediate subsets of Z.
func IsMinimalCover(Z core.AttrSet, diffs []core.AttrSet) bool {
	if !Covers(Z, diffs) {
		return false
	}
	minimal := true
	Z.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
		if Covers(sub, diffs) {
			minimal = false
			return false
		}
		return true
	})
	return minimal
}

// Naive computes difference sets by direct pairwise comparison of the tuples
// matching the pattern, memoising per pattern (the FastFD approach used by
// NaiveFast).
type Naive struct {
	r     *core.Relation
	mu    sync.Mutex
	cache map[string][]core.AttrSet
}

// NewNaive returns a Naive difference-set computer over r.
func NewNaive(r *core.Relation) *Naive {
	return &Naive{r: r, cache: make(map[string][]core.AttrSet)}
}

// MinimalDiffSets implements Computer.
func (n *Naive) MinimalDiffSets(attrs core.AttrSet, tp core.Pattern, rhs int) []core.AttrSet {
	return restrictToRHS(n.diffSets(attrs, tp), rhs)
}

// diffSets returns the distinct difference sets of all tuple pairs of r_tp.
func (n *Naive) diffSets(attrs core.AttrSet, tp core.Pattern) []core.AttrSet {
	key := tp.Key(attrs)
	n.mu.Lock()
	if d, ok := n.cache[key]; ok {
		n.mu.Unlock()
		return d
	}
	n.mu.Unlock()

	r := n.r
	arity := r.Arity()
	tids := r.MatchingTuples(attrs, tp)
	seen := make(map[core.AttrSet]bool)
	for i := 0; i < len(tids); i++ {
		for j := i + 1; j < len(tids); j++ {
			var d core.AttrSet
			for a := 0; a < arity; a++ {
				if r.Value(int(tids[i]), a) != r.Value(int(tids[j]), a) {
					d = d.Add(a)
				}
			}
			if !d.IsEmpty() {
				seen[d] = true
			}
		}
	}
	out := make([]core.AttrSet, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })

	n.mu.Lock()
	n.cache[key] = out
	n.mu.Unlock()
	return out
}

// Closed computes difference sets from the 2-frequent closed item sets of the
// relation (§5.5): the agree set of any pair of tuples of r_tp is a closed
// item set with support ≥ 2 that contains the pattern's items, so the
// complements of the matching closed sets are a superset of the true
// difference sets that contains every true difference set — which leaves the
// minimal difference sets unchanged.
type Closed struct {
	r    *core.Relation
	once sync.Once

	closed      []itemset.ClosedPattern
	complements []core.AttrSet
	// byItem indexes the closed sets by the items they contain, so that the
	// per-pattern filtering only scans the closed sets containing the pattern's
	// rarest item instead of the whole collection.
	byItem map[item][]int32

	mu    sync.Mutex
	cache map[string][]core.AttrSet
}

// item is a single (attribute, value) pair used as an index key.
type item struct {
	attr  int
	value int32
}

// NewClosed returns a Closed difference-set computer over r. The 2-frequent
// closed item sets are mined lazily on first use and reused for every pattern.
func NewClosed(r *core.Relation) *Closed {
	return &Closed{r: r, cache: make(map[string][]core.AttrSet)}
}

// Prepare forces the closed-item-set mining step, so that callers can separate
// its cost from per-pattern queries (the benchmark harness uses this).
func (c *Closed) Prepare() {
	c.once.Do(func() {
		c.closed = itemset.MineClosed(c.r, 2)
		all := c.r.Schema().All()
		c.complements = make([]core.AttrSet, len(c.closed))
		c.byItem = make(map[item][]int32)
		for i, cp := range c.closed {
			c.complements[i] = all.Diff(cp.Attrs)
			cp.Attrs.ForEach(func(a int) {
				key := item{attr: a, value: cp.Tp[a]}
				c.byItem[key] = append(c.byItem[key], int32(i))
			})
		}
	})
}

// MinimalDiffSets implements Computer.
func (c *Closed) MinimalDiffSets(attrs core.AttrSet, tp core.Pattern, rhs int) []core.AttrSet {
	return restrictToRHS(c.diffSets(attrs, tp), rhs)
}

// diffSets returns the candidate difference sets for the pattern: complements
// of the 2-frequent closed item sets containing the pattern's items.
func (c *Closed) diffSets(attrs core.AttrSet, tp core.Pattern) []core.AttrSet {
	c.Prepare()
	key := tp.Key(attrs)
	c.mu.Lock()
	if d, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return d
	}
	c.mu.Unlock()

	// Restrict the scan to the closed sets containing the pattern's rarest
	// item; for the empty pattern every closed set qualifies.
	candidates := int32(-1) // -1 means "all"
	var narrowest []int32
	attrs.ForEach(func(a int) {
		list := c.byItem[item{attr: a, value: tp[a]}]
		if candidates == -1 || len(list) < int(candidates) {
			candidates = int32(len(list))
			narrowest = list
		}
	})
	seen := make(map[core.AttrSet]bool)
	scan := func(i int) {
		cp := c.closed[i]
		if !cp.ContainsItems(attrs, tp) {
			return
		}
		if d := c.complements[i]; !d.IsEmpty() {
			seen[d] = true
		}
	}
	if candidates == -1 {
		for i := range c.closed {
			scan(i)
		}
	} else {
		for _, i := range narrowest {
			scan(int(i))
		}
	}
	out := make([]core.AttrSet, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })

	c.mu.Lock()
	c.cache[key] = out
	c.mu.Unlock()
	return out
}
