package diffset

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

func pattern(t *testing.T, r *core.Relation, pairs ...string) (core.AttrSet, core.Pattern) {
	t.Helper()
	attrs := core.EmptyAttrSet
	tp := core.NewPattern(r.Arity())
	for i := 0; i+1 < len(pairs); i += 2 {
		a, ok := r.Schema().Index(pairs[i])
		if !ok {
			t.Fatalf("unknown attribute %q", pairs[i])
		}
		v, ok := r.Dict(a).Lookup(pairs[i+1])
		if !ok {
			t.Fatalf("value %q not in %s", pairs[i+1], pairs[i])
		}
		attrs = attrs.Add(a)
		tp[a] = v
	}
	return attrs, tp
}

func attrSetOf(t *testing.T, r *core.Relation, names ...string) core.AttrSet {
	t.Helper()
	s, err := r.Schema().AttrSetOf(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameSets(a, b []core.AttrSet) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]core.AttrSet(nil), a...)
	bs := append([]core.AttrSet(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestMinimize(t *testing.T) {
	sets := []core.AttrSet{
		core.NewAttrSet(0, 1),
		core.NewAttrSet(0),
		core.NewAttrSet(0, 1, 2),
		core.NewAttrSet(2, 3),
		core.NewAttrSet(0),
	}
	got := Minimize(sets)
	want := []core.AttrSet{core.NewAttrSet(0), core.NewAttrSet(2, 3)}
	if !sameSets(got, want) {
		t.Errorf("Minimize = %v, want %v", got, want)
	}
	if len(Minimize(nil)) != 0 {
		t.Error("Minimize(nil) should be empty")
	}
	// The empty set dominates everything.
	got = Minimize([]core.AttrSet{core.EmptyAttrSet, core.NewAttrSet(1)})
	if len(got) != 1 || got[0] != core.EmptyAttrSet {
		t.Errorf("Minimize with empty set = %v", got)
	}
}

func TestCovers(t *testing.T) {
	diffs := []core.AttrSet{core.NewAttrSet(1), core.NewAttrSet(2, 3)}
	if !Covers(core.NewAttrSet(1, 2), diffs) {
		t.Error("{1,2} covers {{1},{2,3}}")
	}
	if Covers(core.NewAttrSet(2, 3), diffs) {
		t.Error("{2,3} does not cover {{1},{2,3}}")
	}
	if !Covers(core.NewAttrSet(5), nil) {
		t.Error("anything covers the empty collection")
	}
	if Covers(core.NewAttrSet(5), []core.AttrSet{core.EmptyAttrSet}) {
		t.Error("nothing covers a collection containing the empty set")
	}
	if !IsMinimalCover(core.NewAttrSet(1, 2), diffs) {
		t.Error("{1,2} should be a minimal cover")
	}
	if IsMinimalCover(core.NewAttrSet(1, 2, 5), diffs) {
		t.Error("{1,2,5} covers but is not minimal")
	}
}

// TestPaperExample9 verifies the difference sets of Example 9 on the cust
// relation without NM (the projection the example uses), with both backends.
func TestPaperExample9(t *testing.T) {
	r := fixture.CustNoNM()
	str, ok := r.Schema().Index("STR")
	if !ok {
		t.Fatal("missing STR")
	}
	for name, comp := range map[string]Computer{"naive": NewNaive(r), "closed": NewClosed(r)} {
		// (B) D^m_STR(r_{CC=01}) = {{PN}, {AC,CT}}.
		attrs, tp := pattern(t, r, "CC", "01")
		got := comp.MinimalDiffSets(attrs, tp, str)
		want := []core.AttrSet{attrSetOf(t, r, "PN"), attrSetOf(t, r, "AC", "CT")}
		if !sameSets(got, want) {
			t.Errorf("%s: DmSTR(r_CC=01) = %v, want %v", name, got, want)
		}
		// (C) D^m_STR(r_{CC=44}) = {{AC,CT,ZIP}}.
		attrs, tp = pattern(t, r, "CC", "44")
		got = comp.MinimalDiffSets(attrs, tp, str)
		want = []core.AttrSet{attrSetOf(t, r, "AC", "CT", "ZIP")}
		if !sameSets(got, want) {
			t.Errorf("%s: DmSTR(r_CC=44) = %v, want %v", name, got, want)
		}
		// (D) D^m_STR(r_{CC=01,AC=908}) = {{PN}}.
		attrs, tp = pattern(t, r, "CC", "01", "AC", "908")
		got = comp.MinimalDiffSets(attrs, tp, str)
		want = []core.AttrSet{attrSetOf(t, r, "PN")}
		if !sameSets(got, want) {
			t.Errorf("%s: DmSTR(r_CC=01,AC=908) = %v, want %v", name, got, want)
		}
		// (C) [PN] belongs to D^m_STR(r) for the empty pattern.
		got = comp.MinimalDiffSets(core.EmptyAttrSet, core.NewPattern(r.Arity()), str)
		foundPN := false
		for _, d := range got {
			if d == attrSetOf(t, r, "PN") {
				foundPN = true
			}
		}
		if !foundPN {
			t.Errorf("%s: [PN] missing from DmSTR(r): %v", name, got)
		}
	}
}

// TestBackendsAgree cross-validates the naive and closed-item-set backends on
// the cust relation and random relations over every attribute and several
// patterns.
func TestBackendsAgree(t *testing.T) {
	rels := []*core.Relation{
		fixture.Cust(),
		fixture.CustNoNM(),
		fixture.Random(11, 80, []int{3, 4, 2, 5}),
		fixture.RandomCorrelated(5, 120, 5, 5),
	}
	for ri, r := range rels {
		naive := NewNaive(r)
		closed := NewClosed(r)
		// Patterns: the empty pattern plus every frequent single item.
		type pat struct {
			attrs core.AttrSet
			tp    core.Pattern
		}
		pats := []pat{{core.EmptyAttrSet, core.NewPattern(r.Arity())}}
		for a := 0; a < r.Arity(); a++ {
			counts := make(map[int32]int)
			for _, v := range r.Column(a) {
				counts[v]++
			}
			for v, c := range counts {
				if c >= 2 {
					tp := core.NewPattern(r.Arity())
					tp[a] = v
					pats = append(pats, pat{core.SingleAttr(a), tp})
				}
			}
		}
		for _, p := range pats {
			for rhs := 0; rhs < r.Arity(); rhs++ {
				if p.attrs.Has(rhs) {
					continue
				}
				a := naive.MinimalDiffSets(p.attrs, p.tp, rhs)
				b := closed.MinimalDiffSets(p.attrs, p.tp, rhs)
				if !sameSets(a, b) {
					t.Errorf("relation %d, pattern %s, rhs %s: naive %v vs closed %v",
						ri, p.tp.Format(r, p.attrs), r.Schema().Name(rhs), a, b)
				}
			}
		}
	}
}

// TestDiffSetsSingleTuplePattern checks that patterns matched by fewer than two
// tuples yield no difference sets.
func TestDiffSetsSingleTuplePattern(t *testing.T) {
	r := fixture.Cust()
	str, _ := r.Schema().Index("STR")
	attrs, tp := pattern(t, r, "AC", "212")
	for name, comp := range map[string]Computer{"naive": NewNaive(r), "closed": NewClosed(r)} {
		if got := comp.MinimalDiffSets(attrs, tp, str); len(got) != 0 {
			t.Errorf("%s: single-tuple pattern should have no difference sets, got %v", name, got)
		}
	}
}

// TestDiffSetsSemantics verifies, by brute force, the defining property of
// D^m_A(r_tp): a set Y covers it iff the variable CFD ([X,Y] -> A, (tp,_..._||_))
// holds on r (Lemma 4.2 of the paper).
func TestDiffSetsSemantics(t *testing.T) {
	r := fixture.CustNoNM()
	all := r.Schema().All()
	comp := NewClosed(r)
	// Pattern (CC=01); RHS STR.
	attrs, tp := pattern(t, r, "CC", "01")
	str, _ := r.Schema().Index("STR")
	diffs := comp.MinimalDiffSets(attrs, tp, str)
	rest := all.Diff(attrs).Remove(str)
	rest.Subsets(func(Y core.AttrSet) bool {
		cfd := core.CFD{LHS: attrs.Union(Y), RHS: str, Tp: tp.Clone()}
		holds := core.Satisfies(r, cfd)
		covers := Covers(Y, diffs)
		if holds != covers {
			t.Errorf("Y=%v: Satisfies=%v but Covers=%v", Y, holds, covers)
		}
		return true
	})
}
