package itemset

import (
	"context"
	"sort"

	"repro/internal/core"
)

// Mining holds the result of mining k-frequent free and closed item sets over
// a relation: the free sets in ascending size order, the closed sets, and the
// closed→free association (§3.2). It also indexes free sets by canonical key
// so that algorithms can test whether an arbitrary item set is free.
type Mining struct {
	Relation *core.Relation
	K        int
	Free     []*FreeSet
	Closed   []*ClosedSet

	freeByKey   map[string]*FreeSet
	closedByKey map[string]*ClosedSet
}

// Mine computes all k-frequent free item sets of r, their closures, and the
// resulting k-frequent closed item sets, using a levelwise generator search:
// free-ness and k-frequency are both anti-monotone, so level ℓ+1 candidates
// are joins of level-ℓ free sets all of whose immediate subsets are free.
//
// The empty item set (support = |r|) is always included as a free set; its
// closure collects the attributes that are constant across the whole relation.
func Mine(r *core.Relation, k int) *Mining {
	m, err := MineContext(context.Background(), r, k)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return m
}

// MineContext is Mine with a cancellation context, observed once per free item
// set during both the levelwise search and the closure computation — item-set
// mining dominates CFDMiner and FastCFD runs, so cancellation must reach
// inside it. A cancelled run returns (nil, ctx.Err()).
func MineContext(ctx context.Context, r *core.Relation, k int) (*Mining, error) {
	if k < 1 {
		k = 1
	}
	m := &Mining{
		Relation:    r,
		K:           k,
		freeByKey:   make(map[string]*FreeSet),
		closedByKey: make(map[string]*ClosedSet),
	}
	n := r.Size()
	arity := r.Arity()

	allTids := make([]int32, n)
	for t := range allTids {
		allTids[t] = int32(t)
	}
	empty := &FreeSet{ItemSet: EmptyItemSet(arity), Tids: allTids}
	m.addFree(empty)

	if n < k {
		if err := m.finish(ctx); err != nil {
			return nil, err
		}
		return m, nil
	}

	// Level 1: single items with support >= k that are free, i.e. whose support
	// is strictly below |r| (an item held by every tuple belongs to clo(∅)).
	tidlists := itemTidlists(r)
	var level []*FreeSet
	for a := 0; a < arity; a++ {
		values := make([]int32, 0, len(tidlists[a]))
		for v := range tidlists[a] {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, v := range values {
			tids := tidlists[a][v]
			if len(tids) < k || len(tids) == n {
				continue
			}
			fs := &FreeSet{ItemSet: EmptyItemSet(arity).With(Item{Attr: a, Value: v}), Tids: tids}
			level = append(level, fs)
			m.addFree(fs)
		}
	}

	// Levels 2..arity: extend each level-ℓ free set with every item that
	// co-occurs in its tid list (occurrence deliver). Every size-(ℓ+1) free set
	// has free immediate subsets, so it is reachable this way; the candidate is
	// kept iff all its immediate subsets are free and have strictly larger
	// support. This avoids the quadratic pairwise join of a classical Apriori
	// generator search, which dominates when the threshold is as low as k = 2.
	for len(level) > 0 {
		var next []*FreeSet
		seen := make(map[string]bool)
		for _, fs := range level {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for a := 0; a < arity; a++ {
				if fs.Attrs.Has(a) {
					continue
				}
				col := r.Column(a)
				buckets := make(map[int32][]int32)
				for _, t := range fs.Tids {
					buckets[col[t]] = append(buckets[col[t]], t)
				}
				for v, tids := range buckets {
					if len(tids) < k || len(tids) == len(fs.Tids) {
						// Infrequent, or the item belongs to clo(fs): not free.
						continue
					}
					cand := fs.ItemSet.With(Item{Attr: a, Value: v})
					key := cand.Key()
					if seen[key] {
						continue
					}
					seen[key] = true
					free := true
					cand.Attrs.ForEach(func(attr int) {
						if !free {
							return
						}
						sub, ok := m.freeByKey[cand.Without(attr).Key()]
						if !ok || len(sub.Tids) <= len(tids) {
							free = false
						}
					})
					if !free {
						continue
					}
					nf := &FreeSet{ItemSet: cand, Tids: tids}
					next = append(next, nf)
					m.addFree(nf)
				}
			}
		}
		level = next
	}

	if err := m.finish(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// addFree registers a free set, ignoring duplicates produced by the join.
func (m *Mining) addFree(fs *FreeSet) {
	key := fs.Key()
	if _, dup := m.freeByKey[key]; dup {
		return
	}
	m.freeByKey[key] = fs
	m.Free = append(m.Free, fs)
}

// finish computes closures of all free sets, groups them into closed sets, and
// orders the result deterministically (free sets ascending by size, then key).
func (m *Mining) finish(ctx context.Context) error {
	r := m.Relation
	for _, fs := range m.Free {
		if err := ctx.Err(); err != nil {
			return err
		}
		closure := m.closureOf(fs)
		key := closure.Key()
		cs, ok := m.closedByKey[key]
		if !ok {
			cs = &ClosedSet{ItemSet: closure, Tids: fs.Tids}
			m.closedByKey[key] = cs
			m.Closed = append(m.Closed, cs)
		}
		cs.Free = append(cs.Free, fs)
		fs.Closure = cs
	}
	sort.Slice(m.Free, func(i, j int) bool {
		if m.Free[i].Size() != m.Free[j].Size() {
			return m.Free[i].Size() < m.Free[j].Size()
		}
		return m.Free[i].Key() < m.Free[j].Key()
	})
	sort.Slice(m.Closed, func(i, j int) bool {
		if m.Closed[i].Size() != m.Closed[j].Size() {
			return m.Closed[i].Size() < m.Closed[j].Size()
		}
		return m.Closed[i].Key() < m.Closed[j].Key()
	})
	_ = r
	return nil
}

// closureOf computes clo(X, tp): the unique maximal item set with the same
// support, by collecting every attribute on which all supporting tuples agree.
func (m *Mining) closureOf(fs *FreeSet) ItemSet {
	r := m.Relation
	closure := ItemSet{Attrs: fs.Attrs, Tp: fs.Tp.Clone()}
	if len(fs.Tids) == 0 {
		return closure
	}
	for a := 0; a < r.Arity(); a++ {
		if closure.Attrs.Has(a) {
			continue
		}
		col := r.Column(a)
		v := col[fs.Tids[0]]
		same := true
		for _, t := range fs.Tids[1:] {
			if col[t] != v {
				same = false
				break
			}
		}
		if same {
			closure.Attrs = closure.Attrs.Add(a)
			closure.Tp[a] = v
		}
	}
	return closure
}

// LookupFree returns the free set equal to (attrs, tp), if it is k-frequent
// and free in the mined relation.
func (m *Mining) LookupFree(attrs core.AttrSet, tp core.Pattern) (*FreeSet, bool) {
	fs, ok := m.freeByKey[tp.Key(attrs)]
	return fs, ok
}

// IsFree reports whether (attrs, tp) is a k-frequent free item set.
func (m *Mining) IsFree(attrs core.AttrSet, tp core.Pattern) bool {
	_, ok := m.freeByKey[tp.Key(attrs)]
	return ok
}
