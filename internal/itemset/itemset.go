// Package itemset implements the item-set mining substrate of the paper
// (§3.1): k-frequent free and closed item sets over a relation, the closure
// map, and the closed→free (C2F) association that CFDMiner consumes, as well
// as a depth-first closed-item-set miner used by FastCFD to derive difference
// sets from 2-frequent closed sets (§5.5).
//
// An item is an (attribute, constant) pair; an item set (X, tp) pairs an
// attribute set X with a constant pattern tp over X. Because every tuple
// carries exactly one value per attribute, an item set can hold at most one
// item per attribute.
package itemset

import (
	"sort"

	"repro/internal/core"
)

// Item is a single (attribute, encoded value) pair.
type Item struct {
	Attr  int
	Value int32
}

// Less orders items by attribute index, then by value code.
func (i Item) Less(j Item) bool {
	if i.Attr != j.Attr {
		return i.Attr < j.Attr
	}
	return i.Value < j.Value
}

// ItemSet is a pair (X, tp): an attribute set and a constant pattern over it.
// The pattern is stored full-width; entries outside Attrs are Wildcard.
type ItemSet struct {
	Attrs core.AttrSet
	Tp    core.Pattern
}

// EmptyItemSet returns the empty item set for a schema of the given arity.
func EmptyItemSet(arity int) ItemSet {
	return ItemSet{Attrs: core.EmptyAttrSet, Tp: core.NewPattern(arity)}
}

// Size returns the number of items in the set.
func (s ItemSet) Size() int { return s.Attrs.Len() }

// Key returns a canonical map key for the item set.
func (s ItemSet) Key() string { return s.Tp.Key(s.Attrs) }

// Items returns the items of the set in (attribute, value) order.
func (s ItemSet) Items() []Item {
	out := make([]Item, 0, s.Attrs.Len())
	s.Attrs.ForEach(func(a int) {
		out = append(out, Item{Attr: a, Value: s.Tp[a]})
	})
	return out
}

// Has reports whether the set contains the given item.
func (s ItemSet) Has(it Item) bool {
	return s.Attrs.Has(it.Attr) && s.Tp[it.Attr] == it.Value
}

// ContainsAll reports whether every item of o is also in s, i.e. (o ⊑ s) in the
// paper's "more general than" order on item sets: o is more general than s.
func (s ItemSet) ContainsAll(o ItemSet) bool {
	if !o.Attrs.SubsetOf(s.Attrs) {
		return false
	}
	ok := true
	o.Attrs.ForEach(func(a int) {
		if s.Tp[a] != o.Tp[a] {
			ok = false
		}
	})
	return ok
}

// With returns a copy of the set extended with the given item. Extending with
// an item on an attribute already present overwrites that attribute's value.
func (s ItemSet) With(it Item) ItemSet {
	tp := s.Tp.Clone()
	tp[it.Attr] = it.Value
	return ItemSet{Attrs: s.Attrs.Add(it.Attr), Tp: tp}
}

// Without returns a copy of the set with the given attribute removed.
func (s ItemSet) Without(attr int) ItemSet {
	tp := s.Tp.Clone()
	tp[attr] = core.Wildcard
	return ItemSet{Attrs: s.Attrs.Remove(attr), Tp: tp}
}

// Project returns the restriction of the set to the attributes in keep.
func (s ItemSet) Project(keep core.AttrSet) ItemSet {
	attrs := s.Attrs.Intersect(keep)
	tp := core.NewPattern(len(s.Tp))
	attrs.ForEach(func(a int) { tp[a] = s.Tp[a] })
	return ItemSet{Attrs: attrs, Tp: tp}
}

// Format renders the item set using the relation's dictionaries.
func (s ItemSet) Format(r *core.Relation) string {
	return s.Tp.Format(r, s.Attrs)
}

// FreeSet is a k-frequent free item set together with its supporting tuples
// and a pointer to its closure.
type FreeSet struct {
	ItemSet
	Tids    []int32
	Closure *ClosedSet
}

// Support returns the number of supporting tuples.
func (f *FreeSet) Support() int { return len(f.Tids) }

// ClosedSet is a k-frequent closed item set together with its supporting
// tuples and the free item sets whose closure it is (the C2F map of §3.2).
type ClosedSet struct {
	ItemSet
	Tids []int32
	Free []*FreeSet
}

// Support returns the number of supporting tuples.
func (c *ClosedSet) Support() int { return len(c.Tids) }

// intersectTids returns the intersection of two ascending tid lists.
func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// itemTidlists returns, for each attribute, the map from value code to the
// ascending list of tuple ids holding that value.
func itemTidlists(r *core.Relation) []map[int32][]int32 {
	out := make([]map[int32][]int32, r.Arity())
	for a := 0; a < r.Arity(); a++ {
		m := make(map[int32][]int32, r.DomainSize(a))
		col := r.Column(a)
		for t, v := range col {
			m[v] = append(m[v], int32(t))
		}
		out[a] = m
	}
	return out
}

// sortItems sorts a slice of items in (attribute, value) order.
func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Less(items[j]) })
}
