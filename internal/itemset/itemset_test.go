package itemset

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

func item(t *testing.T, r *core.Relation, attr, value string) Item {
	t.Helper()
	a, ok := r.Schema().Index(attr)
	if !ok {
		t.Fatalf("unknown attribute %q", attr)
	}
	v, ok := r.Dict(a).Lookup(value)
	if !ok {
		t.Fatalf("value %q not in domain of %s", value, attr)
	}
	return Item{Attr: a, Value: v}
}

func set(t *testing.T, r *core.Relation, pairs ...string) ItemSet {
	t.Helper()
	s := EmptyItemSet(r.Arity())
	for i := 0; i+1 < len(pairs); i += 2 {
		s = s.With(item(t, r, pairs[i], pairs[i+1]))
	}
	return s
}

func TestItemSetBasics(t *testing.T) {
	r := fixture.Cust()
	s := set(t, r, "CC", "01", "AC", "908")
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Has(item(t, r, "CC", "01")) || s.Has(item(t, r, "CC", "44")) {
		t.Error("Has misbehaves")
	}
	sub := set(t, r, "CC", "01")
	if !s.ContainsAll(sub) {
		t.Error("ContainsAll should hold for a sub item set")
	}
	if s.ContainsAll(set(t, r, "CC", "44")) {
		t.Error("ContainsAll must compare values, not just attributes")
	}
	if sub.ContainsAll(s) {
		t.Error("a smaller set cannot contain a larger one")
	}
	without := s.Without(item(t, r, "CC", "01").Attr)
	if without.Size() != 1 || without.Has(item(t, r, "CC", "01")) {
		t.Error("Without failed")
	}
	proj := s.Project(core.SingleAttr(item(t, r, "AC", "908").Attr))
	if proj.Size() != 1 || !proj.Has(item(t, r, "AC", "908")) {
		t.Error("Project failed")
	}
	if s.Key() == sub.Key() {
		t.Error("distinct item sets must have distinct keys")
	}
	items := s.Items()
	if len(items) != 2 || !items[0].Less(items[1]) {
		t.Errorf("Items not ordered: %v", items)
	}
}

// TestMineCustExample verifies the free/closed sets of Fig. 2 of the paper on
// the cust relation with k = 3.
func TestMineCustExample(t *testing.T) {
	r := fixture.Cust()
	m := Mine(r, 3)

	// The empty set is free with support |r| = 8 and an empty closure (no
	// attribute is constant across r0).
	empty, ok := m.LookupFree(core.EmptyAttrSet, core.NewPattern(r.Arity()))
	if !ok {
		t.Fatal("empty free set missing")
	}
	if empty.Support() != 8 {
		t.Errorf("support of empty set = %d, want 8", empty.Support())
	}
	if empty.Closure.Size() != 0 {
		t.Errorf("closure of empty set = %v, want empty", empty.Closure.Format(r))
	}

	// Fig. 2: ([CC,AC,CT,ZIP],(01,908,MH,07974)) is a closed set with support 3
	// whose free sets are ([CC,AC],(01,908)) and ([ZIP],(07974)).
	bigClosed := set(t, r, "CC", "01", "AC", "908", "CT", "MH", "ZIP", "07974")
	freeA := set(t, r, "CC", "01", "AC", "908")
	freeB := set(t, r, "ZIP", "07974")
	fsA, okA := m.LookupFree(freeA.Attrs, freeA.Tp)
	fsB, okB := m.LookupFree(freeB.Attrs, freeB.Tp)
	if !okA || !okB {
		t.Fatalf("expected free sets missing: CC,AC=%v ZIP=%v", okA, okB)
	}
	if fsA.Support() != 3 || fsB.Support() != 3 {
		t.Errorf("supports = %d, %d, want 3, 3", fsA.Support(), fsB.Support())
	}
	if fsA.Closure != fsB.Closure {
		t.Error("the two free sets must share a closure")
	}
	if fsA.Closure.Key() != bigClosed.Key() {
		t.Errorf("closure = %s, want %s", fsA.Closure.Format(r), bigClosed.Format(r))
	}
	if fsA.Closure.Support() != 3 {
		t.Errorf("closure support = %d, want 3", fsA.Closure.Support())
	}

	// Fig. 2 / Example 7: clo((AC,908)) = ([AC,CT],(908,MH)) with support 4,
	// shared with the free set (CT, MH).
	ac908 := set(t, r, "AC", "908")
	ctMH := set(t, r, "CT", "MH")
	fsAC, ok := m.LookupFree(ac908.Attrs, ac908.Tp)
	if !ok {
		t.Fatal("(AC,908) should be free")
	}
	if fsAC.Support() != 4 {
		t.Errorf("support of (AC,908) = %d, want 4", fsAC.Support())
	}
	wantClosure := set(t, r, "AC", "908", "CT", "MH")
	if fsAC.Closure.Key() != wantClosure.Key() {
		t.Errorf("clo(AC,908) = %s, want %s", fsAC.Closure.Format(r), wantClosure.Format(r))
	}
	fsCT, ok := m.LookupFree(ctMH.Attrs, ctMH.Tp)
	if !ok || fsCT.Closure != fsAC.Closure {
		t.Error("(CT,MH) should be free and share clo with (AC,908)")
	}

	// ([AC,CT],(908,MH)) itself is not free: its subset (AC,908) has the same support.
	if m.IsFree(wantClosure.Attrs, wantClosure.Tp) {
		t.Error("([AC,CT],(908,MH)) must not be reported as free")
	}
}

// TestMineInvariants checks structural invariants of the mining result on the
// cust relation for several support thresholds.
func TestMineInvariants(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{1, 2, 3, 4, 8} {
		m := Mine(r, k)
		if len(m.Free) == 0 {
			t.Fatalf("k=%d: no free sets", k)
		}
		for _, fs := range m.Free {
			if fs.Size() > 0 && fs.Support() < k {
				t.Errorf("k=%d: free set %s has support %d < k", k, fs.Format(r), fs.Support())
			}
			if got := r.CountMatching(fs.Attrs, fs.Tp); got != fs.Support() {
				t.Errorf("k=%d: free set %s support %d, recount %d", k, fs.Format(r), fs.Support(), got)
			}
			if fs.Closure == nil {
				t.Fatalf("k=%d: free set %s has no closure", k, fs.Format(r))
			}
			if !fs.Closure.ContainsAll(fs.ItemSet) {
				t.Errorf("k=%d: closure %s does not contain free set %s", k, fs.Closure.Format(r), fs.Format(r))
			}
			if fs.Closure.Support() != fs.Support() {
				t.Errorf("k=%d: closure support %d != free support %d", k, fs.Closure.Support(), fs.Support())
			}
			// Free-ness: no immediate subset has the same support.
			fs.Attrs.ForEach(func(a int) {
				sub := fs.ItemSet.Without(a)
				if r.CountMatching(sub.Attrs, sub.Tp) == fs.Support() {
					t.Errorf("k=%d: %s is not free (dropping %s keeps support)", k, fs.Format(r), r.Schema().Name(a))
				}
			})
		}
		for _, cs := range m.Closed {
			if len(cs.Free) == 0 {
				t.Errorf("k=%d: closed set %s has no free generators", k, cs.Format(r))
			}
			// Closed-ness: no attribute outside the set is constant on its support.
			for a := 0; a < r.Arity(); a++ {
				if cs.Attrs.Has(a) {
					continue
				}
				col := r.Column(a)
				same := true
				for _, tid := range cs.Tids[1:] {
					if col[tid] != col[cs.Tids[0]] {
						same = false
						break
					}
				}
				if same && len(cs.Tids) > 0 {
					t.Errorf("k=%d: %s is not closed (attribute %s is constant on its support)", k, cs.Format(r), r.Schema().Name(a))
				}
			}
		}
		// Free sets are sorted in ascending size order.
		for i := 1; i < len(m.Free); i++ {
			if m.Free[i-1].Size() > m.Free[i].Size() {
				t.Errorf("k=%d: free sets not sorted by size", k)
				break
			}
		}
	}
}

// TestMineMatchesMineClosed cross-validates the levelwise generator miner
// against the depth-first closed miner: the sets of k-frequent closed item
// sets they produce must be identical.
func TestMineMatchesMineClosed(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust":    fixture.Cust(),
		"random1": fixture.Random(1, 60, []int{3, 4, 2, 5}),
		"random2": fixture.Random(7, 120, []int{2, 2, 3, 3, 4}),
		"corr":    fixture.RandomCorrelated(3, 100, 5, 6),
	}
	for name, r := range rels {
		for _, k := range []int{1, 2, 3, 5} {
			m := Mine(r, k)
			closed := MineClosed(r, k)
			a := make(map[string]int)
			for _, cs := range m.Closed {
				a[cs.Key()] = cs.Support()
			}
			b := make(map[string]int)
			for _, cp := range closed {
				if _, dup := b[cp.Key()]; dup {
					t.Errorf("%s k=%d: MineClosed produced duplicate %s", name, k, cp.Tp.Format(r, cp.Attrs))
				}
				b[cp.Key()] = cp.Count
			}
			if len(a) != len(b) {
				t.Errorf("%s k=%d: Mine found %d closed sets, MineClosed %d", name, k, len(a), len(b))
			}
			for key, sup := range a {
				if b[key] != sup {
					t.Errorf("%s k=%d: closed set %q support mismatch: %d vs %d", name, k, key, sup, b[key])
				}
			}
		}
	}
}

// TestMineClosedInvariants checks that every pattern reported by MineClosed is
// genuinely closed and has the reported support.
func TestMineClosedInvariants(t *testing.T) {
	r := fixture.Cust()
	for _, minsup := range []int{1, 2, 3} {
		for _, cp := range MineClosed(r, minsup) {
			if cp.Count < minsup {
				t.Errorf("minsup=%d: %s has count %d", minsup, cp.Tp.Format(r, cp.Attrs), cp.Count)
			}
			if got := r.CountMatching(cp.Attrs, cp.Tp); got != cp.Count {
				t.Errorf("minsup=%d: %s count %d, recount %d", minsup, cp.Tp.Format(r, cp.Attrs), cp.Count, got)
			}
			tids := r.MatchingTuples(cp.Attrs, cp.Tp)
			for a := 0; a < r.Arity(); a++ {
				if cp.Attrs.Has(a) || len(tids) == 0 {
					continue
				}
				col := r.Column(a)
				same := true
				for _, tid := range tids[1:] {
					if col[tid] != col[tids[0]] {
						same = false
						break
					}
				}
				if same {
					t.Errorf("minsup=%d: %s is not closed w.r.t. %s", minsup, cp.Tp.Format(r, cp.Attrs), r.Schema().Name(a))
				}
			}
		}
	}
}

// TestMineClosedContainsPairAgreeSets verifies the property FastCFD relies on:
// the agree set of every pair of tuples appears among the 2-frequent closed sets.
func TestMineClosedContainsPairAgreeSets(t *testing.T) {
	r := fixture.Cust()
	closed := MineClosed(r, 2)
	index := make(map[string]bool, len(closed))
	for _, cp := range closed {
		index[cp.Key()] = true
	}
	for t1 := 0; t1 < r.Size(); t1++ {
		for t2 := t1 + 1; t2 < r.Size(); t2++ {
			agree := EmptyItemSet(r.Arity())
			for a := 0; a < r.Arity(); a++ {
				if r.Value(t1, a) == r.Value(t2, a) {
					agree = agree.With(Item{Attr: a, Value: r.Value(t1, a)})
				}
			}
			if !index[agree.Key()] {
				t.Errorf("agree set of t%d,t%d (%s) missing from 2-frequent closed sets", t1+1, t2+1, agree.Format(r))
			}
		}
	}
}

func TestMineSmallerThanK(t *testing.T) {
	r := fixture.Cust()
	m := Mine(r, 100)
	// Only the empty free set survives when k exceeds |r|.
	if len(m.Free) != 1 || m.Free[0].Size() != 0 {
		t.Errorf("expected only the empty free set, got %d free sets", len(m.Free))
	}
	if got := MineClosed(r, 100); got != nil {
		t.Errorf("MineClosed with minsup > |r| should return nil, got %d", len(got))
	}
}
