package itemset

import (
	"sort"

	"repro/internal/core"
)

// ClosedPattern is a closed item set found by MineClosed: its attributes, the
// constant pattern over them, and the number of supporting tuples.
type ClosedPattern struct {
	Attrs core.AttrSet
	Tp    core.Pattern
	Count int
}

// Key returns the canonical key of the closed pattern's item set.
func (c ClosedPattern) Key() string { return c.Tp.Key(c.Attrs) }

// ContainsItems reports whether the closed pattern contains every item of
// (attrs, tp), i.e. it agrees with tp on all of attrs.
func (c ClosedPattern) ContainsItems(attrs core.AttrSet, tp core.Pattern) bool {
	if !attrs.SubsetOf(c.Attrs) {
		return false
	}
	ok := true
	attrs.ForEach(func(a int) {
		if c.Tp[a] != tp[a] {
			ok = false
		}
	})
	return ok
}

// MineClosed enumerates every closed item set of r with support at least
// minsup, using an LCM-style depth-first search with prefix-preserving closure
// extension. It is the substrate of FastCFD's difference-set optimisation
// (§5.5): the agree set of any pair of tuples is a closed item set with
// support ≥ 2, so the 2-frequent closed item sets determine every minimal
// difference set.
func MineClosed(r *core.Relation, minsup int) []ClosedPattern {
	if minsup < 1 {
		minsup = 1
	}
	n := r.Size()
	arity := r.Arity()
	if n < minsup || n == 0 {
		return nil
	}

	// Global item order: attributes ascending, values ascending within an
	// attribute. Only globally frequent items get an index; any value appearing
	// in the closure of a ≥ minsup tid set is necessarily globally frequent.
	index := make([]map[int32]int, arity)
	next := 0
	for a := 0; a < arity; a++ {
		counts := make(map[int32]int)
		for _, v := range r.Column(a) {
			counts[v]++
		}
		values := make([]int32, 0, len(counts))
		for v, c := range counts {
			if c >= minsup {
				values = append(values, v)
			}
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		index[a] = make(map[int32]int, len(values))
		for _, v := range values {
			index[a][v] = next
			next++
		}
	}

	closure := func(tids []int32) (core.AttrSet, core.Pattern) {
		attrs := core.EmptyAttrSet
		tp := core.NewPattern(arity)
		for a := 0; a < arity; a++ {
			col := r.Column(a)
			v := col[tids[0]]
			same := true
			for _, t := range tids[1:] {
				if col[t] != v {
					same = false
					break
				}
			}
			if same {
				attrs = attrs.Add(a)
				tp[a] = v
			}
		}
		return attrs, tp
	}

	var out []ClosedPattern

	var expand func(cAttrs core.AttrSet, cTp core.Pattern, tids []int32, coreIdx int)
	expand = func(cAttrs core.AttrSet, cTp core.Pattern, tids []int32, coreIdx int) {
		type candidate struct {
			idx   int
			attr  int
			value int32
			tids  []int32
		}
		var cands []candidate
		for a := 0; a < arity; a++ {
			if cAttrs.Has(a) {
				continue
			}
			col := r.Column(a)
			buckets := make(map[int32][]int32)
			for _, t := range tids {
				buckets[col[t]] = append(buckets[col[t]], t)
			}
			for v, b := range buckets {
				if len(b) < minsup {
					continue
				}
				idx, ok := index[a][v]
				if !ok || idx <= coreIdx {
					continue
				}
				cands = append(cands, candidate{idx: idx, attr: a, value: v, tids: b})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].idx < cands[j].idx })
		for _, cand := range cands {
			newAttrs, newTp := closure(cand.tids)
			// Prefix-preserving check: the new closure must not introduce an item
			// ordered before the extension item that is not already in the parent.
			ok := true
			newAttrs.ForEach(func(b int) {
				if !ok || cAttrs.Has(b) {
					return
				}
				if index[b][newTp[b]] < cand.idx {
					ok = false
				}
			})
			if !ok {
				continue
			}
			out = append(out, ClosedPattern{Attrs: newAttrs, Tp: newTp, Count: len(cand.tids)})
			expand(newAttrs, newTp, cand.tids, cand.idx)
		}
	}

	allTids := make([]int32, n)
	for t := range allTids {
		allTids[t] = int32(t)
	}
	rootAttrs, rootTp := closure(allTids)
	out = append(out, ClosedPattern{Attrs: rootAttrs, Tp: rootTp, Count: n})
	expand(rootAttrs, rootTp, allTids, -1)
	return out
}
