package partition

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

func attr(t *testing.T, r *core.Relation, name string) int {
	t.Helper()
	a, ok := r.Schema().Index(name)
	if !ok {
		t.Fatalf("unknown attribute %q", name)
	}
	return a
}

func code(t *testing.T, r *core.Relation, name, value string) int32 {
	t.Helper()
	v, ok := r.Dict(attr(t, r, name)).Lookup(value)
	if !ok {
		t.Fatalf("value %q not in %s", value, name)
	}
	return v
}

func TestFromAttribute(t *testing.T) {
	r := fixture.Cust()
	p := FromAttribute(r, attr(t, r, "CC"))
	// CC splits r0 into {t1..t4,t8} and {t5,t6,t7}: 2 classes, both kept.
	if len(p.Classes) != 2 {
		t.Fatalf("CC partition has %d stripped classes, want 2", len(p.Classes))
	}
	if p.Covered != 8 || p.NumClasses() != 2 || p.SumSizes() != 8 {
		t.Errorf("Covered=%d NumClasses=%d SumSizes=%d", p.Covered, p.NumClasses(), p.SumSizes())
	}

	p = FromAttribute(r, attr(t, r, "STR"))
	// STR values: Tree Ave.(2), 5th Ave(1), Elm Str.(1), High St.(2), Port PI(1), 3rd Str.(1).
	if len(p.Classes) != 2 || p.NumClasses() != 6 {
		t.Errorf("STR partition: stripped=%d total=%d, want 2/6", len(p.Classes), p.NumClasses())
	}
}

func TestFromItem(t *testing.T) {
	r := fixture.Cust()
	p := FromItem(r, attr(t, r, "AC"), code(t, r, "AC", "908"))
	if p.Covered != 4 || len(p.Classes) != 1 || len(p.Classes[0]) != 4 {
		t.Errorf("AC=908 partition wrong: covered=%d classes=%v", p.Covered, p.Classes)
	}
	p = FromItem(r, attr(t, r, "AC"), code(t, r, "AC", "212"))
	if p.Covered != 1 || len(p.Classes) != 0 || p.NumClasses() != 1 {
		t.Errorf("AC=212 partition wrong: covered=%d classes=%d", p.Covered, len(p.Classes))
	}
}

func TestFromSetMatchesProduct(t *testing.T) {
	r := fixture.Cust()
	cc, ac := attr(t, r, "CC"), attr(t, r, "AC")
	pa := FromAttribute(r, cc)
	pb := FromAttribute(r, ac)
	prod := Product(pa, pb, r.Size())
	prod.Covered = r.Size()
	direct := FromSet(r, core.NewAttrSet(cc, ac), core.NewPattern(r.Arity()))
	if prod.NumClasses() != direct.NumClasses() {
		t.Errorf("product classes=%d direct=%d", prod.NumClasses(), direct.NumClasses())
	}
	if prod.SumSizes() != direct.SumSizes() {
		t.Errorf("product sizes=%d direct=%d", prod.SumSizes(), direct.SumSizes())
	}
}

func TestProductWithConstantPattern(t *testing.T) {
	r := fixture.Cust()
	cc, zip := attr(t, r, "CC"), attr(t, r, "ZIP")
	// ([CC,ZIP], (01, _)) : product of (CC=01) and (ZIP, _).
	pa := FromItem(r, cc, code(t, r, "CC", "01"))
	pb := FromAttribute(r, zip)
	prod := Product(pa, pb, r.Size())
	tp := core.NewPattern(r.Arity())
	tp[cc] = code(t, r, "CC", "01")
	direct := FromSet(r, core.NewAttrSet(cc, zip), tp)
	prod.Covered = direct.Covered
	if prod.NumClasses() != direct.NumClasses() || prod.SumSizes() != direct.SumSizes() {
		t.Errorf("product=%d/%d direct=%d/%d classes/sizes",
			prod.NumClasses(), prod.SumSizes(), direct.NumClasses(), direct.SumSizes())
	}
	// CC=01 tuples grouped by ZIP: {t1,t2,t4} (07974) and {t3,t8} (01202).
	if len(direct.Classes) != 2 {
		t.Errorf("expected 2 stripped classes, got %d", len(direct.Classes))
	}
}

func TestProductEmpty(t *testing.T) {
	r := fixture.Cust()
	empty := &Partition{Covered: 0}
	other := FromAttribute(r, attr(t, r, "CC"))
	prod := Product(empty, other, r.Size())
	if len(prod.Classes) != 0 {
		t.Error("product with empty partition must have no classes")
	}
}

func TestRefinesRHSVariable(t *testing.T) {
	r := fixture.Cust()
	cc, ac, ct := attr(t, r, "CC"), attr(t, r, "AC"), attr(t, r, "CT")
	wild := core.NewPattern(r.Arity())
	// f1: [CC,AC] -> CT holds, so refining [CC,AC] by CT splits nothing.
	parent := FromSet(r, core.NewAttrSet(cc, ac), wild)
	elem := FromSet(r, core.NewAttrSet(cc, ac, ct), wild)
	if !RefinesRHSVariable(parent, elem) {
		t.Error("f1 should be reported valid")
	}
	// [CC,ZIP] -> STR does not hold.
	zip, str := attr(t, r, "ZIP"), attr(t, r, "STR")
	parent = FromSet(r, core.NewAttrSet(cc, zip), wild)
	elem = FromSet(r, core.NewAttrSet(cc, zip, str), wild)
	if RefinesRHSVariable(parent, elem) {
		t.Error("[CC,ZIP] -> STR should be reported invalid")
	}
}

func TestRefinesRHSConstant(t *testing.T) {
	r := fixture.Cust()
	ac, ct := attr(t, r, "AC"), attr(t, r, "CT")
	// (AC -> CT, (908 || MH)) holds.
	tpParent := core.NewPattern(r.Arity())
	tpParent[ac] = code(t, r, "AC", "908")
	parent := FromSet(r, core.NewAttrSet(ac), tpParent)
	tpElem := tpParent.Clone()
	tpElem[ct] = code(t, r, "CT", "MH")
	elem := FromSet(r, core.NewAttrSet(ac, ct), tpElem)
	if !RefinesRHSConstant(parent, elem) {
		t.Error("(AC -> CT, (908||MH)) should be reported valid")
	}
	// (AC -> CT, (131 || EDI)) is violated by t8.
	tpParent = core.NewPattern(r.Arity())
	tpParent[ac] = code(t, r, "AC", "131")
	parent = FromSet(r, core.NewAttrSet(ac), tpParent)
	tpElem = tpParent.Clone()
	tpElem[ct] = code(t, r, "CT", "EDI")
	elem = FromSet(r, core.NewAttrSet(ac, ct), tpElem)
	if RefinesRHSConstant(parent, elem) {
		t.Error("(AC -> CT, (131||EDI)) should be reported invalid")
	}
}

// TestProductAgainstDirect cross-checks the incremental product against the
// direct partition construction on random relations and random attribute pairs.
func TestProductAgainstDirect(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := fixture.Random(seed, 200, []int{3, 4, 2, 6})
		wild := core.NewPattern(r.Arity())
		for a := 0; a < r.Arity(); a++ {
			for b := a + 1; b < r.Arity(); b++ {
				prod := Product(FromAttribute(r, a), FromAttribute(r, b), r.Size())
				prod.Covered = r.Size()
				direct := FromSet(r, core.NewAttrSet(a, b), wild)
				if prod.NumClasses() != direct.NumClasses() || prod.SumSizes() != direct.SumSizes() {
					t.Errorf("seed=%d attrs=%d,%d: product %d/%d direct %d/%d",
						seed, a, b, prod.NumClasses(), prod.SumSizes(), direct.NumClasses(), direct.SumSizes())
				}
			}
		}
	}
}
