// Package partition implements the equivalence-class partitions that underpin
// the levelwise algorithms TANE and CTANE (§4.4 of the paper): tuples matching
// a pattern are grouped by their values on an attribute set, partitions of
// larger attribute sets are obtained as products of smaller ones, and the
// validity of candidate (C)FDs reduces to comparing class counts or covered
// tuple counts between a lattice element and its parent.
//
// Partitions are stored in stripped form: singleton equivalence classes are
// dropped, and the total number of matching tuples (Covered) is kept alongside
// so that the full class count can still be derived.
package partition

import (
	"sort"

	"repro/internal/core"
)

// Partition is a stripped partition: the equivalence classes of size at least
// two (each an ascending tuple-id list), plus the total number of tuples that
// match the underlying pattern (including tuples in singleton classes).
type Partition struct {
	Classes [][]int32
	Covered int
}

// SumSizes returns the number of tuples appearing in non-singleton classes.
func (p *Partition) SumSizes() int {
	s := 0
	for _, c := range p.Classes {
		s += len(c)
	}
	return s
}

// NumClasses returns the total number of equivalence classes, counting the
// singleton classes that stripping removed.
func (p *Partition) NumClasses() int {
	return len(p.Classes) + (p.Covered - p.SumSizes())
}

// FromAttribute returns the partition of the lattice element (A, "_"): all
// tuples grouped by their value of attribute attr.
func FromAttribute(r *core.Relation, attr int) *Partition {
	buckets := make(map[int32][]int32, r.DomainSize(attr))
	col := r.Column(attr)
	for t, v := range col {
		buckets[v] = append(buckets[v], int32(t))
	}
	p := &Partition{Covered: r.Size()}
	keys := make([]int32, 0, len(buckets))
	for v := range buckets {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		if len(buckets[v]) >= 2 {
			p.Classes = append(p.Classes, buckets[v])
		}
	}
	return p
}

// FromItem returns the partition of the lattice element (A, value): a single
// equivalence class holding the tuples with that value (stripped if singleton).
func FromItem(r *core.Relation, attr int, value int32) *Partition {
	var class []int32
	col := r.Column(attr)
	for t, v := range col {
		if v == value {
			class = append(class, int32(t))
		}
	}
	p := &Partition{Covered: len(class)}
	if len(class) >= 2 {
		p.Classes = append(p.Classes, class)
	}
	return p
}

// FromSet builds the partition of an arbitrary lattice element (X, tp) by a
// direct scan: tuples matching the constants of tp on X, grouped by their X
// values. It is used by tests and as a reference implementation; the levelwise
// algorithms build partitions incrementally with Product instead.
func FromSet(r *core.Relation, X core.AttrSet, tp core.Pattern) *Partition {
	attrs := X.Attrs()
	groups := make(map[string][]int32)
	covered := 0
	var key []byte
	for t := 0; t < r.Size(); t++ {
		if !tp.MatchesTuple(r, t, X) {
			continue
		}
		covered++
		key = key[:0]
		for _, a := range attrs {
			v := r.Value(t, a)
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		groups[string(key)] = append(groups[string(key)], int32(t))
	}
	p := &Partition{Covered: covered}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(groups[k]) >= 2 {
			p.Classes = append(p.Classes, groups[k])
		}
	}
	return p
}

// Product computes the stripped partition of the union of two lattice elements
// from their stripped partitions, using TANE's linear-time product: a pair of
// tuples shares a class in the product iff it shares a class in both inputs.
// Covered cannot be derived from stripped inputs and is set to -1; the caller
// must fill it in (CTANE derives it from the support of the element's constant
// pattern, TANE always uses the relation size).
func Product(a, b *Partition, n int) *Partition {
	return ProductWith(a, b, make([]int32, n))
}

// ProductWith is Product with a caller-supplied scratch buffer of length at
// least the relation size, holding zeroes on entry. The buffer is restored to
// zeroes before returning, so callers can reuse it across many products
// without reallocating (the levelwise algorithms generate one product per
// lattice element).
func ProductWith(a, b *Partition, scratch []int32) *Partition {
	out := &Partition{Covered: -1}
	if len(a.Classes) == 0 || len(b.Classes) == 0 {
		return out
	}
	// scratch[t] = 1-based index of t's class in a, 0 if t is stripped from a.
	for i, cls := range a.Classes {
		for _, t := range cls {
			scratch[t] = int32(i + 1)
		}
	}
	buckets := make(map[int32][]int32)
	for _, cls := range b.Classes {
		for _, t := range cls {
			if id := scratch[t]; id != 0 {
				buckets[id] = append(buckets[id], t)
			}
		}
		for _, t := range cls {
			id := scratch[t]
			if id == 0 {
				continue
			}
			grp, ok := buckets[id]
			if !ok {
				continue
			}
			if len(grp) >= 2 {
				cp := make([]int32, len(grp))
				copy(cp, grp)
				out.Classes = append(out.Classes, cp)
			}
			delete(buckets, id)
		}
	}
	for _, cls := range a.Classes {
		for _, t := range cls {
			scratch[t] = 0
		}
	}
	return out
}

// RefinesRHSVariable reports whether the candidate variable-RHS CFD
// (X\{A} → A, (sp[X\{A}] ‖ _)) holds, given parent = partition of
// (X\{A}, sp[X\{A}]) and elem = partition of (X, sp) with sp[A] = "_":
// the dependency holds iff refining the parent classes by A splits nothing,
// i.e. both partitions have the same number of classes.
func RefinesRHSVariable(parent, elem *Partition) bool {
	return parent.NumClasses() == elem.NumClasses()
}

// RefinesRHSConstant reports whether the candidate constant-RHS CFD
// (X\{A} → A, (sp[X\{A}] ‖ c)) holds, given parent = partition of
// (X\{A}, sp[X\{A}]) and elem = partition of (X, sp) with sp[A] = c:
// the dependency holds iff every tuple matching the parent pattern also has
// A = c, i.e. both partitions cover the same number of tuples.
func RefinesRHSConstant(parent, elem *Partition) bool {
	return parent.Covered == elem.Covered
}
