package fastfd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diffset"
	"repro/internal/fixture"
	"repro/internal/tane"
)

func sameCFDs(a, b []core.CFD) bool {
	if len(a) != len(b) {
		return false
	}
	core.SortCFDs(a)
	core.SortCFDs(b)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// TestMineMatchesTANE cross-validates FastFD against TANE (which is itself
// validated against brute force) on several relations, with both difference-set
// backends.
func TestMineMatchesTANE(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust":    fixture.Cust(),
		"random1": fixture.Random(5, 60, []int{2, 3, 4, 2}),
		"random2": fixture.Random(9, 90, []int{3, 3, 2, 2, 4}),
		"corr":    fixture.RandomCorrelated(2, 80, 5, 4),
	}
	for name, r := range rels {
		want := tane.Mine(r)
		gotClosed := Mine(r, diffset.NewClosed(r))
		gotNaive := Mine(r, diffset.NewNaive(r))
		if !sameCFDs(gotClosed, want) {
			t.Errorf("%s: FastFD(closed) found %d FDs, TANE %d", name, len(gotClosed), len(want))
		}
		if !sameCFDs(gotNaive, want) {
			t.Errorf("%s: FastFD(naive) found %d FDs, TANE %d", name, len(gotNaive), len(want))
		}
	}
}

func TestMineDefaultsToClosedBackend(t *testing.T) {
	r := fixture.Cust()
	if !sameCFDs(Mine(r, nil), Mine(r, diffset.NewClosed(r))) {
		t.Error("nil backend should behave like the closed backend")
	}
}

func TestMineConstantAttribute(t *testing.T) {
	r := core.NewRelation(core.MustSchema("A", "B"))
	for _, row := range [][]string{{"1", "x"}, {"2", "x"}, {"1", "x"}} {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	got := Mine(r, nil)
	foundEmptyLHS := false
	for _, c := range got {
		if c.LHS == core.EmptyAttrSet && c.RHS == 1 {
			foundEmptyLHS = true
		}
	}
	if !foundEmptyLHS {
		t.Error("constant attribute should yield the FD with an empty LHS")
	}
}

func TestMinimalCovers(t *testing.T) {
	// Difference sets {{0},{1,2}} over candidates {0,1,2}: minimal covers are
	// {0,1} and {0,2}.
	diffs := []core.AttrSet{core.NewAttrSet(0), core.NewAttrSet(1, 2)}
	covers := MinimalCovers(diffs, []int{0, 1, 2})
	if len(covers) != 2 {
		t.Fatalf("got %d covers: %v", len(covers), covers)
	}
	want := map[core.AttrSet]bool{core.NewAttrSet(0, 1): true, core.NewAttrSet(0, 2): true}
	for _, c := range covers {
		if !want[c] {
			t.Errorf("unexpected cover %v", c)
		}
	}
	// A single difference set: each of its attributes alone is a minimal cover.
	covers = MinimalCovers([]core.AttrSet{core.NewAttrSet(1, 3)}, []int{0, 1, 2, 3})
	if len(covers) != 2 {
		t.Errorf("single diffset: got %v", covers)
	}
	// Unsatisfiable: a difference set disjoint from the candidates.
	covers = MinimalCovers([]core.AttrSet{core.NewAttrSet(5)}, []int{0, 1})
	if len(covers) != 0 {
		t.Errorf("expected no covers, got %v", covers)
	}
}

// TestMinimalCoversAgainstBruteForce verifies cover enumeration against a
// subset-enumeration oracle on random difference-set collections.
func TestMinimalCoversAgainstBruteForce(t *testing.T) {
	cases := [][]core.AttrSet{
		{core.NewAttrSet(0, 1), core.NewAttrSet(1, 2), core.NewAttrSet(2, 3)},
		{core.NewAttrSet(0), core.NewAttrSet(1), core.NewAttrSet(2)},
		{core.NewAttrSet(0, 1, 2), core.NewAttrSet(2, 3), core.NewAttrSet(0, 3)},
		{core.NewAttrSet(1, 2, 3)},
	}
	candidates := []int{0, 1, 2, 3}
	space := core.NewAttrSet(candidates...)
	for ci, diffs := range cases {
		want := make(map[core.AttrSet]bool)
		space.Subsets(func(y core.AttrSet) bool {
			if diffset.IsMinimalCover(y, diffs) {
				want[y] = true
			}
			return true
		})
		got := MinimalCovers(diffs, candidates)
		if len(got) != len(want) {
			t.Errorf("case %d: got %d covers, want %d", ci, len(got), len(want))
		}
		for _, y := range got {
			if !want[y] {
				t.Errorf("case %d: spurious cover %v", ci, y)
			}
		}
	}
}
