package fastfd

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fixture"
)

// TestMineContextPreCancelled asserts a cancelled context aborts FastFD with
// ctx.Err() before any right-hand side is searched.
func TestMineContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MineContext(ctx, fixture.Cust(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("expected no FDs from a cancelled run")
	}
}

// TestMineContextMatchesMine asserts the context entry point returns the same
// FDs as the plain one.
func TestMineContextMatchesMine(t *testing.T) {
	r := fixture.Cust()
	plain := Mine(r, nil)
	ctxed, err := MineContext(context.Background(), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("plain %d FDs, context %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i].Key() != ctxed[i].Key() {
			t.Errorf("FD %d differs between entry points", i)
		}
	}
}
