// Package fastfd implements FastFD (Wyss, Giannella, Robertson, 2001), the
// depth-first FD discovery algorithm that FastCFD extends (§1.1, §5). For each
// right-hand-side attribute it computes the minimal difference sets of the
// relation and enumerates their minimal covers with a greedy, dynamically
// reordered depth-first search.
//
// FDs are returned as core.CFD values with all-wildcard pattern tuples.
package fastfd

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/diffset"
)

// Mine returns the minimal functional dependencies of r, using the given
// difference-set backend (the closed-item-set backend when comp is nil).
func Mine(r *core.Relation, comp diffset.Computer) []core.CFD {
	out, err := MineContext(context.Background(), r, comp)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineContext is Mine with a cancellation context, observed once per
// right-hand-side attribute; a cancelled run returns (nil, ctx.Err()).
func MineContext(ctx context.Context, r *core.Relation, comp diffset.Computer) ([]core.CFD, error) {
	if comp == nil {
		comp = diffset.NewClosed(r)
	}
	arity := r.Arity()
	all := r.Schema().All()
	empty := core.NewPattern(arity)
	var out []core.CFD

	for rhs := 0; rhs < arity; rhs++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		diffs := comp.MinimalDiffSets(core.EmptyAttrSet, empty, rhs)
		if len(diffs) == 0 {
			// Every pair of tuples agrees on rhs: the attribute is constant and
			// the FD with an empty left-hand side holds.
			out = append(out, core.CFD{LHS: core.EmptyAttrSet, RHS: rhs, Tp: core.NewPattern(arity)})
			continue
		}
		if containsEmpty(diffs) {
			// Some pair differs only on rhs: no FD with rhs on the right holds.
			continue
		}
		candidates := all.Remove(rhs).Attrs()
		for _, cover := range MinimalCovers(diffs, candidates) {
			out = append(out, core.CFD{LHS: cover, RHS: rhs, Tp: core.NewPattern(arity)})
		}
	}
	core.SortCFDs(out)
	return out, nil
}

// MinimalCovers enumerates every minimal cover of the difference sets that can
// be built from the candidate attributes, using the depth-first search with
// dynamic attribute reordering described in §5.6 of the paper. The result is
// deterministic and free of duplicates.
func MinimalCovers(diffs []core.AttrSet, candidates []int) []core.AttrSet {
	var out []core.AttrSet
	seen := make(map[core.AttrSet]bool)
	var rec func(y core.AttrSet, remaining []core.AttrSet, cands []int)
	rec = func(y core.AttrSet, remaining []core.AttrSet, cands []int) {
		if len(remaining) == 0 {
			if !seen[y] && diffset.IsMinimalCover(y, diffs) {
				seen[y] = true
				out = append(out, y)
			}
			return
		}
		if len(cands) == 0 {
			return
		}
		// Dynamic reordering: most-covering attribute first; drop attributes that
		// cover nothing (they can never be part of a minimal cover from here).
		type scored struct {
			attr  int
			cover int
		}
		order := make([]scored, 0, len(cands))
		for _, a := range cands {
			c := 0
			for _, d := range remaining {
				if d.Has(a) {
					c++
				}
			}
			if c > 0 {
				order = append(order, scored{attr: a, cover: c})
			}
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].cover != order[j].cover {
				return order[i].cover > order[j].cover
			}
			return order[i].attr < order[j].attr
		})
		rest := make([]int, len(order))
		for i, s := range order {
			rest[i] = s.attr
		}
		for i, s := range order {
			var nextRemaining []core.AttrSet
			for _, d := range remaining {
				if !d.Has(s.attr) {
					nextRemaining = append(nextRemaining, d)
				}
			}
			rec(y.Add(s.attr), nextRemaining, rest[i+1:])
		}
	}
	rec(core.EmptyAttrSet, diffs, candidates)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func containsEmpty(diffs []core.AttrSet) bool {
	for _, d := range diffs {
		if d.IsEmpty() {
			return true
		}
	}
	return false
}
