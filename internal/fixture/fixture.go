// Package fixture provides small, fully-known relations used by tests across
// the repository: the cust relation of Fig. 1 of the paper and deterministic
// pseudo-random relations for property-based tests.
package fixture

import (
	"math/rand"
	"strconv"

	"repro/internal/core"
)

// CustAttrs lists the attributes of the cust schema of Fig. 1, in order.
var CustAttrs = []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP"}

// CustRows holds the eight tuples t1..t8 of the paper's Fig. 1 instance r0,
// reconstructed so that every example of the paper (Examples 1, 3, 5, 7, 8, 9)
// holds on it.
var CustRows = [][]string{
	{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
	{"01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"},
	{"01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"},
	{"01", "908", "4444444", "Jim", "Elm Str.", "MH", "07974"},
	{"44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"},
	{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"},
	{"44", "908", "4444444", "Ian", "Port PI", "MH", "01202"},
	{"01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"},
}

// Cust returns the Fig. 1 cust relation (8 tuples, 7 attributes).
func Cust() *core.Relation {
	r := core.NewRelation(core.MustSchema(CustAttrs...))
	for _, row := range CustRows {
		if err := r.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return r
}

// CustNoNM returns the cust relation projected onto CC, AC, PN, STR, CT, ZIP —
// the projection used in Example 9 of the paper.
func CustNoNM() *core.Relation {
	r := Cust()
	keep, err := r.Schema().AttrSetOf("CC", "AC", "PN", "STR", "CT", "ZIP")
	if err != nil {
		panic(err)
	}
	out, err := r.Restrict(keep)
	if err != nil {
		panic(err)
	}
	return out
}

// Random returns a deterministic pseudo-random relation with the given number
// of tuples and per-attribute domain sizes. Attribute names are A0, A1, ...
// and values are small decimal strings, so frequent patterns and FDs occur by
// chance, which is what the property-based tests need.
func Random(seed int64, tuples int, domainSizes []int) *core.Relation {
	names := make([]string, len(domainSizes))
	for i := range names {
		names[i] = "A" + strconv.Itoa(i)
	}
	r := core.NewRelation(core.MustSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	row := make([]string, len(domainSizes))
	for t := 0; t < tuples; t++ {
		for a, d := range domainSizes {
			if d < 1 {
				d = 1
			}
			row[a] = "v" + strconv.Itoa(rng.Intn(d))
		}
		if err := r.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return r
}

// RandomCorrelated returns a deterministic pseudo-random relation in which
// attribute 1 is a function of attribute 0 and attribute 2 depends on
// attribute 1 except for occasional noise, so that non-trivial FDs and CFDs
// are likely to hold. Remaining attributes are independent.
func RandomCorrelated(seed int64, tuples, arity, domain int) *core.Relation {
	if arity < 3 {
		arity = 3
	}
	names := make([]string, arity)
	for i := range names {
		names[i] = "A" + strconv.Itoa(i)
	}
	r := core.NewRelation(core.MustSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	row := make([]string, arity)
	for t := 0; t < tuples; t++ {
		v0 := rng.Intn(domain)
		row[0] = "v" + strconv.Itoa(v0)
		row[1] = "v" + strconv.Itoa((v0*7+3)%domain)
		if rng.Intn(10) == 0 {
			row[2] = "v" + strconv.Itoa(rng.Intn(domain))
		} else {
			row[2] = "v" + strconv.Itoa((v0*3+1)%domain)
		}
		for a := 3; a < arity; a++ {
			row[a] = "v" + strconv.Itoa(rng.Intn(domain))
		}
		if err := r.AppendRow(row); err != nil {
			panic(err)
		}
	}
	return r
}
