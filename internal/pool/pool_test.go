package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.NumCPU() {
		t.Errorf("Normalize(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Normalize(-3); got != runtime.NumCPU() {
		t.Errorf("Normalize(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	for _, w := range []int{1, 2, 7} {
		if got := Normalize(w); got != w {
			t.Errorf("Normalize(%d) = %d", w, got)
		}
	}
}

// TestMapOrderDeterministic checks that the result slice is in index order for
// every worker count, including counts exceeding the item count.
func TestMapOrderDeterministic(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 4, 16, n + 5} {
		out, err := Map(context.Background(), workers, n, func(_, i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapEachIndexOnce checks that every index is dispatched exactly once.
func TestMapEachIndexOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	if _, err := Map(context.Background(), 8, n, func(_, i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d executed %d times", i, c)
		}
	}
}

// TestMapWorkerIDs checks that worker ids are within [0, workers) so callers
// can index per-worker scratch buffers safely.
func TestMapWorkerIDs(t *testing.T) {
	const workers, n = 4, 100
	var mu sync.Mutex
	ids := make(map[int]bool)
	if _, err := Map(context.Background(), workers, n, func(w, _ int) struct{} {
		mu.Lock()
		ids[w] = true
		mu.Unlock()
		return struct{}{}
	}); err != nil {
		t.Fatal(err)
	}
	for w := range ids {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range [0,%d)", w, workers)
		}
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, workers := range []int{1, 4} {
		out, err := Map(ctx, workers, 100, func(_, i int) int {
			ran.Add(1)
			return i
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: expected nil results on cancellation", workers)
		}
	}
	// A pre-cancelled sequential run must not execute any item; a concurrent
	// run may race a handful of items but must stop promptly, which the small
	// bound asserts.
	if n := ran.Load(); n > 8 {
		t.Errorf("%d items ran despite pre-cancelled context", n)
	}
}

// TestMapCancelMidRun cancels while items are in flight and checks Map
// returns promptly without dispatching the remaining work.
func TestMapCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	const n = 10000
	start := time.Now()
	_, err := Map(ctx, 4, n, func(_, i int) struct{} {
		if ran.Add(1) == 16 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return struct{}{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= n {
		t.Error("cancellation did not stop dispatch")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_, i int) int { return i })
	if err != nil || out != nil {
		t.Errorf("Map over zero items = (%v, %v)", out, err)
	}
}

// TestStreamOrderDeterministic checks that Stream emits every result exactly
// once, in index order, for every worker count.
func TestStreamOrderDeterministic(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 4, 16, n + 5} {
		var got []int
		err := Stream(context.Background(), workers, n,
			func(_, i int) int { return i * i },
			func(i, v int) { got = append(got, i, v) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 2*n {
			t.Fatalf("workers=%d: %d emissions", workers, len(got)/2)
		}
		for i := 0; i < n; i++ {
			if got[2*i] != i || got[2*i+1] != i*i {
				t.Fatalf("workers=%d: emission %d = (%d, %d), want (%d, %d)", workers, i, got[2*i], got[2*i+1], i, i*i)
			}
		}
	}
}

// TestStreamCancelMidRun cancels from inside the emit callback and checks
// Stream stops dispatching, returns the context error, and never emits out of
// order.
func TestStreamCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var emitted []int
		const n = 10000
		err := Stream(ctx, workers, n,
			func(_, i int) int { time.Sleep(50 * time.Microsecond); return i },
			func(i, _ int) {
				emitted = append(emitted, i)
				if len(emitted) == 8 {
					cancel()
				}
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(emitted) >= n {
			t.Errorf("workers=%d: cancellation did not stop the stream", workers)
		}
		for i, v := range emitted {
			if v != i {
				t.Fatalf("workers=%d: emission %d has index %d", workers, i, v)
			}
		}
	}
}

func TestStreamPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		emitted := 0
		err := Stream(ctx, workers, 100,
			func(_, i int) int { return i },
			func(_, _ int) { emitted++ })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if emitted > 8 {
			t.Errorf("workers=%d: %d emissions despite pre-cancelled context", workers, emitted)
		}
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(context.Background(), 3, 100, func(_, i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
}
