// Package pool provides the bounded worker pool shared by the parallel
// discovery algorithms. Work is expressed as an indexed map over [0, n): each
// index is handed to exactly one worker goroutine and its result is written to
// position i of the output slice, so the result order is deterministic and
// independent of both the worker count and goroutine scheduling. Cancellation
// is cooperative through a context.Context: once the context is done, no new
// index is dispatched and the pool returns ctx.Err() after the in-flight items
// finish.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Normalize translates a Workers option into a concrete goroutine count: zero
// (or any negative value) selects one worker per available CPU, and any
// positive value is used as given (1 = sequential).
func Normalize(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// Map runs fn(worker, i) for every i in [0, n) on at most workers goroutines
// (after Normalize) and returns the n results in index order. The worker
// argument identifies the executing goroutine with a value in [0, workers),
// letting callers maintain per-worker scratch state without locking.
//
// If ctx is cancelled before every index has been dispatched, Map stops
// scheduling new work, waits for the in-flight items, and returns (nil,
// ctx.Err()). A single-worker run degenerates to a plain loop on the calling
// goroutine with a cancellation check before every item.
func Map[T any](ctx context.Context, workers, n int, fn func(worker, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = fn(0, i)
		}
		return out, nil
	}
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(w, i)
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	// A context that fires after the last item was already dispatched and
	// finished has not cut the run short: the result is complete, return it.
	if int(completed.Load()) < n {
		return nil, ctx.Err()
	}
	return out, nil
}

// Stream runs fn(worker, i) for every i in [0, n) on at most workers
// goroutines, like Map, but hands each result to emit in index order as soon
// as it and every earlier result are available — the backbone of the
// streaming discovery engine, where results must flow to the consumer before
// the whole run finishes, in an order independent of the worker count.
//
// emit runs on the calling goroutine and may overlap with fn calls for later
// indexes. If ctx is cancelled before every index has been dispatched, Stream
// stops scheduling new work, emits whatever ordered prefix completed, waits
// for the in-flight items, and returns ctx.Err(); a run whose every item was
// emitted returns nil even if the context fired afterwards.
func Stream[T any](ctx context.Context, workers, n int, fn func(worker, i int) T, emit func(i int, v T)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			emit(i, fn(0, i))
		}
		return nil
	}
	type item struct {
		i int
		v T
	}
	ch := make(chan item, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				ch <- item{i: i, v: fn(w, i)}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	// Reorder the completions: buffer out-of-order results and emit the
	// longest contiguous prefix.
	pending := make(map[int]T)
	nextEmit := 0
	for it := range ch {
		pending[it.i] = it.v
		for {
			v, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			emit(nextEmit, v)
			nextEmit++
		}
	}
	if nextEmit < n {
		return ctx.Err()
	}
	return nil
}

// Each is Map without results: it runs fn(worker, i) for every i in [0, n)
// and returns ctx.Err() if the run was cut short by cancellation.
func Each(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	_, err := Map(ctx, workers, n, func(w, i int) struct{} {
		fn(w, i)
		return struct{}{}
	})
	return err
}
