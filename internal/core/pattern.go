package core

import "strings"

// Wildcard is the encoded form of the unnamed variable "_" of a pattern tuple.
const Wildcard int32 = -1

// Pattern is a pattern tuple over the full schema: one entry per attribute,
// each either an encoded constant (>= 0) or Wildcard. Entries for attributes
// outside the CFD's LHS∪RHS are conventionally Wildcard and ignored.
type Pattern []int32

// NewPattern returns an all-wildcard pattern for a schema of the given arity.
func NewPattern(arity int) Pattern {
	p := make(Pattern, arity)
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern {
	q := make(Pattern, len(p))
	copy(q, p)
	return q
}

// IsConstant reports whether every entry of p over the attributes X is a constant.
func (p Pattern) IsConstant(X AttrSet) bool {
	ok := true
	X.ForEach(func(a int) {
		if p[a] == Wildcard {
			ok = false
		}
	})
	return ok
}

// ConstAttrs returns the attributes of X on which p holds a constant.
func (p Pattern) ConstAttrs(X AttrSet) AttrSet {
	var c AttrSet
	X.ForEach(func(a int) {
		if p[a] != Wildcard {
			c = c.Add(a)
		}
	})
	return c
}

// WildcardAttrs returns the attributes of X on which p holds the unnamed variable.
func (p Pattern) WildcardAttrs(X AttrSet) AttrSet {
	return X.Diff(p.ConstAttrs(X))
}

// MatchesTuple reports whether tuple t of r matches p on the attributes X,
// i.e. t[X] ≼ p[X] in the paper's order on constants and "_".
func (p Pattern) MatchesTuple(r *Relation, t int, X AttrSet) bool {
	ok := true
	X.ForEach(func(a int) {
		if !ok {
			return
		}
		if p[a] != Wildcard && r.Value(t, a) != p[a] {
			ok = false
		}
	})
	return ok
}

// EqualOn reports whether p and q hold identical entries over the attributes X.
func (p Pattern) EqualOn(q Pattern, X AttrSet) bool {
	eq := true
	X.ForEach(func(a int) {
		if p[a] != q[a] {
			eq = false
		}
	})
	return eq
}

// MoreGeneralOrEqualOn reports whether p is more general than or equal to q on
// the attributes X: q[a] ≼ p[a] for every a in X, i.e. wherever p holds a
// constant, q holds the same constant.
func (p Pattern) MoreGeneralOrEqualOn(q Pattern, X AttrSet) bool {
	ok := true
	X.ForEach(func(a int) {
		if p[a] != Wildcard && p[a] != q[a] {
			ok = false
		}
	})
	return ok
}

// StrictlyMoreGeneralOn reports whether p is strictly more general than q on X.
func (p Pattern) StrictlyMoreGeneralOn(q Pattern, X AttrSet) bool {
	return p.MoreGeneralOrEqualOn(q, X) && !p.EqualOn(q, X)
}

// Key returns a canonical string key for the pattern restricted to X, suitable
// for use as a map key.
func (p Pattern) Key(X AttrSet) string {
	var b strings.Builder
	X.ForEach(func(a int) {
		b.WriteString(itoa(a))
		b.WriteByte('=')
		b.WriteString(itoa(int(p[a])))
		b.WriteByte(';')
	})
	return b.String()
}

// Format renders the pattern over X using the relation's dictionaries, e.g.
// "(CC=44, AC=_)". It is intended for debugging and test failure messages.
func (p Pattern) Format(r *Relation, X AttrSet) string {
	var b strings.Builder
	b.WriteByte('(')
	first := true
	X.ForEach(func(a int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(r.Schema().Name(a))
		b.WriteByte('=')
		if p[a] == Wildcard {
			b.WriteByte('_')
		} else {
			b.WriteString(r.Dict(a).Value(p[a]))
		}
	})
	b.WriteByte(')')
	return b.String()
}
