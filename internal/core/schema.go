package core

import (
	"errors"
	"fmt"
)

// ErrArityTooLarge is returned when a schema declares more than MaxArity attributes.
var ErrArityTooLarge = errors.New("core: schema arity exceeds 64 attributes")

// ErrDuplicateAttr is returned when a schema declares the same attribute twice.
var ErrDuplicateAttr = errors.New("core: duplicate attribute name")

// ErrUnknownAttr is returned when an attribute name is not part of the schema.
var ErrUnknownAttr = errors.New("core: unknown attribute")

// Schema is a relation schema: an ordered list of attribute names.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from the given attribute names. Names must be
// non-empty, unique and at most MaxArity in number.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) > MaxArity {
		return nil, fmt.Errorf("%w: %d attributes", ErrArityTooLarge, len(names))
	}
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("core: attribute %d has an empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateAttr, n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for tests
// and for generators with fixed, known-good attribute lists.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.names) }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// AttrSetOf returns the AttrSet containing the named attributes.
func (s *Schema) AttrSetOf(names ...string) (AttrSet, error) {
	var set AttrSet
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownAttr, n)
		}
		set = set.Add(i)
	}
	return set, nil
}

// All returns the set of all attributes of the schema.
func (s *Schema) All() AttrSet { return FullAttrSet(len(s.names)) }
