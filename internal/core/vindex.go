package core

import "sort"

// RuleIndex maintains, incrementally, the set of tuples violating one CFD.
// Tuples are grouped by their (encoded) values on the CFD's LHS attributes,
// after filtering on the LHS pattern constants; each group tracks the
// multiplicity of every RHS value it contains. A group is violating when its
// tuples disagree on the RHS, or — for a constant-RHS CFD — when any of its
// tuples misses the RHS constant, in which case every tuple of the group is
// involved in a violating pair under the paper's exact pair semantics (§2.1.2).
//
// Insert and Delete cost O(|LHS|) map work per call, independent of the number
// of tuples indexed, which is what makes incremental detection sub-linear
// compared to a full rescan. The batch Violations function and the public
// repro/violation engine are both built on this type, so there is a single
// source of truth for what counts as a violating tuple.
//
// Groups are keyed on the LHS codes packed into one uint64 — directly for up
// to two LHS attributes, via a per-index pair-interning table for wider rules
// — so the hot path hashes a single integer instead of allocating and hashing
// a joined string. A tuple id must therefore fit in 32 bits, which the engine
// guarantees (ids are dense and pinned inserts are gap-bounded). Insert must
// not be called twice for a live id with the same index; delete (or update:
// delete then re-insert) the id first, as every caller in this repository
// does.
type RuleIndex struct {
	c      CFD
	lhs    []int // ascending LHS attribute indexes
	groups map[uint64]*vgroup
	// pairs folds LHS tuples wider than two attributes into one key: each
	// distinct (left, code) pair seen gets a dense id, and the fold chains
	// pair ids left to right. The map is a function, so equal final ids imply
	// equal chains — the packed key is injective for a fixed LHS arity.
	pairs    map[uint64]uint32
	nextPair uint32
	bad      int // total tuples currently in violating groups
	size     int // total tuples indexed (rows matching the LHS pattern)
}

// vgroup is the state of one LHS-value equivalence class. Members are stored
// as a dense slice of packed (id, RHS code) words — appends on insert,
// swap-removes on delete — with a lazily built id→position map once a group
// grows past idposThreshold, so inserts never pay per-member map writes and
// deletes from large groups stay O(1). RHS multiplicities live in two inline
// slots (almost every group carries at most two distinct RHS values) with a
// spill map for the rest.
type vgroup struct {
	members  []uint64    // uint64(id)<<32 | uint32(code), insertion order
	idpos    map[int]int // id -> position in members; nil until first needed
	rc1, rc2 int32       // RHS codes of the inline count slots (valid when n>0)
	n1, n2   int         // inline multiplicities; 0 = slot free
	spill    map[int32]int
	distinct int // number of distinct RHS codes present
	bad      bool
}

// idposThreshold is the group size past which delete-path member lookups
// switch from a linear scan to the idpos map.
const idposThreshold = 32

func packMember(id int, code int32) uint64 { return uint64(uint32(id))<<32 | uint64(uint32(code)) }

// NewRuleIndex returns an empty index for the CFD.
func NewRuleIndex(c CFD) *RuleIndex {
	return &RuleIndex{c: c, lhs: c.LHS.Attrs(), groups: make(map[uint64]*vgroup)}
}

// CFD returns the rule the index maintains.
func (ix *RuleIndex) CFD() CFD { return ix.c }

// matches reports whether the row matches the LHS pattern constants. Rows that
// do not match are outside the rule's scope and never indexed.
func (ix *RuleIndex) matches(row []int32) bool {
	for _, a := range ix.lhs {
		if p := ix.c.Tp[a]; p != Wildcard && row[a] != p {
			return false
		}
	}
	return true
}

// key packs the row's LHS codes into the group key, interning fold pairs as
// needed. Only the write path (Insert) may use it.
func (ix *RuleIndex) key(row []int32) uint64 {
	switch len(ix.lhs) {
	case 0:
		return 0
	case 1:
		return uint64(uint32(row[ix.lhs[0]]))
	case 2:
		return uint64(uint32(row[ix.lhs[0]]))<<32 | uint64(uint32(row[ix.lhs[1]]))
	}
	if ix.pairs == nil {
		ix.pairs = make(map[uint64]uint32)
	}
	left := uint32(row[ix.lhs[0]])
	for _, a := range ix.lhs[1:] {
		k := uint64(left)<<32 | uint64(uint32(row[a]))
		id, ok := ix.pairs[k]
		if !ok {
			id = ix.nextPair
			ix.nextPair++
			ix.pairs[k] = id
		}
		left = id
	}
	return uint64(left)
}

// lookupKey is key without interning: the second result is false when the
// fold hits a pair never seen on the write path, which means no group for the
// row exists. Read paths (IsViolating, under the engine's read lock) must use
// it — interning would mutate the pairs map.
func (ix *RuleIndex) lookupKey(row []int32) (uint64, bool) {
	switch len(ix.lhs) {
	case 0:
		return 0, true
	case 1:
		return uint64(uint32(row[ix.lhs[0]])), true
	case 2:
		return uint64(uint32(row[ix.lhs[0]]))<<32 | uint64(uint32(row[ix.lhs[1]])), true
	}
	left := uint32(row[ix.lhs[0]])
	for _, a := range ix.lhs[1:] {
		id, ok := ix.pairs[uint64(left)<<32|uint64(uint32(row[a]))]
		if !ok {
			return 0, false
		}
		left = id
	}
	return uint64(left), true
}

// incr counts one more member with the given RHS code.
func (g *vgroup) incr(code int32) {
	switch {
	case g.n1 > 0 && g.rc1 == code:
		g.n1++
	case g.n2 > 0 && g.rc2 == code:
		g.n2++
	default:
		// Order matters: a code spilled while both slots were busy must keep
		// counting in the spill even if a slot has freed up since, or its
		// count would split across the two places.
		if n, ok := g.spill[code]; ok {
			g.spill[code] = n + 1
			return
		}
		g.distinct++
		switch {
		case g.n1 == 0:
			g.rc1, g.n1 = code, 1
		case g.n2 == 0:
			g.rc2, g.n2 = code, 1
		default:
			if g.spill == nil {
				g.spill = make(map[int32]int)
			}
			g.spill[code] = 1
		}
	}
}

// decr counts one member with the given RHS code out. The code must be
// present (deletes always carry the row their insert carried).
func (g *vgroup) decr(code int32) {
	switch {
	case g.n1 > 0 && g.rc1 == code:
		if g.n1--; g.n1 == 0 {
			g.distinct--
		}
	case g.n2 > 0 && g.rc2 == code:
		if g.n2--; g.n2 == 0 {
			g.distinct--
		}
	default:
		if g.spill[code]--; g.spill[code] == 0 {
			delete(g.spill, code)
			g.distinct--
		}
	}
}

// count returns the multiplicity of the given RHS code.
func (g *vgroup) count(code int32) int {
	switch {
	case g.n1 > 0 && g.rc1 == code:
		return g.n1
	case g.n2 > 0 && g.rc2 == code:
		return g.n2
	default:
		return g.spill[code]
	}
}

// lookup finds the member with the given id, without mutating the group, so
// it is safe under a read lock shared with other lookups.
func (g *vgroup) lookup(id int) (pos int, code int32, ok bool) {
	if g.idpos != nil {
		p, ok := g.idpos[id]
		if !ok {
			return 0, 0, false
		}
		return p, int32(uint32(g.members[p])), true
	}
	for p, m := range g.members {
		if int(m>>32) == id {
			return p, int32(uint32(m)), true
		}
	}
	return 0, 0, false
}

// locate is lookup for the delete path: past idposThreshold members it builds
// the idpos map first, making this and every later delete O(1).
func (g *vgroup) locate(id int) (pos int, code int32, ok bool) {
	if g.idpos == nil && len(g.members) > idposThreshold {
		g.idpos = make(map[int]int, len(g.members))
		for p, m := range g.members {
			g.idpos[int(m>>32)] = p
		}
	}
	return g.lookup(id)
}

// removeAt swap-removes the member at pos (holding tuple id).
func (g *vgroup) removeAt(pos, id int) {
	last := len(g.members) - 1
	moved := g.members[last]
	g.members[pos] = moved
	g.members = g.members[:last]
	if g.idpos != nil {
		delete(g.idpos, id)
		if pos != last {
			g.idpos[int(moved>>32)] = pos
		}
	}
}

// recompute re-derives the group's violating flag from its counts:
// disagreement on the RHS, or any tuple missing the RHS constant of a
// constant-RHS rule.
func (g *vgroup) recompute(rhsConst int32) {
	g.bad = g.distinct > 1 ||
		(rhsConst != Wildcard && len(g.members) > 0 && g.count(rhsConst) < len(g.members))
}

// Insert adds tuple id with the given encoded row. Rows not matching the LHS
// pattern are ignored. Only row entries at the rule's LHS and RHS attribute
// indexes are read; the row is not retained.
func (ix *RuleIndex) Insert(id int, row []int32) { ix.InsertObserve(id, row, nil) }

// InsertObserve is Insert reporting every violating-set membership change the
// insert causes: observe(t, true) when tuple t becomes violating, observe(t,
// false) when it stops. The inserted tuple itself is reported like any other
// group member, so the calls are exactly the symmetric difference between the
// rule's violating set before and after — O(changes), since badness flips
// touch whole groups and everything else touches only id. A nil observe is
// plain Insert.
func (ix *RuleIndex) InsertObserve(id int, row []int32, observe func(id int, violating bool)) {
	if !ix.matches(row) {
		return
	}
	k := ix.key(row)
	g := ix.groups[k]
	if g == nil {
		g = &vgroup{}
		ix.groups[k] = g
	}
	wasBad := g.bad
	if wasBad {
		ix.bad -= len(g.members)
	}
	code := row[ix.c.RHS]
	g.members = append(g.members, packMember(id, code))
	ix.size++
	if g.idpos != nil {
		g.idpos[id] = len(g.members) - 1
	}
	g.incr(code)
	g.recompute(ix.c.Tp[ix.c.RHS])
	if g.bad {
		ix.bad += len(g.members)
	}
	if observe == nil || wasBad == g.bad {
		if wasBad && g.bad && observe != nil {
			observe(id, true) // joined a group that stays violating
		}
		return
	}
	// The group's badness flipped: every member's membership changed — except
	// id itself on a bad->good flip, which it was never part of.
	for _, m := range g.members {
		t := int(m >> 32)
		if !g.bad && t == id {
			continue
		}
		observe(t, g.bad)
	}
}

// Delete removes tuple id, given the same encoded row it was inserted with.
// Unknown ids and non-matching rows are ignored.
func (ix *RuleIndex) Delete(id int, row []int32) { ix.DeleteObserve(id, row, nil) }

// DeleteObserve is Delete with the same change reporting as InsertObserve.
func (ix *RuleIndex) DeleteObserve(id int, row []int32, observe func(id int, violating bool)) {
	if !ix.matches(row) {
		return
	}
	k, ok := ix.lookupKey(row)
	if !ok {
		return
	}
	g := ix.groups[k]
	if g == nil {
		return
	}
	pos, code, ok := g.locate(id)
	if !ok {
		return
	}
	wasBad := g.bad
	if wasBad {
		ix.bad -= len(g.members)
	}
	g.removeAt(pos, id)
	g.decr(code)
	ix.size--
	if len(g.members) == 0 {
		delete(ix.groups, k)
		if wasBad && observe != nil {
			observe(id, false)
		}
		return
	}
	g.recompute(ix.c.Tp[ix.c.RHS])
	if g.bad {
		ix.bad += len(g.members)
	}
	if observe == nil {
		return
	}
	if wasBad && !g.bad {
		// The departure healed the group: id and every survivor leave the
		// violating set.
		observe(id, false)
		for _, m := range g.members {
			observe(int(m>>32), false)
		}
		return
	}
	if wasBad { // stays bad: only the departed tuple's membership changed
		observe(id, false)
		return
	}
	if g.bad { // good->bad on delete cannot happen; kept for exactness
		for _, m := range g.members {
			observe(int(m>>32), true)
		}
	}
}

// IsViolating reports whether tuple id, with the given encoded row, is
// currently involved in a violation of the rule.
func (ix *RuleIndex) IsViolating(id int, row []int32) bool {
	if !ix.matches(row) {
		return false
	}
	k, ok := ix.lookupKey(row)
	if !ok {
		return false
	}
	g := ix.groups[k]
	if g == nil || !g.bad {
		return false
	}
	_, _, ok = g.lookup(id)
	return ok
}

// BadTuples returns the number of tuples currently involved in a violation,
// in O(1).
func (ix *RuleIndex) BadTuples() int { return ix.bad }

// Tuples returns the number of tuples currently indexed — the rows matching
// the rule's LHS pattern constants, i.e. the rule's live support — in O(1).
func (ix *RuleIndex) Tuples() int { return ix.size }

// Groups returns the number of distinct LHS-value equivalence classes
// currently holding at least one tuple, in O(1).
func (ix *RuleIndex) Groups() int { return len(ix.groups) }

// Violating returns the ids of all tuples currently involved in a violation,
// in ascending order.
func (ix *RuleIndex) Violating() []int {
	out := make([]int, 0, ix.bad)
	for _, g := range ix.groups {
		if !g.bad {
			continue
		}
		for _, m := range g.members {
			out = append(out, int(m>>32))
		}
	}
	sort.Ints(out)
	return out
}
