package core

import "sort"

// RuleIndex maintains, incrementally, the set of tuples violating one CFD.
// Tuples are grouped by their (encoded) values on the CFD's LHS attributes,
// after filtering on the LHS pattern constants; each group tracks the
// multiplicity of every RHS value it contains. A group is violating when its
// tuples disagree on the RHS, or — for a constant-RHS CFD — when any of its
// tuples misses the RHS constant, in which case every tuple of the group is
// involved in a violating pair under the paper's exact pair semantics (§2.1.2).
//
// Insert and Delete cost O(|LHS|) map work per call, independent of the number
// of tuples indexed, which is what makes incremental detection sub-linear
// compared to a full rescan. The batch Violations function and the public
// repro/violation engine are both built on this type, so there is a single
// source of truth for what counts as a violating tuple.
type RuleIndex struct {
	c      CFD
	lhs    []int // ascending LHS attribute indexes
	groups map[string]*vgroup
	bad    int // total tuples currently in violating groups
}

// vgroup is the state of one LHS-value equivalence class.
type vgroup struct {
	tuples map[int]int32 // tuple id -> RHS code
	counts map[int32]int // RHS code -> multiplicity
	bad    bool
}

// NewRuleIndex returns an empty index for the CFD.
func NewRuleIndex(c CFD) *RuleIndex {
	return &RuleIndex{c: c, lhs: c.LHS.Attrs(), groups: make(map[string]*vgroup)}
}

// CFD returns the rule the index maintains.
func (ix *RuleIndex) CFD() CFD { return ix.c }

// matches reports whether the row matches the LHS pattern constants. Rows that
// do not match are outside the rule's scope and never indexed.
func (ix *RuleIndex) matches(row []int32) bool {
	for _, a := range ix.lhs {
		if p := ix.c.Tp[a]; p != Wildcard && row[a] != p {
			return false
		}
	}
	return true
}

// key builds the group key of a row: its encoded values on the LHS attributes.
func (ix *RuleIndex) key(row []int32) string {
	buf := make([]byte, 0, 4*len(ix.lhs))
	for _, a := range ix.lhs {
		buf = appendCode(buf, row[a])
	}
	return string(buf)
}

// recompute re-derives the group's violating flag from its counts: disagreement
// on the RHS, or any tuple missing the RHS constant of a constant-RHS rule.
func (g *vgroup) recompute(rhsConst int32) {
	g.bad = len(g.counts) > 1 ||
		(rhsConst != Wildcard && len(g.tuples) > 0 && g.counts[rhsConst] < len(g.tuples))
}

// Insert adds tuple id with the given encoded row. Rows not matching the LHS
// pattern are ignored. Only row entries at the rule's LHS and RHS attribute
// indexes are read; the row is not retained.
func (ix *RuleIndex) Insert(id int, row []int32) { ix.InsertObserve(id, row, nil) }

// InsertObserve is Insert reporting every violating-set membership change the
// insert causes: observe(t, true) when tuple t becomes violating, observe(t,
// false) when it stops. The inserted tuple itself is reported like any other
// group member, so the calls are exactly the symmetric difference between the
// rule's violating set before and after — O(changes), since badness flips
// touch whole groups and everything else touches only id. A nil observe is
// plain Insert.
func (ix *RuleIndex) InsertObserve(id int, row []int32, observe func(id int, violating bool)) {
	if !ix.matches(row) {
		return
	}
	k := ix.key(row)
	g := ix.groups[k]
	if g == nil {
		g = &vgroup{tuples: make(map[int]int32), counts: make(map[int32]int)}
		ix.groups[k] = g
	}
	wasBad := g.bad
	if g.bad {
		ix.bad -= len(g.tuples)
	}
	av := row[ix.c.RHS]
	g.tuples[id] = av
	g.counts[av]++
	g.recompute(ix.c.Tp[ix.c.RHS])
	if g.bad {
		ix.bad += len(g.tuples)
	}
	if observe == nil || wasBad == g.bad {
		if wasBad && g.bad && observe != nil {
			observe(id, true) // joined a group that stays violating
		}
		return
	}
	// The group's badness flipped: every member's membership changed — except
	// id itself on a bad->good flip, which it was never part of.
	for t := range g.tuples {
		if !g.bad && t == id {
			continue
		}
		observe(t, g.bad)
	}
}

// Delete removes tuple id, given the same encoded row it was inserted with.
// Unknown ids and non-matching rows are ignored.
func (ix *RuleIndex) Delete(id int, row []int32) { ix.DeleteObserve(id, row, nil) }

// DeleteObserve is Delete with the same change reporting as InsertObserve.
func (ix *RuleIndex) DeleteObserve(id int, row []int32, observe func(id int, violating bool)) {
	if !ix.matches(row) {
		return
	}
	k := ix.key(row)
	g := ix.groups[k]
	if g == nil {
		return
	}
	av, ok := g.tuples[id]
	if !ok {
		return
	}
	wasBad := g.bad
	if g.bad {
		ix.bad -= len(g.tuples)
	}
	delete(g.tuples, id)
	if g.counts[av]--; g.counts[av] == 0 {
		delete(g.counts, av)
	}
	if len(g.tuples) == 0 {
		delete(ix.groups, k)
		if wasBad && observe != nil {
			observe(id, false)
		}
		return
	}
	g.recompute(ix.c.Tp[ix.c.RHS])
	if g.bad {
		ix.bad += len(g.tuples)
	}
	if observe == nil {
		return
	}
	if wasBad && !g.bad {
		// The departure healed the group: id and every survivor leave the
		// violating set.
		observe(id, false)
		for t := range g.tuples {
			observe(t, false)
		}
		return
	}
	if wasBad { // stays bad: only the departed tuple's membership changed
		observe(id, false)
		return
	}
	if g.bad { // good->bad on delete cannot happen; kept for exactness
		for t := range g.tuples {
			observe(t, true)
		}
	}
}

// IsViolating reports whether tuple id, with the given encoded row, is
// currently involved in a violation of the rule.
func (ix *RuleIndex) IsViolating(id int, row []int32) bool {
	if !ix.matches(row) {
		return false
	}
	g := ix.groups[ix.key(row)]
	if g == nil || !g.bad {
		return false
	}
	_, ok := g.tuples[id]
	return ok
}

// BadTuples returns the number of tuples currently involved in a violation,
// in O(1).
func (ix *RuleIndex) BadTuples() int { return ix.bad }

// Violating returns the ids of all tuples currently involved in a violation,
// in ascending order.
func (ix *RuleIndex) Violating() []int {
	out := make([]int, 0, ix.bad)
	for _, g := range ix.groups {
		if !g.bad {
			continue
		}
		for id := range g.tuples {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
