package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// naiveViolations is an independent oracle for the tuples involved in a
// violation, written directly from the paper's pair semantics: a tuple t
// violates a constant-RHS CFD on its own when it matches the LHS pattern but
// t[A] differs from the constant, and a pair (t1, t2) violates the CFD when
// both match the LHS pattern, agree on the LHS attributes, and disagree on the
// RHS attribute.
func naiveViolations(r *core.Relation, c core.CFD) []int {
	if c.IsTrivial() {
		return nil
	}
	rhsConst := c.Tp[c.RHS]
	attrs := c.LHS.Attrs()
	matches := func(t int) bool {
		for _, a := range attrs {
			if p := c.Tp[a]; p != core.Wildcard && r.Value(t, a) != p {
				return false
			}
		}
		return true
	}
	agree := func(t1, t2 int) bool {
		for _, a := range attrs {
			if r.Value(t1, a) != r.Value(t2, a) {
				return false
			}
		}
		return true
	}
	bad := make(map[int]bool)
	for t1 := 0; t1 < r.Size(); t1++ {
		if !matches(t1) {
			continue
		}
		if rhsConst != core.Wildcard && r.Value(t1, c.RHS) != rhsConst {
			bad[t1] = true
		}
		for t2 := t1 + 1; t2 < r.Size(); t2++ {
			if !matches(t2) || !agree(t1, t2) {
				continue
			}
			if r.Value(t1, c.RHS) != r.Value(t2, c.RHS) {
				bad[t1] = true
				bad[t2] = true
			}
		}
	}
	out := make([]int, 0, len(bad))
	for t := range bad {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomVindexCFD(rng *rand.Rand, r *core.Relation) core.CFD {
	n := r.Arity()
	rhs := rng.Intn(n)
	lhs := core.EmptyAttrSet
	for a := 0; a < n; a++ {
		if a != rhs && rng.Intn(2) == 0 {
			lhs = lhs.Add(a)
		}
	}
	tp := core.NewPattern(n)
	lhs.ForEach(func(a int) {
		if rng.Intn(2) == 0 {
			tp[a] = int32(rng.Intn(r.DomainSize(a)))
		}
	})
	if rng.Intn(2) == 0 {
		tp[rhs] = int32(rng.Intn(r.DomainSize(rhs)))
	}
	return core.CFD{LHS: lhs, RHS: rhs, Tp: tp}
}

// TestRuleIndexMatchesNaiveOracle checks that batch Violations (which routes
// through RuleIndex) agrees with the brute-force pair-semantics oracle on
// random relations and rules.
func TestRuleIndexMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		r := fixture.Random(int64(trial), 20+rng.Intn(30), []int{2, 3, 2, 4})
		for i := 0; i < 15; i++ {
			c := randomVindexCFD(rng, r)
			got := core.Violations(r, c)
			want := naiveViolations(r, c)
			if !equalInts(got, want) {
				t.Fatalf("trial %d: Violations = %v, oracle = %v for %s", trial, got, want, c.Format(r))
			}
		}
	}
}

// TestRuleIndexSupportCounters checks that Tuples() and Groups() — the O(1)
// counters the maintenance layer serves as live support — stay equal to a
// naive recount of matching tuples and distinct LHS-value classes through
// random insert/delete churn.
func TestRuleIndexSupportCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r := fixture.Random(int64(200+trial), 30, []int{2, 3, 2, 4})
		c := randomVindexCFD(rng, r)
		attrs := c.LHS.Attrs()
		matches := func(row []int32) bool {
			for _, a := range attrs {
				if p := c.Tp[a]; p != core.Wildcard && row[a] != p {
					return false
				}
			}
			return true
		}
		groupKey := func(row []int32) string {
			k := ""
			for _, a := range attrs {
				k += string(rune(row[a])) + "\x00"
			}
			return k
		}
		ix := core.NewRuleIndex(c)
		rows := make([][]int32, r.Size())
		live := make(map[int]bool)
		check := func(step string) {
			t.Helper()
			wantTuples := 0
			wantGroups := make(map[string]bool)
			for id := range live {
				if matches(rows[id]) {
					wantTuples++
					wantGroups[groupKey(rows[id])] = true
				}
			}
			if ix.Tuples() != wantTuples {
				t.Fatalf("trial %d %s: Tuples = %d, naive = %d for %s", trial, step, ix.Tuples(), wantTuples, c.Format(r))
			}
			if ix.Groups() != len(wantGroups) {
				t.Fatalf("trial %d %s: Groups = %d, naive = %d for %s", trial, step, ix.Groups(), len(wantGroups), c.Format(r))
			}
		}
		for t0 := 0; t0 < r.Size(); t0++ {
			rows[t0] = r.CodedRow(t0)
			ix.Insert(t0, rows[t0])
			live[t0] = true
		}
		check("after load")
		for t0 := 0; t0 < r.Size(); t0++ {
			if rng.Intn(2) == 0 {
				ix.Delete(t0, rows[t0])
				delete(live, t0)
			}
		}
		check("after deletes")
	}
}

// TestRuleIndexIncrementalDelete checks that after deleting tuples from a
// fully-loaded index, the violating set equals a fresh index built over the
// surviving tuples only.
func TestRuleIndexIncrementalDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := fixture.Random(int64(100+trial), 30, []int{2, 2, 3, 2})
		c := randomVindexCFD(rng, r)
		ix := core.NewRuleIndex(c)
		rows := make([][]int32, r.Size())
		for t0 := 0; t0 < r.Size(); t0++ {
			rows[t0] = r.CodedRow(t0)
			ix.Insert(t0, rows[t0])
		}
		// Delete a random third of the tuples.
		deleted := make(map[int]bool)
		for t0 := 0; t0 < r.Size(); t0++ {
			if rng.Intn(3) == 0 {
				ix.Delete(t0, rows[t0])
				deleted[t0] = true
			}
		}
		ref := core.NewRuleIndex(c)
		for t0 := 0; t0 < r.Size(); t0++ {
			if !deleted[t0] {
				ref.Insert(t0, rows[t0])
			}
		}
		got, want := ix.Violating(), ref.Violating()
		if !equalInts(got, want) {
			t.Fatalf("trial %d: after deletes Violating = %v, rebuilt = %v for %s", trial, got, want, c.Format(r))
		}
		if ix.BadTuples() != len(got) {
			t.Fatalf("trial %d: BadTuples = %d, |Violating| = %d", trial, ix.BadTuples(), len(got))
		}
		// Per-tuple lookup agrees with the snapshot.
		inSnap := make(map[int]bool, len(got))
		for _, id := range got {
			inSnap[id] = true
		}
		for t0 := 0; t0 < r.Size(); t0++ {
			is := !deleted[t0] && ix.IsViolating(t0, rows[t0])
			if is != inSnap[t0] {
				t.Fatalf("trial %d: IsViolating(%d) = %v, snapshot says %v", trial, t0, is, inSnap[t0])
			}
		}
	}
}
