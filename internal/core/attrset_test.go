package core

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(1, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, a := range []int{1, 3, 5} {
		if !s.Has(a) {
			t.Errorf("Has(%d) = false, want true", a)
		}
	}
	for _, a := range []int{0, 2, 4, 6} {
		if s.Has(a) {
			t.Errorf("Has(%d) = true, want false", a)
		}
	}
	if got := s.Attrs(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Attrs() = %v, want [1 3 5]", got)
	}
	if s.First() != 1 || s.Last() != 5 {
		t.Errorf("First/Last = %d/%d, want 1/5", s.First(), s.Last())
	}
	if s.String() != "{1,3,5}" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestAttrSetEmpty(t *testing.T) {
	var s AttrSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero AttrSet should be empty")
	}
	if s.First() != -1 || s.Last() != -1 {
		t.Errorf("First/Last on empty = %d/%d, want -1/-1", s.First(), s.Last())
	}
	if s.String() != "{}" {
		t.Errorf("String() = %q, want {}", s.String())
	}
}

func TestAttrSetAddRemove(t *testing.T) {
	s := EmptyAttrSet.Add(2).Add(4).Add(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s = s.Remove(2)
	if s.Has(2) || !s.Has(4) {
		t.Errorf("after Remove(2): %v", s)
	}
	s = s.Remove(63)
	if s.Len() != 1 {
		t.Errorf("removing absent attribute changed the set: %v", s)
	}
}

func TestAttrSetSetOps(t *testing.T) {
	a := NewAttrSet(0, 1, 2)
	b := NewAttrSet(1, 2, 3)
	if got := a.Union(b); got != NewAttrSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewAttrSet(1, 2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != NewAttrSet(0) {
		t.Errorf("Diff = %v", got)
	}
	if !NewAttrSet(1).SubsetOf(a) || NewAttrSet(3).SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !NewAttrSet(0, 1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf wrong")
	}
	if !a.Intersects(b) || a.Intersects(NewAttrSet(5)) {
		t.Error("Intersects wrong")
	}
}

func TestFullAttrSet(t *testing.T) {
	if FullAttrSet(0) != 0 {
		t.Error("FullAttrSet(0) should be empty")
	}
	if got := FullAttrSet(3); got != NewAttrSet(0, 1, 2) {
		t.Errorf("FullAttrSet(3) = %v", got)
	}
	if FullAttrSet(64).Len() != 64 {
		t.Errorf("FullAttrSet(64).Len() = %d", FullAttrSet(64).Len())
	}
}

func TestAttrSetSubsets(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	seen := make(map[AttrSet]bool)
	s.Subsets(func(sub AttrSet) bool {
		if !sub.SubsetOf(s) {
			t.Errorf("subset %v not contained in %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("subset %v enumerated twice", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Errorf("enumerated %d subsets, want 8", len(seen))
	}
	// Early termination.
	count := 0
	s.Subsets(func(AttrSet) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early termination visited %d subsets, want 3", count)
	}
}

func TestAttrSetImmediateSubsets(t *testing.T) {
	s := NewAttrSet(1, 4, 7)
	got := make(map[int]AttrSet)
	s.ImmediateSubsets(func(removed int, sub AttrSet) bool {
		got[removed] = sub
		return true
	})
	if len(got) != 3 {
		t.Fatalf("got %d immediate subsets, want 3", len(got))
	}
	for _, a := range []int{1, 4, 7} {
		sub, ok := got[a]
		if !ok {
			t.Errorf("missing immediate subset removing %d", a)
			continue
		}
		if sub != s.Remove(a) {
			t.Errorf("immediate subset for %d = %v, want %v", a, sub, s.Remove(a))
		}
	}
}

func TestAttrSetForEachOrder(t *testing.T) {
	s := NewAttrSet(9, 3, 40)
	var order []int
	s.ForEach(func(a int) { order = append(order, a) })
	if len(order) != 3 || order[0] != 3 || order[1] != 9 || order[2] != 40 {
		t.Errorf("ForEach order = %v, want ascending [3 9 40]", order)
	}
}

func TestAttrSetProperties(t *testing.T) {
	// Union is commutative and Len of union is bounded by sum of lengths.
	f := func(x, y uint16) bool {
		a, b := AttrSet(x), AttrSet(y)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b).Len() > a.Len()+b.Len() {
			return false
		}
		if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
			return false
		}
		if !a.Diff(b).SubsetOf(a) || a.Diff(b).Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrSetAttrsRoundTrip(t *testing.T) {
	f := func(x uint32) bool {
		s := AttrSet(x)
		return NewAttrSet(s.Attrs()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
