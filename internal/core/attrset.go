package core

import (
	"math/bits"
	"strings"
)

// MaxArity is the maximum number of attributes supported by AttrSet.
const MaxArity = 64

// AttrSet is a set of attribute indexes represented as a 64-bit bitset.
// Attribute i is a member iff bit i is set.
type AttrSet uint64

// EmptyAttrSet is the empty attribute set.
const EmptyAttrSet AttrSet = 0

// SingleAttr returns the set containing only attribute a.
func SingleAttr(a int) AttrSet { return AttrSet(1) << uint(a) }

// FullAttrSet returns the set {0, 1, ..., n-1}.
func FullAttrSet(n int) AttrSet {
	if n >= MaxArity {
		return ^AttrSet(0)
	}
	return (AttrSet(1) << uint(n)) - 1
}

// NewAttrSet returns the set containing the given attribute indexes.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s |= SingleAttr(a)
	}
	return s
}

// Has reports whether attribute a is in the set.
func (s AttrSet) Has(a int) bool { return s&SingleAttr(a) != 0 }

// Add returns the set with attribute a added.
func (s AttrSet) Add(a int) AttrSet { return s | SingleAttr(a) }

// Remove returns the set with attribute a removed.
func (s AttrSet) Remove(a int) AttrSet { return s &^ SingleAttr(a) }

// Union returns the union of s and t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns the intersection of s and t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Diff returns the set difference s \ t.
func (s AttrSet) Diff(t AttrSet) AttrSet { return s &^ t }

// IsEmpty reports whether the set is empty.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Len returns the number of attributes in the set.
func (s AttrSet) Len() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether every member of s is also in t.
func (s AttrSet) SubsetOf(t AttrSet) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s is a subset of t and s != t.
func (s AttrSet) ProperSubsetOf(t AttrSet) bool { return s != t && s.SubsetOf(t) }

// Intersects reports whether s and t share at least one attribute.
func (s AttrSet) Intersects(t AttrSet) bool { return s&t != 0 }

// Attrs returns the members of the set in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// First returns the smallest attribute in the set, or -1 when empty.
func (s AttrSet) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Last returns the largest attribute in the set, or -1 when empty.
func (s AttrSet) Last() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// ForEach calls fn for each attribute in ascending order.
func (s AttrSet) ForEach(fn func(a int)) {
	for v := uint64(s); v != 0; v &= v - 1 {
		fn(bits.TrailingZeros64(v))
	}
}

// Subsets calls fn for every subset of s, including the empty set and s itself.
// Iteration order is unspecified. If fn returns false, iteration stops.
func (s AttrSet) Subsets(fn func(sub AttrSet) bool) {
	sub := uint64(s)
	for {
		if !fn(AttrSet(sub)) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & uint64(s)
	}
}

// ImmediateSubsets calls fn once for every subset of s obtained by removing a
// single attribute (in ascending order of the removed attribute). If fn returns
// false, iteration stops.
func (s AttrSet) ImmediateSubsets(fn func(removed int, sub AttrSet) bool) {
	for v := uint64(s); v != 0; v &= v - 1 {
		a := bits.TrailingZeros64(v)
		if !fn(a, s.Remove(a)) {
			return
		}
	}
}

// String renders the set as "{1,3,5}" using attribute indexes.
func (s AttrSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(a int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(itoa(a))
	})
	b.WriteByte('}')
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
