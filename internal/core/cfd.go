package core

import (
	"sort"
	"strings"
)

// CFD is an encoded conditional functional dependency (X → A, tp): LHS is the
// attribute set X, RHS the single attribute A, and Tp the pattern tuple whose
// entries are meaningful on X ∪ {A} (constants or Wildcard).
type CFD struct {
	LHS AttrSet
	RHS int
	Tp  Pattern
}

// IsTrivial reports whether the CFD is trivial, i.e. its RHS attribute also
// appears in its LHS.
func (c CFD) IsTrivial() bool { return c.LHS.Has(c.RHS) }

// IsConstant reports whether the CFD is a constant CFD: every pattern entry
// over LHS ∪ {RHS} is a constant.
func (c CFD) IsConstant() bool {
	return c.Tp[c.RHS] != Wildcard && c.Tp.IsConstant(c.LHS)
}

// IsVariable reports whether the CFD is a variable CFD: the RHS pattern entry
// is the unnamed variable.
func (c CFD) IsVariable() bool { return c.Tp[c.RHS] == Wildcard }

// Attrs returns LHS ∪ {RHS}.
func (c CFD) Attrs() AttrSet { return c.LHS.Add(c.RHS) }

// Key returns a canonical string key identifying the CFD (LHS, RHS and the
// pattern restricted to LHS ∪ {RHS}), suitable for deduplication across
// algorithms.
func (c CFD) Key() string {
	var b strings.Builder
	b.WriteString(c.LHS.String())
	b.WriteString("->")
	b.WriteString(itoa(c.RHS))
	b.WriteByte('|')
	b.WriteString(c.Tp.Key(c.Attrs()))
	return b.String()
}

// Format renders the CFD in the paper's notation using the relation's schema
// and dictionaries, e.g. "([CC,AC] -> CT, (01, 908 || MH))".
func (c CFD) Format(r *Relation) string {
	var b strings.Builder
	b.WriteString("([")
	first := true
	c.LHS.ForEach(func(a int) {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString(r.Schema().Name(a))
	})
	b.WriteString("] -> ")
	b.WriteString(r.Schema().Name(c.RHS))
	b.WriteString(", (")
	first = true
	c.LHS.ForEach(func(a int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		if c.Tp[a] == Wildcard {
			b.WriteByte('_')
		} else {
			b.WriteString(r.Dict(a).Value(c.Tp[a]))
		}
	})
	b.WriteString(" || ")
	if c.Tp[c.RHS] == Wildcard {
		b.WriteByte('_')
	} else {
		b.WriteString(r.Dict(c.RHS).Value(c.Tp[c.RHS]))
	}
	b.WriteString("))")
	return b.String()
}

// Satisfies reports whether r ⊨ c under the exact pair semantics of the paper:
// for every pair of tuples t1, t2 (including t1 = t2), if t1[X] = t2[X] ≼ tp[X]
// then t1[A] = t2[A] ≼ tp[A].
func Satisfies(r *Relation, c CFD) bool {
	if c.IsTrivial() {
		// A trivial CFD holds iff either its two occurrences of the RHS pattern
		// agree, or no tuple matches its LHS pattern. With a single stored
		// pattern entry per attribute the two occurrences always agree.
		return true
	}
	rhsConst := c.Tp[c.RHS]
	groups := make(map[string]int32)
	var keyBuf []byte
	attrs := c.LHS.Attrs()
	for t := 0; t < r.Size(); t++ {
		if !c.Tp.MatchesTuple(r, t, c.LHS) {
			continue
		}
		av := r.Value(t, c.RHS)
		if rhsConst != Wildcard && av != rhsConst {
			return false
		}
		keyBuf = keyBuf[:0]
		for _, a := range attrs {
			keyBuf = appendCode(keyBuf, r.Value(t, a))
		}
		k := string(keyBuf)
		if prev, ok := groups[k]; ok {
			if prev != av {
				return false
			}
		} else {
			groups[k] = av
		}
	}
	return true
}

// Violations returns the indexes of tuples involved in at least one violation
// of c in r, in ascending order. A tuple t violates a constant-RHS CFD on its
// own when it matches the LHS pattern but t[A] differs from the RHS constant;
// a pair (t1, t2) violates a variable-RHS CFD when both match the LHS pattern,
// agree on the LHS attributes, and disagree on the RHS attribute.
func Violations(r *Relation, c CFD) []int {
	if c.IsTrivial() {
		return nil
	}
	ix := NewRuleIndex(c)
	row := make([]int32, r.Arity())
	attrs := c.Attrs().Attrs()
	for t := 0; t < r.Size(); t++ {
		for _, a := range attrs {
			row[a] = r.Value(t, a)
		}
		ix.Insert(t, row)
	}
	return ix.Violating()
}

// Support returns |sup(c, r)|: the number of tuples matching the pattern of c
// on LHS ∪ {RHS}.
func Support(r *Relation, c CFD) int {
	return r.CountMatching(c.Attrs(), c.Tp)
}

// LHSConstantSupport returns the support of the constant part of the LHS
// pattern of c, which is the quantity the paper uses to define k-frequency of
// lattice elements (§4.2).
func LHSConstantSupport(r *Relation, c CFD) int {
	constAttrs := c.Tp.ConstAttrs(c.LHS)
	return r.CountMatching(constAttrs, c.Tp)
}

// IsKFrequent reports whether c is k-frequent in r: sup(c, r) ≥ k.
func IsKFrequent(r *Relation, c CFD, k int) bool {
	return Support(r, c) >= k
}

// IsLeftReduced reports whether c is left-reduced on r per §2.2.1:
//
//   - constant CFD (X → A, (tp ‖ a)): no proper subset Y ⊊ X satisfies
//     (Y → A, (tp[Y] ‖ a));
//   - variable CFD (X → A, (tp ‖ _)): (1) no proper subset Y ⊊ X satisfies
//     (Y → A, (tp[Y] ‖ _)), and (2) no strictly more general LHS pattern t'p
//     (some constant upgraded to "_") satisfies (X → A, (t'p ‖ _)).
//
// Because satisfaction is monotone when attributes are added to the LHS (with
// the same restricted pattern) and when LHS patterns are specialised, checking
// immediate subsets and single-constant upgrades is sufficient.
func IsLeftReduced(r *Relation, c CFD) bool {
	reduced := true
	c.LHS.ImmediateSubsets(func(_ int, sub AttrSet) bool {
		smaller := CFD{LHS: sub, RHS: c.RHS, Tp: c.Tp}
		if Satisfies(r, smaller) {
			reduced = false
			return false
		}
		return true
	})
	if !reduced {
		return false
	}
	if c.IsVariable() {
		constAttrs := c.Tp.ConstAttrs(c.LHS)
		ok := true
		constAttrs.ForEach(func(a int) {
			if !ok {
				return
			}
			up := c.Tp.Clone()
			up[a] = Wildcard
			if Satisfies(r, CFD{LHS: c.LHS, RHS: c.RHS, Tp: up}) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// IsMinimal reports whether c is a minimal CFD on r: nontrivial, satisfied by
// r, and left-reduced.
func IsMinimal(r *Relation, c CFD) bool {
	return !c.IsTrivial() && Satisfies(r, c) && IsLeftReduced(r, c)
}

// SortCFDs sorts a slice of CFDs by their canonical key, for deterministic
// output and easy comparison in tests.
func SortCFDs(cfds []CFD) {
	sort.Slice(cfds, func(i, j int) bool { return cfds[i].Key() < cfds[j].Key() })
}

// DedupCFDs returns cfds with duplicates (by canonical key) removed, preserving
// the first occurrence of each.
func DedupCFDs(cfds []CFD) []CFD {
	seen := make(map[string]bool, len(cfds))
	out := cfds[:0]
	for _, c := range cfds {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// appendCode appends the little-endian bytes of v to buf; used to build
// composite map keys from encoded values.
func appendCode(buf []byte, v int32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
