package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// mk builds a CFD over the cust relation from attribute names and string
// pattern values; "_" denotes the unnamed variable.
func mk(t *testing.T, r *core.Relation, lhs []string, lhsPat []string, rhs, rhsPat string) core.CFD {
	t.Helper()
	s := r.Schema()
	X, err := s.AttrSetOf(lhs...)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := s.Index(rhs)
	if !ok {
		t.Fatalf("unknown RHS %q", rhs)
	}
	p := core.NewPattern(s.Arity())
	for i, name := range lhs {
		idx, _ := s.Index(name)
		if lhsPat[i] != "_" {
			code, ok := r.Dict(idx).Lookup(lhsPat[i])
			if !ok {
				t.Fatalf("value %q not in domain of %s", lhsPat[i], name)
			}
			p[idx] = code
		}
	}
	if rhsPat != "_" {
		code, ok := r.Dict(a).Lookup(rhsPat)
		if !ok {
			t.Fatalf("value %q not in domain of %s", rhsPat, rhs)
		}
		p[a] = code
	}
	return core.CFD{LHS: X, RHS: a, Tp: p}
}

// TestPaperExample1And3 verifies satisfaction of every CFD named in Examples 1
// and 3 of the paper against the Fig. 1 instance.
func TestPaperExample1And3(t *testing.T) {
	r := fixture.Cust()

	f1 := mk(t, r, []string{"CC", "AC"}, []string{"_", "_"}, "CT", "_")
	f2 := mk(t, r, []string{"CC", "AC", "PN"}, []string{"_", "_", "_"}, "STR", "_")
	phi0 := mk(t, r, []string{"CC", "ZIP"}, []string{"44", "_"}, "STR", "_")
	phi1 := mk(t, r, []string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	phi2 := mk(t, r, []string{"CC", "AC"}, []string{"44", "131"}, "CT", "EDI")
	phi3 := mk(t, r, []string{"CC", "AC"}, []string{"01", "212"}, "CT", "NYC")

	for name, c := range map[string]core.CFD{"f1": f1, "f2": f2, "phi0": phi0, "phi1": phi1, "phi2": phi2, "phi3": phi3} {
		if !core.Satisfies(r, c) {
			t.Errorf("%s should be satisfied: %s", name, c.Format(r))
		}
	}

	// Example 3: psi = ([CC,ZIP] -> STR, (_,_||_)) is violated, among others, by
	// the pair t1, t4 (paper's example); the groups (01,07974) -> {t1,t2,t4} and
	// (01,01202) -> {t3,t8} both disagree on STR, so Violations reports all five.
	psi := mk(t, r, []string{"CC", "ZIP"}, []string{"_", "_"}, "STR", "_")
	if core.Satisfies(r, psi) {
		t.Errorf("psi should be violated: %s", psi.Format(r))
	}
	v := core.Violations(r, psi)
	want := []int{0, 1, 2, 3, 7}
	if len(v) != len(want) {
		t.Fatalf("violations of psi = %v, want %v", v, want)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("violations of psi = %v, want %v", v, want)
		}
	}
	// psi' = (AC -> CT, (131||EDI)): t8 violates it on its own (single-tuple
	// violation); t5 and t6 are each involved in a violating pair with t8.
	psiP := mk(t, r, []string{"AC"}, []string{"131"}, "CT", "EDI")
	if core.Satisfies(r, psiP) {
		t.Errorf("psi' should be violated: %s", psiP.Format(r))
	}
	v = core.Violations(r, psiP)
	if len(v) != 3 || v[0] != 4 || v[1] != 5 || v[2] != 7 {
		t.Errorf("violations of psi' = %v, want [4 5 7]", v)
	}
}

// TestPaperExample5 verifies the minimality claims of Example 5.
func TestPaperExample5(t *testing.T) {
	r := fixture.Cust()

	phi2 := mk(t, r, []string{"CC", "AC"}, []string{"44", "131"}, "CT", "EDI")
	if !core.IsMinimal(r, phi2) {
		t.Errorf("phi2 should be a minimal constant CFD")
	}
	f1 := mk(t, r, []string{"CC", "AC"}, []string{"_", "_"}, "CT", "_")
	f2 := mk(t, r, []string{"CC", "AC", "PN"}, []string{"_", "_", "_"}, "STR", "_")
	phi0 := mk(t, r, []string{"CC", "ZIP"}, []string{"44", "_"}, "STR", "_")
	for name, c := range map[string]core.CFD{"f1": f1, "f2": f2, "phi0": phi0} {
		if !core.IsMinimal(r, c) {
			t.Errorf("%s should be a minimal variable CFD", name)
		}
	}
	// phi3 is not minimal: CC can be dropped.
	phi3 := mk(t, r, []string{"CC", "AC"}, []string{"01", "212"}, "CT", "NYC")
	if core.IsLeftReduced(r, phi3) {
		t.Errorf("phi3 should not be left-reduced")
	}
	// phi1 is not minimal: CC can be dropped since (AC -> CT, (908||MH)) holds.
	phi1 := mk(t, r, []string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	if core.IsLeftReduced(r, phi1) {
		t.Errorf("phi1 should not be left-reduced")
	}
	dropped := mk(t, r, []string{"AC"}, []string{"908"}, "CT", "MH")
	if !core.IsMinimal(r, dropped) {
		t.Errorf("(AC -> CT, (908||MH)) should be minimal")
	}
	// f1 with partially-constant patterns (the f1^i of Example 5) hold but are
	// not left-reduced because the constants can be upgraded to "_".
	variants := [][2][]string{
		{{"01", "_"}, nil}, {{"44", "_"}, nil}, {{"_", "908"}, nil}, {{"_", "212"}, nil}, {{"_", "131"}, nil},
	}
	for _, v := range variants {
		c := mk(t, r, []string{"CC", "AC"}, v[0], "CT", "_")
		if !core.Satisfies(r, c) {
			t.Errorf("variant %v of f1 should hold", v[0])
		}
		if core.IsLeftReduced(r, c) {
			t.Errorf("variant %v of f1 should not be left-reduced (pattern not most general)", v[0])
		}
	}
}

// TestSupportAndFrequency verifies the support figures quoted in §2.2.2.
func TestSupportAndFrequency(t *testing.T) {
	r := fixture.Cust()
	phi1 := mk(t, r, []string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	phi2 := mk(t, r, []string{"CC", "AC"}, []string{"44", "131"}, "CT", "EDI")
	f1 := mk(t, r, []string{"CC", "AC"}, []string{"_", "_"}, "CT", "_")
	f2 := mk(t, r, []string{"CC", "AC", "PN"}, []string{"_", "_", "_"}, "STR", "_")

	if got := core.Support(r, phi1); got != 3 {
		t.Errorf("sup(phi1) = %d, want 3", got)
	}
	if got := core.Support(r, phi2); got != 2 {
		t.Errorf("sup(phi2) = %d, want 2", got)
	}
	if got := core.Support(r, f1); got != 8 {
		t.Errorf("sup(f1) = %d, want 8", got)
	}
	if got := core.Support(r, f2); got != 8 {
		t.Errorf("sup(f2) = %d, want 8", got)
	}
	if !core.IsKFrequent(r, phi1, 3) || core.IsKFrequent(r, phi1, 4) {
		t.Error("phi1 should be 3-frequent but not 4-frequent")
	}
	if got := core.LHSConstantSupport(r, f1); got != 8 {
		t.Errorf("LHS constant support of f1 = %d, want 8 (no constants)", got)
	}
	if got := core.LHSConstantSupport(r, phi1); got != 3 {
		t.Errorf("LHS constant support of phi1 = %d, want 3", got)
	}
}

func TestTrivialCFD(t *testing.T) {
	r := fixture.Cust()
	c := mk(t, r, []string{"CC", "AC"}, []string{"_", "_"}, "CC", "_")
	if !c.IsTrivial() {
		t.Fatal("CFD with RHS in LHS must be trivial")
	}
	if !core.Satisfies(r, c) {
		t.Error("trivial CFD with consistent pattern is satisfied by definition")
	}
	if core.IsMinimal(r, c) {
		t.Error("trivial CFDs are never minimal")
	}
	if core.Violations(r, c) != nil {
		t.Error("trivial CFD should report no violations")
	}
}

func TestCFDClassification(t *testing.T) {
	r := fixture.Cust()
	constant := mk(t, r, []string{"AC"}, []string{"908"}, "CT", "MH")
	variable := mk(t, r, []string{"CC", "AC"}, []string{"44", "_"}, "CT", "_")
	mixed := mk(t, r, []string{"AC"}, []string{"_"}, "CT", "MH")
	if !constant.IsConstant() || constant.IsVariable() {
		t.Error("constant CFD misclassified")
	}
	if variable.IsConstant() || !variable.IsVariable() {
		t.Error("variable CFD misclassified")
	}
	if mixed.IsConstant() || mixed.IsVariable() {
		t.Error("constant-RHS CFD with wildcard LHS is neither constant nor variable")
	}
}

func TestCFDKeyAndDedup(t *testing.T) {
	r := fixture.Cust()
	a := mk(t, r, []string{"AC"}, []string{"908"}, "CT", "MH")
	b := mk(t, r, []string{"AC"}, []string{"908"}, "CT", "MH")
	c := mk(t, r, []string{"AC"}, []string{"131"}, "CT", "EDI")
	if a.Key() != b.Key() {
		t.Error("identical CFDs must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("different CFDs must not share a key")
	}
	list := core.DedupCFDs([]core.CFD{a, b, c})
	if len(list) != 2 {
		t.Errorf("DedupCFDs kept %d, want 2", len(list))
	}
	core.SortCFDs(list)
	if list[0].Key() > list[1].Key() {
		t.Error("SortCFDs did not sort by key")
	}
}

func TestFormat(t *testing.T) {
	r := fixture.Cust()
	c := mk(t, r, []string{"CC", "AC"}, []string{"01", "_"}, "CT", "MH")
	got := c.Format(r)
	want := "([CC,AC] -> CT, (01, _ || MH))"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}

// TestSatisfiesEmptyLHS covers CFDs with an empty left-hand side: (∅ -> A, (||a))
// holds iff every tuple has A = a; (∅ -> A, (||_)) holds iff A is constant in r.
func TestSatisfiesEmptyLHS(t *testing.T) {
	r := core.NewRelation(core.MustSchema("A", "B"))
	for _, row := range [][]string{{"1", "x"}, {"2", "x"}, {"3", "x"}} {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	p := core.NewPattern(2)
	cVar := core.CFD{LHS: core.EmptyAttrSet, RHS: 1, Tp: p.Clone()}
	if !core.Satisfies(r, cVar) {
		t.Error("(∅ -> B, (||_)) should hold: B is constant")
	}
	code, _ := r.Dict(1).Lookup("x")
	pc := p.Clone()
	pc[1] = code
	cConst := core.CFD{LHS: core.EmptyAttrSet, RHS: 1, Tp: pc}
	if !core.Satisfies(r, cConst) {
		t.Error("(∅ -> B, (||x)) should hold")
	}
	cVarA := core.CFD{LHS: core.EmptyAttrSet, RHS: 0, Tp: p.Clone()}
	if core.Satisfies(r, cVarA) {
		t.Error("(∅ -> A, (||_)) should be violated: A is not constant")
	}
}

// TestViolationsConstantRHS checks single-tuple violations for constant CFDs.
func TestViolationsConstantRHS(t *testing.T) {
	r := fixture.Cust()
	c := mk(t, r, []string{"CC"}, []string{"44"}, "CT", "EDI")
	// t7 has CC=44 but CT=MH: single-tuple violation. t5, t6 satisfy; the pair
	// {t5,t6} vs t7 also constitutes a variable violation, so t5 and t6 are not
	// reported (they match the RHS constant), only t7 plus pair partners that
	// disagree. With grouping by CC, all of t5,t6,t7 share the LHS value and
	// disagree on CT, so the whole group is reported alongside the single-tuple
	// violation of t7.
	v := core.Violations(r, c)
	if len(v) != 3 || v[0] != 4 || v[1] != 5 || v[2] != 6 {
		t.Errorf("violations = %v, want [4 5 6]", v)
	}
	if core.Satisfies(r, c) {
		t.Error("CFD should not be satisfied")
	}
}
