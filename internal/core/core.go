// Package core provides the encoded data model shared by every CFD discovery
// algorithm in this repository: dictionary-encoded relations, attribute bitsets,
// pattern tuples over encoded values, and the exact satisfaction, support and
// violation primitives of conditional functional dependencies.
//
// All discovery algorithms (CFDMiner, CTANE, FastCFD, NaiveFast, TANE, FastFD)
// operate on this representation. The public packages cfd, discovery, dataset
// and cleaning translate between user-facing strings and the encoded form.
//
// Encoding conventions:
//
//   - Every attribute column is stored column-major as []int32 codes over a
//     per-attribute dictionary (see Dict). Codes are dense, starting at 0.
//   - The unnamed variable "_" of a CFD pattern tuple is the code Wildcard (-1).
//   - Attribute sets are AttrSet bitsets (one uint64), capping the arity at 64,
//     well above the paper's maximum of 31.
package core
