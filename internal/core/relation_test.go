package core

import (
	"errors"
	"testing"
)

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema("A", "B", "A"); !errors.Is(err, ErrDuplicateAttr) {
		t.Errorf("duplicate attr: err = %v, want ErrDuplicateAttr", err)
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty attribute name should be rejected")
	}
	many := make([]string, 65)
	for i := range many {
		many[i] = "A" + itoa(i)
	}
	if _, err := NewSchema(many...); !errors.Is(err, ErrArityTooLarge) {
		t.Errorf("65 attrs: err = %v, want ErrArityTooLarge", err)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema("CC", "AC", "PN")
	if s.Arity() != 3 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if i, ok := s.Index("AC"); !ok || i != 1 {
		t.Errorf("Index(AC) = %d,%v", i, ok)
	}
	if _, ok := s.Index("XX"); ok {
		t.Error("Index(XX) should not be found")
	}
	set, err := s.AttrSetOf("CC", "PN")
	if err != nil || set != NewAttrSet(0, 2) {
		t.Errorf("AttrSetOf = %v, %v", set, err)
	}
	if _, err := s.AttrSetOf("NOPE"); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("unknown attr err = %v", err)
	}
	if s.All() != NewAttrSet(0, 1, 2) {
		t.Errorf("All = %v", s.All())
	}
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) != "CC" {
		t.Error("Names() must return a copy")
	}
}

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict()
	a := d.Encode("x")
	b := d.Encode("y")
	if a == b {
		t.Fatal("distinct values must get distinct codes")
	}
	if d.Encode("x") != a {
		t.Error("re-encoding must be stable")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	if d.Value(a) != "x" || d.Value(b) != "y" {
		t.Error("Value round trip failed")
	}
	if c, ok := d.Lookup("x"); !ok || c != a {
		t.Error("Lookup failed")
	}
	if _, ok := d.Lookup("z"); ok {
		t.Error("Lookup of absent value should fail")
	}
}

func TestRelationAppendAndAccess(t *testing.T) {
	r := NewRelation(MustSchema("A", "B"))
	if err := r.AppendRow([]string{"1", "x"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow([]string{"2", "x"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow([]string{"1"}); err == nil {
		t.Error("short row should be rejected")
	}
	if r.Size() != 2 || r.Arity() != 2 {
		t.Fatalf("Size/Arity = %d/%d", r.Size(), r.Arity())
	}
	if r.ValueString(0, 0) != "1" || r.ValueString(1, 1) != "x" {
		t.Error("ValueString round trip failed")
	}
	if r.Value(0, 1) != r.Value(1, 1) {
		t.Error("equal strings must share a code")
	}
	if r.DomainSize(0) != 2 || r.DomainSize(1) != 1 {
		t.Errorf("DomainSize = %d/%d", r.DomainSize(0), r.DomainSize(1))
	}
	row := r.Row(1)
	if len(row) != 2 || row[0] != "2" || row[1] != "x" {
		t.Errorf("Row(1) = %v", row)
	}
	coded := r.CodedRow(0)
	if len(coded) != 2 || coded[0] != r.Value(0, 0) {
		t.Errorf("CodedRow = %v", coded)
	}
}

func TestRelationAppendIntRow(t *testing.T) {
	r := NewRelation(MustSchema("A", "B"))
	if err := r.AppendIntRow([]int{7, 9}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendRow([]string{"7", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendIntRow([]int{7}); err == nil {
		t.Error("short int row should be rejected")
	}
	if r.Value(0, 0) != r.Value(1, 0) {
		t.Error("int 7 and string \"7\" must encode identically")
	}
}

func TestRelationRestrictAndHead(t *testing.T) {
	r := NewRelation(MustSchema("A", "B", "C"))
	rows := [][]string{{"1", "x", "p"}, {"2", "y", "q"}, {"3", "z", "r"}}
	for _, row := range rows {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := r.Restrict(NewAttrSet(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Arity() != 2 || sub.Schema().Name(1) != "C" {
		t.Fatalf("Restrict schema wrong: %v", sub.Schema().Names())
	}
	if sub.ValueString(1, 1) != "q" {
		t.Errorf("Restrict values wrong: %q", sub.ValueString(1, 1))
	}
	h := r.Head(2)
	if h.Size() != 2 || h.ValueString(1, 1) != "y" {
		t.Errorf("Head wrong: size=%d", h.Size())
	}
	if r.Head(99).Size() != 3 {
		t.Error("Head beyond size must return whole relation")
	}
}

func TestMatchingTuples(t *testing.T) {
	r := NewRelation(MustSchema("A", "B"))
	data := [][]string{{"1", "x"}, {"1", "y"}, {"2", "x"}, {"1", "x"}}
	for _, row := range data {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	p := NewPattern(2)
	p[0], _ = r.Dict(0).Lookup("1")
	tids := r.MatchingTuples(NewAttrSet(0), p)
	if len(tids) != 3 {
		t.Errorf("matching A=1: %v", tids)
	}
	if got := r.CountMatching(NewAttrSet(0), p); got != 3 {
		t.Errorf("CountMatching = %d", got)
	}
	p[1], _ = r.Dict(1).Lookup("x")
	tids = r.MatchingTuples(NewAttrSet(0, 1), p)
	if len(tids) != 2 || tids[0] != 0 || tids[1] != 3 {
		t.Errorf("matching A=1,B=x: %v", tids)
	}
	// Wildcards and the empty attribute set match everything.
	if got := len(r.MatchingTuples(EmptyAttrSet, NewPattern(2))); got != 4 {
		t.Errorf("empty set should match all tuples, got %d", got)
	}
	if got := len(r.MatchingTuples(NewAttrSet(0, 1), NewPattern(2))); got != 4 {
		t.Errorf("all-wildcard pattern should match all tuples, got %d", got)
	}
}
