package core

import (
	"testing"
	"testing/quick"
)

func newTestRelation(t *testing.T) *Relation {
	t.Helper()
	r := NewRelation(MustSchema("A", "B", "C"))
	for _, row := range [][]string{
		{"1", "x", "p"},
		{"1", "y", "p"},
		{"2", "x", "q"},
	} {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestPatternMatchesTuple(t *testing.T) {
	r := newTestRelation(t)
	p := NewPattern(3)
	p[0], _ = r.Dict(0).Lookup("1")
	X := NewAttrSet(0, 1)
	if !p.MatchesTuple(r, 0, X) || !p.MatchesTuple(r, 1, X) {
		t.Error("tuples 0 and 1 should match A=1, B=_")
	}
	if p.MatchesTuple(r, 2, X) {
		t.Error("tuple 2 should not match A=1")
	}
	// Matching only consults attributes in X.
	p[2] = 999
	if !p.MatchesTuple(r, 0, X) {
		t.Error("attributes outside X must be ignored")
	}
}

func TestPatternConstAndWildcardAttrs(t *testing.T) {
	p := NewPattern(4)
	p[1] = 5
	p[3] = 0
	X := NewAttrSet(0, 1, 2, 3)
	if got := p.ConstAttrs(X); got != NewAttrSet(1, 3) {
		t.Errorf("ConstAttrs = %v", got)
	}
	if got := p.WildcardAttrs(X); got != NewAttrSet(0, 2) {
		t.Errorf("WildcardAttrs = %v", got)
	}
	if p.IsConstant(NewAttrSet(1, 3)) != true {
		t.Error("IsConstant over constant attrs should be true")
	}
	if p.IsConstant(X) {
		t.Error("IsConstant over all attrs should be false")
	}
	if !NewPattern(4).IsConstant(EmptyAttrSet) {
		t.Error("any pattern is constant over the empty attribute set")
	}
}

func TestPatternGenerality(t *testing.T) {
	X := NewAttrSet(0, 1, 2)
	general := NewPattern(3) // (_, _, _)
	specific := Pattern{4, Wildcard, 7}
	other := Pattern{5, Wildcard, 7}

	if !general.MoreGeneralOrEqualOn(specific, X) {
		t.Error("all-wildcard should be more general than any pattern")
	}
	if specific.MoreGeneralOrEqualOn(general, X) {
		t.Error("specific pattern is not more general than all-wildcard")
	}
	if !general.StrictlyMoreGeneralOn(specific, X) {
		t.Error("all-wildcard should be strictly more general")
	}
	if specific.MoreGeneralOrEqualOn(other, X) || other.MoreGeneralOrEqualOn(specific, X) {
		t.Error("patterns with different constants are incomparable")
	}
	if !specific.MoreGeneralOrEqualOn(specific, X) || specific.StrictlyMoreGeneralOn(specific, X) {
		t.Error("a pattern is more-general-or-equal but not strictly more general than itself")
	}
	if !specific.EqualOn(specific.Clone(), X) {
		t.Error("clone must be equal on X")
	}
}

func TestPatternKeyDistinguishes(t *testing.T) {
	X := NewAttrSet(0, 2)
	p := Pattern{1, 9, Wildcard}
	q := Pattern{1, 9, 3}
	if p.Key(X) == q.Key(X) {
		t.Error("keys must differ when patterns differ on X")
	}
	if p.Key(X) != (Pattern{1, 0, Wildcard}).Key(X) {
		t.Error("keys must ignore attributes outside X")
	}
}

func TestPatternFormat(t *testing.T) {
	r := newTestRelation(t)
	p := NewPattern(3)
	p[0], _ = r.Dict(0).Lookup("2")
	got := p.Format(r, NewAttrSet(0, 1))
	if got != "(A=2, B=_)" {
		t.Errorf("Format = %q", got)
	}
}

// TestGeneralityIsPartialOrder uses property-based testing to verify that the
// "more general" relation over random 3-attribute patterns is reflexive,
// antisymmetric (up to equality on X) and transitive.
func TestGeneralityIsPartialOrder(t *testing.T) {
	X := NewAttrSet(0, 1, 2)
	gen := func(vals [3]int8) Pattern {
		p := NewPattern(3)
		for i, v := range vals {
			if v >= 0 {
				p[i] = int32(v % 3)
			}
		}
		return p
	}
	f := func(a, b, c [3]int8) bool {
		pa, pb, pc := gen(a), gen(b), gen(c)
		if !pa.MoreGeneralOrEqualOn(pa, X) {
			return false
		}
		if pa.MoreGeneralOrEqualOn(pb, X) && pb.MoreGeneralOrEqualOn(pa, X) && !pa.EqualOn(pb, X) {
			return false
		}
		if pa.MoreGeneralOrEqualOn(pb, X) && pb.MoreGeneralOrEqualOn(pc, X) && !pa.MoreGeneralOrEqualOn(pc, X) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
