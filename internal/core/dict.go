package core

// Dict is a per-attribute dictionary mapping attribute values (strings) to dense
// int32 codes and back. Codes are assigned in first-seen order starting at 0.
type Dict struct {
	codes  map[string]int32
	values []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int32)}
}

// Encode returns the code for v, assigning a fresh one if v was never seen.
func (d *Dict) Encode(v string) int32 {
	if c, ok := d.codes[v]; ok {
		return c
	}
	c := int32(len(d.values))
	d.codes[v] = c
	d.values = append(d.values, v)
	return c
}

// Lookup returns the code for v and whether v is present, without inserting.
func (d *Dict) Lookup(v string) (int32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the string for code c. It panics if c is out of range; callers
// must only pass codes previously returned by Encode.
func (d *Dict) Value(c int32) string {
	return d.values[c]
}

// Size returns the number of distinct values in the dictionary, i.e. the size
// of the active domain of the attribute.
func (d *Dict) Size() int { return len(d.values) }

// Values returns the distinct values in code order. The returned slice is the
// dictionary's backing storage and must not be modified.
func (d *Dict) Values() []string { return d.values }
