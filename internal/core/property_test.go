package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// randomCFD draws a random nontrivial CFD over the relation's schema, with
// constants taken from the active domains.
func randomCFD(rng *rand.Rand, r *core.Relation) core.CFD {
	arity := r.Arity()
	rhs := rng.Intn(arity)
	lhs := core.EmptyAttrSet
	for a := 0; a < arity; a++ {
		if a != rhs && rng.Intn(2) == 0 {
			lhs = lhs.Add(a)
		}
	}
	tp := core.NewPattern(arity)
	lhs.ForEach(func(a int) {
		switch rng.Intn(3) {
		case 0:
			tp[a] = int32(rng.Intn(r.DomainSize(a)))
		default:
			// keep the wildcard
		}
	})
	if rng.Intn(2) == 0 {
		tp[rhs] = int32(rng.Intn(r.DomainSize(rhs)))
	}
	return core.CFD{LHS: lhs, RHS: rhs, Tp: tp}
}

// TestSatisfactionProperties checks, over many random relations and CFDs, the
// structural properties the algorithms rely on:
//
//  1. violations are empty exactly when the CFD is satisfied;
//  2. satisfaction is preserved when a wildcard of the LHS pattern is
//     specialised to a constant (fewer matching tuples, finer groups);
//  3. satisfaction is preserved when an attribute is added to the LHS;
//  4. support never grows when the pattern is specialised;
//  5. minimal CFDs are satisfied and nontrivial.
func TestSatisfactionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		r := fixture.Random(int64(trial), 30+rng.Intn(40), []int{2, 3, 2, 4})
		for i := 0; i < 20; i++ {
			c := randomCFD(rng, r)
			sat := core.Satisfies(r, c)
			viol := core.Violations(r, c)
			if sat != (len(viol) == 0) {
				t.Fatalf("trial %d: Satisfies=%v but %d violations for %s", trial, sat, len(viol), c.Format(r))
			}
			if sat {
				// Specialise one wildcard LHS entry to a constant.
				wild := c.Tp.WildcardAttrs(c.LHS)
				if !wild.IsEmpty() {
					a := wild.Attrs()[rng.Intn(wild.Len())]
					spec := c.Tp.Clone()
					spec[a] = int32(rng.Intn(r.DomainSize(a)))
					if !core.Satisfies(r, core.CFD{LHS: c.LHS, RHS: c.RHS, Tp: spec}) {
						t.Fatalf("trial %d: specialising %s broke satisfaction", trial, c.Format(r))
					}
				}
				// Add an attribute to the LHS.
				outside := r.Schema().All().Diff(c.LHS).Remove(c.RHS)
				if !outside.IsEmpty() {
					a := outside.Attrs()[rng.Intn(outside.Len())]
					if !core.Satisfies(r, core.CFD{LHS: c.LHS.Add(a), RHS: c.RHS, Tp: c.Tp}) {
						t.Fatalf("trial %d: enlarging the LHS of %s broke satisfaction", trial, c.Format(r))
					}
				}
			}
			// Support monotonicity under specialisation.
			wild := c.Tp.WildcardAttrs(c.LHS)
			if !wild.IsEmpty() {
				a := wild.Attrs()[rng.Intn(wild.Len())]
				spec := c.Tp.Clone()
				spec[a] = int32(rng.Intn(r.DomainSize(a)))
				before := core.Support(r, c)
				after := core.Support(r, core.CFD{LHS: c.LHS, RHS: c.RHS, Tp: spec})
				if after > before {
					t.Fatalf("trial %d: support grew from %d to %d under specialisation of %s", trial, before, after, c.Format(r))
				}
			}
			if core.IsMinimal(r, c) {
				if c.IsTrivial() || !sat {
					t.Fatalf("trial %d: IsMinimal accepted a trivial or violated CFD %s", trial, c.Format(r))
				}
				if !core.IsLeftReduced(r, c) {
					t.Fatalf("trial %d: IsMinimal accepted a non-left-reduced CFD %s", trial, c.Format(r))
				}
			}
		}
	}
}

// TestLeftReducedConsistency verifies on random data that a left-reduced,
// satisfied CFD loses satisfaction when any LHS attribute is dropped, and that
// non-left-reduced satisfied CFDs have a satisfied immediate generalisation.
func TestLeftReducedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		r := fixture.RandomCorrelated(int64(trial), 50, 4, 3)
		for i := 0; i < 15; i++ {
			c := randomCFD(rng, r)
			if c.LHS.IsEmpty() || !core.Satisfies(r, c) {
				continue
			}
			if core.IsLeftReduced(r, c) {
				c.LHS.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
					if core.Satisfies(r, core.CFD{LHS: sub, RHS: c.RHS, Tp: c.Tp}) {
						t.Fatalf("trial %d: %s is left-reduced but a subset still satisfies", trial, c.Format(r))
					}
					return true
				})
			} else {
				// Some immediate generalisation (drop an attribute or upgrade a
				// constant) must be satisfied.
				found := false
				c.LHS.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
					if core.Satisfies(r, core.CFD{LHS: sub, RHS: c.RHS, Tp: c.Tp}) {
						found = true
						return false
					}
					return true
				})
				if !found && c.IsVariable() {
					c.Tp.ConstAttrs(c.LHS).ForEach(func(a int) {
						up := c.Tp.Clone()
						up[a] = core.Wildcard
						if core.Satisfies(r, core.CFD{LHS: c.LHS, RHS: c.RHS, Tp: up}) {
							found = true
						}
					})
				}
				if !found {
					t.Fatalf("trial %d: %s reported non-left-reduced but no generalisation holds", trial, c.Format(r))
				}
			}
		}
	}
}
