package core

import (
	"fmt"
	"strconv"
)

// Relation is a dictionary-encoded instance of a Schema. Values are stored
// column-major: Column(a)[t] is the code of tuple t's value for attribute a.
type Relation struct {
	schema *Schema
	cols   [][]int32
	dicts  []*Dict
	size   int
}

// NewRelation returns an empty relation over the given schema.
func NewRelation(schema *Schema) *Relation {
	n := schema.Arity()
	r := &Relation{
		schema: schema,
		cols:   make([][]int32, n),
		dicts:  make([]*Dict, n),
	}
	for i := 0; i < n; i++ {
		r.dicts[i] = NewDict()
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.schema.Arity() }

// Size returns the number of tuples.
func (r *Relation) Size() int { return r.size }

// AppendRow appends one tuple given as strings in schema order, encoding each
// value through the per-attribute dictionary.
func (r *Relation) AppendRow(values []string) error {
	if len(values) != r.Arity() {
		return fmt.Errorf("core: row has %d values, schema has %d attributes", len(values), r.Arity())
	}
	for a, v := range values {
		r.cols[a] = append(r.cols[a], r.dicts[a].Encode(v))
	}
	r.size++
	return nil
}

// AppendIntRow appends one tuple given as integers in schema order. Integers
// are encoded through the same dictionaries as their decimal string form, so
// string- and int-based loading interoperate.
func (r *Relation) AppendIntRow(values []int) error {
	if len(values) != r.Arity() {
		return fmt.Errorf("core: row has %d values, schema has %d attributes", len(values), r.Arity())
	}
	for a, v := range values {
		r.cols[a] = append(r.cols[a], r.dicts[a].Encode(strconv.Itoa(v)))
	}
	r.size++
	return nil
}

// Value returns the encoded value of tuple t for attribute a.
func (r *Relation) Value(t, a int) int32 { return r.cols[a][t] }

// ValueString returns the original string value of tuple t for attribute a.
func (r *Relation) ValueString(t, a int) string { return r.dicts[a].Value(r.cols[a][t]) }

// Column returns the encoded column of attribute a. The returned slice is the
// relation's backing storage and must not be modified.
func (r *Relation) Column(a int) []int32 { return r.cols[a] }

// Dict returns the dictionary of attribute a.
func (r *Relation) Dict(a int) *Dict { return r.dicts[a] }

// DomainSize returns the active-domain size of attribute a.
func (r *Relation) DomainSize(a int) int { return r.dicts[a].Size() }

// Row returns tuple t decoded to strings in schema order.
func (r *Relation) Row(t int) []string {
	out := make([]string, r.Arity())
	for a := range out {
		out[a] = r.ValueString(t, a)
	}
	return out
}

// CodedRow returns tuple t as encoded values in schema order.
func (r *Relation) CodedRow(t int) []int32 {
	out := make([]int32, r.Arity())
	for a := range out {
		out[a] = r.cols[a][t]
	}
	return out
}

// Restrict returns a new relation over a schema containing only the attributes
// in keep (in ascending attribute order), with all tuples re-encoded. It is
// used to build lower-arity projections of generated datasets.
func (r *Relation) Restrict(keep AttrSet) (*Relation, error) {
	attrs := keep.Attrs()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		if a >= r.Arity() {
			return nil, fmt.Errorf("%w: attribute index %d", ErrUnknownAttr, a)
		}
		names[i] = r.schema.Name(a)
	}
	schema, err := NewSchema(names...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(schema)
	row := make([]string, len(attrs))
	for t := 0; t < r.size; t++ {
		for i, a := range attrs {
			row[i] = r.ValueString(t, a)
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Head returns a new relation containing the first n tuples of r (or all of r
// if n exceeds its size). It is used by the benchmark harness to sweep DBSIZE
// from a single generated dataset.
func (r *Relation) Head(n int) *Relation {
	if n > r.size {
		n = r.size
	}
	out := NewRelation(r.schema)
	for t := 0; t < n; t++ {
		_ = out.AppendRow(r.Row(t))
	}
	return out
}

// MatchingTuples returns the tuple indexes whose values match the constants of
// pattern p on the attributes X. Wildcard entries match every value. The empty
// attribute set matches all tuples.
func (r *Relation) MatchingTuples(X AttrSet, p Pattern) []int32 {
	out := make([]int32, 0, r.size)
	attrs := X.Attrs()
	for t := 0; t < r.size; t++ {
		ok := true
		for _, a := range attrs {
			if p[a] != Wildcard && r.cols[a][t] != p[a] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, int32(t))
		}
	}
	return out
}

// CountMatching returns the number of tuples matching the constants of pattern
// p on the attributes X.
func (r *Relation) CountMatching(X AttrSet, p Pattern) int {
	n := 0
	attrs := X.Attrs()
	for t := 0; t < r.size; t++ {
		ok := true
		for _, a := range attrs {
			if p[a] != Wildcard && r.cols[a][t] != p[a] {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}
