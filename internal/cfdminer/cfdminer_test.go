package cfdminer

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/itemset"
)

func mkConstant(t *testing.T, r *core.Relation, lhs []string, lhsVals []string, rhs, rhsVal string) core.CFD {
	t.Helper()
	s := r.Schema()
	X, err := s.AttrSetOf(lhs...)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := s.Index(rhs)
	if !ok {
		t.Fatalf("unknown attribute %q", rhs)
	}
	tp := core.NewPattern(s.Arity())
	for i, name := range lhs {
		idx, _ := s.Index(name)
		v, ok := r.Dict(idx).Lookup(lhsVals[i])
		if !ok {
			t.Fatalf("value %q not in %s", lhsVals[i], name)
		}
		tp[idx] = v
	}
	v, ok := r.Dict(a).Lookup(rhsVal)
	if !ok {
		t.Fatalf("value %q not in %s", rhsVal, rhs)
	}
	tp[a] = v
	return core.CFD{LHS: X, RHS: a, Tp: tp}
}

func keys(cfds []core.CFD) map[string]bool {
	m := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		m[c.Key()] = true
	}
	return m
}

// TestMineCustPaperFacts checks the constant CFDs named by the paper on the
// Fig. 1 relation.
func TestMineCustPaperFacts(t *testing.T) {
	r := fixture.Cust()

	// k = 2: phi2 = ([CC,AC] -> CT, (44,131 || EDI)) is a minimal 2-frequent
	// constant CFD (Example 5); phi1 and phi3 are not minimal.
	got2 := keys(Mine(r, 2))
	phi2 := mkConstant(t, r, []string{"CC", "AC"}, []string{"44", "131"}, "CT", "EDI")
	if !got2[phi2.Key()] {
		t.Errorf("k=2: phi2 missing: %s", phi2.Format(r))
	}
	phi1 := mkConstant(t, r, []string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	phi3 := mkConstant(t, r, []string{"CC", "AC"}, []string{"01", "212"}, "CT", "NYC")
	if got2[phi1.Key()] || got2[phi3.Key()] {
		t.Error("k=2: phi1/phi3 must not be reported (not left-reduced)")
	}
	// (AC -> CT, (908 || MH)) is 4-frequent and left-reduced (Example 7).
	ac908 := mkConstant(t, r, []string{"AC"}, []string{"908"}, "CT", "MH")
	got4 := keys(Mine(r, 4))
	if !got4[ac908.Key()] {
		t.Errorf("k=4: (AC -> CT, (908||MH)) missing")
	}
	// With k = 3 the 2-frequent phi2 must not appear.
	got3 := keys(Mine(r, 3))
	if got3[phi2.Key()] {
		t.Error("k=3: phi2 has support 2 and must not be reported")
	}
	// Example 8: (ZIP -> CC, (07974 || 01)) and (ZIP -> AC, (07974 || 908)) are
	// valid 3-frequent constant CFDs; both are left-reduced since no attribute
	// is constant on the whole relation.
	zipCC := mkConstant(t, r, []string{"ZIP"}, []string{"07974"}, "CC", "01")
	zipAC := mkConstant(t, r, []string{"ZIP"}, []string{"07974"}, "AC", "908")
	if !got3[zipCC.Key()] || !got3[zipAC.Key()] {
		t.Error("k=3: expected (ZIP -> CC, (07974||01)) and (ZIP -> AC, (07974||908))")
	}
}

// TestMineMatchesBruteForce compares CFDMiner's output with the exhaustive
// oracle across relations and thresholds.
func TestMineMatchesBruteForce(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust":     fixture.Cust(),
		"custNoNM": fixture.CustNoNM(),
		"random":   fixture.Random(21, 40, []int{2, 3, 2, 4}),
		"corr":     fixture.RandomCorrelated(9, 60, 4, 4),
	}
	for name, r := range rels {
		for _, k := range []int{1, 2, 3} {
			got := Mine(r, k)
			want := bruteforce.MineConstant(r, k)
			gk, wk := keys(got), keys(want)
			for key := range wk {
				if !gk[key] {
					t.Errorf("%s k=%d: CFDMiner missed a minimal constant CFD with key %s", name, k, key)
				}
			}
			for _, c := range got {
				if !wk[c.Key()] {
					t.Errorf("%s k=%d: CFDMiner produced a non-minimal or infrequent CFD: %s", name, k, c.Format(r))
				}
			}
		}
	}
}

// TestMineOutputsAreMinimalConstantCFDs validates output invariants directly.
func TestMineOutputsAreMinimalConstantCFDs(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{1, 2, 3, 4} {
		for _, c := range Mine(r, k) {
			if !c.IsConstant() {
				t.Errorf("k=%d: non-constant CFD emitted: %s", k, c.Format(r))
			}
			if !core.IsMinimal(r, c) {
				t.Errorf("k=%d: non-minimal CFD emitted: %s", k, c.Format(r))
			}
			if core.Support(r, c) < k {
				t.Errorf("k=%d: infrequent CFD emitted: %s (support %d)", k, c.Format(r), core.Support(r, c))
			}
		}
	}
}

// TestMineFromItemsetsSharedMining verifies that reusing a mining result gives
// the same answer as mining from scratch.
func TestMineFromItemsetsSharedMining(t *testing.T) {
	r := fixture.Cust()
	m := itemset.Mine(r, 2)
	a := Mine(r, 2)
	b := MineFromItemsets(m)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Errorf("CFD %d differs: %s vs %s", i, a[i].Format(r), b[i].Format(r))
		}
	}
}

// TestMineConstantAttribute covers the empty-LHS case: an attribute constant
// across the relation yields the CFD (∅ -> A, (|| a)).
func TestMineConstantAttribute(t *testing.T) {
	r := core.NewRelation(core.MustSchema("A", "B"))
	for _, row := range [][]string{{"1", "x"}, {"2", "x"}, {"3", "x"}} {
		if err := r.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	got := Mine(r, 1)
	if len(got) != 1 {
		t.Fatalf("expected exactly one constant CFD, got %d", len(got))
	}
	c := got[0]
	if c.LHS != core.EmptyAttrSet || c.RHS != 1 {
		t.Errorf("unexpected CFD: %s", c.Format(r))
	}
	if r.Dict(1).Value(c.Tp[1]) != "x" {
		t.Errorf("wrong RHS constant: %s", c.Format(r))
	}
}
