package cfdminer

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/itemset"
)

// TestMineContextWorkersDeterministic asserts that a four-worker run returns
// exactly the same constant-CFD list, in the same order, as a sequential run.
func TestMineContextWorkersDeterministic(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust":     fixture.Cust(),
		"custNoNM": fixture.CustNoNM(),
		"random":   fixture.Random(21, 60, []int{2, 3, 2, 4, 3}),
		"corr":     fixture.RandomCorrelated(17, 200, 6, 5),
	}
	for name, r := range rels {
		for _, k := range []int{1, 2, 4} {
			seq, err := MineContext(context.Background(), r, Options{K: k, Workers: 1})
			if err != nil {
				t.Fatalf("%s k=%d sequential: %v", name, k, err)
			}
			par, err := MineContext(context.Background(), r, Options{K: k, Workers: 4})
			if err != nil {
				t.Fatalf("%s k=%d parallel: %v", name, k, err)
			}
			if len(seq) != len(par) {
				t.Errorf("%s k=%d: sequential %d CFDs, parallel %d", name, k, len(seq), len(par))
				continue
			}
			for i := range seq {
				if seq[i].Key() != par[i].Key() {
					t.Errorf("%s k=%d: CFD %d differs: %s vs %s", name, k, i, seq[i].Format(r), par[i].Format(r))
					break
				}
			}
		}
	}
}

// TestMineFromItemsetsContextMatchesMine checks the shared-mining entry point
// agrees with the one-shot entry point under parallelism.
func TestMineFromItemsetsContextMatchesMine(t *testing.T) {
	r := fixture.Cust()
	m := itemset.Mine(r, 2)
	par, err := MineFromItemsetsContext(context.Background(), m, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := Mine(r, 2)
	if len(par) != len(seq) {
		t.Fatalf("parallel %d CFDs, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Key() != par[i].Key() {
			t.Errorf("CFD %d differs between entry points", i)
		}
	}
}

// TestMineContextPreCancelled asserts a cancelled context aborts the run with
// ctx.Err().
func TestMineContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		out, err := MineContext(ctx, fixture.Cust(), Options{K: 2, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: expected no CFDs from a cancelled run", workers)
		}
	}
}
