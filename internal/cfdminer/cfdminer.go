// Package cfdminer implements CFDMiner (§3 of the paper): discovery of a
// canonical cover of k-frequent, minimal (left-reduced) constant CFDs from the
// k-frequent free and closed item sets of a relation.
//
// The algorithm follows Proposition 1: a constant CFD (X → A, (tp ‖ a)) is
// k-frequent and left-reduced iff (X, tp) is a k-frequent free item set not
// containing (A, a), its closure contains (A, a), and no smaller free item set
// contained in (X, tp) has (A, a) in its closure.
package cfdminer

import (
	"context"

	"repro/internal/core"
	"repro/internal/itemset"
	"repro/internal/pool"
)

// Options configures a CFDMiner run.
type Options struct {
	// K is the support threshold: only k-frequent CFDs are reported. Values
	// below 1 are treated as 1.
	K int
	// Workers bounds the number of goroutines used for the per-free-set rule
	// generation (each free item set's candidate right-hand sides are checked
	// independently against the closures of its subsets). 0 selects one worker
	// per CPU, 1 runs sequentially. The discovered cover is identical for
	// every worker count.
	Workers int
	// Emit, when non-nil, switches MineContext into streaming mode: each free
	// item set's rules are handed to Emit (in canonical order within the free
	// set, free sets in the miner's ascending-size order) as they are derived,
	// and the final return value is nil. Cancelling the context stops the
	// remaining free sets. The emitted sequence is identical for every worker
	// count.
	Emit func(core.CFD)
}

// Mine returns a canonical cover of the k-frequent minimal constant CFDs of r.
func Mine(r *core.Relation, k int) []core.CFD {
	return MineFromItemsets(itemset.Mine(r, k))
}

// MineContext runs CFDMiner with explicit options under a context. A cancelled
// run returns (nil, ctx.Err()).
func MineContext(ctx context.Context, r *core.Relation, opts Options) ([]core.CFD, error) {
	k := opts.K
	if k < 1 {
		k = 1
	}
	m, err := itemset.MineContext(ctx, r, k)
	if err != nil {
		return nil, err
	}
	if opts.Emit != nil {
		return nil, EmitFromItemsets(ctx, m, opts.Workers, opts.Emit)
	}
	return MineFromItemsetsContext(ctx, m, opts.Workers)
}

// EmitFromItemsets is the streaming form of MineFromItemsetsContext: the rules
// of each free item set are handed to emit as they are derived — free sets in
// the miner's ascending-size order, rules in canonical order within each free
// set — instead of being collected and sorted globally. The emitted sequence
// is identical for every worker count; a cancelled run stops after the
// in-flight free sets and returns ctx.Err().
func EmitFromItemsets(ctx context.Context, m *itemset.Mining, workers int, emit func(core.CFD)) error {
	return pool.Stream(ctx, workers, len(m.Free),
		func(_, i int) []core.CFD {
			rules := freeSetRules(m, m.Free[i])
			core.SortCFDs(rules)
			return rules
		},
		func(_ int, rules []core.CFD) {
			for _, c := range rules {
				emit(c)
			}
		})
}

// MineFromItemsets runs CFDMiner over a precomputed free/closed item-set
// mining result. FastCFD uses this entry point to share the mining work
// between constant-CFD discovery and its own pattern pruning.
func MineFromItemsets(m *itemset.Mining) []core.CFD {
	out, err := MineFromItemsetsContext(context.Background(), m, 1)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineFromItemsetsContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineFromItemsetsContext is MineFromItemsets with a cancellation context and
// a worker count (0 = one per CPU, 1 = sequential). The free item sets are
// processed independently — the closure lookups read only the mining result —
// and their rules are concatenated in the miner's free-set order, so the
// output does not depend on the worker count.
func MineFromItemsetsContext(ctx context.Context, m *itemset.Mining, workers int) ([]core.CFD, error) {
	perFree, err := pool.Map(ctx, workers, len(m.Free), func(_, i int) []core.CFD {
		return freeSetRules(m, m.Free[i])
	})
	if err != nil {
		return nil, err
	}
	var out []core.CFD
	for _, rules := range perFree {
		out = append(out, rules...)
	}
	core.SortCFDs(out)
	return out, nil
}

// freeSetRules emits the minimal constant CFDs rooted at one free item set:
// one rule per closure item that no proper free subset's closure already
// contains (Proposition 1, condition 3).
//
// The free sets are sorted in ascending size order, so every proper free
// subset of a set is present in the mining result's index.
func freeSetRules(m *itemset.Mining, fs *itemset.FreeSet) []core.CFD {
	arity := m.Relation.Arity()
	closure := fs.Closure
	// Candidate right-hand sides: the items the closure adds to the free set.
	var candidates []itemset.Item
	closure.Attrs.Diff(fs.Attrs).ForEach(func(a int) {
		candidates = append(candidates, itemset.Item{Attr: a, Value: closure.Tp[a]})
	})
	if len(candidates) == 0 {
		return nil
	}
	// Remove every candidate that already appears in the closure of a proper
	// free subset of (X, tp): such a candidate yields a CFD that is not
	// left-reduced (Proposition 1, condition 3).
	surviving := candidates[:0]
	for _, cand := range candidates {
		redundant := false
		fs.Attrs.Subsets(func(sub core.AttrSet) bool {
			if sub == fs.Attrs {
				return true
			}
			subSet, ok := m.LookupFree(sub, fs.Tp)
			if !ok {
				return true
			}
			if subSet.Closure.Has(cand) {
				redundant = true
				return false
			}
			return true
		})
		if !redundant {
			surviving = append(surviving, cand)
		}
	}
	out := make([]core.CFD, 0, len(surviving))
	for _, cand := range surviving {
		tp := core.NewPattern(arity)
		fs.Attrs.ForEach(func(a int) { tp[a] = fs.Tp[a] })
		tp[cand.Attr] = cand.Value
		out = append(out, core.CFD{LHS: fs.Attrs, RHS: cand.Attr, Tp: tp})
	}
	return out
}
