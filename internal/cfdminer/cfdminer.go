// Package cfdminer implements CFDMiner (§3 of the paper): discovery of a
// canonical cover of k-frequent, minimal (left-reduced) constant CFDs from the
// k-frequent free and closed item sets of a relation.
//
// The algorithm follows Proposition 1: a constant CFD (X → A, (tp ‖ a)) is
// k-frequent and left-reduced iff (X, tp) is a k-frequent free item set not
// containing (A, a), its closure contains (A, a), and no smaller free item set
// contained in (X, tp) has (A, a) in its closure.
package cfdminer

import (
	"repro/internal/core"
	"repro/internal/itemset"
)

// Mine returns a canonical cover of the k-frequent minimal constant CFDs of r.
func Mine(r *core.Relation, k int) []core.CFD {
	return MineFromItemsets(itemset.Mine(r, k))
}

// MineFromItemsets runs CFDMiner over a precomputed free/closed item-set
// mining result. FastCFD uses this entry point to share the mining work
// between constant-CFD discovery and its own pattern pruning.
func MineFromItemsets(m *itemset.Mining) []core.CFD {
	arity := m.Relation.Arity()
	var out []core.CFD

	// The free sets are sorted in ascending size order, so every proper free
	// subset of a set is fully processed (and indexed) before the set itself.
	for _, fs := range m.Free {
		closure := fs.Closure
		// Candidate right-hand sides: the items the closure adds to the free set.
		var candidates []itemset.Item
		closure.Attrs.Diff(fs.Attrs).ForEach(func(a int) {
			candidates = append(candidates, itemset.Item{Attr: a, Value: closure.Tp[a]})
		})
		if len(candidates) == 0 {
			continue
		}
		// Remove every candidate that already appears in the closure of a proper
		// free subset of (X, tp): such a candidate yields a CFD that is not
		// left-reduced (Proposition 1, condition 3).
		surviving := candidates[:0]
		for _, cand := range candidates {
			redundant := false
			fs.Attrs.Subsets(func(sub core.AttrSet) bool {
				if sub == fs.Attrs {
					return true
				}
				subSet, ok := m.LookupFree(sub, fs.Tp)
				if !ok {
					return true
				}
				if subSet.Closure.Has(cand) {
					redundant = true
					return false
				}
				return true
			})
			if !redundant {
				surviving = append(surviving, cand)
			}
		}
		for _, cand := range surviving {
			tp := core.NewPattern(arity)
			fs.Attrs.ForEach(func(a int) { tp[a] = fs.Tp[a] })
			tp[cand.Attr] = cand.Value
			out = append(out, core.CFD{LHS: fs.Attrs, RHS: cand.Attr, Tp: tp})
		}
	}
	core.SortCFDs(out)
	return out
}
