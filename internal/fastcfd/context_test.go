package fastcfd

import (
	"context"
	"errors"
	"testing"

	"repro/internal/diffset"
	"repro/internal/fixture"
)

// TestMineContextPreCancelled asserts a cancelled context aborts FastCFD and
// NaiveFast with ctx.Err() for both sequential and parallel worker counts.
func TestMineContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := fixture.Cust()
	variants := map[string]Options{
		"fastcfd-seq":   {K: 2, UseCFDMiner: true, Workers: 1},
		"fastcfd-par":   {K: 2, UseCFDMiner: true, Workers: 4},
		"naivefast-seq": {K: 2, Computer: diffset.NewNaive(r), Workers: 1},
	}
	for name, opts := range variants {
		out, err := MineContext(ctx, r, opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if out != nil {
			t.Errorf("%s: expected no CFDs from a cancelled run", name)
		}
	}
}

// TestMineContextMatchesMine asserts the context entry point returns the same
// cover as the plain one.
func TestMineContextMatchesMine(t *testing.T) {
	r := fixture.RandomCorrelated(11, 150, 5, 4)
	plain := Mine(r, 2)
	ctxed, err := MineContext(context.Background(), r, Options{K: 2, UseCFDMiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ctxed) {
		t.Fatalf("plain %d CFDs, context %d", len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i].Key() != ctxed[i].Key() {
			t.Errorf("CFD %d differs between entry points", i)
		}
	}
}
