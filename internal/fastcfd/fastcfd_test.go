package fastcfd

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/diffset"
	"repro/internal/fixture"
)

func keys(cfds []core.CFD) map[string]bool {
	m := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		m[c.Key()] = true
	}
	return m
}

func diffReport(t *testing.T, r *core.Relation, name string, got, want []core.CFD) {
	t.Helper()
	gk, wk := keys(got), keys(want)
	for _, c := range want {
		if !gk[c.Key()] {
			t.Errorf("%s: missing %s", name, c.Format(r))
		}
	}
	for _, c := range got {
		if !wk[c.Key()] {
			t.Errorf("%s: spurious %s", name, c.Format(r))
		}
	}
}

// smallRelations returns relations small enough for the brute-force oracle.
func smallRelations() map[string]*core.Relation {
	return map[string]*core.Relation{
		"custNoNM": fixture.CustNoNM(),
		"random1":  fixture.Random(21, 40, []int{2, 3, 2, 4}),
		"random2":  fixture.Random(33, 60, []int{3, 2, 3, 2}),
		"corr":     fixture.RandomCorrelated(9, 60, 4, 4),
	}
}

// TestMineMatchesBruteForce compares FastCFD (closed backend, with and without
// the CFDMiner optimisation) and NaiveFast against the exhaustive oracle.
func TestMineMatchesBruteForce(t *testing.T) {
	for name, r := range smallRelations() {
		for _, k := range []int{1, 2, 3} {
			want := bruteforce.Mine(r, k)
			variants := map[string][]core.CFD{
				"fastcfd":          Mine(r, k),
				"fastcfd-nofilter": MineWithOptions(r, Options{K: k, UseCFDMiner: false}),
				"naivefast":        MineNaive(r, k),
				"naive+miner":      MineWithOptions(r, Options{K: k, Computer: diffset.NewNaive(r), UseCFDMiner: true}),
			}
			for vname, got := range variants {
				if len(got) != len(want) {
					t.Errorf("%s k=%d %s: got %d CFDs, want %d", name, k, vname, len(got), len(want))
				}
				diffReport(t, r, name+"/"+vname, got, want)
			}
		}
	}
}

// TestMineCustPaperFacts checks the CFDs the paper names on the Fig. 1 relation.
func TestMineCustPaperFacts(t *testing.T) {
	r := fixture.Cust()
	mk := func(lhs []string, vals []string, rhs, rhsVal string) core.CFD {
		s := r.Schema()
		X, err := s.AttrSetOf(lhs...)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := s.Index(rhs)
		tp := core.NewPattern(s.Arity())
		for i, nm := range lhs {
			idx, _ := s.Index(nm)
			if vals[i] != "_" {
				v, ok := r.Dict(idx).Lookup(vals[i])
				if !ok {
					t.Fatalf("value %q not in %s", vals[i], nm)
				}
				tp[idx] = v
			}
		}
		if rhsVal != "_" {
			v, ok := r.Dict(a).Lookup(rhsVal)
			if !ok {
				t.Fatalf("value %q not in %s", rhsVal, rhs)
			}
			tp[a] = v
		}
		return core.CFD{LHS: X, RHS: a, Tp: tp}
	}

	got2 := keys(Mine(r, 2))
	got3 := keys(Mine(r, 3))

	f1 := mk([]string{"CC", "AC"}, []string{"_", "_"}, "CT", "_")
	f2 := mk([]string{"CC", "AC", "PN"}, []string{"_", "_", "_"}, "STR", "_")
	phi0 := mk([]string{"CC", "ZIP"}, []string{"44", "_"}, "STR", "_")
	phi2 := mk([]string{"CC", "AC"}, []string{"44", "131"}, "CT", "EDI")
	ac908 := mk([]string{"AC"}, []string{"908"}, "CT", "MH")
	phi1 := mk([]string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	phi3 := mk([]string{"CC", "AC"}, []string{"01", "212"}, "CT", "NYC")
	ccAcStr44 := mk([]string{"CC", "AC"}, []string{"44", "_"}, "STR", "_")

	for name, c := range map[string]core.CFD{"f1": f1, "f2": f2, "phi0": phi0, "(AC->CT,908||MH)": ac908, "([CC,AC]->STR,(44,_))": ccAcStr44} {
		if !got3[c.Key()] {
			t.Errorf("k=3: %s missing: %s", name, c.Format(r))
		}
	}
	if !got2[phi2.Key()] {
		t.Errorf("k=2: phi2 missing")
	}
	if got3[phi2.Key()] {
		t.Errorf("k=3: phi2 is only 2-frequent and must not appear")
	}
	if got2[phi1.Key()] || got2[phi3.Key()] || got3[phi1.Key()] || got3[phi3.Key()] {
		t.Error("phi1/phi3 are not minimal and must never appear")
	}
}

// TestMineOutputInvariants validates that everything reported is a minimal,
// k-frequent CFD.
func TestMineOutputInvariants(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{2, 3} {
		for _, c := range Mine(r, k) {
			if !core.IsMinimal(r, c) {
				t.Errorf("k=%d: non-minimal CFD: %s", k, c.Format(r))
			}
			if core.Support(r, c) < k {
				t.Errorf("k=%d: infrequent CFD: %s (support %d)", k, c.Format(r), core.Support(r, c))
			}
			if c.IsTrivial() {
				t.Errorf("k=%d: trivial CFD: %s", k, c.Format(r))
			}
		}
	}
}

// TestMineBackendsAgree verifies FastCFD and NaiveFast produce identical covers
// on the full cust relation (where brute force over variable CFDs would be
// slower), for several thresholds.
func TestMineBackendsAgree(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{1, 2, 3, 4} {
		a := Mine(r, k)
		b := MineNaive(r, k)
		c := MineWithOptions(r, Options{K: k, UseCFDMiner: false})
		if len(a) != len(b) || len(a) != len(c) {
			t.Errorf("k=%d: sizes differ: closed=%d naive=%d nofilter=%d", k, len(a), len(b), len(c))
		}
		diffReport(t, r, "closed-vs-naive", a, b)
		diffReport(t, r, "closed-vs-nofilter", a, c)
	}
}

func TestMineVariableOnly(t *testing.T) {
	r := fixture.Cust()
	got := MineWithOptions(r, Options{K: 2, VariableOnly: true})
	if len(got) == 0 {
		t.Fatal("expected variable CFDs")
	}
	for _, c := range got {
		if !c.IsVariable() {
			t.Errorf("VariableOnly emitted a constant-RHS CFD: %s", c.Format(r))
		}
	}
}

func TestMineMaxLHS(t *testing.T) {
	r := fixture.Cust()
	got := MineWithOptions(r, Options{K: 2, MaxLHS: 2, UseCFDMiner: true})
	if len(got) == 0 {
		t.Fatal("expected CFDs")
	}
	for _, c := range got {
		if c.LHS.Len() > 2 {
			t.Errorf("MaxLHS=2 violated: %s", c.Format(r))
		}
	}
	// Every CFD with a small LHS from the unrestricted run must still be found.
	full := Mine(r, 2)
	gk := keys(got)
	for _, c := range full {
		if c.LHS.Len() <= 2 && !gk[c.Key()] {
			t.Errorf("MaxLHS=2 lost a small CFD: %s", c.Format(r))
		}
	}
}

// TestMineParallelMatchesSequential verifies that the concurrent per-attribute
// search produces exactly the sequential cover.
func TestMineParallelMatchesSequential(t *testing.T) {
	rels := map[string]*core.Relation{
		"cust": fixture.Cust(),
		"corr": fixture.RandomCorrelated(17, 300, 6, 6),
	}
	for name, r := range rels {
		for _, k := range []int{2, 5} {
			seq := MineWithOptions(r, Options{K: k, UseCFDMiner: true, Workers: 1})
			par := MineWithOptions(r, Options{K: k, UseCFDMiner: true, Workers: 4})
			if len(seq) != len(par) {
				t.Errorf("%s k=%d: sequential %d CFDs, parallel %d", name, k, len(seq), len(par))
				continue
			}
			for i := range seq {
				if seq[i].Key() != par[i].Key() {
					t.Errorf("%s k=%d: CFD %d differs between sequential and parallel runs", name, k, i)
					break
				}
			}
		}
	}
}

func TestMineEmptyAndTinyRelations(t *testing.T) {
	r := core.NewRelation(core.MustSchema("A", "B"))
	if got := Mine(r, 1); len(got) != 0 {
		t.Errorf("empty relation should yield no CFDs, got %d", len(got))
	}
	if err := r.AppendRow([]string{"1", "x"}); err != nil {
		t.Fatal(err)
	}
	got := Mine(r, 1)
	// A single tuple satisfies every CFD; the minimal ones are the constant
	// CFDs with empty LHS and the corresponding variable ones.
	for _, c := range got {
		if !core.IsMinimal(r, c) {
			t.Errorf("single-tuple relation: non-minimal %s", c.Format(r))
		}
	}
	want := bruteforce.Mine(r, 1)
	if len(got) != len(want) {
		t.Errorf("single-tuple relation: got %d CFDs, brute force %d", len(got), len(want))
	}
}
