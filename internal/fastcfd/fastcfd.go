// Package fastcfd implements FastCFD and NaiveFast (§5 of the paper):
// depth-first discovery of minimal, k-frequent CFDs. For every right-hand-side
// attribute A and every k-frequent free item set (X, tp) it computes the
// minimal difference sets D^m_A(r_tp) and enumerates their minimal covers Y
// with the recursive FindMin procedure; each cover passing the left-reduction
// checks yields the variable CFD ([X,Y] → A, (tp, _,… ‖ _)). Constant CFDs are
// produced either inside FindMin (Step 3.a) or, as the §5.5 optimisation, by
// delegating to CFDMiner on the already-mined item sets.
//
// The two named variants of the paper differ only in the difference-set
// backend: FastCFD uses the 2-frequent closed item sets (diffset.Closed),
// NaiveFast the stripped-partition pairwise computation (diffset.Naive).
package fastcfd

import (
	"context"
	"sort"

	"repro/internal/cfdminer"
	"repro/internal/core"
	"repro/internal/diffset"
	"repro/internal/itemset"
	"repro/internal/pool"
)

// Options configures a FastCFD run.
type Options struct {
	// K is the support threshold; values below 1 are treated as 1.
	K int
	// Computer selects the difference-set backend. nil selects the
	// closed-item-set backend (the paper's default FastCFD); diffset.NewNaive
	// yields the NaiveFast variant.
	Computer diffset.Computer
	// UseCFDMiner, when true, applies the §5.5 optimisation: constant CFDs are
	// taken from CFDMiner (sharing the item-set mining work) and Step 3.a of
	// FindMin is skipped. When false, constant CFDs are produced by FindMin.
	UseCFDMiner bool
	// MaxLHS, when positive, bounds the size of the left-hand side of reported
	// CFDs.
	MaxLHS int
	// VariableOnly, when true, suppresses constant CFDs entirely (used by the
	// benchmark harness to separate the two discovery costs).
	VariableOnly bool
	// Workers bounds the number of goroutines running the per-attribute
	// FindCover searches. 0 selects one worker per CPU, 1 runs sequentially.
	// The output is identical for every worker count (results are merged in
	// right-hand-side attribute order).
	Workers int
	// Emit, when non-nil, switches MineContext into streaming mode: the
	// constant CFDs (when CFDMiner handles them) are handed to Emit first,
	// then each right-hand-side attribute's variable CFDs as its FindCover
	// search completes, in attribute order; the final return value is nil.
	// Cancelling the context abandons the remaining per-attribute searches.
	// The emitted sequence is identical for every worker count.
	Emit func(core.CFD)
}

// Mine returns the minimal k-frequent CFDs of r discovered by FastCFD with the
// default options (closed-item-set difference sets, CFDMiner for constants).
func Mine(r *core.Relation, k int) []core.CFD {
	return MineWithOptions(r, Options{K: k, UseCFDMiner: true})
}

// MineNaive returns the minimal k-frequent CFDs of r discovered by NaiveFast:
// the same driver with the stripped-partition difference-set backend and
// without the closed-item-set optimisation.
func MineNaive(r *core.Relation, k int) []core.CFD {
	return MineWithOptions(r, Options{K: k, Computer: diffset.NewNaive(r)})
}

// MineWithOptions runs FastCFD with explicit options.
func MineWithOptions(r *core.Relation, opts Options) []core.CFD {
	out, err := MineContext(context.Background(), r, opts)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineContext runs FastCFD with explicit options under a context.
// Cancellation is observed between per-attribute FindCover searches (and
// between the free item sets of the constant-CFD pass); a cancelled run
// returns (nil, ctx.Err()). The discovered cover is independent of
// Options.Workers.
func MineContext(ctx context.Context, r *core.Relation, opts Options) ([]core.CFD, error) {
	k := opts.K
	if k < 1 {
		k = 1
	}
	if r.Size() < k {
		// No CFD can reach the support threshold.
		return nil, ctx.Err()
	}
	comp := opts.Computer
	if comp == nil {
		comp = diffset.NewClosed(r)
	}
	mining, err := itemset.MineContext(ctx, r, k)
	if err != nil {
		return nil, err
	}
	f := &finder{
		r:      r,
		k:      k,
		comp:   comp,
		opts:   opts,
		mining: mining,
	}
	var out []core.CFD
	if opts.UseCFDMiner && !opts.VariableOnly {
		constants, err := cfdminer.MineFromItemsetsContext(ctx, f.mining, opts.Workers)
		if err != nil {
			return nil, err
		}
		for _, c := range constants {
			if opts.MaxLHS > 0 && c.LHS.Len() > opts.MaxLHS {
				continue
			}
			if opts.Emit != nil {
				opts.Emit(c)
			} else {
				out = append(out, c)
			}
		}
	}
	if opts.Emit != nil {
		// Streaming mode: hand each attribute's variable CFDs to the consumer
		// as its FindCover search completes, in attribute order. Constant and
		// variable CFDs never coincide and no two free sets (or attributes)
		// derive the same rule, so the stream needs no global deduplication.
		return nil, pool.Stream(ctx, opts.Workers, r.Arity(),
			func(_, rhs int) []core.CFD { return f.findCover(rhs) },
			func(_ int, cfds []core.CFD) {
				for _, c := range cfds {
					opts.Emit(c)
				}
			})
	}
	perRHS, err := pool.Map(ctx, opts.Workers, r.Arity(), func(_, rhs int) []core.CFD {
		return f.findCover(rhs)
	})
	if err != nil {
		return nil, err
	}
	for _, cfds := range perRHS {
		out = append(out, cfds...)
	}
	out = core.DedupCFDs(out)
	core.SortCFDs(out)
	return out, nil
}

// finder holds the shared state of one FastCFD run.
type finder struct {
	r      *core.Relation
	k      int
	comp   diffset.Computer
	opts   Options
	mining *itemset.Mining
}

// findCover implements FindCover(A, r, k): it loops over the k-frequent free
// item sets (in ascending size order) and emits the minimal CFDs with
// right-hand side rhs rooted at each free constant pattern.
func (f *finder) findCover(rhs int) []core.CFD {
	var out []core.CFD
	all := f.r.Schema().All()
	for _, fs := range f.mining.Free {
		if fs.Attrs.Has(rhs) {
			continue
		}
		if f.opts.MaxLHS > 0 && fs.Attrs.Len() > f.opts.MaxLHS {
			continue
		}
		diffs := f.comp.MinimalDiffSets(fs.Attrs, fs.Tp, rhs)
		if len(diffs) == 0 {
			// Step 3.a: every tuple of r_tp agrees on rhs — a constant CFD
			// candidate, unless constants are handled by CFDMiner.
			if !f.opts.UseCFDMiner && !f.opts.VariableOnly {
				if c, ok := f.constantCFD(fs, rhs); ok {
					out = append(out, c)
				}
			}
			// The all-constant-LHS variable CFD (X → A, (tp ‖ _)) also holds here
			// (its cover is empty); emit it when it is left-reduced so that the
			// output contains every minimal CFD, as CTANE does.
			if c, ok := f.variableCFD(fs, rhs, nil, core.EmptyAttrSet); ok {
				out = append(out, c)
			}
			continue
		}
		if containsEmpty(diffs) {
			// Some pair of r_tp tuples differs only on rhs: no CFD with this
			// constant pattern and right-hand side can hold (Step 1 of FindMin).
			continue
		}
		candidates := all.Diff(fs.Attrs).Remove(rhs).Attrs()
		f.findMin(fs, rhs, diffs, core.EmptyAttrSet, diffs, candidates, &out)
	}
	// Deterministic order per right-hand side.
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// constantCFD builds the constant CFD (X → rhs, (tp ‖ ta)) for a free pattern
// whose matching tuples all share the rhs value ta, and checks left-reduction
// by testing every immediate sub-pattern (Step 3.a of FindMin).
func (f *finder) constantCFD(fs *itemset.FreeSet, rhs int) (core.CFD, bool) {
	if len(fs.Tids) == 0 {
		return core.CFD{}, false
	}
	ta := f.r.Value(int(fs.Tids[0]), rhs)
	reduced := true
	fs.Attrs.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
		if f.constantHolds(sub, fs.Tp, rhs, ta) {
			reduced = false
			return false
		}
		return true
	})
	if !reduced {
		return core.CFD{}, false
	}
	tp := core.NewPattern(f.r.Arity())
	fs.Attrs.ForEach(func(a int) { tp[a] = fs.Tp[a] })
	tp[rhs] = ta
	return core.CFD{LHS: fs.Attrs, RHS: rhs, Tp: tp}, true
}

// constantHolds reports whether every tuple matching the constants of tp on
// attrs has value ta on rhs.
func (f *finder) constantHolds(attrs core.AttrSet, tp core.Pattern, rhs int, ta int32) bool {
	col := f.r.Column(rhs)
	for _, t := range f.r.MatchingTuples(attrs, tp) {
		if col[t] != ta {
			return false
		}
	}
	return true
}

// findMin is the recursive cover search (Step 4 of FindMin): it extends Y with
// attributes that cover at least one remaining difference set, in an order
// recomputed at every node (dynamic attribute reordering, §5.6), and emits a
// variable CFD whenever Y covers everything and passes the minimality checks.
func (f *finder) findMin(fs *itemset.FreeSet, rhs int, allDiffs []core.AttrSet, y core.AttrSet, remaining []core.AttrSet, candidates []int, out *[]core.CFD) {
	if len(remaining) == 0 {
		if c, ok := f.variableCFD(fs, rhs, allDiffs, y); ok {
			*out = append(*out, c)
		}
		return
	}
	if len(candidates) == 0 {
		return
	}
	if f.opts.MaxLHS > 0 && fs.Attrs.Len()+y.Len() >= f.opts.MaxLHS {
		return
	}
	type scored struct {
		attr  int
		cover int
	}
	order := make([]scored, 0, len(candidates))
	for _, a := range candidates {
		c := 0
		for _, d := range remaining {
			if d.Has(a) {
				c++
			}
		}
		if c > 0 {
			order = append(order, scored{attr: a, cover: c})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].cover != order[j].cover {
			return order[i].cover > order[j].cover
		}
		return order[i].attr < order[j].attr
	})
	rest := make([]int, len(order))
	for i, s := range order {
		rest[i] = s.attr
	}
	for i, s := range order {
		var nextRemaining []core.AttrSet
		for _, d := range remaining {
			if !d.Has(s.attr) {
				nextRemaining = append(nextRemaining, d)
			}
		}
		f.findMin(fs, rhs, allDiffs, y.Add(s.attr), nextRemaining, rest[i+1:], out)
	}
}

// variableCFD performs the minimality checks of Step 3.b for a cover Y of the
// difference sets of the free pattern (X, tp):
//
//	(b1) Y must be a minimal cover of D^m_A(r_tp) — no attribute of Y is
//	     redundant;
//	(b2) no constant of the pattern can be upgraded to "_": for every B in X,
//	     Y ∪ {B} must not cover D^m_A(r_{tp[X\{B}]}).
//
// When both hold it returns the variable CFD ([X,Y] → A, (tp, _,… ‖ _)).
func (f *finder) variableCFD(fs *itemset.FreeSet, rhs int, allDiffs []core.AttrSet, y core.AttrSet) (core.CFD, bool) {
	if !diffset.IsMinimalCover(y, allDiffs) {
		return core.CFD{}, false
	}
	upgradable := false
	fs.Attrs.ImmediateSubsets(func(b int, sub core.AttrSet) bool {
		subDiffs := f.comp.MinimalDiffSets(sub, fs.Tp, rhs)
		if diffset.Covers(y.Add(b), subDiffs) {
			upgradable = true
			return false
		}
		return true
	})
	if upgradable {
		return core.CFD{}, false
	}
	tp := core.NewPattern(f.r.Arity())
	fs.Attrs.ForEach(func(a int) { tp[a] = fs.Tp[a] })
	return core.CFD{LHS: fs.Attrs.Union(y), RHS: rhs, Tp: tp}, true
}

func containsEmpty(diffs []core.AttrSet) bool {
	for _, d := range diffs {
		if d.IsEmpty() {
			return true
		}
	}
	return false
}
