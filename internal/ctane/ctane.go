// Package ctane implements CTANE (§4 of the paper): levelwise discovery of
// minimal, k-frequent conditional functional dependencies over an
// attribute-set/pattern lattice. It extends TANE with pattern tuples: a lattice
// element is a pair (X, sp) of an attribute set and a pattern of constants and
// unnamed variables over X, and candidate CFDs (X\{A} → A, (sp[X\{A}] ‖ sp[A]))
// are validated with stripped partitions and pruned through the C+ candidate
// sets maintained across levels.
package ctane

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/pool"
)

// Options configures a CTANE run.
type Options struct {
	// K is the support threshold: only k-frequent CFDs are reported. Values
	// below 1 are treated as 1.
	K int
	// MaxLHS, when positive, bounds the size of the left-hand side of reported
	// CFDs (and therefore the depth of the lattice traversal).
	MaxLHS int
	// Workers bounds the number of goroutines used within each lattice level
	// (candidate-set intersection, candidate-CFD validation and partition
	// products are fanned out per element; the levels themselves stay
	// sequential, as each depends on the previous one). 0 selects one worker
	// per CPU, 1 runs sequentially. The discovered cover is identical for
	// every worker count.
	Workers int
	// Emit, when non-nil, switches MineContext into streaming mode: each
	// lattice level's CFDs are handed to Emit (deduplicated and in canonical
	// order within the level) as soon as the level is validated, and the
	// final return value is nil. Cancelling the context stops the traversal
	// at the next level boundary, which is how a consumer that has seen
	// enough rules aborts the remaining (deeper, more expensive) levels. The
	// emitted sequence is identical for every worker count.
	Emit func(core.CFD)
}

// Mine returns the minimal k-frequent CFDs of r discovered by CTANE.
func Mine(r *core.Relation, k int) []core.CFD {
	return MineWithOptions(r, Options{K: k})
}

// element is one node of the attribute-set/pattern lattice.
type element struct {
	attrs   core.AttrSet
	tp      core.Pattern
	part    *partition.Partition
	cplus   *candidateSet
	key     string
	constK  string // key of the constant part of the pattern
	support int    // number of tuples matching the constant part
}

// MineWithOptions runs CTANE with explicit options.
func MineWithOptions(r *core.Relation, opts Options) []core.CFD {
	out, err := MineContext(context.Background(), r, opts)
	if err != nil {
		// Unreachable: the background context is never cancelled and
		// MineContext has no other failure mode.
		panic(err)
	}
	return out
}

// MineContext runs CTANE with explicit options under a context. Cancellation
// is observed between per-element work units within a lattice level; a
// cancelled run returns (nil, ctx.Err()). The discovered cover is independent
// of Options.Workers.
func MineContext(ctx context.Context, r *core.Relation, opts Options) ([]core.CFD, error) {
	k := opts.K
	if k < 1 {
		k = 1
	}
	workers := pool.Normalize(opts.Workers)
	n := r.Size()
	arity := r.Arity()
	if n < k || arity == 0 {
		return nil, ctx.Err()
	}
	all := r.Schema().All()
	maxLevel := arity
	if opts.MaxLHS > 0 && opts.MaxLHS+1 < maxLevel {
		maxLevel = opts.MaxLHS + 1
	}

	// Tid lists of single items, used to maintain constant-part supports.
	itemTids := make([]map[int32][]int32, arity)
	for a := 0; a < arity; a++ {
		itemTids[a] = make(map[int32][]int32, r.DomainSize(a))
		for t, v := range r.Column(a) {
			itemTids[a][v] = append(itemTids[a][v], int32(t))
		}
	}
	allTids := make([]int32, n)
	for t := range allTids {
		allTids[t] = int32(t)
	}
	wild := core.NewPattern(arity)
	// Cache of constant-part tid lists keyed by the constant pattern's key.
	constTids := map[string][]int32{wild.Key(core.EmptyAttrSet): allTids}

	// Virtual level-0 element: empty attribute set, one equivalence class.
	emptyPart := &partition.Partition{Covered: n}
	if n >= 2 {
		emptyPart.Classes = [][]int32{allTids}
	}
	emptyElem := &element{
		attrs: core.EmptyAttrSet, tp: wild, part: emptyPart,
		cplus: newCandidateSet(), key: wild.Key(core.EmptyAttrSet),
		constK: wild.Key(core.EmptyAttrSet), support: n,
	}
	prevByKey := map[string]*element{emptyElem.key: emptyElem}

	// Level 1: (A, "_") for every attribute plus (A, a) for every k-frequent value.
	var level []*element
	for a := 0; a < arity; a++ {
		wp := partition.FromAttribute(r, a)
		level = append(level, &element{
			attrs: core.SingleAttr(a), tp: wild, part: wp,
			key:    wild.Key(core.SingleAttr(a)),
			constK: wild.Key(core.EmptyAttrSet), support: n,
		})
		values := make([]int32, 0, len(itemTids[a]))
		for v, tids := range itemTids[a] {
			if len(tids) >= k {
				values = append(values, v)
			}
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, v := range values {
			tp := wild.Clone()
			tp[a] = v
			constKey := tp.Key(core.SingleAttr(a))
			constTids[constKey] = itemTids[a][v]
			level = append(level, &element{
				attrs: core.SingleAttr(a), tp: tp, part: partition.FromItem(r, a, v),
				key:    constKey,
				constK: constKey, support: len(itemTids[a][v]),
			})
		}
	}

	var out []core.CFD
	for depth := 1; len(level) > 0 && depth <= maxLevel; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sortLevel(level)
		// Step 1: candidate RHS sets as intersections over immediate subsets.
		// Each element's intersection reads only the previous level, so the
		// elements fan out independently.
		if err := pool.Each(ctx, workers, len(level), func(_, i int) {
			e := level[i]
			var sets []*candidateSet
			missing := false
			e.attrs.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
				p, ok := prevByKey[e.tp.Key(sub)]
				if !ok {
					missing = true
					return false
				}
				sets = append(sets, p.cplus)
				return true
			})
			if missing {
				e.cplus = newCandidateSet()
				e.cplus.removedAttrs = all
				return
			}
			e.cplus = intersectCandidates(sets)
		}); err != nil {
			return nil, err
		}
		// Index by key and by attribute set (for sibling updates in Step 2.c).
		byKey := make(map[string]*element, len(level))
		byAttrs := make(map[core.AttrSet][]*element)
		for _, e := range level {
			byKey[e.key] = e
			byAttrs[e.attrs] = append(byAttrs[e.attrs], e)
		}
		// Step 2 pre-pass: validate the candidate CFDs of every element
		// concurrently. Validation only reads partitions, so it is safe to fan
		// out; the C+ updates of Step 2.c below stay sequential (they mutate
		// sibling elements), which keeps the output byte-identical to a
		// sequential run. The pre-pass may validate candidates that Step 2.c
		// later removes — wasted work, never a different answer — so it is
		// skipped when running on one worker.
		var validated []map[int]bool
		if workers > 1 {
			var err error
			validated, err = pool.Map(ctx, workers, len(level), func(_, i int) map[int]bool {
				e := level[i]
				m := make(map[int]bool, e.attrs.Len())
				e.attrs.ForEach(func(a int) {
					cA := e.tp[a]
					if !e.cplus.has(a, cA) {
						return
					}
					parent, ok := prevByKey[e.tp.Key(e.attrs.Remove(a))]
					if !ok {
						return
					}
					m[a] = validCFD(parent, e, cA)
				})
				return m
			})
			if err != nil {
				return nil, err
			}
		}
		// Step 2: emit valid candidate CFDs and update the C+ sets, in the
		// level's sorted order.
		levelStart := len(out)
		for i, e := range level {
			e.attrs.ForEach(func(a int) {
				cA := e.tp[a]
				if !e.cplus.has(a, cA) {
					return
				}
				sub := e.attrs.Remove(a)
				parent, ok := prevByKey[e.tp.Key(sub)]
				if !ok {
					return
				}
				// C+ sets only shrink, so every candidate that survives to
				// this point was still a candidate during the pre-pass.
				valid, cached := false, false
				if validated != nil {
					valid, cached = validated[i][a]
				}
				if !cached {
					valid = validCFD(parent, e, cA)
				}
				if !valid {
					return
				}
				cfdTp := core.NewPattern(arity)
				e.attrs.ForEach(func(b int) { cfdTp[b] = e.tp[b] })
				out = append(out, core.CFD{LHS: sub, RHS: a, Tp: cfdTp})
				// Step 2.c: the same RHS with a more specific LHS pattern can no
				// longer be minimal, and (as in TANE) attributes outside X cannot be
				// minimal RHS candidates for those elements either.
				for _, s := range byAttrs[e.attrs] {
					if s.tp[a] != cA {
						continue
					}
					if !e.tp.MoreGeneralOrEqualOn(s.tp, sub) {
						continue
					}
					s.cplus.removeVal(a, cA)
					all.Diff(e.attrs).ForEach(func(b int) { s.cplus.removeAttr(b) })
				}
			})
		}
		// Streaming mode: hand this level's CFDs to the consumer now. Each
		// level's CFDs have a strictly larger LHS than every earlier level's,
		// so no later level can duplicate them; the batch is deduplicated and
		// canonically ordered within the level, keeping the emitted sequence
		// identical for every worker count.
		if opts.Emit != nil {
			batch := core.DedupCFDs(out[levelStart:])
			core.SortCFDs(batch)
			for _, c := range batch {
				opts.Emit(c)
			}
			out = out[:levelStart]
		}
		// Step 3: prune elements with (conservatively detected) empty C+.
		kept := level[:0]
		for _, e := range level {
			if e.cplus.allAttrsRemoved(arity) {
				delete(byKey, e.key)
				continue
			}
			kept = append(kept, e)
		}
		level = kept
		// Step 4: generate the next level by prefix join.
		if depth == maxLevel {
			break
		}
		var err error
		level, err = generateNextLevel(ctx, r, level, byKey, constTids, itemTids, k, n, workers)
		if err != nil {
			return nil, err
		}
		prevByKey = byKey
	}

	out = core.DedupCFDs(out)
	core.SortCFDs(out)
	return out, nil
}

// validCFD checks the candidate CFD (X\{A} → A, (sp[X\{A}] ‖ sp[A])) of a
// lattice element against its parent's partition (Step 2.b).
func validCFD(parent, e *element, cA int32) bool {
	if cA == core.Wildcard {
		return partition.RefinesRHSVariable(parent.part, e.part)
	}
	return partition.RefinesRHSConstant(parent.part, e.part)
}

// generateNextLevel performs Step 4: joins pairs of elements that agree on all
// but their largest attribute, keeps candidates whose constant part is
// k-frequent and all of whose immediate sub-elements survived pruning, and
// builds their partitions as products of the parents' partitions. The joins
// and frequency checks run sequentially (they share the constant-tid cache);
// the partition products — the expensive part — are fanned out across workers,
// each with its own scratch buffer.
func generateNextLevel(
	ctx context.Context,
	r *core.Relation,
	level []*element,
	byKey map[string]*element,
	constTids map[string][]int32,
	itemTids []map[int32][]int32,
	k, n, workers int,
) ([]*element, error) {
	type groupKey struct {
		prefix core.AttrSet
		tpKey  string
	}
	groups := make(map[groupKey][]*element)
	for _, e := range level {
		prefix := e.attrs.Remove(e.attrs.Last())
		groups[groupKey{prefix, e.tp.Key(prefix)}] = append(groups[groupKey{prefix, e.tp.Key(prefix)}], e)
	}
	type join struct {
		x, y *element
		elem *element
	}
	var joins []join
	seen := make(map[string]bool)
	for _, group := range groups {
		for i := 0; i < len(group); i++ {
			// The join pass alone can dwarf the rest of a level on low support
			// thresholds, so observe cancellation inside it too.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j := 0; j < len(group); j++ {
				if i == j {
					continue
				}
				x, y := group[i], group[j]
				xLast, yLast := x.attrs.Last(), y.attrs.Last()
				if xLast >= yLast {
					continue
				}
				z := x.attrs.Union(y.attrs)
				up := x.tp.Clone()
				up[yLast] = y.tp[yLast]
				key := up.Key(z)
				if seen[key] {
					continue
				}
				// Support of the constant part (Step 4.b(ii) with the k-frequency
				// refinement of §4.2).
				constAttrs := up.ConstAttrs(z)
				constKey := up.Key(constAttrs)
				tids, ok := constTids[constKey]
				if !ok {
					if up[yLast] == core.Wildcard {
						tids = constTids[x.constK]
					} else {
						tids = intersectTids(constTids[x.constK], itemTids[yLast][up[yLast]])
					}
					constTids[constKey] = tids
				}
				if len(tids) < k || len(tids) == 0 {
					continue
				}
				// Step 4.b(iii): every immediate sub-element must have survived.
				ok = true
				z.ImmediateSubsets(func(_ int, sub core.AttrSet) bool {
					if _, present := byKey[up.Key(sub)]; !present {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					continue
				}
				seen[key] = true
				joins = append(joins, join{x: x, y: y, elem: &element{
					attrs: z, tp: up,
					key: key, constK: constKey, support: len(tids),
				}})
			}
		}
	}
	scratches := make([][]int32, pool.Normalize(workers))
	if err := pool.Each(ctx, workers, len(joins), func(w, i int) {
		if scratches[w] == nil {
			scratches[w] = make([]int32, n)
		}
		j := joins[i]
		part := partition.ProductWith(j.x.part, j.y.part, scratches[w])
		part.Covered = j.elem.support
		j.elem.part = part
	}); err != nil {
		return nil, err
	}
	next := make([]*element, len(joins))
	for i, j := range joins {
		next[i] = j.elem
	}
	return next, nil
}

// sortLevel orders a level so that, within one attribute set, more general
// patterns (fewer constants) come before more specific ones — the order Step 2
// relies on so that a general valid CFD removes its specialisations from the
// C+ sets before they are examined.
func sortLevel(level []*element) {
	sort.Slice(level, func(i, j int) bool {
		if level[i].attrs != level[j].attrs {
			return level[i].attrs < level[j].attrs
		}
		ci := level[i].tp.ConstAttrs(level[i].attrs).Len()
		cj := level[j].tp.ConstAttrs(level[j].attrs).Len()
		if ci != cj {
			return ci < cj
		}
		return level[i].key < level[j].key
	})
}

// intersectTids intersects two ascending tid lists.
func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
