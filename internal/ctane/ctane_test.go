package ctane

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/fastcfd"
	"repro/internal/fixture"
)

func keys(cfds []core.CFD) map[string]bool {
	m := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		m[c.Key()] = true
	}
	return m
}

func diffReport(t *testing.T, r *core.Relation, name string, got, want []core.CFD) {
	t.Helper()
	gk, wk := keys(got), keys(want)
	for _, c := range want {
		if !gk[c.Key()] {
			t.Errorf("%s: missing %s", name, c.Format(r))
		}
	}
	for _, c := range got {
		if !wk[c.Key()] {
			t.Errorf("%s: spurious %s", name, c.Format(r))
		}
	}
}

// TestMineMatchesBruteForce compares CTANE against the exhaustive oracle on
// relations small enough to enumerate.
func TestMineMatchesBruteForce(t *testing.T) {
	rels := map[string]*core.Relation{
		"custNoNM": fixture.CustNoNM(),
		"random1":  fixture.Random(21, 40, []int{2, 3, 2, 4}),
		"random2":  fixture.Random(33, 60, []int{3, 2, 3, 2}),
		"corr":     fixture.RandomCorrelated(9, 60, 4, 4),
	}
	for name, r := range rels {
		for _, k := range []int{1, 2, 3} {
			got := Mine(r, k)
			want := bruteforce.Mine(r, k)
			if len(got) != len(want) {
				t.Errorf("%s k=%d: CTANE found %d CFDs, brute force %d", name, k, len(got), len(want))
			}
			diffReport(t, r, name, got, want)
		}
	}
}

// TestMineMatchesFastCFD cross-validates CTANE and FastCFD on the full cust
// relation for several thresholds.
func TestMineMatchesFastCFD(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{1, 2, 3, 4} {
		got := Mine(r, k)
		want := fastcfd.Mine(r, k)
		if len(got) != len(want) {
			t.Errorf("k=%d: CTANE %d CFDs, FastCFD %d", k, len(got), len(want))
		}
		diffReport(t, r, "cust", got, want)
	}
}

// TestMineCustPaperFacts checks the CFDs named by the paper, including the
// level-2 discoveries of Example 8.
func TestMineCustPaperFacts(t *testing.T) {
	r := fixture.Cust()
	mk := func(lhs []string, vals []string, rhs, rhsVal string) core.CFD {
		s := r.Schema()
		X, err := s.AttrSetOf(lhs...)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := s.Index(rhs)
		tp := core.NewPattern(s.Arity())
		for i, nm := range lhs {
			idx, _ := s.Index(nm)
			if vals[i] != "_" {
				v, ok := r.Dict(idx).Lookup(vals[i])
				if !ok {
					t.Fatalf("value %q not in %s", vals[i], nm)
				}
				tp[idx] = v
			}
		}
		if rhsVal != "_" {
			v, ok := r.Dict(a).Lookup(rhsVal)
			if !ok {
				t.Fatalf("value %q not in %s", rhsVal, rhs)
			}
			tp[a] = v
		}
		return core.CFD{LHS: X, RHS: a, Tp: tp}
	}

	got3 := keys(Mine(r, 3))
	// Example 8 (level-2 discoveries with k = 3): the constant CFDs
	// (ZIP -> CC, (07974||01)) and (ZIP -> AC, (07974||908)) and the variable
	// CFDs (ZIP -> CC, (07974||_)), (ZIP -> AC, (07974||_)), (STR -> ZIP, (_||_)).
	expect := map[string]core.CFD{
		"(ZIP->CC,(07974||01))":   mk([]string{"ZIP"}, []string{"07974"}, "CC", "01"),
		"(ZIP->CC,(07974||_))":    mk([]string{"ZIP"}, []string{"07974"}, "CC", "_"),
		"(ZIP->AC,(07974||908))":  mk([]string{"ZIP"}, []string{"07974"}, "AC", "908"),
		"(ZIP->AC,(07974||_))":    mk([]string{"ZIP"}, []string{"07974"}, "AC", "_"),
		"(STR->ZIP,(_||_))":       mk([]string{"STR"}, []string{"_"}, "ZIP", "_"),
		"f1":                      mk([]string{"CC", "AC"}, []string{"_", "_"}, "CT", "_"),
		"f2":                      mk([]string{"CC", "AC", "PN"}, []string{"_", "_", "_"}, "STR", "_"),
		"phi0":                    mk([]string{"CC", "ZIP"}, []string{"44", "_"}, "STR", "_"),
		"([CC,AC]->ZIP,(_,_||_))": mk([]string{"CC", "AC"}, []string{"_", "_"}, "ZIP", "_"),
	}
	for name, c := range expect {
		if !got3[c.Key()] {
			t.Errorf("k=3: %s missing: %s", name, c.Format(r))
		}
	}
	// Example 8 (F): ([CC,AC] -> ZIP, (_,_||07974)) does not hold and must not appear.
	bad := mk([]string{"CC", "AC"}, []string{"_", "_"}, "ZIP", "07974")
	if got3[bad.Key()] {
		t.Errorf("([CC,AC] -> ZIP, (_,_||07974)) must not be reported")
	}
	// phi1 and phi3 are not minimal and must not appear at any threshold.
	got2 := keys(Mine(r, 2))
	phi1 := mk([]string{"CC", "AC"}, []string{"01", "908"}, "CT", "MH")
	phi3 := mk([]string{"CC", "AC"}, []string{"01", "212"}, "CT", "NYC")
	if got2[phi1.Key()] || got2[phi3.Key()] {
		t.Error("phi1/phi3 must not be reported by CTANE")
	}
}

// TestMineOutputInvariants validates that every reported CFD is minimal and
// k-frequent.
func TestMineOutputInvariants(t *testing.T) {
	r := fixture.Cust()
	for _, k := range []int{2, 3, 4} {
		for _, c := range Mine(r, k) {
			if !core.IsMinimal(r, c) {
				t.Errorf("k=%d: non-minimal CFD: %s", k, c.Format(r))
			}
			if core.Support(r, c) < k {
				t.Errorf("k=%d: infrequent CFD: %s (support %d)", k, c.Format(r), core.Support(r, c))
			}
		}
	}
}

func TestMineMaxLHS(t *testing.T) {
	r := fixture.Cust()
	got := MineWithOptions(r, Options{K: 2, MaxLHS: 1})
	if len(got) == 0 {
		t.Fatal("expected CFDs with single-attribute LHS")
	}
	for _, c := range got {
		if c.LHS.Len() > 1 {
			t.Errorf("MaxLHS=1 violated: %s", c.Format(r))
		}
	}
	full := keys(Mine(r, 2))
	for _, c := range got {
		if !full[c.Key()] {
			t.Errorf("MaxLHS run produced a CFD absent from the full run: %s", c.Format(r))
		}
	}
}

func TestMineDegenerateInputs(t *testing.T) {
	empty := core.NewRelation(core.MustSchema("A", "B"))
	if got := Mine(empty, 1); len(got) != 0 {
		t.Errorf("empty relation: got %d CFDs", len(got))
	}
	r := fixture.Cust()
	if got := Mine(r, 100); len(got) != 0 {
		t.Errorf("k > |r|: got %d CFDs", len(got))
	}
}
