package ctane

import "repro/internal/core"

// candidateSet represents the set C+(X, sp) of candidate right-hand sides of a
// lattice element (§4.1). Conceptually it is a subset of
// attr(R) × (dom ∪ {"_"}); because it starts as the full universe and only
// ever shrinks, it is stored as its complement: attributes removed entirely
// plus individually removed (attribute, value) pairs.
type candidateSet struct {
	removedAttrs core.AttrSet
	removedVals  map[int]map[int32]bool
}

func newCandidateSet() *candidateSet {
	return &candidateSet{}
}

// has reports whether (attr, val) is still a candidate. The wildcard value is
// represented by core.Wildcard.
func (c *candidateSet) has(attr int, val int32) bool {
	if c.removedAttrs.Has(attr) {
		return false
	}
	if vs, ok := c.removedVals[attr]; ok && vs[val] {
		return false
	}
	return true
}

// removeVal removes a single (attr, val) pair.
func (c *candidateSet) removeVal(attr int, val int32) {
	if c.removedAttrs.Has(attr) {
		return
	}
	if c.removedVals == nil {
		c.removedVals = make(map[int]map[int32]bool)
	}
	vs, ok := c.removedVals[attr]
	if !ok {
		vs = make(map[int32]bool)
		c.removedVals[attr] = vs
	}
	vs[val] = true
}

// removeAttr removes every candidate on the given attribute.
func (c *candidateSet) removeAttr(attr int) {
	c.removedAttrs = c.removedAttrs.Add(attr)
	if c.removedVals != nil {
		delete(c.removedVals, attr)
	}
}

// allAttrsRemoved reports whether every attribute has been removed entirely.
// It is a conservative emptiness test: a true result implies C+ is empty, so
// pruning on it is always safe, while some genuinely empty sets may be missed
// (costing time, never correctness).
func (c *candidateSet) allAttrsRemoved(arity int) bool {
	return core.FullAttrSet(arity).Diff(c.removedAttrs).IsEmpty()
}

// intersectCandidates returns the intersection of several candidate sets,
// which in the complement representation is the union of their removals.
func intersectCandidates(sets []*candidateSet) *candidateSet {
	out := newCandidateSet()
	for _, s := range sets {
		out.removedAttrs = out.removedAttrs.Union(s.removedAttrs)
	}
	for _, s := range sets {
		for attr, vs := range s.removedVals {
			if out.removedAttrs.Has(attr) {
				continue
			}
			for v := range vs {
				out.removeVal(attr, v)
			}
		}
	}
	return out
}
