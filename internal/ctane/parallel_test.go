package ctane

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
)

// parallelFixtures are the relations the worker-count determinism tests run
// on: the paper's fixtures plus pseudo-random relations of varying shape.
func parallelFixtures() map[string]*core.Relation {
	return map[string]*core.Relation{
		"cust":     fixture.Cust(),
		"custNoNM": fixture.CustNoNM(),
		"random":   fixture.Random(21, 60, []int{2, 3, 2, 4, 3}),
		"corr":     fixture.RandomCorrelated(17, 200, 6, 5),
	}
}

// TestMineContextWorkersDeterministic asserts that a four-worker run returns
// exactly the same CFD list, in the same order, as a sequential run.
func TestMineContextWorkersDeterministic(t *testing.T) {
	for name, r := range parallelFixtures() {
		for _, k := range []int{1, 2, 4} {
			seq, err := MineContext(context.Background(), r, Options{K: k, Workers: 1})
			if err != nil {
				t.Fatalf("%s k=%d sequential: %v", name, k, err)
			}
			par, err := MineContext(context.Background(), r, Options{K: k, Workers: 4})
			if err != nil {
				t.Fatalf("%s k=%d parallel: %v", name, k, err)
			}
			if len(seq) != len(par) {
				t.Errorf("%s k=%d: sequential %d CFDs, parallel %d", name, k, len(seq), len(par))
				diffReport(t, r, name, par, seq)
				continue
			}
			for i := range seq {
				if seq[i].Key() != par[i].Key() {
					t.Errorf("%s k=%d: CFD %d differs: %s vs %s", name, k, i, seq[i].Format(r), par[i].Format(r))
					break
				}
			}
		}
	}
}

// TestMineContextWorkersDeterministicMaxLHS repeats the determinism check with
// a bounded left-hand side, which exercises the truncated-lattice paths.
func TestMineContextWorkersDeterministicMaxLHS(t *testing.T) {
	r := fixture.Cust()
	seq, err := MineContext(context.Background(), r, Options{K: 2, MaxLHS: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MineContext(context.Background(), r, Options{K: 2, MaxLHS: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d CFDs, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Key() != par[i].Key() {
			t.Errorf("CFD %d differs between worker counts", i)
		}
	}
}

// TestMineContextPreCancelled asserts a cancelled context aborts the run with
// ctx.Err() before any lattice level is processed.
func TestMineContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		out, err := MineContext(ctx, fixture.Cust(), Options{K: 2, Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: expected no CFDs from a cancelled run", workers)
		}
	}
}
