package violation

import (
	"context"
	"errors"
	"sort"

	"repro/cfd"
)

// ErrCompacted is returned by Engine.Changes when the requested epoch range is
// no longer covered by the engine's bounded delta history — the since epoch
// predates the ring (or the engine was rebuilt, bulk loaded or re-based since).
// A client receiving it must resync with a full read (Report) and resume
// polling from the report's epoch.
var ErrCompacted = errors.New("delta history compacted")

// Delta is the violation-state change committed at one mutation epoch: the
// per-rule violating-set edits plus the resulting dirty-set edits, exactly
// what turns the report at Epoch-1 into the report at Epoch (see Apply).
// Merged deltas returned by Engine.Changes cover a span of epochs and carry
// the head epoch.
//
// Added and Removed hold one entry per distinct rule whose violating set
// changed — tuples sorted ascending, listing only the tuples that entered
// (respectively left) that rule's violating set. A rule appearing several
// times in the serving set contributes one entry. DirtyAdded and DirtyRemoved
// are the sorted edits to the deduplicated dirty union. Rules is non-nil only
// when the rule set itself changed in the span (a SwapRules commit) and then
// holds the full replacement rule list in serving order.
//
// Deltas are immutable once published; treat every slice as read-only.
type Delta struct {
	Epoch        uint64
	Added        []Violation
	Removed      []Violation
	DirtyAdded   []int
	DirtyRemoved []int
	Rules        []cfd.CFD
}

// Empty reports whether the delta carries no change at all (the rule set
// included).
func (d *Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.DirtyAdded) == 0 && len(d.DirtyRemoved) == 0 && d.Rules == nil
}

// ruleKey is the canonical identity of a rule across the engine: the same key
// rules.Diff and SwapRules match rules by.
func ruleKey(r cfd.CFD) string { return r.Normalize().String() }

// Apply replays the delta onto the report it was computed against: given the
// full report at the delta's base epoch it returns the full report at
// d.Epoch. ruleTable must be the rule list in effect at d.Epoch; when the
// delta spans a rule swap (d.Rules != nil) the swapped-in list is used
// instead, so a client can pass whatever table it last knew. The returned
// report shares unchanged slices with prev; treat both as read-only.
//
// This is the one reconstruction path: the engine itself patches its serving
// snapshot with it, the oracle harness replays every delta through it, and an
// API client mirroring /v1/violations?since= follows the same algorithm.
func (d *Delta) Apply(prev *Report, ruleTable []cfd.CFD) *Report {
	table := ruleTable
	if d.Rules != nil {
		table = d.Rules
	}
	byKey := make(map[string][]int, len(prev.Violations))
	for _, v := range prev.Violations {
		k := ruleKey(v.Rule)
		if _, ok := byKey[k]; !ok {
			byKey[k] = v.Tuples
		}
	}
	for _, v := range d.Removed {
		k := ruleKey(v.Rule)
		if ts := patchSorted(byKey[k], nil, v.Tuples); len(ts) == 0 {
			delete(byKey, k)
		} else {
			byKey[k] = ts
		}
	}
	for _, v := range d.Added {
		byKey[ruleKey(v.Rule)] = patchSorted(byKey[ruleKey(v.Rule)], v.Tuples, nil)
	}
	out := &Report{Epoch: d.Epoch, RulesChecked: len(table)}
	for _, r := range table {
		if ts := byKey[ruleKey(r)]; len(ts) > 0 {
			out.Violations = append(out.Violations, Violation{Rule: r, Tuples: ts})
		}
	}
	out.DirtyTuples = patchSorted(prev.DirtyTuples, d.DirtyAdded, d.DirtyRemoved)
	return out
}

// patchSorted merges the sorted edit lists into the sorted base set: base with
// the add elements inserted and the remove elements dropped, as a fresh slice
// (base itself when there is nothing to do). add and remove are disjoint;
// adding a present element or removing an absent one is tolerated (set
// semantics).
func patchSorted(base, add, remove []int) []int {
	if len(add) == 0 && len(remove) == 0 {
		return base
	}
	out := make([]int, 0, len(base)+len(add))
	ai, ri := 0, 0
	for _, v := range base {
		for ai < len(add) && add[ai] < v {
			out = append(out, add[ai])
			ai++
		}
		if ai < len(add) && add[ai] == v {
			ai++ // already present
		}
		for ri < len(remove) && remove[ri] < v {
			ri++ // not present; nothing to drop
		}
		if ri < len(remove) && remove[ri] == v {
			ri++
			continue
		}
		out = append(out, v)
	}
	out = append(out, add[ai:]...)
	return out
}

// mergeDeltas folds consecutive per-epoch deltas (oldest first) into one
// delta at the head epoch. Because a (rule, tuple) membership — and a tuple's
// dirty membership — strictly alternates between entering and leaving across
// commits, opposite edits cancel exactly and the fold is the symmetric
// difference between the two end states.
func mergeDeltas(ds []*Delta, epoch uint64) *Delta {
	if len(ds) == 1 {
		return ds[0]
	}
	out := &Delta{Epoch: epoch}
	type fold struct {
		rule  cfd.CFD
		signs map[int]int8
	}
	folds := make(map[string]*fold)
	var order []string
	acc := func(v Violation, sign int8) {
		k := ruleKey(v.Rule)
		f := folds[k]
		if f == nil {
			f = &fold{signs: make(map[int]int8)}
			folds[k] = f
			order = append(order, k)
		}
		f.rule = v.Rule
		for _, t := range v.Tuples {
			if f.signs[t] == -sign {
				delete(f.signs, t)
			} else {
				f.signs[t] = sign
			}
		}
	}
	dirty := make(map[int]int8)
	foldDirty := func(ts []int, sign int8) {
		for _, t := range ts {
			if dirty[t] == -sign {
				delete(dirty, t)
			} else {
				dirty[t] = sign
			}
		}
	}
	for _, d := range ds {
		for _, v := range d.Added {
			acc(v, 1)
		}
		for _, v := range d.Removed {
			acc(v, -1)
		}
		foldDirty(d.DirtyAdded, 1)
		foldDirty(d.DirtyRemoved, -1)
		if d.Rules != nil {
			out.Rules = d.Rules
		}
	}
	for _, k := range order {
		f := folds[k]
		var add, rem []int
		for t, s := range f.signs {
			if s > 0 {
				add = append(add, t)
			} else {
				rem = append(rem, t)
			}
		}
		sort.Ints(add)
		sort.Ints(rem)
		if len(add) > 0 {
			out.Added = append(out.Added, Violation{Rule: f.rule, Tuples: add})
		}
		if len(rem) > 0 {
			out.Removed = append(out.Removed, Violation{Rule: f.rule, Tuples: rem})
		}
	}
	for t, s := range dirty {
		if s > 0 {
			out.DirtyAdded = append(out.DirtyAdded, t)
		} else {
			out.DirtyRemoved = append(out.DirtyRemoved, t)
		}
	}
	sort.Ints(out.DirtyAdded)
	sort.Ints(out.DirtyRemoved)
	return out
}

// recordDelta publishes the violation delta of the commit in flight: it
// derives the dirty-set edits from the per-rule edits through the engine's
// distinct-rule refcounts, stamps the delta with the epoch the commit is
// about to become, and pushes it into the bounded ring. added and removed
// hold one entry per distinct rule (sorted tuples); newRules is non-nil for a
// rule swap. Callers hold the write lock and must bumpLocked right after.
func (e *Engine) recordDelta(added, removed []Violation, newRules []cfd.CFD) {
	d := &Delta{Epoch: e.epoch.Load() + 1, Added: added, Removed: removed, Rules: newRules}
	if e.dirtyRef == nil {
		e.dirtyRef = make(map[int]int)
	}
	// Added before removed: a tuple trading one violated rule for another then
	// never dips through zero, keeping DirtyAdded and DirtyRemoved disjoint.
	for _, v := range added {
		for _, t := range v.Tuples {
			if e.dirtyRef[t]++; e.dirtyRef[t] == 1 {
				d.DirtyAdded = append(d.DirtyAdded, t)
			}
		}
	}
	for _, v := range removed {
		for _, t := range v.Tuples {
			if e.dirtyRef[t]--; e.dirtyRef[t] == 0 {
				delete(e.dirtyRef, t)
				d.DirtyRemoved = append(d.DirtyRemoved, t)
			}
		}
	}
	sort.Ints(d.DirtyAdded)
	sort.Ints(d.DirtyRemoved)
	if len(e.deltas) > 0 {
		e.deltas[d.Epoch%uint64(len(e.deltas))] = d
		if e.deltaN < len(e.deltas) {
			e.deltaN++
		} else {
			// Ring full: this write overwrote the oldest answerable epoch.
			e.deltaEvictions.Add(1)
		}
	}
}

// rebuildDirtyLocked re-derives the distinct-rule dirty refcounts from the
// indexes, after a bulk change that bypasses per-commit deltas (BulkLoad,
// restore). Callers hold the write lock.
func (e *Engine) rebuildDirtyLocked() {
	e.dirtyRef = make(map[int]int)
	seen := make(map[string]bool, len(e.rules))
	for i, ix := range e.indexes {
		if ix.BadTuples() == 0 {
			continue
		}
		k := ruleKey(e.rules[i])
		if seen[k] {
			continue
		}
		seen[k] = true
		for _, t := range ix.Violating() {
			e.dirtyRef[t]++
		}
	}
}

// bumpLocked commits a mutation epoch: it advances the epoch counter and
// wakes every WaitChange waiter. Callers hold the write lock and have already
// recorded the commit's delta (or reset the ring).
func (e *Engine) bumpLocked() {
	e.epoch.Add(1)
	close(e.watch)
	e.watch = make(chan struct{})
}

// resetViewLocked commits a mutation that is not delta-tracked (BulkLoad,
// restore): the ring is emptied — Changes across it reports ErrCompacted —
// and the dirty refcounts are rebuilt from the indexes. Callers hold the
// write lock.
func (e *Engine) resetViewLocked() {
	e.deltaN = 0
	e.rebuildDirtyLocked()
	e.bumpLocked()
}

// rebaseEpochLocked renumbers the engine's epoch (aligning it with a commit
// log's sequence numbers) and discards everything keyed by the old numbering:
// the delta ring and the cached snapshot. Callers hold the write lock.
func (e *Engine) rebaseEpochLocked(n uint64) {
	e.epoch.Store(n)
	e.deltaN = 0
	e.snap.Store(nil)
	close(e.watch)
	e.watch = make(chan struct{})
}

// Changes returns the merged delta covering the epochs (since, Epoch()]: what
// changed since the caller last looked. A since equal to the current epoch
// yields an empty delta at that epoch. If the range is not covered by the
// bounded delta history — too old, ahead of the engine, or spanning a bulk
// load or rebase — it returns ErrCompacted and the caller must resync with a
// full read. The returned delta is immutable; treat its slices as read-only.
func (e *Engine) Changes(since uint64) (*Delta, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, err := e.changesLocked(since)
	if err != nil {
		// Counted here, not in changesLocked: the snapshot patcher probing the
		// ring internally is not a client forced to resync.
		e.deltaCompacted.Add(1)
	}
	return d, err
}

// changesLocked is Changes with mu already held (either way).
func (e *Engine) changesLocked(since uint64) (*Delta, error) {
	head := e.epoch.Load()
	if since == head {
		return &Delta{Epoch: head}, nil
	}
	if since > head || head-since > uint64(e.deltaN) {
		return nil, ErrCompacted
	}
	ds := make([]*Delta, head-since)
	for i := range ds {
		ds[i] = e.deltas[(since+1+uint64(i))%uint64(len(e.deltas))]
	}
	return mergeDeltas(ds, head), nil
}

// WaitChange blocks until the engine's epoch differs from since (returning
// the new epoch immediately if it already does) or ctx is done (returning
// ctx.Err()). It is the long-poll primitive behind the serving layer's delta
// stream: wait, then Changes(since), then follow the returned epoch.
func (e *Engine) WaitChange(ctx context.Context, since uint64) (uint64, error) {
	waiting := false
	defer func() {
		if waiting {
			e.waiters.Add(-1)
		}
	}()
	for {
		e.mu.RLock()
		cur := e.epoch.Load()
		ch := e.watch
		e.mu.RUnlock()
		if cur != since {
			return cur, nil
		}
		if !waiting {
			waiting = true
			e.waiters.Add(1)
		}
		select {
		case <-ctx.Done():
			return cur, ctx.Err()
		case <-ch:
		}
	}
}
