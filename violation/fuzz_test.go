package violation

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/cfd"
	"repro/rules"
)

// fuzzSeedSnapshot builds a small real snapshot (format 2) to seed the corpus:
// a few tuples with shared and unique values, a deleted hole, and a rule set.
func fuzzSeedSnapshot(tb testing.TB) []byte {
	tb.Helper()
	set := rules.Of(
		cfd.NewFD([]string{"A"}, "B"),
		cfd.CFD{LHS: []string{"A"}, RHS: "C", LHSPattern: []string{"x"}, RHSPattern: "k"},
	)
	eng, err := New([]string{"A", "B", "C"}, set, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for _, row := range [][]string{{"x", "1", "k"}, {"x", "2", "k"}, {"y", "1", ""}, {"z", "", "a|b"}} {
		if _, err := eng.Insert(row...); err != nil {
			tb.Fatal(err)
		}
	}
	if err := eng.Delete(2); err != nil {
		tb.Fatal(err)
	}
	data, err := json.Marshal(eng.captureSnapshot(nil))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot decoder and
// checks the two properties the persistence layer promises: corrupt or
// truncated input is rejected with an error — never a panic, never an
// oversized allocation — and any input that decodes restores into an engine
// whose re-encoded snapshot is byte-stable (encode → restore → encode is the
// identity from the first encode on, for format 1 and format 2 alike).
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(fuzzSeedSnapshot(f))
	// A format 1 (legacy) snapshot, as older builds wrote it.
	f.Add([]byte(`{"format":1,"wal_seq":3,"attributes":["A","B"],"ruleset":{"cfds":[]},"next_id":3,"tuples":[{"id":0,"values":["x","1"]},{"id":2,"values":["x","2"]}]}`))
	// Structurally broken variants: truncated, dangling code, ragged column,
	// duplicate dictionary value, dead id on one column only.
	f.Add(fuzzSeedSnapshot(f)[:40])
	f.Add([]byte(`{"format":2,"attributes":["A"],"next_id":1,"dicts":[["x"]],"columns":[[7]]}`))
	f.Add([]byte(`{"format":2,"attributes":["A","B"],"next_id":2,"dicts":[["x"],["y"]],"columns":[[0,0],[0]]}`))
	f.Add([]byte(`{"format":2,"attributes":["A"],"next_id":1,"dicts":[["x","x"]],"columns":[[0]]}`))
	f.Add([]byte(`{"format":2,"attributes":["A","B"],"next_id":1,"dicts":[["x"],["y"]],"columns":[[-1],[0]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := decodeSnapshotFile(data)
		if err != nil {
			return // rejected cleanly; a panic would fail the fuzzer
		}
		// The decoder bounds every dimension against the data itself except a
		// legacy next_id, which commands a table allocation all by itself;
		// keep the fuzzer off multi-gigabyte grows.
		if file.NextID > 1<<16 {
			return
		}
		restore := func(file *snapshotFile) *Engine {
			eng, err := New(file.Attributes, file.RuleSet, Options{})
			if err != nil {
				return nil // invalid schema or rules: a clean rejection
			}
			if err := eng.restoreSnapshot(file); err != nil {
				return nil
			}
			return eng
		}
		eng := restore(file)
		if eng == nil {
			return
		}
		seq := func() uint64 { return file.WalSeq }
		out1, err := json.Marshal(eng.captureSnapshot(seq))
		if err != nil {
			t.Fatalf("encoding a restored engine: %v", err)
		}
		file2, err := decodeSnapshotFile(out1)
		if err != nil {
			t.Fatalf("re-decoding an engine-written snapshot: %v\n%s", err, out1)
		}
		eng2 := restore(file2)
		if eng2 == nil {
			t.Fatalf("re-restoring an engine-written snapshot failed\n%s", out1)
		}
		out2, err := json.Marshal(eng2.captureSnapshot(seq))
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("snapshot round trip is not byte-stable\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}
