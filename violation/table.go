package violation

// absent is the sentinel code marking a dead id slot in the columnar row
// table: an id that was deleted, or a hole opened below a pinned insert. It
// can never collide with a real code — dictionary codes are dense from 0.
const absent int32 = -1

// table is the engine's columnar tuple store: one dense []int32 per
// attribute, indexed by tuple id, holding the id's dictionary code for that
// attribute (absent on every column once the id is dead). Compared to the
// previous per-id row slices this drops the per-tuple allocation and slice
// header entirely — a live or dead id costs exactly arity × 4 bytes — and
// lets bulk loads translate whole columns with tight integer loops.
//
// Liveness is derived from column 0 (an id is live iff its column-0 code is
// not absent); set and clear keep every column consistent, so any column
// would do. The engine rejects zero-attribute schemas, so column 0 exists.
type table struct {
	cols [][]int32
}

func newTable(arity int) *table {
	return &table{cols: make([][]int32, arity)}
}

// slots returns the number of id slots (ids ever assigned, live or not).
func (t *table) slots() int { return len(t.cols[0]) }

// live reports whether id is an assigned, non-deleted tuple.
func (t *table) live(id int) bool {
	return id >= 0 && id < len(t.cols[0]) && t.cols[0][id] != absent
}

// grow appends n absent slots to every column.
func (t *table) grow(n int) {
	for a := range t.cols {
		col := t.cols[a]
		for i := 0; i < n; i++ {
			col = append(col, absent)
		}
		t.cols[a] = col
	}
}

// set writes the encoded row at id, which must be an existing slot.
func (t *table) set(id int, row []int32) {
	for a := range t.cols {
		t.cols[a][id] = row[a]
	}
}

// clear marks id dead.
func (t *table) clear(id int) {
	for a := range t.cols {
		t.cols[a][id] = absent
	}
}

// gather copies the row at id into dst, which must have arity length.
func (t *table) gather(id int, dst []int32) {
	for a := range t.cols {
		dst[a] = t.cols[a][id]
	}
}

// row returns a fresh copy of the encoded row at id.
func (t *table) row(id int) []int32 {
	dst := make([]int32, len(t.cols))
	t.gather(id, dst)
	return dst
}

// snapshotCols returns a deep copy of every column, for compaction captures
// that must stay stable while the engine keeps mutating.
func (t *table) snapshotCols() [][]int32 {
	out := make([][]int32, len(t.cols))
	for a := range t.cols {
		out[a] = append([]int32(nil), t.cols[a]...)
	}
	return out
}
