package violation_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/cfd"
	"repro/rules"
	"repro/violation"
)

// swapEquivalent builds a fresh engine over the same tuples and the target
// rule set — the state SwapRules must land in exactly.
func swapEquivalent(t *testing.T, eng *violation.Engine, set *rules.Set) *violation.Engine {
	t.Helper()
	rel, ids, err := eng.Relation()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := violation.New(eng.Attributes(), set, violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Engine ids must line up: replay the live tuples at their original ids
	// via inserts and deletes of filler tuples.
	next := 0
	for i, id := range ids {
		for next < id {
			fid, err := fresh.Insert(rel.Row(i)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Delete(fid); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if _, err := fresh.Insert(rel.Row(i)...); err != nil {
			t.Fatal(err)
		}
		next++
	}
	return fresh
}

// TestSwapRulesMatchesRebuild is the defining check: swapping to a new set
// must land the engine in exactly the state of an engine built from scratch
// over the same tuples and the new rules — retained indexes reused or not.
func TestSwapRulesMatchesRebuild(t *testing.T) {
	fx := fixtures(t)[0]
	full := fx.rules
	targets := []struct {
		name string
		set  *rules.Set
	}{
		{"drop-half", rules.Of(full[:3]...)},
		{"disjoint", rules.Of(
			cfd.NewFD([]string{"PN"}, "NM"),
			cfd.CFD{LHS: []string{"CT"}, RHS: "CC", LHSPattern: []string{"NYC"}, RHSPattern: "01"},
		)},
		{"reorder-and-add", rules.Of(append([]cfd.CFD{
			cfd.NewFD([]string{"NM"}, "PN"),
		}, full[1], full[0])...)},
		{"empty", rules.Of()},
		{"identical", rules.Of(full...)},
	}
	for _, tc := range targets {
		t.Run(tc.name, func(t *testing.T) {
			for _, shards := range []int{1, 3} {
				eng := custEngine(t, true, violation.Options{Shards: shards})
				old := eng.RuleSet()
				delta, err := eng.SwapRules(context.Background(), tc.set)
				if err != nil {
					t.Fatal(err)
				}
				if delta.Old != old.Fingerprint() || delta.New != tc.set.Fingerprint() {
					t.Fatalf("delta versions %s -> %s, want %s -> %s", delta.Old, delta.New, old.Fingerprint(), tc.set.Fingerprint())
				}
				if len(delta.Added)+len(delta.Retained) != tc.set.Len() {
					t.Fatalf("delta %v does not cover the new set", delta)
				}
				if len(delta.Removed)+len(delta.Retained) != old.Len() {
					t.Fatalf("delta %v does not cover the old set", delta)
				}
				assertSameState(t, eng, swapEquivalent(t, eng, tc.set))
				if !reflect.DeepEqual(eng.Rules(), tc.set.CFDs()) {
					t.Fatalf("engine rules %v, want %v", eng.Rules(), tc.set.CFDs())
				}
				if got := eng.RuleSet().Fingerprint(); got != tc.set.Fingerprint() {
					t.Fatalf("served fingerprint %s, want %s", got, tc.set.Fingerprint())
				}
			}
		})
	}
}

// TestSwapRulesKeepsMutating: after a swap the engine keeps accepting
// mutations, maintained under the new rules only.
func TestSwapRulesKeepsMutating(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	set := rules.Of(cfd.NewFD([]string{"CC", "ZIP"}, "STR"))
	if _, err := eng.SwapRules(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	// A tuple violating only the dropped constant rule must stay clean…
	id, err := eng.Insert("99", "131", "0000000", "Nic", "Canal St.", "AMS", "1011")
	if err != nil {
		t.Fatal(err)
	}
	if violated, err := eng.TupleViolations(id); err != nil || len(violated) != 0 {
		t.Fatalf("tuple %d violates %v under the swapped set, want none", id, violated)
	}
	// …while a street split under the retained FD is still caught.
	id2, err := eng.Insert("01", "212", "1234567", "Ann", "Other St.", "NYC", "01202")
	if err != nil {
		t.Fatal(err)
	}
	if violated, err := eng.TupleViolations(id2); err != nil || len(violated) != 1 {
		t.Fatalf("tuple %d violates %v, want the retained FD", id2, violated)
	}
	assertSameState(t, eng, swapEquivalent(t, eng, set))
}

// TestSwapRulesEpochAndSnapshot: a swap invalidates the cached reader
// snapshot like any other mutation.
func TestSwapRulesEpochAndSnapshot(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	before := eng.Report()
	if len(before.Violations) == 0 {
		t.Fatal("fixture must be dirty")
	}
	epoch := eng.Epoch()
	if _, err := eng.SwapRules(context.Background(), rules.Of()); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() == epoch {
		t.Fatal("swap must bump the epoch")
	}
	after := eng.Report()
	if len(after.Violations) != 0 || after.RulesChecked != 0 {
		t.Fatalf("report after swap to empty set: %+v", after)
	}
}

// TestSwapRulesRejectsInvalid: a set naming unknown attributes (or malformed
// rules) is rejected atomically — the engine keeps serving the old set.
func TestSwapRulesRejectsInvalid(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	before := eng.Report()
	fp := eng.RuleSet().Fingerprint()
	bad := []*rules.Set{
		rules.Of(cfd.NewFD([]string{"BOGUS"}, "CT")),
		rules.Of(cfd.NewFD([]string{"CC"}, "BOGUS")),
		rules.Of(cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"1", "2"}, RHSPattern: "_"}),
	}
	for _, set := range bad {
		if _, err := eng.SwapRules(context.Background(), set); err == nil {
			t.Fatalf("swap to %v must fail", set.CFDs())
		}
	}
	if got := eng.RuleSet().Fingerprint(); got != fp {
		t.Fatal("failed swaps must leave the rule set unchanged")
	}
	if !reflect.DeepEqual(eng.Report(), before) {
		t.Fatal("failed swaps must leave the violation state unchanged")
	}
}

// TestSwapRulesCancelled: a cancelled context aborts the added-rule index
// build with no state change.
func TestSwapRulesCancelled(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	before := eng.Report()
	fp := eng.RuleSet().Fingerprint()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SwapRules(ctx, rules.Of(cfd.NewFD([]string{"PN"}, "NM"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled swap: err = %v, want context.Canceled", err)
	}
	if got := eng.RuleSet().Fingerprint(); got != fp || !reflect.DeepEqual(eng.Report(), before) {
		t.Fatal("cancelled swap must leave the engine unchanged")
	}
}

// TestSwapRulesWALOnlyLog: an attached CommitLog that cannot journal rule
// swaps vetoes the swap with ErrWAL instead of desyncing the log.
func TestSwapRulesWALOnlyLog(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	eng.AttachWAL(failingLog{err: nil}) // implements CommitLog only
	fp := eng.RuleSet().Fingerprint()
	if _, err := eng.SwapRules(context.Background(), rules.Of()); !errors.Is(err, violation.ErrWAL) {
		t.Fatalf("swap through an op-only log: err = %v, want ErrWAL", err)
	}
	if got := eng.RuleSet().Fingerprint(); got != fp {
		t.Fatal("vetoed swap must leave the rule set unchanged")
	}
}

// TestSwapRulesNil: a nil set swaps to the empty set.
func TestSwapRulesNil(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	delta, err := eng.SwapRules(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Retained) != 0 || len(delta.Added) != 0 || len(delta.Removed) != 6 {
		t.Fatalf("delta = %v", delta)
	}
	if eng.RuleSet().Len() != 0 || len(eng.Rules()) != 0 {
		t.Fatal("nil swap must serve the empty set")
	}
}

// TestSwapRulesConcurrentReaders races swaps against snapshot readers and
// point reads; under -race this proves the swap path's locking. Every
// observed snapshot must be internally consistent and belong entirely to one
// of the two rule sets, never a mix.
func TestSwapRulesConcurrentReaders(t *testing.T) {
	fx := fixtures(t)[0]
	setA := rules.Of(fx.rules...)
	setB := rules.Of(fx.rules[1], cfd.NewFD([]string{"NM"}, "PN"))
	eng, err := violation.New(fx.rel.Attributes(), setA, violation.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{setA.Fingerprint(): true, setB.Fingerprint(): true}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 40; i++ {
			set := setA
			if i%2 == 0 {
				set = setB
			}
			if _, err := eng.SwapRules(context.Background(), set); err != nil {
				errs <- err.Error()
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if fp := eng.RuleSet().Fingerprint(); !known[fp] {
					errs <- "reader saw a rule set that was never installed: " + fp
					return
				}
				rep := eng.Report()
				if rep.RulesChecked != 2 && rep.RulesChecked != 6 {
					errs <- "reader saw a half-swapped rule count"
					return
				}
				seen := rules.Of(eng.Rules()...).Fingerprint()
				if !known[seen] {
					errs <- "Rules() returned a mix of two sets"
					return
				}
				_, _ = eng.TupleViolations(0)
				_ = eng.Dirty()
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
