package violation_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/violation"
)

// TestInsertAt: an insert pinned with At lands at exactly that id, skipped
// ids stay unassigned holes, and the sequential counter continues after the
// highest pinned id — the contract a cluster coordinator relies on to keep
// globally assigned ids stable on the owning shard.
func TestInsertAt(t *testing.T) {
	eng := custEngine(t, true, violation.Options{}) // ids 0..7 live
	at := func(id int) *int { return &id }
	row := []string{"01", "908", "7777777", "Pat", "Tree Ave.", "MH", "07974"}

	ids, err := eng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(12)}})
	if err != nil || len(ids) != 1 || ids[0] != 12 {
		t.Fatalf("pinned insert: ids=%v err=%v", ids, err)
	}
	if got := eng.NextID(); got != 13 {
		t.Fatalf("NextID after pin at 12 = %d, want 13", got)
	}
	if _, err := eng.Row(10); err == nil {
		t.Fatal("skipped id 10 must stay a hole")
	}
	if vals, err := eng.Row(12); err != nil || vals[3] != "Pat" {
		t.Fatalf("Row(12) = %v, %v", vals, err)
	}

	// The next sequential insert continues past the pin.
	id, err := eng.Insert("44", "131", "6666666", "Una", "High St.", "EDI", "EH4 1DT")
	if err != nil || id != 13 {
		t.Fatalf("sequential insert after pin: id=%d err=%v", id, err)
	}

	// Pinning a live id is refused atomically; nothing of the batch lands.
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: row},
		{Kind: violation.OpInsert, Values: row, At: at(13)},
	}); err == nil || !strings.Contains(err.Error(), "tuple exists") {
		t.Fatalf("pin at live id: err = %v, want tuple exists", err)
	}
	if eng.NextID() != 14 {
		t.Fatalf("failed batch must not move NextID: %d", eng.NextID())
	}
	if _, err := eng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(-1)}}); err == nil {
		t.Fatal("negative pin must be refused")
	}

	// A pin may fill a hole, including one freed earlier in the same batch.
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpDelete, ID: 0},
		{Kind: violation.OpInsert, Values: row, At: at(0)},
		{Kind: violation.OpInsert, Values: row, At: at(10)},
	}); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != 11 || eng.NextID() != 14 {
		t.Fatalf("size=%d nextID=%d after hole fills, want 11 and 14", eng.Size(), eng.NextID())
	}

	// Pinned and sequential inserts interleave within one batch: the
	// sequential one continues after the pin that precedes it.
	ids, err = eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: row, At: at(20)},
		{Kind: violation.OpInsert, Values: row},
	})
	if err != nil || ids[0] != 20 || ids[1] != 21 {
		t.Fatalf("mixed pin/sequential batch: ids=%v err=%v", ids, err)
	}
}

// TestInsertAtGapBound: a pin far past the current end is a validation
// error — the holes it would open are an allocation the op commands — and,
// on a durable engine, the rejected op never reaches the write-ahead log,
// so a restart replays cleanly instead of crash-looping on a poison record.
func TestInsertAtGapBound(t *testing.T) {
	eng := custEngine(t, true, violation.Options{MaxPinGap: 100}) // ids 0..7 live
	at := func(id int) *int { return &id }
	row := []string{"01", "908", "7777777", "Pat", "Tree Ave.", "MH", "07974"}

	// end is 8: a pin at 108 opens exactly 100 holes and is the last legal one.
	if _, err := eng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(108)}}); err != nil {
		t.Fatalf("pin at the gap limit must be accepted: %v", err)
	}
	if _, err := eng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(210)}}); err == nil ||
		!strings.Contains(err.Error(), "unassigned ids past the current end") {
		t.Fatalf("pin past the gap limit: err = %v", err)
	}
	if eng.NextID() != 109 {
		t.Fatalf("rejected pin must not move NextID: %d", eng.NextID())
	}
	// The default bound refuses an allocation-bomb pin outright.
	def := custEngine(t, true, violation.Options{})
	huge := violation.DefaultMaxPinGap + 10
	if _, err := def.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(huge)}}); err == nil {
		t.Fatal("default engine must refuse a pin far past the end")
	}
	// A negative MaxPinGap disables the bound.
	open := custEngine(t, true, violation.Options{MaxPinGap: -1})
	if _, err := open.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: at(9_000)}}); err != nil {
		t.Fatalf("unbounded engine must accept a wide pin: %v", err)
	}

	// Durable: the rejected pin is never logged, so the WAL replays clean.
	dir := t.TempDir()
	deng, st := durableEngine(t, dir, violation.StoreOptions{})
	atHuge := violation.DefaultMaxPinGap * 3
	if _, err := deng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: &atHuge}}); err == nil {
		t.Fatal("durable engine must refuse the oversized pin")
	}
	ok := 30
	if _, err := deng.ApplyBatch([]violation.Op{{Kind: violation.OpInsert, Values: row, At: &ok}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, deng, back)
}

// TestInsertAtJSON: the wire codec round-trips "at" on inserts and rejects
// it on ops that do not assign ids.
func TestInsertAtJSON(t *testing.T) {
	seven := 7
	data, err := json.Marshal(violation.Op{Kind: violation.OpInsert, Values: []string{"x"}, At: &seven})
	if err != nil || !strings.Contains(string(data), `"at":7`) {
		t.Fatalf("marshal pinned insert: %s (err %v)", data, err)
	}
	var op violation.Op
	if err := json.Unmarshal(data, &op); err != nil || op.At == nil || *op.At != 7 {
		t.Fatalf("round trip pinned insert: %+v err=%v", op, err)
	}
	data, err = json.Marshal(violation.Op{Kind: violation.OpDelete, ID: 3, At: &seven})
	if err != nil || strings.Contains(string(data), `"at"`) {
		t.Fatalf("delete must marshal without at: %s (err %v)", data, err)
	}
	if err := json.Unmarshal([]byte(`{"op":"delete","id":3,"at":7}`), &op); err == nil {
		t.Fatal(`decoding "at" on a delete must fail`)
	}
	if err := json.Unmarshal([]byte(`{"op":"insert","values":["x"]}`), &op); err != nil || op.At != nil {
		t.Fatalf("plain insert must decode with nil At: %+v err=%v", op, err)
	}
}

// TestInsertAtReplay: pinned inserts are write-ahead logged and replayed to
// the same ids, holes included.
func TestInsertAtReplay(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	at := 11
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: []string{"44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"}, At: &at},
		{Kind: violation.OpDelete, ID: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // crash: replay from the WAL tail
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	if back.NextID() != 12 {
		t.Fatalf("replayed NextID = %d, want 12", back.NextID())
	}
}

// TestStoreLock: a state directory held by a live store refuses a second
// open with a clear error, and releases on Close.
func TestStoreLock(t *testing.T) {
	dir := t.TempDir()
	st, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := violation.OpenStore(dir, violation.StoreOptions{}); err == nil ||
		!strings.Contains(err.Error(), "already in use by a live process") {
		t.Fatalf("second open of a held directory: err = %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatalf("open after Close must succeed: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
