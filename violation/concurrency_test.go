package violation_test

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/rules"
	"repro/violation"
)

// checkReportConsistent asserts the internal invariants every snapshot must
// satisfy regardless of when it was taken: violations in rule order with
// ascending tuple ids, and the dirty set exactly the sorted union of them.
func checkReportConsistent(t *testing.T, eng *violation.Engine, rep *violation.Report) {
	t.Helper()
	ruleAt := make(map[string]int, len(eng.Rules()))
	for i, r := range eng.Rules() {
		ruleAt[r.String()] = i
	}
	union := make(map[int]bool)
	last := -1
	for _, v := range rep.Violations {
		at, ok := ruleAt[v.Rule.String()]
		if !ok {
			t.Fatalf("snapshot reports unknown rule %s", v.Rule)
		}
		if at <= last {
			t.Fatalf("snapshot violations out of rule order at %s", v.Rule)
		}
		last = at
		if !sort.IntsAreSorted(v.Tuples) || len(v.Tuples) == 0 {
			t.Fatalf("rule %s: tuples %v not sorted or empty", v.Rule, v.Tuples)
		}
		for _, id := range v.Tuples {
			union[id] = true
		}
	}
	want := make([]int, 0, len(union))
	for id := range union {
		want = append(want, id)
	}
	sort.Ints(want)
	if len(want) == 0 {
		want = nil
	}
	got := rep.DirtyTuples
	if len(got) == 0 {
		got = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dirty %v is not the union %v of the snapshot's violations", rep.DirtyTuples, want)
	}
}

// TestConcurrentReadersAndWriters hammers one engine from mixed goroutines —
// per-op writers, batch writers and several kinds of readers — and then
// checks (a) every observed snapshot was internally consistent, i.e. no
// reader ever saw a half-applied mutation, and (b) the final state is
// self-consistent: rebuilding an engine from the surviving tuples reproduces
// the violation report exactly. Run under -race this is the engine's
// thread-safety proof.
func TestConcurrentReadersAndWriters(t *testing.T) {
	fx := fixtures(t)[0]
	eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}

	const (
		writers        = 4
		batchWriters   = 2
		readers        = 4
		opsPerWriter   = 60
		batchesPerLoop = 15
	)
	var writerWG, readerWG sync.WaitGroup
	errCh := make(chan error, writers+batchWriters+readers)

	// Per-op writers: insert a tuple, mutate it, delete it. Ids are never
	// shared across writers, so every op targets a tuple the writer owns and
	// must succeed.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWriter; i++ {
				row := fx.rel.Row(rng.Intn(fx.rel.Size()))
				id, err := eng.Insert(row...)
				if err != nil {
					errCh <- err
					return
				}
				if err := eng.Update(id, fx.rel.Row(rng.Intn(fx.rel.Size()))...); err != nil {
					errCh <- err
					return
				}
				if err := eng.Delete(id); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Batch writers: insert a small batch, then delete it in one batch.
	for w := 0; w < batchWriters; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < batchesPerLoop; i++ {
				ins := make([]violation.Op, 5)
				for j := range ins {
					ins[j] = violation.Op{Kind: violation.OpInsert, Values: fx.rel.Row(rng.Intn(fx.rel.Size()))}
				}
				ids, err := eng.ApplyBatch(ins)
				if err != nil {
					errCh <- err
					return
				}
				del := make([]violation.Op, len(ids))
				for j, id := range ids {
					del[j] = violation.Op{Kind: violation.OpDelete, ID: id}
				}
				if _, err := eng.ApplyBatch(del); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	reports := make([][]*violation.Report, readers)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				rep := eng.Report()
				if len(reports[r]) < 64 {
					reports[r] = append(reports[r], rep)
				}
				for v := range eng.Violations() {
					_ = v.Tuples
				}
				_ = eng.Dirty()
				_ = eng.Size()
				_ = eng.DirtyCount()
				// Point reads on ids that may vanish concurrently: only
				// ErrNotFound is acceptable as an error.
				if _, err := eng.Row(8); err != nil && !errors.Is(err, violation.ErrNotFound) {
					errCh <- err
					return
				}
				if _, err := eng.TupleViolations(8); err != nil && !errors.Is(err, violation.ErrNotFound) {
					errCh <- err
					return
				}
				// Relation materialises the whole state; sample it.
				if iter%16 == 0 {
					if _, _, err := eng.Relation(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(r)
	}

	// Readers observe the engine for the whole write phase, then stop.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Every observed snapshot was consistent.
	for r := range reports {
		for _, rep := range reports[r] {
			checkReportConsistent(t, eng, rep)
		}
	}

	// The final state: every writer cleaned up after itself, so the live
	// tuples and the violation report must equal the bulk-loaded baseline.
	if eng.Size() != fx.rel.Size() {
		t.Fatalf("size = %d after all writers drained, want %d", eng.Size(), fx.rel.Size())
	}
	baseline, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	got, want := eng.Report(), baseline.Report()
	got.Epoch, want.Epoch = 0, 0 // mutation counts differ; the state must not
	if !reflect.DeepEqual(got, want) {
		t.Fatal("final report differs from the bulk-loaded baseline")
	}
	checkReportConsistent(t, eng, eng.Report())
}
