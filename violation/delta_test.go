package violation_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/cfd"
	"repro/rules"
	"repro/violation"
)

// insertN inserts n throwaway tuples, one commit each, and returns their ids.
func insertN(t *testing.T, eng *violation.Engine, n int) []int {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		id, err := eng.Insert("01", "212", "1111111", "Ann", "5th Ave", "NYC", "01202")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// TestChangesRingBounds pins the bounded-history contract of Engine.Changes:
// a since equal to the head is an empty delta, a since within the ring is a
// merged delta, and anything outside — too old, ahead of the engine, or
// across a bulk load — is ErrCompacted.
func TestChangesRingBounds(t *testing.T) {
	fx := fixtures(t)[0]
	eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{DeltaHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	base := eng.Epoch()

	// since == head: an empty delta carrying the head epoch.
	d, err := eng.Changes(base)
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch != base || !d.Empty() {
		t.Fatalf("Changes(head) = %+v, want the empty delta at %d", d, base)
	}
	// since ahead of the engine: not coverable.
	if _, err := eng.Changes(base + 1); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes(head+1) err = %v, want ErrCompacted", err)
	}

	// Fill the ring exactly: 4 commits with a 4-deep history.
	insertN(t, eng, 4)
	head := eng.Epoch()
	if head != base+4 {
		t.Fatalf("epoch = %d after 4 commits from %d", head, base)
	}
	if d, err = eng.Changes(base); err != nil {
		t.Fatalf("Changes across a full ring: %v", err)
	}
	if d.Epoch != head || len(d.DirtyAdded) != 4 {
		t.Fatalf("merged delta = %+v, want 4 dirty additions at epoch %d", d, head)
	}
	// One more commit evicts the oldest slot.
	insertN(t, eng, 1)
	if _, err := eng.Changes(base); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes past the ring err = %v, want ErrCompacted", err)
	}
	if _, err := eng.Changes(base + 1); err != nil {
		t.Fatalf("Changes at the ring edge: %v", err)
	}

	// A bulk load is not delta-tracked: it empties the history, even for
	// epochs that were still in the ring.
	pre := eng.Epoch()
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Changes(pre); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes across a bulk load err = %v, want ErrCompacted", err)
	}
	if d, err := eng.Changes(eng.Epoch()); err != nil || !d.Empty() {
		t.Fatalf("Changes(head) across a bulk load = %+v, %v", d, err)
	}

	// DeltaHistory < 0 disables the ring entirely.
	bare, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{DeltaHistory: -1})
	if err != nil {
		t.Fatal(err)
	}
	insertN(t, bare, 1)
	if _, err := bare.Changes(bare.Epoch() - 1); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes with history disabled err = %v, want ErrCompacted", err)
	}
	if d, err := bare.Changes(bare.Epoch()); err != nil || !d.Empty() {
		t.Fatalf("Changes(head) with history disabled = %+v, %v", d, err)
	}
}

// TestWaitChange covers the long-poll primitive: immediate return on a stale
// since, wake-up on the next commit, and ctx cancellation.
func TestWaitChange(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	head := eng.Epoch()

	// Already-moved epoch: returns without blocking.
	if got, err := eng.WaitChange(context.Background(), head-1); err != nil || got != head {
		t.Fatalf("WaitChange(stale) = %d, %v; want %d", got, err, head)
	}

	// Blocked waiter is woken by the next commit.
	done := make(chan uint64, 1)
	go func() {
		got, err := eng.WaitChange(context.Background(), head)
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	insertN(t, eng, 1)
	select {
	case got := <-done:
		if got != head+1 {
			t.Fatalf("woken at epoch %d, want %d", got, head+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitChange missed the commit")
	}

	// Cancellation unblocks with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.WaitChange(ctx, eng.Epoch())
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled WaitChange err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitChange ignored cancellation")
	}
}

// TestDeltaResumeAcrossRestart is the durable half of the delta contract: the
// engine's epoch is aligned with the store's WAL sequence, so a delta client
// holding a pre-crash epoch resumes after a crash-replay restart as if
// nothing happened — and after a compaction folds the tail away, it gets
// ErrCompacted and resyncs with a full read.
func TestDeltaResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})

	// The client's last full read, before any logged mutation.
	prev := eng.Report()
	table := eng.Rules()
	if prev.Epoch != st.Seq() {
		t.Fatalf("epoch %d is not aligned with the WAL sequence %d", prev.Epoch, st.Seq())
	}

	// Logged mutations, including a rule swap mid-stream.
	ids := insertN(t, eng, 2)
	if err := eng.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SwapRules(context.Background(), rules.Of(cfd.NewFD([]string{"CC", "AC"}, "CT"))); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != st.Seq() {
		t.Fatalf("epoch %d drifted from the WAL sequence %d", eng.Epoch(), st.Seq())
	}

	// Crash (no final compaction: the WAL tail survives) and rebuild: replay
	// repopulates the delta ring, so the pre-crash since still resolves.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	eng2 := reload(t, dir)
	if eng2.Epoch() != eng.Epoch() {
		t.Fatalf("restarted epoch %d, want %d", eng2.Epoch(), eng.Epoch())
	}
	d, err := eng2.Changes(prev.Epoch)
	if err != nil {
		t.Fatalf("Changes(%d) after crash-replay: %v", prev.Epoch, err)
	}
	if d.Rules == nil {
		t.Fatal("the replayed span contains a swap; the merged delta must carry the rule table")
	}
	applied := d.Apply(prev, table)
	fresh := eng2.Report()
	if applied.Epoch != fresh.Epoch || !violationsEqual(applied.Violations, fresh.Violations) ||
		!sameIDs(applied.DirtyTuples, fresh.DirtyTuples) || applied.RulesChecked != fresh.RulesChecked {
		t.Fatalf("delta resume diverges\napplied: %+v\nfresh:   %+v", applied, fresh)
	}

	// Compact and restart again: the tail is folded into the snapshot, the
	// ring starts empty, and the old since must be refused — the client
	// resyncs with a full read and carries on from its epoch.
	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact(eng2); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	eng3 := reload(t, dir)
	if _, err := eng3.Changes(prev.Epoch); !errors.Is(err, violation.ErrCompacted) {
		t.Fatalf("Changes(%d) after compaction err = %v, want ErrCompacted", prev.Epoch, err)
	}
	resync := eng3.Report()
	if !violationsEqual(resync.Violations, fresh.Violations) {
		t.Fatal("full resync diverges from the pre-compaction state")
	}
	if d, err := eng3.Changes(resync.Epoch); err != nil || !d.Empty() {
		t.Fatalf("Changes at the resynced epoch = %+v, %v", d, err)
	}
}
