package violation_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"repro/cfd"
	"repro/rules"
	"repro/violation"
)

// oracleModel is the naive reference the engine is checked against after
// every step: the live tuples by id, re-scanned in full through the batch
// detector (cfd.Relation.Violations via naiveDetect) under whatever rule set
// is current.
type oracleModel struct {
	rows   map[int][]string
	nextID int
	set    *rules.Set
}

func (m *oracleModel) liveIDs() []int {
	ids := make([]int, 0, len(m.rows))
	for id := range m.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// expected runs the full rescan: one violation entry per violated rule in
// set order, tuples as ascending engine ids.
func (m *oracleModel) expected(t *testing.T, attrs []string) ([]violation.Violation, []int) {
	t.Helper()
	ids := m.liveIDs()
	rowList := make([][]string, len(ids))
	for i, id := range ids {
		rowList[i] = m.rows[id]
	}
	rel, err := cfd.FromRows(attrs, rowList)
	if err != nil {
		t.Fatal(err)
	}
	viols := naiveDetect(t, rel, m.set.CFDs())
	dirty := make(map[int]bool)
	for vi := range viols {
		for ti, tu := range viols[vi].Tuples {
			viols[vi].Tuples[ti] = ids[tu]
			dirty[ids[tu]] = true
		}
	}
	union := make([]int, 0, len(dirty))
	for id := range dirty {
		union = append(union, id)
	}
	sort.Ints(union)
	return viols, union
}

// oracleRulePool returns the candidate rule sets a swap step picks from:
// hand-built subsets of the mixed fixture rules plus sets with rules the
// engine has never seen (forcing fresh index builds over the live tuples).
func oracleRulePool(t *testing.T) []*rules.Set {
	t.Helper()
	full := fixtures(t)[0].rules
	extra := []cfd.CFD{
		cfd.NewFD([]string{"NM"}, "PN"),
		{LHS: []string{"CT"}, RHS: "CC", LHSPattern: []string{"C1"}, RHSPattern: "0"},
		{LHS: []string{"STR", "CT"}, RHS: "ZIP", LHSPattern: []string{"_", "_"}, RHSPattern: "_"},
	}
	return []*rules.Set{
		rules.Of(full...),
		rules.Of(full[:3]...),
		rules.Of(full[3:]...),
		rules.Of(append(append([]cfd.CFD(nil), extra...), full[1])...),
		rules.Of(extra[0], extra[1]),
		rules.Of(), // serve no rules at all for a while
	}
}

// oracleTricky holds values that stress the dictionary and group-key layers:
// empty strings, lone separators, unicode, and NUL. A joined-string group key
// could not tell some of these apart; packed dictionary codes must.
var oracleTricky = []string{"", " ", "|", "a|b", "b|a", "ünïcode-Ω", "né", "\x00", "💥"}

// oracleCollidingPairs are adjacent-attribute value pairs whose naive string
// join ("a|b"+"c" vs "a"+"b|c") is identical even though the tuples differ.
var oracleCollidingPairs = [][2]string{
	{"a|b", "c"}, {"a", "b|c"}, {"a|b|c", ""}, {"", "a|b|c"}, {"a|", "c"}, {"a", "|c"},
}

// oracleStep applies one random op (insert / delete / update / batch / swap)
// to both the engine and the model. It returns a description for failure
// messages.
func oracleStep(t *testing.T, rng *rand.Rand, eng *violation.Engine, m *oracleModel, pool []*rules.Set) string {
	t.Helper()
	row := func() []string {
		vals := []string{
			strconv.Itoa(rng.Intn(3)), strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(5)),
			"N" + strconv.Itoa(rng.Intn(6)), "S" + strconv.Itoa(rng.Intn(4)),
			"C" + strconv.Itoa(rng.Intn(3)), "Z" + strconv.Itoa(rng.Intn(4)),
		}
		// Sprinkle hostile values over the base distribution: single tricky
		// values, a high-cardinality tail (every insert a fresh dictionary
		// entry), and join-colliding pairs across adjacent attributes.
		switch rng.Intn(10) {
		case 0:
			vals[rng.Intn(len(vals))] = oracleTricky[rng.Intn(len(oracleTricky))]
		case 1:
			vals[rng.Intn(len(vals))] = "h" + strconv.Itoa(rng.Intn(100000))
		case 2:
			a := rng.Intn(len(vals) - 1)
			p := oracleCollidingPairs[rng.Intn(len(oracleCollidingPairs))]
			vals[a], vals[a+1] = p[0], p[1]
		}
		return vals
	}
	live := m.liveIDs()
	switch k := rng.Intn(20); {
	case k < 7 || len(live) == 0: // insert
		values := row()
		id, err := eng.Insert(values...)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		if id != m.nextID {
			t.Fatalf("insert assigned id %d, model expects %d", id, m.nextID)
		}
		m.rows[id] = values
		m.nextID++
		return fmt.Sprintf("insert -> id %d", id)
	case k < 10: // delete
		id := live[rng.Intn(len(live))]
		if err := eng.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		delete(m.rows, id)
		return fmt.Sprintf("delete %d", id)
	case k < 13: // update
		id := live[rng.Intn(len(live))]
		values := row()
		if err := eng.Update(id, values...); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
		m.rows[id] = values
		return fmt.Sprintf("update %d", id)
	case k < 16: // atomic batch, including intra-batch id references
		ops := randomOps(rng, 1+rng.Intn(8), live, m.nextID)
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatalf("batch: %v", err)
		}
		for _, op := range ops {
			switch op.Kind {
			case violation.OpInsert:
				m.rows[m.nextID] = op.Values
				m.nextID++
			case violation.OpDelete:
				delete(m.rows, op.ID)
			case violation.OpUpdate:
				m.rows[op.ID] = op.Values
			}
		}
		return fmt.Sprintf("batch of %d ops", len(ops))
	default: // live rule swap
		set := pool[rng.Intn(len(pool))]
		delta, err := eng.SwapRules(context.Background(), set)
		if err != nil {
			t.Fatalf("swap: %v", err)
		}
		if len(delta.Added)+len(delta.Retained) != set.Len() {
			t.Fatalf("swap delta %v does not cover the new set", delta)
		}
		m.set = set
		return fmt.Sprintf("swap to %d rules (%s)", set.Len(), delta)
	}
}

// TestRandomizedOracle drives seeded random op sequences — inserts, deletes,
// updates, atomic batches and live rule swaps — and after every step checks
// the engine's full report against a naive full-rescan oracle over the
// model's live tuples. Under `make race` this doubles as the lifecycle
// stress for the swap path. Reproduce a failure by its seed:
//
//	go test ./violation -run 'TestRandomizedOracle/seed=7'
//
// or point CFD_ORACLE_SEED at any seed to add it to the table.
func TestRandomizedOracle(t *testing.T) {
	seeds := []int64{1, 7, 23, 42}
	if s := os.Getenv("CFD_ORACLE_SEED"); s != "" {
		extra, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CFD_ORACLE_SEED=%q: %v", s, err)
		}
		seeds = append(seeds, extra)
	}
	steps := 140
	if testing.Short() {
		steps = 40
	}
	pool := oracleRulePool(t)
	fx := fixtures(t)[0]
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			startSet := pool[0]
			eng, err := violation.New(fx.rel.Attributes(), startSet, violation.Options{Shards: 1 + int(seed%4)})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.BulkLoad(fx.rel); err != nil {
				t.Fatal(err)
			}
			runOracle(t, seed, steps, eng, pool, fx.rel)
		})
	}
}

// TestRandomizedOracleV1Restore runs the same seeded sequences, but against an
// engine restored from an old-format (v1, per-tuple row list) snapshot of the
// fixture relation instead of a fresh bulk load: the legacy restore path must
// land the engine in a state indistinguishable from the bulk-loaded one.
func TestRandomizedOracleV1Restore(t *testing.T) {
	steps := 140
	if testing.Short() {
		steps = 40
	}
	pool := oracleRulePool(t)
	fx := fixtures(t)[0]
	for _, seed := range []int64{1, 7, 23, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			writeV1Snapshot(t, dir, fx.rel, pool[0])
			st, err := violation.OpenStore(dir, violation.StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			eng, found, err := st.Load(violation.Options{Shards: 1 + int(seed%4)})
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatal("v1 snapshot not found")
			}
			runOracle(t, seed, steps, eng, pool, fx.rel)
		})
	}
}

// writeV1Snapshot writes a format-1 snapshot.json — the pre-columnar layout
// with a per-tuple id/values list and no dictionary sections — holding rel
// under set, built by hand so the test keeps exercising the legacy decoder
// even though the engine only writes format 2 now.
func writeV1Snapshot(t *testing.T, dir string, rel *cfd.Relation, set *rules.Set) {
	t.Helper()
	type v1Tuple struct {
		ID     int      `json:"id"`
		Values []string `json:"values"`
	}
	tuples := make([]v1Tuple, rel.Size())
	for i := range tuples {
		tuples[i] = v1Tuple{ID: i, Values: rel.Row(i)}
	}
	file := map[string]any{
		"format":     1,
		"wal_seq":    0,
		"attributes": rel.Attributes(),
		"ruleset":    set,
		"next_id":    rel.Size(),
		"tuples":     tuples,
	}
	data, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runOracle seeds the model from rel (which the engine must already hold),
// then drives steps random ops, checking the engine's full report — and a
// delta-replay client leg — against the naive rescan oracle after every one.
func runOracle(t *testing.T, seed int64, steps int, eng *violation.Engine, pool []*rules.Set, rel *cfd.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	startSet := pool[0]
	m := &oracleModel{rows: make(map[int][]string), nextID: rel.Size(), set: startSet}
	for i := 0; i < rel.Size(); i++ {
		m.rows[i] = rel.Row(i)
	}
	// The delta leg mirrors an API client: hold the previous full
	// report and the rule table it was relative to, and after every
	// step reconstruct the new report from Changes alone.
	prev := eng.Report()
	table := startSet.CFDs()
	for step := 0; step < steps; step++ {
		desc := oracleStep(t, rng, eng, m, pool)
		wantViols, wantDirty := m.expected(t, rel.Attributes())
		rep := eng.Report()
		d, err := eng.Changes(prev.Epoch)
		if err != nil {
			t.Fatalf("seed %d step %d (%s): Changes(%d): %v", seed, step, desc, prev.Epoch, err)
		}
		applied := d.Apply(prev, table)
		if applied.Epoch != rep.Epoch || applied.RulesChecked != rep.RulesChecked ||
			!violationsEqual(applied.Violations, rep.Violations) ||
			!sameIDs(applied.DirtyTuples, rep.DirtyTuples) {
			t.Fatalf("seed %d step %d (%s): replaying delta %+v onto the previous report diverges\napplied: %+v\nfresh:   %+v",
				seed, step, desc, d, applied, rep)
		}
		prev = applied
		if d.Rules != nil {
			table = d.Rules
		}
		if rep.RulesChecked != m.set.Len() {
			t.Fatalf("seed %d step %d (%s): engine checks %d rules, oracle %d",
				seed, step, desc, rep.RulesChecked, m.set.Len())
		}
		gotDirty := rep.DirtyTuples
		if len(gotDirty) == 0 {
			gotDirty = nil
		}
		if len(wantDirty) == 0 {
			wantDirty = nil
		}
		if !reflect.DeepEqual(gotDirty, wantDirty) {
			t.Fatalf("seed %d step %d (%s): dirty set\nengine: %v\noracle: %v",
				seed, step, desc, gotDirty, wantDirty)
		}
		if !violationsEqual(rep.Violations, wantViols) {
			t.Fatalf("seed %d step %d (%s): violations\nengine: %v\noracle: %v",
				seed, step, desc, rep.Violations, wantViols)
		}
		if eng.Size() != len(m.rows) {
			t.Fatalf("seed %d step %d (%s): engine size %d, oracle %d",
				seed, step, desc, eng.Size(), len(m.rows))
		}
		checkRuleStats(t, eng, m, rel.Attributes(), wantViols,
			fmt.Sprintf("seed %d step %d (%s)", seed, step, desc))
	}
}

// checkRuleStats asserts that the engine's O(rules) counter-derived RuleStats
// equal a naive recomputation over the model's live rows: support by
// re-matching every row against the LHS pattern, groups by collecting
// distinct LHS-value combinations, violating from the already-verified naive
// violation list.
func checkRuleStats(t *testing.T, eng *violation.Engine, m *oracleModel, attrs []string, viols []violation.Violation, ctx string) {
	t.Helper()
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		idx[a] = i
	}
	got := eng.RuleStats()
	set := m.set.CFDs()
	if len(got) != len(set) {
		t.Fatalf("%s: RuleStats has %d entries, set has %d rules", ctx, len(got), len(set))
	}
	vi := 0
	for i, r := range set {
		support, groups := 0, make(map[string]bool)
		for _, row := range m.rows {
			match := true
			key := make([]string, len(r.LHS))
			for j, a := range r.LHS {
				v := row[idx[a]]
				if p := r.LHSPattern[j]; p != cfd.Wildcard && v != p {
					match = false
					break
				}
				key[j] = v
			}
			if match {
				support++
				groups[fmt.Sprintf("%q", key)] = true
			}
		}
		violating := 0
		if vi < len(viols) && viols[vi].Rule.Equal(r) {
			violating = len(viols[vi].Tuples)
			vi++
		}
		conf := 1.0
		if support > 0 {
			conf = float64(support-violating) / float64(support)
		}
		s := got[i]
		if !s.Rule.Equal(r) {
			t.Fatalf("%s: RuleStats[%d].Rule = %s, set order says %s", ctx, i, s.Rule, r)
		}
		if s.Support != support || s.Groups != len(groups) || s.Violating != violating || s.Confidence != conf {
			t.Fatalf("%s: RuleStats[%d] for %s = {support %d, groups %d, violating %d, confidence %g}, naive = {%d, %d, %d, %g}",
				ctx, i, r, s.Support, s.Groups, s.Violating, s.Confidence, support, len(groups), violating, conf)
		}
	}
	if vi != len(viols) {
		t.Fatalf("%s: %d naive violation entries not matched to set rules", ctx, len(viols)-vi)
	}
}

// sameIDs compares two ascending id lists, tolerating nil vs empty.
func sameIDs(got, want []int) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// violationsEqual compares per-rule violation lists rule by rule, tolerating
// nil-vs-empty slices.
func violationsEqual(got, want []violation.Violation) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !got[i].Rule.Equal(want[i].Rule) {
			return false
		}
		if !reflect.DeepEqual(got[i].Tuples, want[i].Tuples) {
			return false
		}
	}
	return true
}
