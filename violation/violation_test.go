package violation_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
	"repro/rules"
	"repro/violation"
)

// naiveDetect is the seed implementation of repro/cleaning's batch detector,
// kept here verbatim as the reference the engine must reproduce byte for byte:
// every rule is evaluated by a full-relation scan through cfd.Relation
// .Violations, with the seed's handling of rule constants outside the active
// domain (an out-of-domain LHS constant matches nothing; an out-of-domain RHS
// constant is violated by every LHS-matching tuple).
func naiveDetect(t *testing.T, rel *cfd.Relation, rules []cfd.CFD) []violation.Violation {
	t.Helper()
	var out []violation.Violation
	for _, rule := range rules {
		tuples, err := naiveRuleViolations(rel, rule)
		if err != nil {
			t.Fatalf("naive detect: %v", err)
		}
		if len(tuples) > 0 {
			out = append(out, violation.Violation{Rule: rule, Tuples: tuples})
		}
	}
	return out
}

func naiveRuleViolations(rel *cfd.Relation, rule cfd.CFD) ([]int, error) {
	tuples, err := rel.Violations(rule)
	if err == nil {
		return tuples, nil
	}
	lhsOnly := rule
	lhsOnly.RHSPattern = cfd.Wildcard
	if _, lhsErr := rel.Violations(lhsOnly); lhsErr != nil {
		return nil, nil
	}
	if rule.RHSPattern == cfd.Wildcard {
		return nil, err
	}
	attrs := rel.Attributes()
	index := make(map[string]int, len(attrs))
	for i, a := range attrs {
		index[a] = i
	}
	var out []int
	for t := 0; t < rel.Size(); t++ {
		row := rel.Row(t)
		ok := true
		for i, a := range rule.LHS {
			if rule.LHSPattern[i] != cfd.Wildcard && row[index[a]] != rule.LHSPattern[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

func collect(e *violation.Engine) []violation.Violation {
	var out []violation.Violation
	for v := range e.Violations() {
		out = append(out, v)
	}
	return out
}

// fixtures returns relation/rule-set pairs covering constant, variable and
// mixed rules, out-of-domain constants on both sides, empty-LHS rules and
// discovered rule sets on noisy data.
func fixtures(t *testing.T) []struct {
	name  string
	rel   *cfd.Relation
	rules []cfd.CFD
} {
	t.Helper()
	cust := dataset.Cust()
	custRules := []cfd.CFD{
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		// Mixed rule: constant RHS under a wildcard LHS entry.
		{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"_"}, RHSPattern: "MH"},
		// Out-of-domain LHS constant: matches nothing.
		{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"99"}, RHSPattern: "XXX"},
		// Out-of-domain RHS constant: every matching tuple violates.
		{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"01"}, RHSPattern: "XXX"},
		// Empty LHS: the RHS must be globally constant.
		{LHS: nil, RHS: "CC", LHSPattern: nil, RHSPattern: "01"},
	}

	clean, err := dataset.Tax(dataset.TaxConfig{Size: 300, Arity: 7, CF: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := discovery.FastCFD(clean, discovery.Options{Support: 6, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CFDs) == 0 {
		t.Fatal("no rules discovered on clean tax data")
	}
	dirty, _ := dataset.InjectNoise(clean, 0.08, 5)

	return []struct {
		name  string
		rel   *cfd.Relation
		rules []cfd.CFD
	}{
		{"cust", cust, custRules},
		{"tax-discovered", dirty, res.CFDs},
	}
}

// TestBulkLoadMatchesNaiveDetect is the cross-check the engine is defined by:
// a bulk-loaded engine reports exactly the violation set of the seed batch
// detector, rule by rule, tuple by tuple.
func TestBulkLoadMatchesNaiveDetect(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.BulkLoad(fx.rel); err != nil {
				t.Fatal(err)
			}
			got := collect(eng)
			want := naiveDetect(t, fx.rel, fx.rules)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("engine snapshot:\n%v\nnaive detect:\n%v", got, want)
			}
		})
	}
}

// TestIncrementalInsertMatchesBulk inserts the relation one tuple at a time
// and requires the exact state of a single bulk load after every prefix-final
// state, plus identical reports at the end.
func TestIncrementalInsertMatchesBulk(t *testing.T) {
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			bulk, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := bulk.BulkLoad(fx.rel); err != nil {
				t.Fatal(err)
			}
			inc, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < fx.rel.Size(); i++ {
				id, err := inc.Insert(fx.rel.Row(i)...)
				if err != nil {
					t.Fatal(err)
				}
				if id != i {
					t.Fatalf("insert %d got id %d", i, id)
				}
			}
			got, want := inc.Report(), bulk.Report()
			// The epoch counts mutations, so it legitimately differs between
			// the two histories; the state must not.
			got.Epoch, want.Epoch = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("incremental report:\n%+v\nbulk report:\n%+v", got, want)
			}
		})
	}
}

// TestWorkerCountsAgree checks BulkLoad determinism across worker budgets.
func TestWorkerCountsAgree(t *testing.T) {
	fx := fixtures(t)[1]
	var reports []*violation.Report
	for _, workers := range []int{1, 4} {
		eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.BulkLoad(fx.rel); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, eng.Report())
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatal("bulk load reports differ across worker counts")
	}
}

// TestDeleteAndUpdateMaintenance mutates the engine and cross-checks every
// state against a naive detect over the matching materialised relation.
func TestDeleteAndUpdateMaintenance(t *testing.T) {
	rel, err := cfd.FromRows([]string{"A", "B"}, [][]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "z"}, {"c", "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ruleList := []cfd.CFD{
		cfd.NewFD([]string{"A"}, "B"),
		{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"c"}, RHSPattern: "w"},
	}
	eng, err := violation.New(rel.Attributes(), rules.Of(ruleList...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		cur, ids, err := eng.Relation()
		if err != nil {
			t.Fatal(err)
		}
		want := naiveDetect(t, cur, ruleList)
		// Translate the naive result from relation indexes to engine ids.
		for vi := range want {
			for ti, tu := range want[vi].Tuples {
				want[vi].Tuples[ti] = ids[tu]
			}
		}
		got := collect(eng)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: engine %v, naive %v", step, got, want)
		}
	}

	check("after bulk load")
	// Deleting the deviant of the a-group heals the FD violation there.
	if err := eng.Delete(2); err != nil {
		t.Fatal(err)
	}
	check("after delete")
	// Updating tuple 4 to carry the rule constant heals the constant rule.
	if err := eng.Update(4, "c", "w"); err != nil {
		t.Fatal(err)
	}
	check("after healing update")
	// Updating tuple 3 into the a-group with a fresh B value re-violates.
	if err := eng.Update(3, "a", "q"); err != nil {
		t.Fatal(err)
	}
	check("after dirtying update")
	// Fresh insert into a clean group.
	if _, err := eng.Insert("d", "d1"); err != nil {
		t.Fatal(err)
	}
	check("after insert")
	if eng.Size() != 5 {
		t.Fatalf("live size = %d, want 5 (5 loaded - 1 deleted + 1 inserted)", eng.Size())
	}
}

func TestTupleViolationsAndDirty(t *testing.T) {
	fx := fixtures(t)[0]
	eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	dirty := make(map[int]bool)
	for _, id := range rep.DirtyTuples {
		dirty[id] = true
	}
	for id := 0; id < eng.Size(); id++ {
		violated, err := eng.TupleViolations(id)
		if err != nil {
			t.Fatal(err)
		}
		if (len(violated) > 0) != dirty[id] {
			t.Fatalf("tuple %d: %d violated rules but dirty=%v", id, len(violated), dirty[id])
		}
	}
	if eng.DirtyCount() < len(rep.DirtyTuples) {
		t.Fatalf("DirtyCount %d < |DirtyTuples| %d", eng.DirtyCount(), len(rep.DirtyTuples))
	}
	if got := eng.Dirty(); !reflect.DeepEqual(got, rep.DirtyTuples) {
		t.Fatalf("Dirty %v != report %v", got, rep.DirtyTuples)
	}
}

func TestEngineErrors(t *testing.T) {
	attrs := []string{"A", "B"}
	if _, err := violation.New(attrs, rules.Of(cfd.NewFD([]string{"BOGUS"}, "B")), violation.Options{}); err == nil {
		t.Error("unknown LHS attribute must error")
	}
	if _, err := violation.New(attrs, rules.Of(cfd.NewFD([]string{"A"}, "BOGUS")), violation.Options{}); err == nil {
		t.Error("unknown RHS attribute must error")
	}
	malformed := cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"1", "2"}, RHSPattern: "_"}
	if _, err := violation.New(attrs, rules.Of(malformed), violation.Options{}); err == nil {
		t.Error("malformed rule must error")
	}
	eng, err := violation.New(attrs, rules.Of(cfd.NewFD([]string{"A"}, "B")), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert("only-one-value"); err == nil {
		t.Error("arity mismatch on insert must error")
	}
	if err := eng.Delete(0); err == nil {
		t.Error("deleting an unknown id must error")
	}
	id, err := eng.Insert("a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(id); err == nil {
		t.Error("double delete must error")
	}
	if _, err := eng.TupleViolations(id); err == nil {
		t.Error("per-tuple lookup of a deleted id must error")
	}
	other := cfd.MustRelation("X", "Y")
	if err := eng.BulkLoad(other); err == nil {
		t.Error("bulk load with a mismatched schema must error")
	}
}

func TestNewFromTableaux(t *testing.T) {
	rel := dataset.Cust()
	ruleList := []cfd.CFD{
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"908"}, RHSPattern: "MH"},
	}
	tableaux := cfd.BuildTableaux(ruleList)
	if len(tableaux) != 1 || len(tableaux[0].Patterns) != 2 {
		t.Fatalf("expected one tableau with two patterns, got %v", tableaux)
	}
	fromTab, err := violation.NewFromTableaux(rel.Attributes(), tableaux, violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fromTab.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	if got, want := len(fromTab.Rules()), 2; got != want {
		t.Fatalf("tableau engine has %d rules, want %d", got, want)
	}
	// Same violation state as the expanded rule set (rule order differs only
	// by the tableau's deterministic pattern sort, so compare dirty sets).
	flat, err := violation.New(rel.Attributes(), rules.Of(ruleList...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromTab.Dirty(), flat.Dirty()) {
		t.Fatalf("tableau dirty %v != flat dirty %v", fromTab.Dirty(), flat.Dirty())
	}
}

// TestRuleSetPreserved checks that the engine hands back the rule set it was
// built from — rules, order and provenance — which is what cfdserve's
// GET /rules serves.
func TestRuleSetPreserved(t *testing.T) {
	rel := dataset.Cust()
	res, err := discovery.CTANE(rel, discovery.Options{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	set := res.Set()
	eng, err := violation.New(rel.Attributes(), set, violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.RuleSet()
	if got == set {
		t.Fatal("RuleSet must return a defensive copy, not the live internal pointer")
	}
	if got.Fingerprint() != set.Fingerprint() || !reflect.DeepEqual(got.CFDs(), set.CFDs()) {
		t.Fatal("RuleSet copy must carry the exact rules of the set the engine was built from")
	}
	if got.Provenance() != set.Provenance() || got.Provenance().Algorithm != "ctane" {
		t.Fatalf("provenance lost: %+v", got.Provenance())
	}
	if len(eng.Rules()) != set.Len() {
		t.Fatalf("Rules() has %d entries, set %d", len(eng.Rules()), set.Len())
	}
	// A nil set is served as empty.
	empty, err := violation.New(rel.Attributes(), nil, violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.RuleSet().Len() != 0 || len(empty.Rules()) != 0 {
		t.Fatal("nil set must build an empty engine")
	}
}

// TestRuleSetMutationSafety is the satellite fix's proof: a caller scribbling
// over the set RuleSet returned must not perturb the engine — neither its
// rule table nor what a later RuleSet call sees.
func TestRuleSetMutationSafety(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	wantRules := append([]cfd.CFD(nil), eng.Rules()...)
	wantFP := eng.RuleSet().Fingerprint()
	before := eng.Report()

	leaked := eng.RuleSet()
	for i := range leaked.CFDs() {
		// Overwrite every rule of the returned copy in place.
		leaked.CFDs()[i] = cfd.NewFD([]string{"PN"}, "NM")
	}

	if !reflect.DeepEqual(eng.Rules(), wantRules) {
		t.Fatalf("engine rules changed after mutating the RuleSet copy:\n%v\nwant\n%v", eng.Rules(), wantRules)
	}
	if got := eng.RuleSet().Fingerprint(); got != wantFP {
		t.Fatalf("RuleSet fingerprint drifted: %s, want %s", got, wantFP)
	}
	if !reflect.DeepEqual(eng.Report(), before) {
		t.Fatal("violation report changed after mutating the RuleSet copy")
	}
}

// TestTupleReadMutationSafety: Row and Tuples decode fresh value slices from
// the columnar store — never views into engine internals — so a caller
// scribbling over what they got back must not perturb the engine's tuples,
// its dictionaries, or its violation report.
func TestTupleReadMutationSafety(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	wantRow, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	wantRow = append([]string(nil), wantRow...)
	wantTuples, _, _ := eng.Tuples(0, 0)
	for i := range wantTuples {
		wantTuples[i].Values = append([]string(nil), wantTuples[i].Values...)
	}
	before := eng.Report()

	leakedRow, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range leakedRow {
		leakedRow[i] = "SCRIBBLED"
	}
	leakedTuples, _, _ := eng.Tuples(0, 0)
	for i := range leakedTuples {
		for j := range leakedTuples[i].Values {
			leakedTuples[i].Values[j] = "SCRIBBLED"
		}
	}

	if got, err := eng.Row(0); err != nil || !reflect.DeepEqual(got, wantRow) {
		t.Fatalf("Row(0) changed after mutating returned slices: %v (err %v), want %v", got, err, wantRow)
	}
	if got, _, _ := eng.Tuples(0, 0); !reflect.DeepEqual(got, wantTuples) {
		t.Fatalf("Tuples changed after mutating returned slices:\n%v\nwant\n%v", got, wantTuples)
	}
	if !reflect.DeepEqual(eng.Report(), before) {
		t.Fatal("violation report changed after mutating tuple reads")
	}
}

// TestViolationsStreamingStops checks that the snapshot sequence honours an
// early break, which is what makes it usable for first-match queries.
func TestViolationsStreamingStops(t *testing.T) {
	fx := fixtures(t)[0]
	eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(fx.rel); err != nil {
		t.Fatal(err)
	}
	n := 0
	for range eng.Violations() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("streamed %d violations after break, want 1", n)
	}
}

func ExampleEngine() {
	rel := dataset.Cust()
	eng, err := violation.New(rel.Attributes(),
		rules.Of(cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"}),
		violation.Options{})
	if err != nil {
		panic(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		panic(err)
	}
	fmt.Println("dirty after load:", eng.Dirty())
	_, _ = eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT")
	fmt.Println("dirty after insert:", eng.Dirty())
	// Repairing the two wrong city values heals the whole AC=131 group.
	_ = eng.Update(7, "01", "131", "2222222", "Sean", "3rd Str.", "EDI", "01202")
	_ = eng.Update(8, "44", "131", "5555555", "Amy", "High St.", "EDI", "EH4 1DT")
	fmt.Println("dirty after repair:", eng.Dirty())
	// Output:
	// dirty after load: [4 5 7]
	// dirty after insert: [4 5 7 8]
	// dirty after repair: []
}
