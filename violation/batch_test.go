package violation_test

import (
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/rules"
	"repro/violation"
)

// custEngine builds an engine over the Fig. 1 cust relation with the mixed
// fixture rules, optionally bulk loaded.
func custEngine(t *testing.T, load bool, opts violation.Options) *violation.Engine {
	t.Helper()
	fx := fixtures(t)[0]
	eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if load {
		if err := eng.BulkLoad(fx.rel); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// randomOps builds a reproducible mixed op sequence over the cust schema,
// tracking which ids are live so deletes and updates always hit real tuples.
func randomOps(rng *rand.Rand, n int, startLive []int, nextID int) []violation.Op {
	live := append([]int(nil), startLive...)
	ops := make([]violation.Op, 0, n)
	row := func() []string {
		return []string{
			strconv.Itoa(rng.Intn(3)), strconv.Itoa(rng.Intn(4)), strconv.Itoa(rng.Intn(5)),
			"N" + strconv.Itoa(rng.Intn(6)), "S" + strconv.Itoa(rng.Intn(4)),
			"C" + strconv.Itoa(rng.Intn(3)), "Z" + strconv.Itoa(rng.Intn(4)),
		}
	}
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 5 || len(live) == 0:
			ops = append(ops, violation.Op{Kind: violation.OpInsert, Values: row()})
			live = append(live, nextID)
			nextID++
		case k < 7:
			at := rng.Intn(len(live))
			ops = append(ops, violation.Op{Kind: violation.OpDelete, ID: live[at]})
			live = append(live[:at], live[at+1:]...)
		default:
			ops = append(ops, violation.Op{Kind: violation.OpUpdate, ID: live[rng.Intn(len(live))], Values: row()})
		}
	}
	return ops
}

// applyPerOp replays ops through the single-op API.
func applyPerOp(t *testing.T, e *violation.Engine, ops []violation.Op) {
	t.Helper()
	for _, op := range ops {
		var err error
		switch op.Kind {
		case violation.OpInsert:
			_, err = e.Insert(op.Values...)
		case violation.OpDelete:
			err = e.Delete(op.ID)
		case violation.OpUpdate:
			err = e.Update(op.ID, op.Values...)
		}
		if err != nil {
			t.Fatalf("per-op replay: %v", err)
		}
	}
}

// assertSameState compares two engines tuple by tuple and report by report.
func assertSameState(t *testing.T, a, b *violation.Engine) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	ra, rb := a.Report(), b.Report()
	if !reflect.DeepEqual(ra.DirtyTuples, rb.DirtyTuples) {
		t.Fatalf("dirty sets differ: %v vs %v", ra.DirtyTuples, rb.DirtyTuples)
	}
	if !reflect.DeepEqual(ra.Violations, rb.Violations) {
		t.Fatalf("violations differ:\n%v\nvs\n%v", ra.Violations, rb.Violations)
	}
	relA, idsA, err := a.Relation()
	if err != nil {
		t.Fatal(err)
	}
	relB, idsB, err := b.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idsA, idsB) {
		t.Fatalf("live ids differ: %v vs %v", idsA, idsB)
	}
	for i := range idsA {
		if !reflect.DeepEqual(relA.Row(i), relB.Row(i)) {
			t.Fatalf("tuple %d differs: %v vs %v", idsA[i], relA.Row(i), relB.Row(i))
		}
	}
}

// TestApplyBatchMatchesPerOp is the defining parity check: a batch must land
// the engine in exactly the state a per-op replay produces, ids included,
// for every shard count.
func TestApplyBatchMatchesPerOp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	startLive := make([]int, 8)
	for i := range startLive {
		startLive[i] = i
	}
	ops := randomOps(rng, 400, startLive, 8)
	for _, shards := range []int{1, 2, 5, 64} {
		batched := custEngine(t, true, violation.Options{Shards: shards})
		perOp := custEngine(t, true, violation.Options{})
		// Apply in chunks so batches cross each other's inserted ids.
		for i := 0; i < len(ops); i += 32 {
			end := min(i+32, len(ops))
			if _, err := batched.ApplyBatch(ops[i:end]); err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
		}
		applyPerOp(t, perOp, ops)
		assertSameState(t, batched, perOp)
	}
}

// TestApplyBatchIDs checks the returned ids: one per insert op, in op order,
// continuing the engine's id sequence.
func TestApplyBatchIDs(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	row, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: row},
		{Kind: violation.OpDelete, ID: 3},
		{Kind: violation.OpInsert, Values: row},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{8, 9}) {
		t.Fatalf("ids = %v, want [8 9]", ids)
	}
	if eng.Size() != 9 {
		t.Fatalf("size = %d, want 9", eng.Size())
	}
}

// TestApplyBatchIntraBatchRefs: later ops may address ids inserted (or
// re-delete ids deleted) earlier in the same batch.
func TestApplyBatchIntraBatchRefs(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	row, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	clean := []string{"86", "10", "8888888", "Wei", "Main Rd.", "BJ", "100000"}
	ids, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: row}, // id 8
		{Kind: violation.OpUpdate, ID: 8, Values: clean},
		{Kind: violation.OpInsert, Values: row}, // id 9
		{Kind: violation.OpDelete, ID: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{8, 9}) {
		t.Fatalf("ids = %v", ids)
	}
	got, err := eng.Row(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatalf("row 8 = %v, want the updated values", got)
	}
	if _, err := eng.Row(9); !errors.Is(err, violation.ErrNotFound) {
		t.Fatalf("row 9 after intra-batch delete: err = %v, want ErrNotFound", err)
	}
	// Deleting an id already deleted within a batch fails the whole batch.
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpDelete, ID: 8},
		{Kind: violation.OpDelete, ID: 8},
	}); !errors.Is(err, violation.ErrNotFound) {
		t.Fatalf("double delete in one batch: err = %v, want ErrNotFound", err)
	}
	if _, err := eng.Row(8); err != nil {
		t.Fatalf("tuple 8 must survive the failed batch: %v", err)
	}
}

// TestApplyBatchAtomic: one bad op anywhere voids the whole batch.
func TestApplyBatchAtomic(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	before := eng.Report()
	epoch := eng.Epoch()
	row, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]violation.Op{
		{{Kind: violation.OpInsert, Values: row}, {Kind: violation.OpInsert, Values: []string{"too", "short"}}},
		{{Kind: violation.OpInsert, Values: row}, {Kind: violation.OpDelete, ID: 99}},
		{{Kind: violation.OpInsert, Values: row}, {Kind: violation.OpUpdate, ID: -1, Values: row}},
		{{Kind: violation.OpInsert, Values: row}, {Kind: "bogus"}},
	}
	for i, ops := range cases {
		if _, err := eng.ApplyBatch(ops); err == nil {
			t.Fatalf("case %d: batch with a bad op must error", i)
		}
		if err := eng.CheckOps(ops); err == nil {
			t.Fatalf("case %d: CheckOps must reject what ApplyBatch rejects", i)
		}
	}
	if eng.Size() != 8 {
		t.Fatalf("size = %d after failed batches, want 8", eng.Size())
	}
	if eng.Epoch() != epoch {
		t.Fatalf("epoch moved across failed batches: %d -> %d", epoch, eng.Epoch())
	}
	after := eng.Report()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("report changed across failed batches")
	}
	// CheckOps on a valid batch is a dry run: no error, no state change.
	if err := eng.CheckOps([]violation.Op{{Kind: violation.OpInsert, Values: row}}); err != nil {
		t.Fatal(err)
	}
	if eng.Size() != 8 || eng.Epoch() != epoch {
		t.Fatal("CheckOps must not mutate")
	}
	// An empty batch is a no-op, not an error.
	ids, err := eng.ApplyBatch(nil)
	if err != nil || ids != nil {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}
}

// TestWALAppendFailureAbortsMutation: a failing CommitLog vetoes the
// mutation before it is applied.
func TestWALAppendFailureAbortsMutation(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	boom := errors.New("disk full")
	eng.AttachWAL(failingLog{err: boom})
	row, err := eng.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert(row...); !errors.Is(err, boom) {
		t.Fatalf("insert with a failing WAL: err = %v, want %v", err, boom)
	}
	if eng.Size() != 8 {
		t.Fatalf("size = %d after vetoed insert, want 8", eng.Size())
	}
	eng.AttachWAL(nil)
	if _, err := eng.Insert(row...); err != nil {
		t.Fatalf("insert after detaching the WAL: %v", err)
	}
}

type failingLog struct{ err error }

func (f failingLog) Append([]violation.Op) error { return f.err }

// TestShardedBulkLoadAgrees: bulk loads agree across shard counts, and with
// the unsharded pre-existing behaviour, on a discovered rule set.
func TestShardedBulkLoadAgrees(t *testing.T) {
	fx := fixtures(t)[1]
	var reports []*violation.Report
	for _, opts := range []violation.Options{{}, {Shards: 1}, {Shards: 3, Workers: 2}, {Shards: 1000}} {
		eng, err := violation.New(fx.rel.Attributes(), rules.Of(fx.rules...), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.BulkLoad(fx.rel); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, eng.Report())
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("report %d differs from report 0", i)
		}
	}
}

// TestEpochAndSnapshotReuse: reads at one epoch share the snapshot; a
// mutation invalidates it.
func TestEpochAndSnapshotReuse(t *testing.T) {
	eng := custEngine(t, true, violation.Options{})
	r1, r2 := eng.Report(), eng.Report()
	if len(r1.DirtyTuples) > 0 && &r1.DirtyTuples[0] != &r2.DirtyTuples[0] {
		t.Fatal("reads at one epoch must share the cached snapshot")
	}
	id, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT")
	if err != nil {
		t.Fatal(err)
	}
	r3 := eng.Report()
	if reflect.DeepEqual(r1.DirtyTuples, r3.DirtyTuples) {
		t.Fatal("snapshot must be rebuilt after a mutation")
	}
	if err := eng.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := eng.Dirty(); !reflect.DeepEqual(got, r1.DirtyTuples) {
		t.Fatalf("dirty after undo = %v, want %v", got, r1.DirtyTuples)
	}
}
