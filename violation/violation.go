// Package violation is the serving side of the paper's CFD workflow: an
// indexed, incremental violation-detection engine. Where repro/cleaning's
// original detector rescanned the whole relation for every rule, the Engine
// maintains one hash index per rule — tuples grouped by their left-hand-side
// values, filtered on the rule's pattern constants — so that inserting,
// deleting or updating a tuple only touches the affected group of each rule:
// O(rules) map work per tuple, independent of the relation size.
//
// An Engine is built from a first-class rule set (*rules.Set, or pattern
// tableaux via NewFromTableaux), bulk loaded from a *cfd.Relation (in
// parallel across rules, on repro/internal/pool), and then kept current with
// Insert / Delete / Update as tuples arrive and change. The current violation state is read back as a streaming
// Violations sequence, a Report (the same shape repro/cleaning returns), or a
// per-tuple lookup. On any bulk-loaded relation the Engine reports exactly the
// violation set of the paper's batch semantics (§2.1.2): the batch detectors
// in repro/cleaning and repro/cfd route through the same underlying index
// (internal/core.RuleIndex), so there is one source of truth.
//
// The Engine is not safe for concurrent use; callers serving multiple
// goroutines (such as cmd/cfdserve) must wrap it in a lock. All read-only
// methods (Violations, Report, Dirty, TupleViolations, ...) may share a read
// lock.
package violation

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"repro/cfd"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/rules"
)

// Violation records the tuples currently violating one rule.
type Violation struct {
	Rule   cfd.CFD
	Tuples []int
}

// Report is a full snapshot of the engine's violation state, mirroring the
// shape of repro/cleaning's batch report.
type Report struct {
	// Violations holds one entry per violated rule, in rule order.
	Violations []Violation
	// DirtyTuples is the sorted union of all violating tuple ids.
	DirtyTuples []int
	// RulesChecked is the number of rules the engine maintains.
	RulesChecked int
}

// Clean reports whether no violations are present.
func (rep *Report) Clean() bool { return len(rep.Violations) == 0 }

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of goroutines BulkLoad may use: 0 runs one
	// worker per available CPU (the default), 1 runs sequentially. Incremental
	// Insert/Delete/Update are always single-threaded; they are O(rules) per
	// call and not worth fanning out.
	Workers int
}

// Engine is an incremental violation detector over a fixed rule set and a
// mutable set of tuples. Tuple ids are assigned by Insert/BulkLoad in arrival
// order, starting at 0, and are never reused; for a relation loaded by a
// single BulkLoad the ids coincide with the relation's tuple indexes.
//
// Id stability has a cost: each ever-assigned id keeps a (nil after Delete)
// slot in the engine's row table, and the per-attribute interning tables only
// grow. A deployment with unbounded insert/delete churn should periodically
// rebuild the engine from Relation() (re-basing ids) to reclaim that memory.
type Engine struct {
	schema  *core.Schema
	dicts   []*core.Dict // engine-owned interning tables, one per attribute
	set     *rules.Set
	rules   []cfd.CFD
	indexes []*core.RuleIndex
	rows    [][]int32 // tuple id -> encoded row; nil once deleted
	live    int
	workers int
}

// New builds an engine over the given attribute schema, serving the rules of
// set (a nil set serves no rules). Rules must be structurally valid and may
// only name the given attributes; rule constants outside any data seen so far
// are fine (they simply match no tuple until one arrives). The set's rule
// order is preserved in every snapshot.
func New(attributes []string, set *rules.Set, opts Options) (*Engine, error) {
	schema, err := core.NewSchema(attributes...)
	if err != nil {
		return nil, fmt.Errorf("violation: %w", err)
	}
	if set == nil {
		set = rules.Of()
	}
	e := &Engine{
		schema:  schema,
		dicts:   make([]*core.Dict, schema.Arity()),
		set:     set,
		workers: opts.Workers,
	}
	for a := range e.dicts {
		e.dicts[a] = core.NewDict()
	}
	for _, rule := range set.CFDs() {
		if err := e.addRule(rule); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// NewFromTableaux is New for rules given as pattern tableaux; each tableau is
// expanded into its single-pattern CFDs (§2.3).
func NewFromTableaux(attributes []string, tableaux []cfd.TableauCFD, opts Options) (*Engine, error) {
	var expanded []cfd.CFD
	for _, t := range tableaux {
		expanded = append(expanded, t.CFDs()...)
	}
	return New(attributes, rules.Of(expanded...), opts)
}

// addRule validates and compiles one rule against the engine's schema. Rule
// constants are interned into the engine's dictionaries up front, so encoding
// never fails on constants outside the active domain — such constants hold
// codes no tuple carries until a matching value is inserted.
func (e *Engine) addRule(rule cfd.CFD) error {
	if err := rule.Validate(); err != nil {
		return fmt.Errorf("violation: %w", err)
	}
	rhs, ok := e.schema.Index(rule.RHS)
	if !ok {
		return fmt.Errorf("violation: rule %s: unknown attribute %q", rule, rule.RHS)
	}
	enc := core.CFD{RHS: rhs, Tp: core.NewPattern(e.schema.Arity())}
	for i, name := range rule.LHS {
		a, ok := e.schema.Index(name)
		if !ok {
			return fmt.Errorf("violation: rule %s: unknown attribute %q", rule, name)
		}
		enc.LHS = enc.LHS.Add(a)
		if rule.LHSPattern[i] != cfd.Wildcard {
			enc.Tp[a] = e.dicts[a].Encode(rule.LHSPattern[i])
		}
	}
	if rule.RHSPattern != cfd.Wildcard {
		enc.Tp[rhs] = e.dicts[rhs].Encode(rule.RHSPattern)
	}
	e.rules = append(e.rules, rule)
	e.indexes = append(e.indexes, core.NewRuleIndex(enc))
	return nil
}

// encode interns one tuple's values through the engine dictionaries.
func (e *Engine) encode(values []string) ([]int32, error) {
	if len(values) != e.schema.Arity() {
		return nil, fmt.Errorf("violation: tuple has %d values, schema has %d attributes", len(values), e.schema.Arity())
	}
	row := make([]int32, len(values))
	for a, v := range values {
		row[a] = e.dicts[a].Encode(v)
	}
	return row, nil
}

// row returns the encoded row of a live tuple id.
func (e *Engine) row(id int) ([]int32, error) {
	if id < 0 || id >= len(e.rows) || e.rows[id] == nil {
		return nil, fmt.Errorf("violation: tuple %d not found", id)
	}
	return e.rows[id], nil
}

// Insert adds one tuple (values in schema order) and returns its id. Each
// rule's index is updated in O(affected group).
func (e *Engine) Insert(values ...string) (int, error) {
	row, err := e.encode(values)
	if err != nil {
		return 0, err
	}
	id := len(e.rows)
	e.rows = append(e.rows, row)
	e.live++
	for _, ix := range e.indexes {
		ix.Insert(id, row)
	}
	return id, nil
}

// Delete removes the tuple with the given id.
func (e *Engine) Delete(id int) error {
	row, err := e.row(id)
	if err != nil {
		return err
	}
	for _, ix := range e.indexes {
		ix.Delete(id, row)
	}
	e.rows[id] = nil
	e.live--
	return nil
}

// Update replaces the values of the tuple with the given id, keeping its id.
func (e *Engine) Update(id int, values ...string) error {
	old, err := e.row(id)
	if err != nil {
		return err
	}
	row, err := e.encode(values)
	if err != nil {
		return err
	}
	for _, ix := range e.indexes {
		ix.Delete(id, old)
		ix.Insert(id, row)
	}
	e.rows[id] = row
	return nil
}

// BulkLoad appends every tuple of the relation, whose attributes must match
// the engine's schema exactly (same names, same order). Index building is
// parallelised across rules under the engine's worker budget; the resulting
// state is identical for every worker count.
func (e *Engine) BulkLoad(rel *cfd.Relation) error {
	return e.BulkLoadContext(context.Background(), rel)
}

// BulkLoadContext is BulkLoad under a context. A cancelled load returns
// ctx.Err() and leaves the engine partially loaded; discard it.
func (e *Engine) BulkLoadContext(ctx context.Context, rel *cfd.Relation) error {
	attrs := rel.Attributes()
	if len(attrs) != e.schema.Arity() {
		return fmt.Errorf("violation: relation has %d attributes, engine schema has %d", len(attrs), e.schema.Arity())
	}
	for a, name := range attrs {
		if e.schema.Name(a) != name {
			return fmt.Errorf("violation: relation attribute %d is %q, engine schema has %q", a, name, e.schema.Name(a))
		}
	}
	// The relation is already dictionary-encoded, so instead of re-interning
	// every cell as a string, translate each attribute's codes into the
	// engine's code space once (O(distinct values) string work per attribute)
	// and map rows by integer indexing. Interning mutates the shared
	// dictionaries, so this part runs sequentially; the per-rule index
	// building below carries the real cost and fans out.
	start := len(e.rows)
	inner := rel.Encoded()
	arity := e.schema.Arity()
	trans := make([][]int32, arity)
	for a := 0; a < arity; a++ {
		values := inner.Dict(a).Values()
		trans[a] = make([]int32, len(values))
		for code, v := range values {
			trans[a][code] = e.dicts[a].Encode(v)
		}
	}
	for t := 0; t < rel.Size(); t++ {
		row := make([]int32, arity)
		for a := 0; a < arity; a++ {
			row[a] = trans[a][inner.Value(t, a)]
		}
		e.rows = append(e.rows, row)
		e.live++
	}
	return pool.Each(ctx, e.workers, len(e.indexes), func(_, ri int) {
		ix := e.indexes[ri]
		for id := start; id < len(e.rows); id++ {
			ix.Insert(id, e.rows[id])
		}
	})
}

// Size returns the number of live tuples.
func (e *Engine) Size() int { return e.live }

// Rules returns the engine's rules in order. The slice is shared; do not
// modify it.
func (e *Engine) Rules() []cfd.CFD { return e.rules }

// RuleSet returns the rule set the engine serves, with whatever provenance it
// was built with (discovery provenance when the set came from
// discovery.Engine.Run).
func (e *Engine) RuleSet() *rules.Set { return e.set }

// Attributes returns the engine's attribute names in schema order.
func (e *Engine) Attributes() []string { return e.schema.Names() }

// Row returns the values of a live tuple in schema order.
func (e *Engine) Row(id int) ([]string, error) {
	row, err := e.row(id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(row))
	for a, code := range row {
		out[a] = e.dicts[a].Value(code)
	}
	return out, nil
}

// Violations streams the current snapshot: one Violation per violated rule,
// in rule order, with tuple ids ascending. Each yielded Tuples slice is
// freshly built and owned by the consumer.
func (e *Engine) Violations() iter.Seq[Violation] {
	return func(yield func(Violation) bool) {
		for i, ix := range e.indexes {
			if ix.BadTuples() == 0 {
				continue
			}
			if !yield(Violation{Rule: e.rules[i], Tuples: ix.Violating()}) {
				return
			}
		}
	}
}

// Report materialises the streaming snapshot, mirroring the batch report of
// repro/cleaning: on a freshly bulk-loaded relation the two are identical.
func (e *Engine) Report() *Report {
	rep := &Report{RulesChecked: len(e.rules)}
	dirty := make(map[int]bool)
	for v := range e.Violations() {
		rep.Violations = append(rep.Violations, v)
		for _, t := range v.Tuples {
			dirty[t] = true
		}
	}
	rep.DirtyTuples = make([]int, 0, len(dirty))
	for t := range dirty {
		rep.DirtyTuples = append(rep.DirtyTuples, t)
	}
	sort.Ints(rep.DirtyTuples)
	return rep
}

// Dirty returns the sorted union of all violating tuple ids.
func (e *Engine) Dirty() []int { return e.Report().DirtyTuples }

// DirtyCount returns an upper bound on the number of violating tuples in
// O(rules): the sum of per-rule violating counts, without deduplication
// across rules. It is cheap enough for health endpoints polled per request.
func (e *Engine) DirtyCount() int {
	n := 0
	for _, ix := range e.indexes {
		n += ix.BadTuples()
	}
	return n
}

// TupleViolations returns the rules the given live tuple currently violates,
// in rule order, in O(rules).
func (e *Engine) TupleViolations(id int) ([]cfd.CFD, error) {
	row, err := e.row(id)
	if err != nil {
		return nil, err
	}
	var out []cfd.CFD
	for i, ix := range e.indexes {
		if ix.IsViolating(id, row) {
			out = append(out, e.rules[i])
		}
	}
	return out, nil
}

// Relation materialises the live tuples as a *cfd.Relation together with the
// engine id of each of its tuples, for handing the current state to batch
// consumers (repair suggestion, re-discovery, export).
func (e *Engine) Relation() (*cfd.Relation, []int, error) {
	rel, err := cfd.NewRelation(e.schema.Names()...)
	if err != nil {
		return nil, nil, fmt.Errorf("violation: %w", err)
	}
	ids := make([]int, 0, e.live)
	for id, row := range e.rows {
		if row == nil {
			continue
		}
		values := make([]string, len(row))
		for a, code := range row {
			values[a] = e.dicts[a].Value(code)
		}
		if err := rel.Append(values...); err != nil {
			return nil, nil, fmt.Errorf("violation: %w", err)
		}
		ids = append(ids, id)
	}
	return rel, ids, nil
}
