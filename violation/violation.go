// Package violation is the serving side of the paper's CFD workflow: an
// indexed, incremental, concurrency-safe violation-detection engine. Where
// repro/cleaning's original detector rescanned the whole relation for every
// rule, the Engine maintains one hash index per rule — tuples grouped by
// their left-hand-side values, filtered on the rule's pattern constants — so
// that inserting, deleting or updating a tuple only touches the affected
// group of each rule: O(rules) map work per tuple, independent of the
// relation size.
//
// An Engine is built from a first-class rule set (*rules.Set, or pattern
// tableaux via NewFromTableaux), bulk loaded from a *cfd.Relation (in
// parallel across rule shards, on repro/internal/pool), and then kept current
// with Insert / Delete / Update — or, amortising lock and index maintenance
// over many tuples, with an atomic ApplyBatch — as tuples arrive and change.
// The rule set itself is live too: SwapRules atomically replaces it while
// reads and writes proceed, reusing the indexes of retained rules and
// building indexes only for added ones, so freshly re-discovered rules can
// be hot-swapped into a long-running server without a restart.
// The current violation state is read back as a streaming Violations
// sequence, a Report (the same shape repro/cleaning returns), or a per-tuple
// lookup. On any bulk-loaded relation the Engine reports exactly the
// violation set of the paper's batch semantics (§2.1.2): the batch detectors
// in repro/cleaning and repro/cfd route through the same underlying index
// (internal/core.RuleIndex), so there is one source of truth.
//
// # Concurrency
//
// The Engine is safe for concurrent use by any number of readers and
// writers. Mutations (Insert, Delete, Update, ApplyBatch, BulkLoad) are
// serialised by an internal write lock; batch mutations fan index
// maintenance out across rule shards on repro/internal/pool. The bulk
// readers Violations, Report and Dirty serve an immutable copy-on-write
// snapshot keyed by a mutation epoch: the first read after a mutation
// rebuilds the snapshot (briefly excluding writers), and every subsequent
// read shares it without taking any lock at all, so a polling client never
// stalls the write path. Point reads (Row, TupleViolations, Size, ...) read
// the live state under a read lock. Everything a reader receives —
// snapshots, violation tuple slices, rows — is immutable or freshly built;
// treat shared slices as read-only.
//
// # Durability
//
// An Engine is memory-only by default. Attach a Store (or any CommitLog)
// with AttachWAL and every mutation is appended to a write-ahead log before
// it is applied; rule swaps are journaled too (the log must implement
// RuleCommitLog, as Store does), so replay restores the rule set that was
// current at the crash. Store adds compacted snapshots on top, so a
// restarted process can rebuild the exact engine state — tuple ids included
// — with Store.Load. See Store for the on-disk layout and cmd/cfdserve for
// the serving deployment.
package violation

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/cfd"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/rules"
)

// ErrNotFound is wrapped by errors about tuple ids that are not live (never
// assigned, or deleted). errors.Is(err, ErrNotFound) distinguishes them from
// validation errors such as arity mismatches.
var ErrNotFound = errors.New("tuple not found")

// ErrWAL is wrapped by mutation errors caused by the attached CommitLog
// refusing the append: the mutation was valid but is not durable and was not
// applied. Servers should report it as an internal fault, not a bad request.
var ErrWAL = errors.New("write-ahead log append failed")

// Violation records the tuples currently violating one rule.
type Violation struct {
	Rule   cfd.CFD
	Tuples []int
}

// Report is a full snapshot of the engine's violation state, mirroring the
// shape of repro/cleaning's batch report. Its slices are shared with the
// engine's immutable snapshot; treat them as read-only.
type Report struct {
	// Epoch is the mutation epoch the report captures; poll Changes(Epoch)
	// for what happened since.
	Epoch uint64
	// Violations holds one entry per violated rule, in rule order.
	Violations []Violation
	// DirtyTuples is the sorted union of all violating tuple ids.
	DirtyTuples []int
	// RulesChecked is the number of rules the engine maintains.
	RulesChecked int
}

// Clean reports whether no violations are present.
func (rep *Report) Clean() bool { return len(rep.Violations) == 0 }

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of goroutines BulkLoad, ApplyBatch and
	// snapshot rebuilds may use: 0 runs one worker per available CPU (the
	// default), 1 runs sequentially. Single-tuple Insert/Delete/Update are
	// always applied inline; they are O(rules) per call and not worth fanning
	// out.
	Workers int
	// Shards is the number of rule shards the per-rule indexes are
	// partitioned into; batch mutations maintain each shard on its own pool
	// worker. 0 derives the shard count from Workers; values above the rule
	// count are clamped. Any shard count yields identical state.
	Shards int
	// DeltaHistory bounds the ring of per-commit violation deltas served by
	// Changes: a reader up to DeltaHistory epochs behind gets an incremental
	// delta, older readers get ErrCompacted and must resync with a full read.
	// 0 keeps the default (1024); negative disables the history entirely.
	DeltaHistory int
	// MaxPinGap bounds how many unassigned ids a pinned insert (Op.At) may
	// open beyond the current end of the row table. Every id below the pin
	// keeps a slot, so an unbounded pin is an unbounded allocation — and once
	// write-ahead logged it would crash every replay. Pins are validated
	// against this bound before the WAL append, so an oversized pin is
	// rejected and never logged. 0 keeps the default (DefaultMaxPinGap);
	// negative disables the bound (trusted embedders only).
	MaxPinGap int
}

// DefaultMaxPinGap is the Options.MaxPinGap default: a pinned insert may
// jump at most this many ids past the current end of the row table. A
// cluster coordinator assigns ids globally and pins them on the owning
// shard, so a shard's gap is the fleet's insert volume since that shard
// last received a row — 2^20 ids (~24 MiB of empty slots) accommodates even
// heavily skewed partitions while keeping a hostile pin ("at": 1e12) a
// validation error instead of a multi-terabyte allocation.
const DefaultMaxPinGap = 1 << 20

// CommitLog is the write-ahead hook of the engine: when attached, Append is
// called with every mutation — under the engine's write lock, after
// validation, before the mutation is applied — and a non-nil error aborts
// the mutation without applying it. *Store is the file-backed implementation.
type CommitLog interface {
	Append(ops []Op) error
}

// Engine is an incremental violation detector over a swappable rule set and
// a mutable set of tuples. Tuple ids are assigned by Insert/ApplyBatch/
// BulkLoad in arrival order, starting at 0, and are never reused; for a
// relation loaded by a single BulkLoad the ids coincide with the relation's
// tuple indexes. The rule set is replaced wholesale by SwapRules; it is
// never mutated in place.
//
// Id stability has a cost: each ever-assigned id keeps a (nil after Delete)
// slot in the engine's row table, and the per-attribute interning tables only
// grow. A deployment with unbounded insert/delete churn should periodically
// rebuild the engine from Relation() (re-basing ids) to reclaim that memory.
type Engine struct {
	// mu serialises mutations (Lock) against point reads and snapshot
	// rebuilds (RLock). The per-rule indexes, rows, dicts and live count are
	// only written under Lock.
	mu        sync.RWMutex
	schema    *core.Schema
	dicts     []*core.Dict // engine-owned interning tables, one per attribute
	set       *rules.Set
	rules     []cfd.CFD
	indexes   []*core.RuleIndex
	shards    [][]int // shard -> indexes it owns (round-robin partition)
	tab       *table  // columnar row store: tab.cols[a][id], absent once deleted
	live      int
	workers   int
	shardOpt  int // configured Options.Shards, re-applied after a rule swap
	maxPinGap int // resolved Options.MaxPinGap; <0 disables the bound
	wal       CommitLog

	// epoch counts mutations; snap caches the immutable state snapshot built
	// at a given epoch. Readers that find a current snapshot never lock.
	epoch  atomic.Uint64
	snap   atomic.Pointer[snapshot]
	snapMu sync.Mutex // serialises snapshot rebuilds

	// The incremental materialized-view state, all written under mu.Lock:
	// deltas is the bounded ring of per-commit deltas, indexed by epoch modulo
	// its length, holding the deltaN most recent epochs; dirtyRef counts, per
	// dirty tuple, the distinct rules it violates (so delta commits know when
	// a tuple enters or leaves the dirty union); watch is closed and replaced
	// at every epoch bump, waking WaitChange waiters.
	deltas   []*Delta
	deltaN   int
	dirtyRef map[int]int
	watch    chan struct{}

	// obsV holds the optional EngineObserver (boxed; see obs.go); obsCounters
	// are the always-on internal event counters behind DeltaStats.
	obsV atomic.Value
	obsCounters
}

// snapshot is one immutable view of the violation state, shared by every
// reader at the same epoch.
type snapshot struct {
	epoch      uint64
	violations []Violation // one per violated rule, rule order
	dirty      []int       // sorted union of violating ids
	rules      int         // rules maintained at this epoch
}

// New builds an engine over the given attribute schema, serving the rules of
// set (a nil set serves no rules). Rules must be structurally valid and may
// only name the given attributes; rule constants outside any data seen so far
// are fine (they simply match no tuple until one arrives). The set's rule
// order is preserved in every snapshot.
func New(attributes []string, set *rules.Set, opts Options) (*Engine, error) {
	if len(attributes) == 0 {
		return nil, fmt.Errorf("violation: schema needs at least one attribute")
	}
	schema, err := core.NewSchema(attributes...)
	if err != nil {
		return nil, fmt.Errorf("violation: %w", err)
	}
	if set == nil {
		set = rules.Of()
	}
	history := opts.DeltaHistory
	if history == 0 {
		history = 1024
	} else if history < 0 {
		history = 0
	}
	maxPinGap := opts.MaxPinGap
	if maxPinGap == 0 {
		maxPinGap = DefaultMaxPinGap
	}
	e := &Engine{
		schema:    schema,
		tab:       newTable(schema.Arity()),
		dicts:     make([]*core.Dict, schema.Arity()),
		set:       set,
		workers:   opts.Workers,
		shardOpt:  opts.Shards,
		maxPinGap: maxPinGap,
		deltas:    make([]*Delta, history),
		watch:     make(chan struct{}),
	}
	for a := range e.dicts {
		e.dicts[a] = core.NewDict()
	}
	for _, rule := range set.CFDs() {
		if err := e.addRule(rule); err != nil {
			return nil, err
		}
	}
	e.shards = shardIndexes(len(e.indexes), opts.Shards, opts.Workers)
	return e, nil
}

// NewFromTableaux is New for rules given as pattern tableaux; each tableau is
// expanded into its single-pattern CFDs (§2.3).
func NewFromTableaux(attributes []string, tableaux []cfd.TableauCFD, opts Options) (*Engine, error) {
	var expanded []cfd.CFD
	for _, t := range tableaux {
		expanded = append(expanded, t.CFDs()...)
	}
	return New(attributes, rules.Of(expanded...), opts)
}

// shardIndexes partitions n rule indexes round-robin into the configured
// number of shards (at least one, at most n).
func shardIndexes(n, shards, workers int) [][]int {
	s := shards
	if s <= 0 {
		s = pool.Normalize(workers)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	out := make([][]int, s)
	for i := 0; i < n; i++ {
		out[i%s] = append(out[i%s], i)
	}
	return out
}

// compileRule validates and compiles one rule against the engine's schema,
// returning an empty index for it. Rule constants are interned into the
// engine's dictionaries up front, so encoding never fails on constants
// outside the active domain — such constants hold codes no tuple carries
// until a matching value is inserted.
func (e *Engine) compileRule(rule cfd.CFD) (*core.RuleIndex, error) {
	if err := rule.Validate(); err != nil {
		return nil, fmt.Errorf("violation: %w", err)
	}
	rhs, ok := e.schema.Index(rule.RHS)
	if !ok {
		return nil, fmt.Errorf("violation: rule %s: unknown attribute %q", rule, rule.RHS)
	}
	enc := core.CFD{RHS: rhs, Tp: core.NewPattern(e.schema.Arity())}
	for i, name := range rule.LHS {
		a, ok := e.schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("violation: rule %s: unknown attribute %q", rule, name)
		}
		enc.LHS = enc.LHS.Add(a)
		if rule.LHSPattern[i] != cfd.Wildcard {
			enc.Tp[a] = e.dicts[a].Encode(rule.LHSPattern[i])
		}
	}
	if rule.RHSPattern != cfd.Wildcard {
		enc.Tp[rhs] = e.dicts[rhs].Encode(rule.RHSPattern)
	}
	return core.NewRuleIndex(enc), nil
}

// addRule compiles one rule and appends it to the engine's rule table.
func (e *Engine) addRule(rule cfd.CFD) error {
	ix, err := e.compileRule(rule)
	if err != nil {
		return err
	}
	e.rules = append(e.rules, rule)
	e.indexes = append(e.indexes, ix)
	return nil
}

// encode interns one tuple's values through the engine dictionaries. Callers
// must hold the write lock (interning mutates the dictionaries).
func (e *Engine) encode(values []string) ([]int32, error) {
	if len(values) != e.schema.Arity() {
		return nil, fmt.Errorf("violation: tuple has %d values, schema has %d attributes", len(values), e.schema.Arity())
	}
	row := make([]int32, len(values))
	for a, v := range values {
		row[a] = e.dicts[a].Encode(v)
	}
	return row, nil
}

// row returns a fresh copy of the encoded row of a live tuple id. Callers
// must hold mu.
func (e *Engine) row(id int) ([]int32, error) {
	if !e.tab.live(id) {
		return nil, fmt.Errorf("violation: tuple %d: %w", id, ErrNotFound)
	}
	return e.tab.row(id), nil
}

// AttachWAL attaches a write-ahead log: from now on every mutation is
// appended to w (under the write lock, after validation) before it is
// applied, and fails without applying if the append fails. Attach the log
// after any initial BulkLoad/restore — bulk loads are not logged; they are
// captured by snapshot compaction instead (see Store.Compact).
//
// A log that exposes its commit sequence (Seq() uint64, as *Store does)
// re-bases the engine's epoch onto it, so from here on epoch N means "the
// state after commit N" in every process that replays the same log — which is
// what lets a delta client resume Changes(since) across a server restart. A
// re-base discards the delta history accumulated under the old numbering.
func (e *Engine) AttachWAL(w CommitLog) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wal = w
	if s, ok := w.(interface{ Seq() uint64 }); ok {
		if seq := s.Seq(); seq != e.epoch.Load() {
			e.rebaseEpochLocked(seq)
		}
	}
}

// Insert adds one tuple (values in schema order) and returns its id. Each
// rule's index is updated in O(affected group).
func (e *Engine) Insert(values ...string) (int, error) {
	ids, err := e.ApplyBatch([]Op{{Kind: OpInsert, Values: values}})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// Delete removes the tuple with the given id.
func (e *Engine) Delete(id int) error {
	_, err := e.ApplyBatch([]Op{{Kind: OpDelete, ID: id}})
	return err
}

// Update replaces the values of the tuple with the given id, keeping its id.
func (e *Engine) Update(id int, values ...string) error {
	_, err := e.ApplyBatch([]Op{{Kind: OpUpdate, ID: id, Values: values}})
	return err
}

// BulkLoad appends every tuple of the relation, whose attributes must match
// the engine's schema exactly (same names, same order). Index building is
// parallelised across rule shards under the engine's worker budget; the
// resulting state is identical for every worker and shard count. Bulk loads
// are not written to an attached CommitLog; compact a snapshot afterwards
// (Store.Compact) if the load must be durable.
func (e *Engine) BulkLoad(rel *cfd.Relation) error {
	return e.BulkLoadContext(context.Background(), rel)
}

// BulkLoadContext is BulkLoad under a context. A cancelled load returns
// ctx.Err() and leaves the engine partially loaded; discard it.
func (e *Engine) BulkLoadContext(ctx context.Context, rel *cfd.Relation) error {
	obs := e.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// A bulk load is not delta-tracked: the commit resets the delta ring
	// (Changes across it reports ErrCompacted) and rebuilds the dirty
	// refcounts from the indexes.
	defer e.resetViewLocked()
	attrs := rel.Attributes()
	if len(attrs) != e.schema.Arity() {
		return fmt.Errorf("violation: relation has %d attributes, engine schema has %d", len(attrs), e.schema.Arity())
	}
	for a, name := range attrs {
		if e.schema.Name(a) != name {
			return fmt.Errorf("violation: relation attribute %d is %q, engine schema has %q", a, name, e.schema.Name(a))
		}
	}
	// The relation is already dictionary-encoded, so instead of re-interning
	// every cell as a string, translate each attribute's whole column into the
	// engine's code space (O(distinct values) string work per attribute, then
	// a tight integer loop per column). Interning mutates the shared
	// dictionaries, so this part runs sequentially; the per-shard index
	// building below carries the real cost and fans out.
	start := e.tab.slots()
	end := start + rel.Size()
	inner := rel.Encoded()
	arity := e.schema.Arity()
	for a := 0; a < arity; a++ {
		values := inner.Dict(a).Values()
		trans := make([]int32, len(values))
		for code, v := range values {
			trans[code] = e.dicts[a].Encode(v)
		}
		col := e.tab.cols[a]
		for _, c := range inner.Column(a) {
			col = append(col, trans[c])
		}
		e.tab.cols[a] = col
	}
	e.live += rel.Size()
	err := pool.Each(ctx, e.workers, len(e.shards), func(_, s int) {
		row := make([]int32, arity)
		for id := start; id < end; id++ {
			e.tab.gather(id, row)
			for _, ri := range e.shards[s] {
				e.indexes[ri].Insert(id, row)
			}
		}
	})
	if err == nil && obs != nil {
		obs.ObserveCommit("bulkload", rel.Size(), time.Since(obsStart).Seconds())
	}
	return err
}

// Size returns the number of live tuples.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.live
}

// NextID returns the id the next sequential insert would be assigned: one
// past the highest id ever assigned (or pinned with Op.At), 0 on an empty
// engine. A cluster coordinator recovers its global id counter as the
// maximum NextID across shards.
func (e *Engine) NextID() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tab.slots()
}

// Epoch returns the engine's mutation epoch: it increases after every
// completed mutation, so two reads at the same epoch observed the same state.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// Rules returns the rules the engine currently serves, in set order. The
// returned slice is never mutated by the engine (SwapRules replaces it
// wholesale); treat it as read-only.
func (e *Engine) Rules() []cfd.CFD {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rules
}

// RuleSet returns the rule set the engine currently serves, with whatever
// provenance it was built or last swapped with (discovery provenance when
// the set came from discovery.Engine.Run). The returned set is a defensive
// copy: mutating it — or swapping the engine's rules afterwards — never
// affects the other side. The CFD values inside it share their LHS slices
// with the original set, which is immutable by contract; treat them as
// read-only.
func (e *Engine) RuleSet() *rules.Set {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return rules.New(e.set.CFDs(), e.set.Provenance())
}

// RulesVersion returns the fingerprint of the rule set the engine currently
// serves (rules.Set.Fingerprint). Unlike RuleSet().Fingerprint() it reuses
// the digest cached on the internal set, so it is cheap enough for health
// endpoints and ETag checks polled per request.
func (e *Engine) RulesVersion() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.set.Fingerprint()
}

// Attributes returns the engine's attribute names in schema order.
func (e *Engine) Attributes() []string { return e.schema.Names() }

// Row returns the values of a live tuple in schema order.
func (e *Engine) Row(id int) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	row, err := e.row(id)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(row))
	for a, code := range row {
		out[a] = e.dicts[a].Value(code)
	}
	return out, nil
}

// Tuple is one live tuple with its stable id, as listed by Tuples.
type Tuple struct {
	ID     int
	Values []string
}

// Tuples lists live tuples in ascending id order starting at the first live
// id >= start, returning at most limit of them (limit <= 0 lists all). next
// is the id to resume from and more reports whether a live tuple at or beyond
// next exists — the deterministic cursor contract behind GET /v1/tuples: ids
// are stable, so a page boundary survives concurrent mutations.
func (e *Engine) Tuples(start, limit int) (tuples []Tuple, next int, more bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	arity := e.schema.Arity()
	for id := start; id < e.tab.slots(); id++ {
		if !e.tab.live(id) {
			continue
		}
		if limit > 0 && len(tuples) == limit {
			return tuples, id, true
		}
		values := make([]string, arity)
		for a := 0; a < arity; a++ {
			values[a] = e.dicts[a].Value(e.tab.cols[a][id])
		}
		tuples = append(tuples, Tuple{ID: id, Values: values})
	}
	return tuples, e.tab.slots(), false
}

// snapshot returns the immutable state snapshot for the current epoch,
// refreshing it only when a mutation happened since the last build. The
// refresh prefers the incremental path — patching the previous snapshot with
// the merged ring delta since its epoch, O(changes) instead of O(relation) —
// and falls back to the full parallel rebuild when the previous snapshot is
// too old for the bounded delta history (or there is none yet). The
// double-checked snapMu keeps a stampede of stale readers down to one
// refresh.
func (e *Engine) snapshot() *snapshot {
	if s := e.snap.Load(); s != nil && s.epoch == e.epoch.Load() {
		return s
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if s := e.snap.Load(); s != nil && s.epoch == e.epoch.Load() {
		return s
	}
	obs := e.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
	}
	e.mu.RLock()
	// The epoch is stable while the read lock is held: writers bump it under
	// the write lock. The rule and index tables are captured here too — a
	// rule swap replaces both wholesale under the write lock.
	epoch := e.epoch.Load()
	ruleTable := e.rules
	if old := e.snap.Load(); old != nil {
		if d, err := e.changesLocked(old.epoch); err == nil {
			// Ring deltas and snapshots are immutable once published, so the
			// patch itself can run outside the lock.
			e.mu.RUnlock()
			rep := d.Apply(&Report{
				Epoch:        old.epoch,
				Violations:   old.violations,
				DirtyTuples:  old.dirty,
				RulesChecked: old.rules,
			}, ruleTable)
			s := &snapshot{epoch: epoch, violations: rep.Violations, dirty: rep.DirtyTuples, rules: rep.RulesChecked}
			e.snap.Store(s)
			if obs != nil {
				obs.ObserveSnapshot(true, time.Since(obsStart).Seconds())
			}
			return s
		}
	}
	indexes := e.indexes
	perRule, _ := pool.Map(context.Background(), e.workers, len(indexes), func(_, i int) []int {
		if indexes[i].BadTuples() == 0 {
			return nil
		}
		return indexes[i].Violating()
	})
	e.mu.RUnlock()
	s := &snapshot{epoch: epoch, rules: len(ruleTable)}
	dirty := make(map[int]bool)
	for i, tuples := range perRule {
		if len(tuples) == 0 {
			continue
		}
		s.violations = append(s.violations, Violation{Rule: ruleTable[i], Tuples: tuples})
		for _, t := range tuples {
			dirty[t] = true
		}
	}
	s.dirty = make([]int, 0, len(dirty))
	for t := range dirty {
		s.dirty = append(s.dirty, t)
	}
	sort.Ints(s.dirty)
	e.snap.Store(s)
	if obs != nil {
		obs.ObserveSnapshot(false, time.Since(obsStart).Seconds())
	}
	return s
}

// Violations streams the current snapshot: one Violation per violated rule,
// in rule order, with tuple ids ascending. The whole sequence is served from
// one immutable epoch snapshot, so it stays consistent — and holds no lock —
// while concurrent mutations proceed. Yielded Tuples slices are shared with
// the snapshot; treat them as read-only.
func (e *Engine) Violations() iter.Seq[Violation] {
	s := e.snapshot()
	return func(yield func(Violation) bool) {
		for _, v := range s.violations {
			if !yield(v) {
				return
			}
		}
	}
}

// Report materialises the streaming snapshot, mirroring the batch report of
// repro/cleaning: on a freshly bulk-loaded relation the two are identical.
// The report's slices are shared with the immutable snapshot; treat them as
// read-only.
func (e *Engine) Report() *Report {
	s := e.snapshot()
	return &Report{
		Epoch:        s.epoch,
		Violations:   s.violations,
		DirtyTuples:  s.dirty,
		RulesChecked: s.rules,
	}
}

// Dirty returns the sorted union of all violating tuple ids, served from the
// current epoch snapshot. Treat the slice as read-only.
func (e *Engine) Dirty() []int { return e.snapshot().dirty }

// DirtyCount returns an upper bound on the number of violating tuples in
// O(rules): the sum of per-rule violating counts, without deduplication
// across rules. It is cheap enough for health endpoints polled per request.
func (e *Engine) DirtyCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, ix := range e.indexes {
		n += ix.BadTuples()
	}
	return n
}

// TupleViolations returns the rules the given live tuple currently violates,
// in rule order, in O(rules), as one consistent point-in-time read.
func (e *Engine) TupleViolations(id int) ([]cfd.CFD, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	row, err := e.row(id)
	if err != nil {
		return nil, err
	}
	var out []cfd.CFD
	for i, ix := range e.indexes {
		if ix.IsViolating(id, row) {
			out = append(out, e.rules[i])
		}
	}
	return out, nil
}

// Relation materialises the live tuples as a *cfd.Relation together with the
// engine id of each of its tuples, for handing the current state to batch
// consumers (repair suggestion, re-discovery, export). The copy is one
// consistent point-in-time read.
func (e *Engine) Relation() (*cfd.Relation, []int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rel, err := cfd.NewRelation(e.schema.Names()...)
	if err != nil {
		return nil, nil, fmt.Errorf("violation: %w", err)
	}
	ids := make([]int, 0, e.live)
	arity := e.schema.Arity()
	values := make([]string, arity)
	for id := 0; id < e.tab.slots(); id++ {
		if !e.tab.live(id) {
			continue
		}
		for a := 0; a < arity; a++ {
			values[a] = e.dicts[a].Value(e.tab.cols[a][id])
		}
		if err := rel.Append(values...); err != nil {
			return nil, nil, fmt.Errorf("violation: %w", err)
		}
		ids = append(ids, id)
	}
	return rel, ids, nil
}
