package violation

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/rules"
)

// Store is the file-backed persistence layer of the engine: an append-only
// JSONL write-ahead log of ops plus periodically compacted snapshots, under
// one state directory. It implements CommitLog, so attaching it with
// Engine.AttachWAL makes every mutation durable before it is applied.
//
// # On-disk layout
//
//	<dir>/snapshot.json  the last compacted state: schema, rule set (with
//	                     provenance), every live tuple with its id, the next
//	                     id to assign, and the WAL sequence number the
//	                     snapshot includes
//	<dir>/wal.jsonl      one JSON record per committed mutation:
//	                     {"seq":N,"ops":[...]} — a batch is one record, so
//	                     replay preserves its atomicity
//
// Recovery (Load) rebuilds the engine from the snapshot and replays every
// WAL record with a sequence number above the snapshot's; records at or
// below it are already folded in, which is what makes the
// compact-then-truncate pair crash-safe in either order. A torn trailing
// WAL record (a crash mid-append) is detected on open and truncated away.
//
// A Store assumes a single owning process and enforces it: OpenStore takes
// an advisory lock on <dir>/LOCK and fails fast when another live Store —
// in this or any other process — already holds the directory, so two nodes
// pointed at the same -state cannot interleave appends and corrupt the WAL.
// The lock is released by Close and by process death (including SIGKILL).
type Store struct {
	dir    string
	sync   bool
	unlock func() error // releases the directory lock; nil once released

	// compactMu serialises whole compactions: without it two overlapping
	// Compact calls could rename their snapshots out of capture order and
	// regress the on-disk state below an already-truncated WAL.
	compactMu sync.Mutex

	mu       sync.Mutex
	wal      *os.File
	walOff   int64  // current end offset of the WAL file
	seq      uint64 // sequence number of the last committed record
	snapSeq  uint64 // WAL sequence the current snapshot file includes
	snapFile *snapshotFile
	pending  int // ops appended since the last compaction

	// obsV holds the optional StoreObserver (boxed; see obs.go).
	obsV atomic.Value
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Sync forces an fsync after every WAL append and snapshot write, making
	// commits durable against machine crashes, not just process exits. Off,
	// appends still reach the kernel before a mutation is applied (surviving
	// a kill), but may be lost on power failure.
	Sync bool
}

// walRecord is one committed mutation on the wire: either a batch of tuple
// ops ({"seq":N,"ops":[...]}) or a rule swap carrying the full replacement
// rule set ({"seq":N,"rules":{...}}), never both.
type walRecord struct {
	Seq   uint64     `json:"seq"`
	Ops   []Op       `json:"ops,omitempty"`
	Rules *rules.Set `json:"rules,omitempty"`
}

// cost is the record's weight towards the compaction backlog: one per tuple
// op, and one for a rule swap.
func (rec walRecord) cost() int {
	if rec.Rules != nil {
		return 1
	}
	return len(rec.Ops)
}

// snapshotFile is the compacted state on the wire. Format 2 (written by this
// build) stores the relation columnar and dictionary-encoded: one string
// dictionary per attribute holding the distinct values of its live tuples in
// first-use order (scanning ids ascending), and one int32 column per
// attribute with the dictionary code of every id slot, -1 marking a dead id
// (deleted, or a hole below a pinned insert). The remap to first-use codes at
// encode time garbage-collects dictionary entries no live tuple carries and
// makes re-encoding a loaded snapshot byte-stable. Format 1 (older builds)
// stored each live tuple as an (id, values) pair; it is still read, never
// written.
type snapshotFile struct {
	Format     int        `json:"format"`
	WalSeq     uint64     `json:"wal_seq"`
	Attributes []string   `json:"attributes"`
	RuleSet    *rules.Set `json:"ruleset"`
	NextID     int        `json:"next_id"`
	// Tuples is the format 1 relation section.
	Tuples []savedTuple `json:"tuples,omitempty"`
	// Dicts and Columns are the format 2 relation section.
	Dicts   [][]string `json:"dicts,omitempty"`
	Columns [][]int32  `json:"columns,omitempty"`
}

// savedTuple is one live tuple with its stable id (format 1 only).
type savedTuple struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

const (
	snapshotName  = "snapshot.json"
	walName       = "wal.jsonl"
	currentFormat = 2
	legacyFormat  = 1
)

// decodeSnapshotFile parses and structurally validates a snapshot. Every
// invariant the restore path relies on without re-checking is enforced here,
// so a corrupt or truncated file is rejected with an error — never a panic —
// before any allocation sized by its contents.
func decodeSnapshotFile(data []byte) (*snapshotFile, error) {
	var file snapshotFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, err
	}
	if err := file.validate(); err != nil {
		return nil, err
	}
	return &file, nil
}

// validate checks the snapshot's structural invariants (see
// decodeSnapshotFile). Schema-level validity (attribute names, rules) is
// checked by New on restore.
func (f *snapshotFile) validate() error {
	if f.Format != legacyFormat && f.Format != currentFormat {
		return fmt.Errorf("format %d, this build reads %d and %d", f.Format, legacyFormat, currentFormat)
	}
	if len(f.Attributes) == 0 {
		return fmt.Errorf("no attributes")
	}
	if f.NextID < 0 {
		return fmt.Errorf("negative next_id %d", f.NextID)
	}
	arity := len(f.Attributes)
	if f.Format == legacyFormat {
		if f.Dicts != nil || f.Columns != nil {
			return fmt.Errorf("format 1 snapshot carries format 2 sections")
		}
		if f.NextID < len(f.Tuples) {
			return fmt.Errorf("next_id %d below its %d tuples", f.NextID, len(f.Tuples))
		}
		for _, t := range f.Tuples {
			if t.ID < 0 || t.ID >= f.NextID {
				return fmt.Errorf("tuple id %d outside [0, %d)", t.ID, f.NextID)
			}
			if len(t.Values) != arity {
				return fmt.Errorf("tuple %d has %d values, schema has %d attributes", t.ID, len(t.Values), arity)
			}
		}
		return nil
	}
	if f.Tuples != nil {
		return fmt.Errorf("format 2 snapshot carries a format 1 tuple section")
	}
	if len(f.Dicts) != arity || len(f.Columns) != arity {
		return fmt.Errorf("%d dictionaries and %d columns for %d attributes", len(f.Dicts), len(f.Columns), arity)
	}
	for a := 0; a < arity; a++ {
		seen := make(map[string]bool, len(f.Dicts[a]))
		for _, v := range f.Dicts[a] {
			if seen[v] {
				return fmt.Errorf("attribute %d dictionary repeats %q", a, v)
			}
			seen[v] = true
		}
		if len(f.Columns[a]) != f.NextID {
			return fmt.Errorf("attribute %d column has %d slots, next_id is %d", a, len(f.Columns[a]), f.NextID)
		}
		for id, code := range f.Columns[a] {
			if code != absent && (code < 0 || int(code) >= len(f.Dicts[a])) {
				return fmt.Errorf("attribute %d slot %d holds code %d outside its %d-value dictionary", a, id, code, len(f.Dicts[a]))
			}
			// A dead id must be dead on every column; compare against
			// attribute 0, the column the engine derives liveness from.
			if (code == absent) != (f.Columns[0][id] == absent) {
				return fmt.Errorf("id %d is dead on attribute 0 but not on attribute %d (or vice versa)", id, a)
			}
		}
	}
	return nil
}

// OpenStore opens (creating if needed) the state directory: it reads the
// snapshot, scans the WAL for the last committed sequence number, and
// truncates a torn trailing record left by a crash mid-append. Call Load to
// rebuild the engine, then Engine.AttachWAL(store) to log further mutations.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("violation: opening store: %w", err)
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, sync: opts.Sync, unlock: unlock}
	fail := func(err error) (*Store, error) {
		st.releaseLock()
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	switch {
	case err == nil:
		file, err := decodeSnapshotFile(data)
		if err != nil {
			return fail(fmt.Errorf("violation: corrupt %s: %w", snapshotName, err))
		}
		st.snapFile = file
		st.snapSeq = file.WalSeq
		st.seq = file.WalSeq
	case os.IsNotExist(err):
	default:
		return fail(fmt.Errorf("violation: opening store: %w", err))
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fail(fmt.Errorf("violation: opening store: %w", err))
	}
	st.wal = wal
	if err := st.scanWAL(); err != nil {
		wal.Close()
		return fail(err)
	}
	return st, nil
}

// releaseLock releases the directory lock if still held.
func (st *Store) releaseLock() {
	if st.unlock != nil {
		_ = st.unlock()
		st.unlock = nil
	}
}

// readRecords streams the log's records from the start: fn is called with
// each intact record, and the returned offset is the end of the last one. A
// record is intact only when its trailing newline made it to disk and its
// JSON parses — Append writes record+'\n' in one call, so anything short of
// that is a tear from a crash mid-append, and everything from the first tear
// on is untrusted. Records are read with no line-length cap: a large batch
// is one (arbitrarily long) record. Callers must hold st.mu.
func (st *Store) readRecords(fn func(rec walRecord)) (int64, error) {
	if _, err := st.wal.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("violation: scanning %s: %w", walName, err)
	}
	var off int64
	r := bufio.NewReader(st.wal)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A trailing fragment without its newline (len(line) > 0) is a
			// torn append: the commit never returned, drop it.
			return off, nil
		}
		if err != nil {
			return 0, fmt.Errorf("violation: scanning %s: %w", walName, err)
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return off, nil // torn or corrupt: ignore from here on
		}
		off += int64(len(line))
		fn(rec)
	}
}

// scanWAL reads the log once on open: it advances seq past every intact
// record, truncates the file after the last one (dropping a torn tail), and
// leaves the file offset at the end for appending.
func (st *Store) scanWAL() error {
	off, err := st.readRecords(func(rec walRecord) {
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
		st.pending += rec.cost()
	})
	if err != nil {
		return err
	}
	if err := st.wal.Truncate(off); err != nil {
		return fmt.Errorf("violation: truncating torn %s tail: %w", walName, err)
	}
	if _, err := st.wal.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("violation: scanning %s: %w", walName, err)
	}
	st.walOff = off
	return nil
}

// Append commits one mutation record to the log. It is the CommitLog hook the
// engine calls under its write lock: a batch becomes a single record (and,
// with Sync, a single fsync — the group commit that makes batched ingest fast)
// and either lands completely or, on error, leaves the log truncated back to
// the previous record boundary.
func (st *Store) Append(ops []Op) error {
	return st.commit(walRecord{Ops: ops})
}

// AppendRules commits one rule-swap record to the log — the RuleCommitLog
// hook Engine.SwapRules calls under its write lock. The record carries the
// full replacement rule set, so replay restores whatever set was current,
// however many swaps preceded the crash.
func (st *Store) AppendRules(set *rules.Set) error {
	return st.commit(walRecord{Rules: set})
}

// commit appends one record (its Seq is assigned here) with the usual
// all-or-nothing contract: on any error the log is truncated back to the
// previous record boundary.
func (st *Store) commit(rec walRecord) (err error) {
	obs := st.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
		defer func() { obs.ObserveWALAppend(rec.cost(), time.Since(obsStart).Seconds(), err) }()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	rec.Seq = st.seq + 1
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := st.wal.Write(line); err != nil {
		// Roll back a partial append so the log stays well-formed.
		_ = st.wal.Truncate(st.walOff)
		_, _ = st.wal.Seek(st.walOff, io.SeekStart)
		return err
	}
	if st.sync {
		var fsyncStart time.Time
		if obs != nil {
			fsyncStart = time.Now()
		}
		if err := st.wal.Sync(); err != nil {
			_ = st.wal.Truncate(st.walOff)
			_, _ = st.wal.Seek(st.walOff, io.SeekStart)
			return err
		}
		if obs != nil {
			obs.ObserveWALFsync(time.Since(fsyncStart).Seconds())
		}
	}
	st.walOff += int64(len(line))
	st.seq++
	st.pending += rec.cost()
	return nil
}

// Load rebuilds the engine from the snapshot plus the WAL tail. It returns
// (nil, false, nil) when the store holds no state yet — build the engine some
// other way, Compact it once, then AttachWAL. Tuple ids (and therefore every
// violation report) are restored exactly as they were.
func (st *Store) Load(opts Options) (*Engine, bool, error) {
	st.mu.Lock()
	snap := st.snapFile
	st.mu.Unlock()
	if snap == nil {
		if st.seq > 0 {
			return nil, false, fmt.Errorf("violation: store has a write-ahead log but no %s", snapshotName)
		}
		return nil, false, nil
	}
	e, err := New(snap.Attributes, snap.RuleSet, opts)
	if err != nil {
		return nil, false, err
	}
	if err := e.restoreSnapshot(snap); err != nil {
		return nil, false, err
	}
	// Re-base the epoch onto the WAL sequence before replay: the restored
	// state is exactly the state after commit WalSeq, and every replayed
	// record bumps the epoch once, so afterwards epoch == Seq() and a delta
	// client's pre-crash since values stay meaningful (the replayed tail even
	// repopulates the delta ring).
	e.mu.Lock()
	e.rebaseEpochLocked(snap.WalSeq)
	e.mu.Unlock()
	if err := st.replay(e); err != nil {
		return nil, false, err
	}
	return e, true, nil
}

// replay applies every WAL record above the snapshot's sequence number, each
// as one atomic batch. The engine must not have the store attached yet.
func (st *Store) replay(e *Engine) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	defer st.wal.Seek(st.walOff, io.SeekStart) //nolint:errcheck // repositioned for appends
	var applyErr error
	_, err := st.readRecords(func(rec walRecord) {
		if applyErr != nil || rec.Seq <= st.snapSeq {
			return // failed already, or folded into the snapshot
		}
		if rec.Rules != nil {
			if _, err := e.SwapRules(context.Background(), rec.Rules); err != nil {
				applyErr = fmt.Errorf("violation: replaying %s rule swap %d: %w", walName, rec.Seq, err)
			}
			return
		}
		if _, err := e.ApplyBatch(rec.Ops); err != nil {
			applyErr = fmt.Errorf("violation: replaying %s record %d: %w", walName, rec.Seq, err)
		}
	})
	if err != nil {
		return err
	}
	return applyErr
}

// Compact writes a fresh snapshot of the engine's current state (atomically,
// via a temp file and rename; with Sync the parent directory is fsynced so
// the rename is durable before the log shrinks) and drops the WAL records it
// folds in — truncating a quiescent log, or rewriting a busy one down to the
// unfolded tail, so the WAL stays bounded under sustained writes. Safe to
// call concurrently with reads and writes: the state and the WAL sequence it
// covers are captured at one consistent point under the engine's read lock
// (an O(live tuples) pointer copy; the expensive decode and file write run
// unlocked), and replay skips folded records by sequence number, so a crash
// anywhere in the procedure is recoverable.
func (st *Store) Compact(e *Engine) error {
	obs := st.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
	}
	bytes, err := st.compact(e)
	if obs != nil {
		obs.ObserveCompaction(bytes, time.Since(obsStart).Seconds(), err)
	}
	return err
}

// compact is Compact's body; it returns the encoded snapshot size for the
// observer (0 when the failure preceded encoding).
func (st *Store) compact(e *Engine) (int, error) {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	// Writers hold the engine write lock across their Append, so while the
	// capture holds the engine read lock the store's seq exactly matches the
	// captured state.
	file := e.captureSnapshot(func() uint64 {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.seq
	})
	data, err := json.Marshal(file)
	if err != nil {
		return 0, fmt.Errorf("violation: compacting: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, snapshotName+".tmp*")
	if err != nil {
		return len(data), fmt.Errorf("violation: compacting: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return len(data), fmt.Errorf("violation: compacting: %w", err)
	}
	if st.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return len(data), fmt.Errorf("violation: compacting: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return len(data), fmt.Errorf("violation: compacting: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, snapshotName)); err != nil {
		return len(data), fmt.Errorf("violation: compacting: %w", err)
	}
	if st.sync {
		// Make the rename itself durable before any WAL shrinking below:
		// otherwise a power cut could resurface the old snapshot next to an
		// already-shortened log.
		if err := syncDir(st.dir); err != nil {
			return len(data), fmt.Errorf("violation: compacting: %w", err)
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	st.snapFile = file
	st.snapSeq = file.WalSeq
	if st.seq == file.WalSeq {
		// Nothing landed since the capture: the whole log is folded in.
		if err := st.wal.Truncate(0); err != nil {
			return len(data), fmt.Errorf("violation: truncating %s: %w", walName, err)
		}
		if _, err := st.wal.Seek(0, io.SeekStart); err != nil {
			return len(data), fmt.Errorf("violation: truncating %s: %w", walName, err)
		}
		st.walOff = 0
		st.pending = 0
		return len(data), nil
	}
	// Appends landed while the snapshot was being written: rewrite the log
	// down to the unfolded tail so it cannot grow without bound under
	// sustained traffic. On any error the full log is kept — folded records
	// are harmless, replay skips them by sequence number.
	return len(data), st.rewriteTailLocked(file.WalSeq)
}

// rewriteTailLocked replaces the WAL with only the records above keepAbove,
// atomically (temp file + rename + reopen). Callers must hold st.mu.
func (st *Store) rewriteTailLocked(keepAbove uint64) error {
	// Until the new file is swapped in, every exit must leave the old
	// handle positioned at its append offset.
	swapped := false
	defer func() {
		if !swapped {
			st.wal.Seek(st.walOff, io.SeekStart) //nolint:errcheck // best effort on error paths
		}
	}()
	tmp, err := os.CreateTemp(st.dir, walName+".tmp*")
	if err != nil {
		return fmt.Errorf("violation: rewriting %s: %w", walName, err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	var tail int
	var writeErr error
	if _, err := st.readRecords(func(rec walRecord) {
		if writeErr != nil || rec.Seq <= keepAbove {
			return
		}
		line, err := json.Marshal(rec)
		if err == nil {
			_, err = w.Write(append(line, '\n'))
		}
		if err != nil {
			writeErr = err
			return
		}
		tail += rec.cost()
	}); err != nil {
		tmp.Close()
		return err
	}
	if writeErr == nil {
		writeErr = w.Flush()
	}
	if writeErr == nil && st.sync {
		writeErr = tmp.Sync()
	}
	if err := tmp.Close(); writeErr == nil {
		writeErr = err
	}
	if writeErr != nil {
		return fmt.Errorf("violation: rewriting %s: %w", walName, writeErr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, walName)); err != nil {
		return fmt.Errorf("violation: rewriting %s: %w", walName, err)
	}
	if st.sync {
		if err := syncDir(st.dir); err != nil {
			return fmt.Errorf("violation: rewriting %s: %w", walName, err)
		}
	}
	wal, err := os.OpenFile(filepath.Join(st.dir, walName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("violation: rewriting %s: %w", walName, err)
	}
	off, err := wal.Seek(0, io.SeekEnd)
	if err != nil {
		wal.Close()
		return fmt.Errorf("violation: rewriting %s: %w", walName, err)
	}
	st.wal.Close()
	st.wal = wal
	st.walOff = off
	st.pending = tail
	swapped = true
	return nil
}

// syncDir fsyncs a directory, making renames inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Pending returns the number of ops appended to the WAL since the last
// compaction (including ops found in the log on open) — the compaction
// scheduling signal cmd/cfdserve polls.
func (st *Store) Pending() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pending
}

// Seq returns the sequence number of the last committed record. The engine
// re-bases its mutation epoch onto it at AttachWAL, making epochs — and the
// delta history keyed by them — comparable across restarts of the same store.
func (st *Store) Seq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// Dir returns the state directory.
func (st *Store) Dir() string { return st.dir }

// Close closes the WAL file and releases the directory lock. The engine must
// not mutate through this store afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	err := st.wal.Close()
	st.releaseLock()
	return err
}

// captureSnapshot captures the engine state — and, through seq, the WAL
// sequence it corresponds to — at one consistent point under the read lock
// (an O(live tuples × arity) int32 copy; the canonicalisation below runs
// unlocked) and encodes it as a format 2 snapshot. Codes are remapped to
// first-use order over an ascending-id scan, so dictionary entries no live
// tuple carries are dropped and re-encoding a restored snapshot reproduces
// it byte for byte, whatever the engine's internal code assignment. A nil
// seq records sequence 0.
func (e *Engine) captureSnapshot(seq func() uint64) *snapshotFile {
	file := &snapshotFile{Format: currentFormat}
	e.mu.RLock()
	file.Attributes = e.schema.Names()
	file.RuleSet = e.set
	file.NextID = e.tab.slots()
	cols := e.tab.snapshotCols()
	values := make([][]string, len(e.dicts))
	for a, d := range e.dicts {
		values[a] = d.Values() // append-only; the captured header stays valid
	}
	if seq != nil {
		file.WalSeq = seq()
	}
	e.mu.RUnlock()

	file.Dicts = make([][]string, len(cols))
	file.Columns = make([][]int32, len(cols))
	for a := range cols {
		remap := make([]int32, len(values[a]))
		for i := range remap {
			remap[i] = -1
		}
		dict := []string{}
		col := cols[a] // owned copy: remapped in place
		if col == nil {
			col = []int32{}
		}
		for id, code := range col {
			if code == absent {
				continue
			}
			if remap[code] < 0 {
				remap[code] = int32(len(dict))
				dict = append(dict, values[a][code])
			}
			col[id] = remap[code]
		}
		file.Dicts[a] = dict
		file.Columns[a] = col
	}
	return file
}

// restoreSnapshot rebuilds the engine's relation from a validated snapshot
// (see decodeSnapshotFile), dispatching on its format.
func (e *Engine) restoreSnapshot(file *snapshotFile) error {
	if file.Format == currentFormat {
		return e.restoreColumns(file)
	}
	return e.restore(file.Tuples, file.NextID)
}

// restore rebuilds the row table from a format 1 snapshot: each saved tuple
// lands at its original id, deleted ids stay as holes, and the next id to
// assign is nextID. Index building fans out across the rule shards like a
// bulk load.
func (e *Engine) restore(tuples []savedTuple, nextID int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.resetViewLocked()
	if e.tab.slots() != 0 {
		return fmt.Errorf("violation: restore into a non-empty engine")
	}
	if nextID < 0 || nextID < len(tuples) {
		return fmt.Errorf("violation: snapshot next_id %d below its %d tuples", nextID, len(tuples))
	}
	e.tab.grow(nextID)
	for _, t := range tuples {
		if t.ID < 0 || t.ID >= nextID {
			return fmt.Errorf("violation: snapshot tuple id %d outside [0, %d)", t.ID, nextID)
		}
		if e.tab.live(t.ID) {
			return fmt.Errorf("violation: snapshot tuple id %d duplicated", t.ID)
		}
		row, err := e.encode(t.Values)
		if err != nil {
			return err
		}
		e.tab.set(t.ID, row)
		e.live++
	}
	return e.buildIndexesLocked()
}

// restoreColumns rebuilds the row table from a format 2 snapshot: each
// attribute's file codes are translated into the engine's code space once
// (the engine dictionaries already hold the rule constants New interned, so
// file and engine codes differ), then the columns are copied with a tight
// integer loop.
func (e *Engine) restoreColumns(file *snapshotFile) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.resetViewLocked()
	if e.tab.slots() != 0 {
		return fmt.Errorf("violation: restore into a non-empty engine")
	}
	e.tab.grow(file.NextID)
	for a := range e.tab.cols {
		trans := make([]int32, len(file.Dicts[a]))
		for code, v := range file.Dicts[a] {
			trans[code] = e.dicts[a].Encode(v)
		}
		col := e.tab.cols[a]
		for id, code := range file.Columns[a] {
			if code != absent {
				col[id] = trans[code]
			}
		}
	}
	for id := 0; id < e.tab.slots(); id++ {
		if e.tab.live(id) {
			e.live++
		}
	}
	return e.buildIndexesLocked()
}

// buildIndexesLocked builds every rule index over the restored row table,
// fanned out across the rule shards like a bulk load. Callers hold the write
// lock.
func (e *Engine) buildIndexesLocked() error {
	return pool.Each(context.Background(), e.workers, len(e.shards), func(_, s int) {
		row := make([]int32, e.schema.Arity())
		for id := 0; id < e.tab.slots(); id++ {
			if !e.tab.live(id) {
				continue
			}
			e.tab.gather(id, row)
			for _, ri := range e.shards[s] {
				e.indexes[ri].Insert(id, row)
			}
		}
	})
}
