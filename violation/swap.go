package violation

import (
	"context"
	"fmt"
	"time"

	"repro/cfd"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/rules"
)

// RuleCommitLog is the optional extension of CommitLog a write-ahead log must
// implement for the engine to accept live rule swaps: AppendRules journals
// the full replacement rule set as one record, so replay restores the rule
// set that was current at the crash, not the one the process booted with.
// *Store implements it.
type RuleCommitLog interface {
	CommitLog
	AppendRules(set *rules.Set) error
}

// SwapRules atomically replaces the engine's rule set with set (nil swaps to
// an empty set) and returns the rules.Diff between the old and new sets. The
// tuples are untouched. Under the write lock, indexes of retained rules are
// reused as they are, indexes for added rules are built over the live tuples
// — fanned out across the added rules on repro/internal/pool — and removed
// rules are dropped; the shard partition is recomputed and the snapshot
// epoch bumped, so a reader either sees the complete old state or the
// complete new one, never a half-swapped set.
//
// With a write-ahead log attached the swap is journaled (as a rule record,
// see RuleCommitLog) before it is applied; a log that does not implement
// RuleCommitLog, or whose append fails, rejects the swap with ErrWAL and
// leaves the engine unchanged. A cancelled ctx aborts the index build for
// added rules and likewise leaves the engine unchanged.
func (e *Engine) SwapRules(ctx context.Context, set *rules.Set) (rules.Delta, error) {
	if set == nil {
		set = rules.Of()
	}
	obs := e.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	delta := rules.Diff(e.set, set)

	// Match new rules against the current indexes by canonical rule key;
	// duplicates are consumed pairwise, exactly as rules.Diff counts them.
	avail := make(map[string][]int, len(e.rules))
	for i, r := range e.rules {
		k := r.Normalize().String()
		avail[k] = append(avail[k], i)
	}
	newRules := append([]cfd.CFD(nil), set.CFDs()...)
	newIndexes := make([]*core.RuleIndex, len(newRules))
	var fresh []int // positions of added rules, whose indexes must be built
	for i, r := range newRules {
		k := r.Normalize().String()
		if q := avail[k]; len(q) > 0 {
			newIndexes[i] = e.indexes[q[0]]
			avail[k] = q[1:]
			continue
		}
		ix, err := e.compileRule(r)
		if err != nil {
			return rules.Delta{}, err
		}
		newIndexes[i] = ix
		fresh = append(fresh, i)
	}
	// Build the indexes of added rules over the live rows before anything is
	// committed: the fresh indexes are private until the final assignment, so
	// an error (or a cancelled context) discards them with no state change.
	if len(fresh) > 0 {
		if err := pool.Each(ctx, e.workers, len(fresh), func(_, j int) {
			ix := newIndexes[fresh[j]]
			row := make([]int32, e.schema.Arity())
			for id := 0; id < e.tab.slots(); id++ {
				if !e.tab.live(id) {
					continue
				}
				e.tab.gather(id, row)
				ix.Insert(id, row)
			}
		}); err != nil {
			return rules.Delta{}, err
		}
	}
	// Journal the swap before applying it, like every other mutation.
	if e.wal != nil {
		rl, ok := e.wal.(RuleCommitLog)
		if !ok {
			return rules.Delta{}, fmt.Errorf("violation: %w: attached commit log %T cannot journal rule swaps", ErrWAL, e.wal)
		}
		if err := rl.AppendRules(set); err != nil {
			return rules.Delta{}, fmt.Errorf("violation: %w: %w", ErrWAL, err)
		}
	}
	// The swap's violation delta, by canonical rule key: a retained key keeps
	// its violating set (the indexes above are reused or rebuilt to identical
	// state), so only dropped keys remove violations and only added keys —
	// whose fresh indexes are fully built by now — add them. One entry per
	// distinct key, like every delta.
	oldKey := make(map[string]bool, len(e.rules))
	for _, r := range e.rules {
		oldKey[ruleKey(r)] = true
	}
	newKey := make(map[string]bool, len(newRules))
	for _, r := range newRules {
		newKey[ruleKey(r)] = true
	}
	var added, removed []Violation
	seen := make(map[string]bool)
	for i, r := range e.rules {
		if k := ruleKey(r); !newKey[k] && !seen[k] {
			seen[k] = true
			if e.indexes[i].BadTuples() > 0 {
				removed = append(removed, Violation{Rule: r, Tuples: e.indexes[i].Violating()})
			}
		}
	}
	for i, r := range newRules {
		if k := ruleKey(r); !oldKey[k] && !seen[k] {
			seen[k] = true
			if newIndexes[i].BadTuples() > 0 {
				added = append(added, Violation{Rule: r, Tuples: newIndexes[i].Violating()})
			}
		}
	}
	// The delta's rule list must be non-nil even when swapping to the empty
	// set: in a Delta, nil Rules means "no swap happened".
	swapped := newRules
	if swapped == nil {
		swapped = []cfd.CFD{}
	}
	e.recordDelta(added, removed, swapped)
	e.set = set
	e.rules = newRules
	e.indexes = newIndexes
	e.shards = shardIndexes(len(newIndexes), e.shardOpt, e.workers)
	e.bumpLocked()
	if obs != nil {
		obs.ObserveSwap(len(delta.Added), len(delta.Removed), len(delta.Retained), time.Since(obsStart).Seconds())
	}
	return delta, nil
}
