package violation

import (
	"sync/atomic"
)

// EngineObserver is the engine's instrumentation hook: a serving layer (see
// repro/obs) attaches one with Engine.SetObserver and receives an event per
// committed mutation, rule swap and snapshot refresh. Every callback runs
// synchronously on the mutating (or snapshot-building) goroutine, so
// implementations must be cheap and non-blocking — counter bumps and histogram
// observations, not I/O. With no observer attached the engine pays a single
// atomic load per event site and takes no timestamps at all.
//
// State that does not need an event — epoch, live tuples, rule count, delta
// ring occupancy (DeltaStats) — is intentionally not pushed: poll the engine's
// accessors at scrape time instead.
type EngineObserver interface {
	// ObserveCommit reports one committed tuple mutation: kind is the op kind
	// for a single-op commit ("insert", "delete", "update"), "batch" for a
	// multi-op ApplyBatch and "bulkload" for BulkLoad; ops is the number of
	// tuple ops the commit carried and seconds its wall-clock duration
	// (validation, WAL append and index maintenance included).
	ObserveCommit(kind string, ops int, seconds float64)
	// ObserveSwap reports one committed SwapRules: the rule-delta shape and the
	// swap's wall-clock duration (index builds for added rules included).
	ObserveSwap(added, removed, retained int, seconds float64)
	// ObserveSnapshot reports one snapshot refresh: patched is true for the
	// O(changes) delta-patch path, false for the full parallel rebuild.
	ObserveSnapshot(patched bool, seconds float64)
}

// StoreObserver is the persistence layer's instrumentation hook, attached with
// Store.SetObserver. Like EngineObserver, callbacks run synchronously on the
// committing goroutine and must be cheap; with no observer attached the store
// pays one atomic load per event site.
type StoreObserver interface {
	// ObserveWALAppend reports one commit attempt on the write-ahead log: the
	// record's op weight (see walRecord cost: tuple ops, or 1 for a rule swap),
	// its duration (fsync included) and whether it failed.
	ObserveWALAppend(ops int, seconds float64, err error)
	// ObserveWALFsync reports one successful WAL fsync (only emitted when the
	// store runs with StoreOptions.Sync).
	ObserveWALFsync(seconds float64)
	// ObserveCompaction reports one snapshot compaction: the snapshot's encoded
	// size in bytes (0 when the failure preceded encoding), its duration and
	// whether it failed.
	ObserveCompaction(bytes int, seconds float64, err error)
}

// engineObsBox wraps the observer for atomic.Value (which cannot hold a bare
// nil interface).
type engineObsBox struct{ o EngineObserver }
type storeObsBox struct{ o StoreObserver }

// SetObserver attaches (or, with nil, detaches) the engine's instrumentation
// hook. Attach it after any initial BulkLoad or Store.Load so restore work is
// not double-counted as live traffic. Safe for concurrent use, though it is
// meant to be called once at startup.
func (e *Engine) SetObserver(o EngineObserver) { e.obsV.Store(engineObsBox{o}) }

// obs returns the attached observer, or nil. One atomic load; callers on the
// hot path must check for nil before taking timestamps.
func (e *Engine) obs() EngineObserver {
	b, _ := e.obsV.Load().(engineObsBox)
	return b.o
}

// SetObserver attaches (or, with nil, detaches) the store's instrumentation
// hook. Safe for concurrent use.
func (st *Store) SetObserver(o StoreObserver) { st.obsV.Store(storeObsBox{o}) }

func (st *Store) obs() StoreObserver {
	b, _ := st.obsV.Load().(storeObsBox)
	return b.o
}

// DeltaStats describes the state of the bounded delta ring behind Changes and
// the pressure on it — the numbers a health endpoint or metrics scrape needs
// to tell whether delta clients are keeping up.
type DeltaStats struct {
	// Occupancy is the number of consecutive epochs currently answerable from
	// the ring; Capacity is the configured Options.DeltaHistory bound.
	Occupancy int
	Capacity  int
	// Evictions counts ring entries overwritten while the ring was full: each
	// one moved the oldest answerable epoch forward. A rate here under steady
	// polling means slow clients are being pushed towards ErrCompacted.
	Evictions uint64
	// CompactedReads counts Changes calls answered with ErrCompacted — clients
	// that actually fell off the history and were forced to resync.
	CompactedReads uint64
	// Waiters is the number of WaitChange calls currently blocked (the
	// long-poll/SSE fan-out depth).
	Waiters int
}

// DeltaStats returns the current delta-ring statistics.
func (e *Engine) DeltaStats() DeltaStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return DeltaStats{
		Occupancy:      e.deltaN,
		Capacity:       len(e.deltas),
		Evictions:      e.deltaEvictions.Load(),
		CompactedReads: e.deltaCompacted.Load(),
		Waiters:        int(e.waiters.Load()),
	}
}

// obsCounters groups the engine's internal event counters (exposed through
// DeltaStats; maintained with atomics so read paths never upgrade their lock).
type obsCounters struct {
	deltaEvictions atomic.Uint64
	deltaCompacted atomic.Uint64
	waiters        atomic.Int64
}
