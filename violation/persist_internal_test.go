package violation

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRewriteTailLocked exercises the busy-compaction path at the store
// level: records at or below the folded sequence are dropped, the tail
// survives byte-exactly, and the reopened handle keeps appending cleanly.
func TestRewriteTailLocked(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, v := range []string{"a", "b", "c"} { // seq 1..3
		if err := st.Append([]Op{{Kind: OpInsert, Values: []string{v}}}); err != nil {
			t.Fatal(err)
		}
	}
	st.mu.Lock()
	err = st.rewriteTailLocked(2) // fold seq 1-2, keep seq 3
	st.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Pending(); got != 1 {
		t.Fatalf("pending = %d after tail rewrite, want 1", got)
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != `{"seq":3,"ops":[{"op":"insert","values":["c"]}]}` {
		t.Fatalf("rewritten wal = %q", got)
	}
	// Appends continue on the swapped-in file with the right sequence.
	if err := st.Append([]Op{{Kind: OpDelete, ID: 0}}); err != nil { // seq 4
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // release the directory lock for st2
		t.Fatal(err)
	}
	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.seq != 4 || st2.pending != 2 {
		t.Fatalf("reopened store: seq=%d pending=%d, want 4 and 2", st2.seq, st2.pending)
	}
}

// TestOpJSONRequiresID: the wire decoder rejects delete/update ops without
// an explicit id (the zero id is a real tuple) and keeps insert records free
// of a spurious one.
func TestOpJSONRequiresID(t *testing.T) {
	var op Op
	if err := op.UnmarshalJSON([]byte(`{"op":"delete"}`)); err == nil {
		t.Fatal("delete without id must fail to decode")
	}
	if err := op.UnmarshalJSON([]byte(`{"op":"update","values":["x"]}`)); err == nil {
		t.Fatal("update without id must fail to decode")
	}
	if err := op.UnmarshalJSON([]byte(`{"op":"delete","id":0}`)); err != nil || op.ID != 0 {
		t.Fatalf("explicit id 0 must decode: op=%+v err=%v", op, err)
	}
	if err := op.UnmarshalJSON([]byte(`{"op":"insert","values":["x"]}`)); err != nil {
		t.Fatalf("insert without id must decode: %v", err)
	}
	data, err := Op{Kind: OpInsert, Values: []string{"x"}}.MarshalJSON()
	if err != nil || strings.Contains(string(data), `"id"`) {
		t.Fatalf("insert must marshal without id: %s (err %v)", data, err)
	}
	data, err = Op{Kind: OpDelete}.MarshalJSON()
	if err != nil || !strings.Contains(string(data), `"id":0`) {
		t.Fatalf("delete of tuple 0 must marshal its id: %s (err %v)", data, err)
	}
}
