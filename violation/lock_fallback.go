//go:build !unix

package violation

// lockDir is a no-op on platforms without flock semantics: the store keeps
// its documented single-owner assumption but cannot enforce it.
func lockDir(dir string) (func() error, error) {
	return func() error { return nil }, nil
}
