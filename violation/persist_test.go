package violation_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/cfd"
	"repro/rules"
	"repro/violation"
)

// durableEngine builds the standard deployment: an engine over the cust
// fixture, an initial compacted snapshot, and the store attached as WAL.
func durableEngine(t *testing.T, dir string, opts violation.StoreOptions) (*violation.Engine, *violation.Store) {
	t.Helper()
	st, err := violation.OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng := custEngine(t, true, violation.Options{})
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	eng.AttachWAL(st)
	return eng, st
}

// reload closes nothing (simulating a crash) and rebuilds the engine from the
// directory.
func reload(t *testing.T, dir string) *violation.Engine {
	t.Helper()
	st, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Close right after the rebuild: the store is never attached, and
	// releasing its directory lock lets the test reopen the directory.
	defer st.Close()
	eng, found, err := st.Load(violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("store has state, Load must find it")
	}
	return eng
}

// TestStoreRoundTrip: snapshot + WAL replay rebuild the engine byte for byte —
// report, ids, rows, schema and rule set with provenance.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})

	// A mix of logged mutations: per-op and batch, including a delete that
	// leaves an id hole and an insert above it.
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update(2, "01", "212", "2222222", "Joe", "5th Ave", "NYC", "10012"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(6); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: []string{"86", "10", "8888888", "Wei", "Main Rd.", "BJ", "100000"}},
		{Kind: violation.OpDelete, ID: 0},
		{Kind: violation.OpUpdate, ID: 8, Values: []string{"44", "131", "5555555", "Amy", "High St.", "EDI", "EH4 1DT"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	back := reload(t, dir)
	assertSameState(t, eng, back)
	if !reflect.DeepEqual(back.Attributes(), eng.Attributes()) {
		t.Fatalf("attributes = %v", back.Attributes())
	}
	if back.RuleSet().Len() != eng.RuleSet().Len() {
		t.Fatalf("rule set lost: %d rules", back.RuleSet().Len())
	}
	// The restored engine keeps assigning ids where the original would.
	id, err := back.Insert("01", "908", "1111111", "Zoe", "Tree Ave.", "MH", "07974")
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 {
		t.Fatalf("next id after restore = %d, want 10", id)
	}
}

// TestStoreCompactMidStream: compacting between mutations folds the prefix
// into the snapshot; replay applies only the tail, in either crash window.
func TestStoreCompactMidStream(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after compaction, want 0", st.Pending())
	}
	wal := filepath.Join(dir, "wal.jsonl")
	if data, err := os.ReadFile(wal); err != nil || len(data) != 0 {
		t.Fatalf("wal after quiescent compaction: %d bytes, err=%v", len(data), err)
	}
	if err := eng.Delete(8); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, eng, reload(t, dir))
}

// TestStoreStaleWALRecordsSkipped: a crash between snapshot rename and WAL
// truncation leaves folded records in the log; sequence numbers keep replay
// from applying them twice.
func TestStoreStaleWALRecordsSkipped(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	logged, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the folded record, as if truncation never happened.
	if err := os.WriteFile(wal, logged, 0o644); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	if back.Size() != 9 {
		t.Fatalf("size = %d: the stale insert was replayed twice", back.Size())
	}
}

// TestStoreTornTail: a partial trailing record (crash mid-append) is
// truncated away on open; everything before it survives, and the log accepts
// new appends afterwards.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"ops":[{"op":"ins`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, found, err := st2.Load(violation.Options{})
	if err != nil || !found {
		t.Fatalf("load after torn tail: found=%v err=%v", found, err)
	}
	assertSameState(t, eng, back)
	back.AttachWAL(st2)
	if err := back.Delete(8); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if back2 := reload(t, dir); back2.Size() != 8 {
		t.Fatalf("size after torn tail + new op = %d, want 8", back2.Size())
	}
}

// TestStoreTornTailMissingNewline: a crash can persist a record's complete
// JSON but not its trailing newline. Append only returns success after
// record+'\n' is written, so the fragment was never committed: recovery must
// drop it — without zero-extending the file — and later appends and reopens
// must stay intact.
func TestStoreTornTailMissingNewline(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Complete JSON, torn before the newline.
	if _, err := f.WriteString(`{"seq":2,"ops":[{"op":"delete","id":8}]}`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, found, err := st2.Load(violation.Options{})
	if err != nil || !found {
		t.Fatalf("load after newline-less tear: found=%v err=%v", found, err)
	}
	// The torn delete was never committed: tuple 8 must still be live.
	if back.Size() != 9 {
		t.Fatalf("size = %d, want 9 (torn record must not replay)", back.Size())
	}
	back.AttachWAL(st2)
	if err := back.Update(8, "44", "131", "5555555", "Amy", "High St.", "EDI", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	// The post-tear append starts exactly where the fragment began: the log
	// must hold intact, NUL-free lines and replay cleanly once more.
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\x00") {
		t.Fatalf("wal zero-extended across the tear: %q", data)
	}
	back2 := reload(t, dir)
	assertSameState(t, back, back2)
}

// swapSet is the replacement rule set the lifecycle tests swap to: it keeps
// the street FD, drops everything else and adds a rule the engine has never
// indexed.
func swapSet() *rules.Set {
	return rules.Of(
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		cfd.NewFD([]string{"NM"}, "PN"),
	)
}

// assertSameRules compares the rule sets two engines serve, content and
// order.
func assertSameRules(t *testing.T, a, b *violation.Engine) {
	t.Helper()
	sa, sb := a.RuleSet(), b.RuleSet()
	if sa.Fingerprint() != sb.Fingerprint() {
		t.Fatalf("rule fingerprints differ: %s vs %s", sa.Fingerprint(), sb.Fingerprint())
	}
	if !reflect.DeepEqual(sa.CFDs(), sb.CFDs()) {
		t.Fatalf("rule sets differ:\n%v\nvs\n%v", sa.CFDs(), sb.CFDs())
	}
}

// TestStoreSwapReplay: a rule swap is journaled as a WAL record; a crash
// right after it (no compaction) must replay into the swapped rule set, and
// ops logged on either side of the swap must replay under the rule set that
// was current when they were applied.
func TestStoreSwapReplay(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SwapRules(context.Background(), swapSet()); err != nil {
		t.Fatal(err)
	}
	// Mutations after the swap are maintained under the new rules.
	if _, err := eng.Insert("01", "212", "1234567", "Ann", "Other St.", "NYC", "01202"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // crash: no final compaction
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	assertSameRules(t, eng, back)
}

// TestStoreSwapThenCompact: compaction after a swap folds the swap into the
// snapshot (the snapshot carries the rule set); the WAL empties and a reload
// must come back under the new rules without replaying anything.
func TestStoreSwapThenCompact(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.SwapRules(context.Background(), swapSet()); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 1 {
		t.Fatalf("pending = %d after a swap, want 1", st.Pending())
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	if data, err := os.ReadFile(wal); err != nil || len(data) != 0 {
		t.Fatalf("wal after post-swap compaction: %d bytes, err=%v", len(data), err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	assertSameRules(t, eng, back)
}

// TestStoreSwapAfterCompact: the swap record lands above the snapshot's
// sequence, so replay must apply it — the restart window of a kill right
// after a swap that followed a compaction.
func TestStoreSwapAfterCompact(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SwapRules(context.Background(), swapSet()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	assertSameRules(t, eng, back)
}

// TestStoreStaleSwapRecordSkipped: a crash between snapshot rename and WAL
// truncation can leave an already-folded swap record in the log; replay must
// skip it by sequence number instead of re-applying it over newer rules.
func TestStoreStaleSwapRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.SwapRules(context.Background(), swapSet()); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	logged, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	// Swap once more, so a replayed stale record would visibly regress.
	final := rules.Of(cfd.NewFD([]string{"NM"}, "PN"))
	if _, err := eng.SwapRules(context.Background(), final); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the folded swap record below the fresh tail, as if the
	// compaction's truncation never happened.
	tail, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, append(logged, tail...), 0o644); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	assertSameRules(t, eng, back)
	if got := back.RuleSet().Fingerprint(); got != final.Fingerprint() {
		t.Fatalf("stale swap record replayed: serving %s, want %s", got, final.Fingerprint())
	}
}

// TestStoreTornSwapRecord: a crash mid-append of a swap record leaves a torn
// tail; recovery truncates it and serves the pre-swap rule set — the swap
// never committed.
func TestStoreTornSwapRecord(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"rules":{"rules":["([NM] -`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back := reload(t, dir)
	assertSameState(t, eng, back)
	assertSameRules(t, eng, back)
}

// TestStoreEmpty: a fresh directory has no state; a WAL without a snapshot is
// corruption.
func TestStoreEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if eng, found, err := st.Load(violation.Options{}); err != nil || found || eng != nil {
		t.Fatalf("empty store: eng=%v found=%v err=%v", eng, found, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A WAL with no snapshot cannot be replayed against anything.
	if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"),
		[]byte(`{"seq":1,"ops":[{"op":"delete","id":0}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, err := st2.Load(violation.Options{}); err == nil || !strings.Contains(err.Error(), "no snapshot.json") {
		t.Fatalf("WAL without snapshot: err = %v", err)
	}
}

// TestStoreCorruptSnapshot: a mangled snapshot fails loudly at open.
func TestStoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, st := durableEngine(t, dir, violation.StoreOptions{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := violation.OpenStore(dir, violation.StoreOptions{}); err == nil {
		t.Fatal("corrupt snapshot must fail OpenStore")
	}
}

// TestStoreSync: the fsync'd configuration behaves identically (the test
// cannot assert durability against power loss, but exercises the code path).
func TestStoreSync(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{Sync: true})
	if _, err := eng.Insert("44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, eng, reload(t, dir))
}

// TestStoreCompactUnderWrites races compactions against a writer: whatever
// interleaving happens (quiescent truncation or busy tail rewrite), a reload
// must reproduce the final engine state exactly, and a final quiescent
// compaction must fold the whole log.
func TestStoreCompactUnderWrites(t *testing.T) {
	dir := t.TempDir()
	eng, st := durableEngine(t, dir, violation.StoreOptions{})
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 150; i++ {
			id, err := eng.Insert("01", "212", fmt.Sprintf("%07d", i), "Ann", "5th Ave", "NYC", "01202")
			if err != nil {
				done <- err
				return
			}
			if i%2 == 0 {
				if err := eng.Delete(id); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}()
	for i := 0; i < 8; i++ {
		if err := st.Compact(eng); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(eng); err != nil {
		t.Fatal(err)
	}
	if got := st.Pending(); got != 0 {
		t.Fatalf("pending = %d after quiescent compaction, want 0", got)
	}
	wal := filepath.Join(dir, "wal.jsonl")
	if data, err := os.ReadFile(wal); err != nil || len(data) != 0 {
		t.Fatalf("wal after quiescent compaction: %d bytes, err=%v", len(data), err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, eng, reload(t, dir))
}

// TestStoreReplayRejectsBadOps: a log whose ops cannot apply (here: deleting
// a tuple that never existed) fails recovery instead of silently diverging.
func TestStoreReplayRejectsBadOps(t *testing.T) {
	dir := t.TempDir()
	_, st := durableEngine(t, dir, violation.StoreOptions{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"),
		[]byte(`{"seq":1,"ops":[{"op":"delete","id":999}]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, err := st2.Load(violation.Options{}); !errors.Is(err, violation.ErrNotFound) {
		t.Fatalf("replaying an impossible op: err = %v, want ErrNotFound", err)
	}
}
