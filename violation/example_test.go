package violation_test

import (
	"context"
	"fmt"
	"os"

	"repro/cfd"
	"repro/dataset"
	"repro/rules"
	"repro/violation"
)

// ExampleEngine_ApplyBatch keeps an engine current with one atomic batch:
// inserts, an update and a delete land together (ids may refer to tuples
// inserted earlier in the same batch), or — when any op is invalid — not at
// all.
func ExampleEngine_ApplyBatch() {
	rel := dataset.Cust()
	eng, err := violation.New(rel.Attributes(),
		rules.Of(cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"}),
		violation.Options{})
	if err != nil {
		panic(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		panic(err)
	}
	fmt.Println("dirty after load:", eng.Dirty())

	ids, err := eng.ApplyBatch([]violation.Op{
		// Amy joins the AC=131 group with yet another city...
		{Kind: violation.OpInsert, Values: []string{"44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"}},
		// ...is repaired in the same batch (id 8 is assigned just above)...
		{Kind: violation.OpUpdate, ID: 8, Values: []string{"44", "131", "5555555", "Amy", "High St.", "EDI", "EH4 1DT"}},
		// ...and Sean's wrong city goes away entirely.
		{Kind: violation.OpDelete, ID: 7},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("inserted ids:", ids)
	fmt.Println("dirty after batch:", eng.Dirty())

	// A batch with any invalid op applies nothing.
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: []string{"01", "908", "1111111", "Eve", "Tree Ave.", "MH", "07974"}},
		{Kind: violation.OpDelete, ID: 7}, // already deleted
	}); err != nil {
		fmt.Println("rejected:", eng.Size(), "tuples unchanged")
	}
	// Output:
	// dirty after load: [4 5 7]
	// inserted ids: [8]
	// dirty after batch: []
	// rejected: 8 tuples unchanged
}

// ExampleStore is the durability loop of cmd/cfdserve: compact a snapshot,
// write-ahead log every mutation, and rebuild the identical engine — tuple
// ids included — after a restart.
func ExampleStore() {
	dir, err := os.MkdirTemp("", "cfdstate")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	rel := dataset.Cust()
	set := rules.Of(cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"})
	eng, err := violation.New(rel.Attributes(), set, violation.Options{})
	if err != nil {
		panic(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		panic(err)
	}

	store, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		panic(err)
	}
	if err := store.Compact(eng); err != nil { // snapshot the bulk load
		panic(err)
	}
	eng.AttachWAL(store) // from here on, every mutation is logged
	if err := eng.Delete(7); err != nil {
		panic(err)
	}
	store.Close() // "crash": the delete lives only in the write-ahead log

	store2, err := violation.OpenStore(dir, violation.StoreOptions{})
	if err != nil {
		panic(err)
	}
	defer store2.Close()
	back, found, err := store2.Load(violation.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("restored:", found)
	// Sean (tuple 7) was the one AC=131 tuple off the EDI constant, so the
	// replayed delete leaves the group clean.
	fmt.Println("tuples:", back.Size(), "dirty:", back.Dirty())
	// Output:
	// restored: true
	// tuples: 7 dirty: []
}

// ExampleEngine_SwapRules hot-swaps the served rule set while the tuples
// stay put: retained rules keep their indexes, added rules are indexed over
// the live tuples, and the returned delta says what changed.
func ExampleEngine_SwapRules() {
	rel := dataset.Cust()
	eng, err := violation.New(rel.Attributes(),
		rules.Of(
			cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
			cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		),
		violation.Options{})
	if err != nil {
		panic(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		panic(err)
	}
	fmt.Println("dirty before swap:", eng.Dirty())

	// Re-discovered rules arrive: the constant city rule is gone, a
	// name->phone FD is new, the street FD is retained.
	delta, err := eng.SwapRules(context.Background(), rules.Of(
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		cfd.NewFD([]string{"NM"}, "PN"),
	))
	if err != nil {
		panic(err)
	}
	fmt.Printf("swap: +%d -%d =%d\n", len(delta.Added), len(delta.Removed), len(delta.Retained))
	fmt.Println("dirty after swap:", eng.Dirty())
	// Output:
	// dirty before swap: [0 1 2 3 4 5 7]
	// swap: +1 -1 =1
	// dirty after swap: [0 1 2 3 7]
}
