package violation

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/pool"
)

// OpKind names a mutation kind. The string values are the wire form used by
// the JSONL write-ahead log and by cmd/cfdserve's POST /batch body.
type OpKind string

const (
	OpInsert OpKind = "insert"
	OpDelete OpKind = "delete"
	OpUpdate OpKind = "update"
)

// Op is one mutation of the engine's tuple set. Insert carries Values only
// (the id is assigned on apply, or pinned by At); Delete carries ID; Update
// carries both.
type Op struct {
	Kind   OpKind   `json:"op"`
	ID     int      `json:"id,omitempty"`
	Values []string `json:"values,omitempty"`
	// At pins an insert to an explicit id instead of the next sequential one.
	// The id must not be live; ids between the current end of the row table
	// and At become unassigned holes (exactly like ids freed by Delete), and
	// the next sequential insert continues after the highest id ever pinned.
	// This is how a cluster coordinator keeps globally assigned ids stable on
	// the owning shard; single-node clients normally leave it nil. A pin more
	// than Options.MaxPinGap ids past the current end is rejected — each hole
	// keeps a row-table slot, so the gap is an allocation the op commands.
	At *int `json:"at,omitempty"`
}

// opJSON is the wire form: id is a pointer so decoding can tell "id":0 apart
// from a missing id — without that, a delete op with the field omitted would
// silently target tuple 0.
type opJSON struct {
	Kind   OpKind   `json:"op"`
	ID     *int     `json:"id,omitempty"`
	Values []string `json:"values,omitempty"`
	At     *int     `json:"at,omitempty"`
}

// MarshalJSON emits the id only for the kinds that address a tuple, so
// insert records stay free of a meaningless "id":0, and "at" only for
// inserts that pin one.
func (o Op) MarshalJSON() ([]byte, error) {
	raw := opJSON{Kind: o.Kind, Values: o.Values}
	if o.Kind == OpDelete || o.Kind == OpUpdate {
		id := o.ID
		raw.ID = &id
	}
	if o.Kind == OpInsert && o.At != nil {
		at := *o.At
		raw.At = &at
	}
	return json.Marshal(raw)
}

// UnmarshalJSON rejects delete/update ops without an explicit "id": the
// zero id is a real tuple, and a client omitting the field must get an
// error, not a deletion of tuple 0. An "at" is only meaningful on insert.
func (o *Op) UnmarshalJSON(data []byte) error {
	var raw opJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	o.Kind, o.Values, o.ID, o.At = raw.Kind, raw.Values, 0, nil
	if raw.ID != nil {
		o.ID = *raw.ID
	} else if raw.Kind == OpDelete || raw.Kind == OpUpdate {
		return fmt.Errorf("violation: %s op requires an \"id\"", raw.Kind)
	}
	if raw.At != nil {
		if raw.Kind != OpInsert {
			return fmt.Errorf("violation: %s op does not take \"at\"", raw.Kind)
		}
		at := *raw.At
		o.At = &at
	}
	return nil
}

// resolvedOp is one validated op with its row-level effect: the encoded row
// it removes and/or adds. Replaying resolved ops against any subset of the
// rule indexes is position-independent, which is what lets apply fan them out
// across shards.
type resolvedOp struct {
	kind OpKind
	id   int
	old  []int32 // row removed (delete, update)
	new  []int32 // row added (insert, update)
}

// ApplyBatch applies the ops in order as one atomic mutation: either every op
// is validated and applied, or none is and the first offending op's error is
// returned. The returned slice holds the assigned id of each insert op, in
// op order. Ops may refer to ids created or deleted earlier in the same
// batch.
//
// A batch amortises what a loop over Insert/Delete/Update pays per call: one
// write-lock acquisition, one snapshot invalidation, one write-ahead-log
// append (and, for a Store opened with Sync, one fsync — the group commit
// that dominates durable ingest throughput), and index maintenance fanned
// out across the engine's rule shards on repro/internal/pool.
func (e *Engine) ApplyBatch(ops []Op) ([]int, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	obs := e.obs()
	var obsStart time.Time
	if obs != nil {
		obsStart = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	resolved, ids, err := e.resolve(ops)
	if err != nil {
		return nil, err
	}
	if e.wal != nil {
		if err := e.wal.Append(ops); err != nil {
			return nil, fmt.Errorf("violation: %w: %w", ErrWAL, err)
		}
	}
	e.apply(resolved)
	e.bumpLocked()
	if obs != nil {
		kind := "batch"
		if len(ops) == 1 {
			kind = string(ops[0].Kind)
		}
		obs.ObserveCommit(kind, len(ops), time.Since(obsStart).Seconds())
	}
	return ids, nil
}

// CheckOps validates a batch against the current state without applying it:
// the error ApplyBatch would return, or nil. Like ApplyBatch it may intern
// new constants into the engine dictionaries, which is harmless (codes no
// tuple carries match nothing).
func (e *Engine) CheckOps(ops []Op) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, _, err := e.resolve(ops)
	return err
}

// resolve validates the ops in order against the current state plus the
// pending effect of the earlier ops of the same batch, and computes each op's
// row-level effect. It mutates nothing but the interning dictionaries.
// Callers must hold the write lock.
func (e *Engine) resolve(ops []Op) ([]resolvedOp, []int, error) {
	resolved := make([]resolvedOp, 0, len(ops))
	var ids []int
	// overlay tracks rows changed by earlier ops of this batch: id -> row,
	// nil = deleted. end is the virtual end of the row table including
	// pending inserts (sequential inserts extend it by one; pinned inserts
	// may jump it forward).
	var overlay map[int][]int32
	end := e.tab.slots()
	rowAt := func(id int) ([]int32, bool) {
		if row, ok := overlay[id]; ok {
			return row, row != nil
		}
		if !e.tab.live(id) {
			return nil, false // pending insert ids are always in overlay
		}
		return e.tab.row(id), true
	}
	setOverlay := func(id int, row []int32) {
		if overlay == nil {
			overlay = make(map[int][]int32)
		}
		overlay[id] = row
	}
	fail := func(i int, err error) ([]resolvedOp, []int, error) {
		if len(ops) > 1 {
			// The inner error already carries the package prefix.
			err = fmt.Errorf("batch op %d: %w", i, err)
		}
		return nil, nil, err
	}
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			row, err := e.encode(op.Values)
			if err != nil {
				return fail(i, err)
			}
			id := end
			if op.At != nil {
				id = *op.At
				if id < 0 {
					return fail(i, fmt.Errorf("violation: insert at negative id %d", id))
				}
				// Index group members pack the id into 32 bits; a pin beyond
				// that space must fail validation, not corrupt packed keys.
				if uint64(id) > math.MaxUint32 {
					return fail(i, fmt.Errorf("violation: insert at id %d outside the 32-bit id space", id))
				}
				// Every id below the pin keeps a row-table slot, so the gap it
				// opens is an allocation the caller commands; bound it here, in
				// validation, so an oversized pin fails the whole batch before
				// the WAL append and is never logged (a logged pin would grow
				// the table again on every replay).
				if gap := id - end; e.maxPinGap >= 0 && gap > e.maxPinGap {
					return fail(i, fmt.Errorf("violation: insert at id %d opens %d unassigned ids past the current end %d, above the %d limit", id, gap, end, e.maxPinGap))
				}
				if _, live := rowAt(id); live {
					return fail(i, fmt.Errorf("violation: insert at id %d: tuple exists", id))
				}
			}
			if id >= end {
				end = id + 1
			}
			setOverlay(id, row)
			resolved = append(resolved, resolvedOp{kind: OpInsert, id: id, new: row})
			ids = append(ids, id)
		case OpDelete:
			old, ok := rowAt(op.ID)
			if !ok {
				return fail(i, fmt.Errorf("violation: tuple %d: %w", op.ID, ErrNotFound))
			}
			setOverlay(op.ID, nil)
			resolved = append(resolved, resolvedOp{kind: OpDelete, id: op.ID, old: old})
		case OpUpdate:
			old, ok := rowAt(op.ID)
			if !ok {
				return fail(i, fmt.Errorf("violation: tuple %d: %w", op.ID, ErrNotFound))
			}
			row, err := e.encode(op.Values)
			if err != nil {
				return fail(i, err)
			}
			setOverlay(op.ID, row)
			resolved = append(resolved, resolvedOp{kind: OpUpdate, id: op.ID, old: old, new: row})
		default:
			return fail(i, fmt.Errorf("violation: unknown op kind %q", op.Kind))
		}
	}
	return resolved, ids, nil
}

// apply commits resolved ops: the row table sequentially (appends must land
// at the pre-assigned ids), then the per-rule indexes — each shard replayed
// on its own pool worker, rules outer and ops inner for index locality. The
// replay must run to completion to keep the state consistent, so it is not
// cancellable. Each index reports the violating-set memberships it flips
// (InsertObserve/DeleteObserve); the per-rule flips, folded so that a tuple
// leaving and re-entering within the batch cancels, become the commit's
// Delta. Callers must hold the write lock.
func (e *Engine) apply(resolved []resolvedOp) {
	for _, r := range resolved {
		switch r.kind {
		case OpInsert:
			if n := r.id + 1 - e.tab.slots(); n > 0 {
				e.tab.grow(n)
			}
			e.tab.set(r.id, r.new)
			e.live++
		case OpDelete:
			e.tab.clear(r.id)
			e.live--
		case OpUpdate:
			e.tab.set(r.id, r.new)
		}
	}
	// Shards own disjoint rule positions, so the per-rule change maps are
	// written race-free even when shards maintain concurrently.
	changes := make([]map[int]int8, len(e.indexes))
	maintain := func(s int) {
		for _, ri := range e.shards[s] {
			ix := e.indexes[ri]
			var m map[int]int8
			observe := func(id int, violating bool) {
				if m == nil {
					m = make(map[int]int8)
				}
				sign := int8(-1)
				if violating {
					sign = 1
				}
				// Memberships alternate, so an opposite pending flip cancels.
				if m[id] == -sign {
					delete(m, id)
				} else {
					m[id] = sign
				}
			}
			for _, r := range resolved {
				switch r.kind {
				case OpInsert:
					ix.InsertObserve(r.id, r.new, observe)
				case OpDelete:
					ix.DeleteObserve(r.id, r.old, observe)
				case OpUpdate:
					ix.DeleteObserve(r.id, r.old, observe)
					ix.InsertObserve(r.id, r.new, observe)
				}
			}
			changes[ri] = m
		}
	}
	// A single op (the Insert/Delete/Update fast path) is not worth a pool
	// dispatch; neither is a single shard.
	if len(resolved) == 1 || len(e.shards) <= 1 {
		for s := range e.shards {
			maintain(s)
		}
	} else {
		// context.Background: batch index maintenance must not stop halfway.
		_ = pool.Each(context.Background(), e.workers, len(e.shards), func(_, s int) { maintain(s) })
	}
	added, removed := e.foldChanges(changes)
	e.recordDelta(added, removed, nil)
}

// foldChanges turns per-rule-position membership flips into the per-distinct-
// rule Added/Removed entries of a Delta, in rule order. Duplicate rules in the
// serving set produce identical flips; one entry per canonical key is kept.
// Callers must hold the write lock.
func (e *Engine) foldChanges(changes []map[int]int8) (added, removed []Violation) {
	var seen map[string]bool
	for i, m := range changes {
		if len(m) == 0 {
			continue
		}
		k := ruleKey(e.rules[i])
		if seen[k] {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		seen[k] = true
		var add, rem []int
		for id, sign := range m {
			if sign > 0 {
				add = append(add, id)
			} else {
				rem = append(rem, id)
			}
		}
		sort.Ints(add)
		sort.Ints(rem)
		if len(add) > 0 {
			added = append(added, Violation{Rule: e.rules[i], Tuples: add})
		}
		if len(rem) > 0 {
			removed = append(removed, Violation{Rule: e.rules[i], Tuples: rem})
		}
	}
	return added, removed
}
