//go:build unix

package violation

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockName is the advisory lock file guarding a state directory. It holds no
// data; the flock on its open descriptor is the lock, so it is released the
// moment the owning process exits — however it exits — and a stale file left
// behind never blocks a fresh open.
const lockName = "LOCK"

// lockDir takes an exclusive, non-blocking flock on <dir>/LOCK and returns
// the release func. A directory already held by a live Store — this process
// or another — fails immediately with a clear error instead of corrupting
// the WAL with interleaved appends.
func lockDir(dir string) (func() error, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("violation: opening store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("violation: state directory %s is already in use by a live process (flock %s: %w)", dir, lockName, err)
	}
	// Closing the descriptor releases the flock.
	return f.Close, nil
}
