package violation

import "repro/cfd"

// RuleStat is the live discovery statistics of one served rule, derived in
// O(1) from the counters the rule's core.RuleIndex already maintains — no
// rescan of the relation is ever needed.
//
// Support is the number of live tuples matching the rule's LHS pattern
// constants (the tuples the rule applies to), Groups the number of distinct
// LHS-value equivalence classes among them, and Violating the number of
// supporting tuples currently involved in a violation. Confidence is the
// fraction of supporting tuples that are violation-free,
// (Support-Violating)/Support; a rule with no supporting tuples is vacuously
// satisfied, so its Confidence is 1.
//
// These are the quantities the paper's miners threshold on at discovery time
// (support §2.2, confidence via the dirty-data variants); serving them live
// is what lets the maintenance layer detect drift without re-mining.
type RuleStat struct {
	Rule       cfd.CFD
	Support    int
	Groups     int
	Violating  int
	Confidence float64
}

// RuleStats returns one RuleStat per served rule, in set order, computed
// under a read lock in O(rules) total. The snapshot is consistent: all
// entries observe the same epoch.
func (e *Engine) RuleStats() []RuleStat {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]RuleStat, len(e.rules))
	for i, r := range e.rules {
		ix := e.indexes[i]
		s := RuleStat{
			Rule:      r,
			Support:   ix.Tuples(),
			Groups:    ix.Groups(),
			Violating: ix.BadTuples(),
		}
		if s.Support > 0 {
			s.Confidence = float64(s.Support-s.Violating) / float64(s.Support)
		} else {
			s.Confidence = 1
		}
		out[i] = s
	}
	return out
}
