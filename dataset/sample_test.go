package dataset_test

import (
	"testing"

	"repro/dataset"
	"repro/discovery"
)

func TestSample(t *testing.T) {
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 2000, Arity: 7, CF: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := dataset.Sample(rel, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Arity() != rel.Arity() {
		t.Fatalf("sample arity %d", sample.Arity())
	}
	if sample.Size() < rel.Size()/8 || sample.Size() > rel.Size()/2 {
		t.Errorf("sample size %d is far from 25%% of %d", sample.Size(), rel.Size())
	}
	// Determinism.
	again, err := dataset.Sample(rel, 0.25, 1)
	if err != nil || again.Size() != sample.Size() {
		t.Errorf("sampling is not deterministic: %d vs %d (%v)", again.Size(), sample.Size(), err)
	}
	// Invalid fractions.
	if _, err := dataset.Sample(rel, 0, 1); err == nil {
		t.Error("fraction 0 must be rejected")
	}
	if _, err := dataset.Sample(rel, 1.5, 1); err == nil {
		t.Error("fraction > 1 must be rejected")
	}
	// A tiny fraction still returns at least one tuple.
	tiny, err := dataset.Sample(rel.Head(3), 0.0001, 1)
	if err != nil || tiny.Size() < 1 {
		t.Errorf("tiny sample should keep at least one tuple: %d, %v", tiny.Size(), err)
	}
}

func TestStratifiedSample(t *testing.T) {
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 2000, Arity: 7, CF: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := dataset.StratifiedSample(rel, "CC", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every stratum of CC must be represented.
	countValues := func(relation interface {
		Size() int
		Row(int) []string
	}, col int) map[string]int {
		m := map[string]int{}
		for i := 0; i < relation.Size(); i++ {
			m[relation.Row(i)[col]]++
		}
		return m
	}
	ccIdx := 0
	full := countValues(rel, ccIdx)
	got := countValues(sample, ccIdx)
	for v := range full {
		if got[v] == 0 {
			t.Errorf("stratum CC=%s lost from the sample", v)
		}
	}
	// Proportions roughly preserved (each stratum contributes ~20%).
	for v, n := range full {
		share := float64(got[v]) / float64(n)
		if share < 0.1 || share > 0.4 {
			t.Errorf("stratum CC=%s kept %.0f%% of its tuples, want ≈20%%", v, 100*share)
		}
	}
	if _, err := dataset.StratifiedSample(rel, "NOPE", 0.2, 1); err == nil {
		t.Error("unknown attribute must be rejected")
	}
	if _, err := dataset.StratifiedSample(rel, "CC", 0, 1); err == nil {
		t.Error("fraction 0 must be rejected")
	}
}

// TestSampleDiscoveryRecall follows §8 of the paper: rules discovered on a
// sample should mostly hold on the full relation, because the generator's
// embedded dependencies are exact.
func TestSampleDiscoveryRecall(t *testing.T) {
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 3000, Arity: 7, CF: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := dataset.StratifiedSample(rel, "CC", 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discovery.FastCFD(sample, discovery.Options{Support: 20, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CFDs) == 0 {
		t.Fatal("no rules discovered on the sample")
	}
	// The generator's exact dependency AC -> CT must be rediscovered on the
	// sample and, being exact, must hold on the full relation; beyond that, a
	// non-trivial share of the sampled rules should transfer (many pattern-
	// specific rules legitimately do not, which is the caveat §8 discusses).
	foundACCT := false
	holding := 0
	for _, c := range res.CFDs {
		if c.IsFD() && len(c.LHS) == 1 && c.LHS[0] == "AC" && c.RHS == "CT" {
			foundACCT = true
		}
		ok, err := rel.Satisfies(c)
		if err == nil && ok {
			holding++
		}
	}
	if !foundACCT {
		t.Error("the embedded FD AC -> CT was not rediscovered on the sample")
	}
	if holding == 0 {
		t.Error("no sampled rule holds on the full relation")
	}
	t.Logf("%d of %d sampled rules hold on the full relation", holding, len(res.CFDs))
}
