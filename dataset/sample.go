package dataset

import (
	"fmt"
	"math/rand"

	"repro/cfd"
)

// Sample returns a uniform random sample of the relation containing roughly
// fraction·|r| tuples (at least one when the relation is non-empty and the
// fraction is positive). Sampling is without replacement and preserves the
// original tuple order. The paper's §8 discusses sampling as the way to scale
// discovery to relations that are both wide and large; rules discovered on a
// sample can then be validated on the full relation with cfd.Relation.Satisfies.
func Sample(rel *cfd.Relation, fraction float64, seed int64) (*cfd.Relation, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: Sample: fraction must be in (0, 1], got %g", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	out := cfd.MustRelation(rel.Attributes()...)
	picked := 0
	for i := 0; i < rel.Size(); i++ {
		if rng.Float64() < fraction {
			if err := out.Append(rel.Row(i)...); err != nil {
				return nil, err
			}
			picked++
		}
	}
	if picked == 0 && rel.Size() > 0 {
		if err := out.Append(rel.Row(rng.Intn(rel.Size()))...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// StratifiedSample returns a random sample that preserves, per distinct value
// of the given attribute, the value's share of the relation (each stratum
// contributes ceil(fraction·|stratum|) tuples). This is the stratified
// sampling the paper's §8 proposes for keeping rare-but-meaningful patterns in
// the sample.
func StratifiedSample(rel *cfd.Relation, attribute string, fraction float64, seed int64) (*cfd.Relation, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("dataset: StratifiedSample: fraction must be in (0, 1], got %g", fraction)
	}
	attrIdx := -1
	for i, a := range rel.Attributes() {
		if a == attribute {
			attrIdx = i
		}
	}
	if attrIdx < 0 {
		return nil, fmt.Errorf("dataset: StratifiedSample: unknown attribute %q", attribute)
	}
	// Group tuple indexes by stratum.
	strata := make(map[string][]int)
	for i := 0; i < rel.Size(); i++ {
		v := rel.Row(i)[attrIdx]
		strata[v] = append(strata[v], i)
	}
	rng := rand.New(rand.NewSource(seed))
	keep := make(map[int]bool)
	for _, tuples := range strata {
		want := int(float64(len(tuples))*fraction + 0.999999)
		if want > len(tuples) {
			want = len(tuples)
		}
		perm := rng.Perm(len(tuples))
		for _, p := range perm[:want] {
			keep[tuples[p]] = true
		}
	}
	out := cfd.MustRelation(rel.Attributes()...)
	for i := 0; i < rel.Size(); i++ {
		if keep[i] {
			if err := out.Append(rel.Row(i)...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
