package dataset

import (
	"math/rand"
	"sort"

	"repro/cfd"
)

// InjectNoise returns a copy of the relation in which, with probability rate,
// each tuple has one attribute value replaced by a different value drawn from
// that attribute's active domain, together with the sorted indexes of the
// perturbed tuples. It is used by the data-cleaning example: rules discovered
// on the clean relation are applied to the noisy copy to localise errors.
func InjectNoise(rel *cfd.Relation, rate float64, seed int64) (*cfd.Relation, []int) {
	attrs := rel.Attributes()
	out := cfd.MustRelation(attrs...)
	rng := rand.New(rand.NewSource(seed))

	// Collect the active domain of every attribute up front.
	domains := make([][]string, len(attrs))
	for i := 0; i < rel.Size(); i++ {
		row := rel.Row(i)
		for a, v := range row {
			domains[a] = append(domains[a], v)
		}
	}
	for a := range domains {
		seen := make(map[string]bool)
		uniq := domains[a][:0]
		for _, v := range domains[a] {
			if !seen[v] {
				seen[v] = true
				uniq = append(uniq, v)
			}
		}
		sort.Strings(uniq)
		domains[a] = uniq
	}

	var dirty []int
	for i := 0; i < rel.Size(); i++ {
		row := append([]string(nil), rel.Row(i)...)
		if rng.Float64() < rate {
			a := rng.Intn(len(attrs))
			if len(domains[a]) > 1 {
				cur := row[a]
				for {
					cand := domains[a][rng.Intn(len(domains[a]))]
					if cand != cur {
						row[a] = cand
						break
					}
				}
				dirty = append(dirty, i)
			}
		}
		if err := out.Append(row...); err != nil {
			panic(err)
		}
	}
	return out, dirty
}
