package dataset

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/cfd"
)

// WBCSize is the number of tuples of the UCI Wisconsin breast cancer data set
// the paper evaluates on (699 tuples over 11 attributes).
const WBCSize = 699

// ChessSize is the number of tuples of the UCI Chess (king-rook vs king) data
// set the paper evaluates on (28 056 tuples over 7 attributes).
const ChessSize = 28056

// wbcAttrs mirrors the schema of the UCI Wisconsin breast cancer data set.
var wbcAttrs = []string{
	"ID", "ClumpThickness", "CellSizeUniformity", "CellShapeUniformity",
	"MarginalAdhesion", "EpithelialCellSize", "BareNuclei", "BlandChromatin",
	"NormalNucleoli", "Mitoses", "Class",
}

// WisconsinLike synthesises a relation with the shape of the UCI Wisconsin
// breast cancer data set: the same arity (11), the same per-attribute domain
// sizes (cytology features graded 1–10, a binary class, a high-cardinality
// sample identifier) and correlated features so that conditional dependencies
// exist. The real data set cannot be redistributed with this repository, and
// this module builds offline; the synthesiser preserves the properties that
// drive the paper's Fig. 11/14 experiments (arity, tuple count, domain sizes
// and frequent-pattern density). Pass size <= 0 for the original 699 tuples.
func WisconsinLike(size int, seed int64) *cfd.Relation {
	if size <= 0 {
		size = WBCSize
	}
	rel := cfd.MustRelation(wbcAttrs...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < size; i++ {
		// Bimodal severity: roughly 65% benign cases with low feature grades.
		var severity float64
		benign := rng.Float64() < 0.65
		if benign {
			severity = 0.12 * rng.Float64()
		} else {
			severity = 0.45 + 0.5*rng.Float64()
		}
		grade := func(noise float64) int {
			g := 1 + int(severity*9+noise*rng.Float64()*3)
			if g < 1 {
				g = 1
			}
			if g > 10 {
				g = 10
			}
			return g
		}
		clump := grade(1)
		sizeU := grade(1)
		shapeU := sizeU // CellShapeUniformity tracks CellSizeUniformity exactly: an embedded FD.
		adhesion := grade(1)
		epith := grade(1)
		nuclei := grade(1.5)
		chromatin := grade(1)
		nucleoli := grade(1.5)
		mitoses := 1
		if severity > 0.5 && rng.Float64() < 0.4 {
			mitoses = grade(2)
		}
		// The class is a deterministic function of two features, giving the
		// data set the conditional rules the miners should find.
		class := 2 // benign
		if nuclei >= 5 || (clump >= 7 && sizeU >= 4) {
			class = 4 // malignant
		}
		row := []string{
			strconv.Itoa(1000000 + i),
			strconv.Itoa(clump), strconv.Itoa(sizeU), strconv.Itoa(shapeU),
			strconv.Itoa(adhesion), strconv.Itoa(epith), strconv.Itoa(nuclei),
			strconv.Itoa(chromatin), strconv.Itoa(nucleoli), strconv.Itoa(mitoses),
			strconv.Itoa(class),
		}
		if err := rel.Append(row...); err != nil {
			panic(err)
		}
	}
	return rel
}

// chessAttrs mirrors the schema of the UCI Chess (KRK) endgame data set.
var chessAttrs = []string{"WKf", "WKr", "WRf", "WRr", "BKf", "BKr", "Depth"}

// ChessLike synthesises a relation with the shape of the UCI Chess
// (king-rook versus king) endgame data set: 6 position attributes with domain
// size 8 and a depth-to-win class with 18 values that is a deterministic
// function of the position, so the embedded FD and its conditional refinements
// are discoverable. Pass size <= 0 for the original 28 056 tuples.
func ChessLike(size int, seed int64) *cfd.Relation {
	if size <= 0 {
		size = ChessSize
	}
	rel := cfd.MustRelation(chessAttrs...)
	rng := rand.New(rand.NewSource(seed))
	files := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < size; i++ {
		wkf, wkr := rng.Intn(8), rng.Intn(8)
		wrf, wrr := rng.Intn(8), rng.Intn(8)
		bkf, bkr := rng.Intn(8), rng.Intn(8)
		row := []string{
			files[wkf], strconv.Itoa(wkr + 1),
			files[wrf], strconv.Itoa(wrr + 1),
			files[bkf], strconv.Itoa(bkr + 1),
			chessDepth(wkf, wkr, wrf, wrr, bkf, bkr),
		}
		if err := rel.Append(row...); err != nil {
			panic(err)
		}
	}
	return rel
}

// chessDepth is a deterministic depth-to-win classifier of a KRK position: a
// stand-in for the true optimal-play depth with the same range ("draw" plus
// 0–16 moves) and a similar dependence on king distance and rook placement.
func chessDepth(wkf, wkr, wrf, wrr, bkf, bkr int) string {
	// Positions where the black king attacks the rook while the white king is
	// far away are labelled draws, as a crude stand-in for stalemate/capture.
	if absInt(bkf-wrf) <= 1 && absInt(bkr-wrr) <= 1 && absInt(bkf-wkf)+absInt(bkr-wkr) > 3 {
		return "draw"
	}
	kingDist := absInt(wkf-bkf) + absInt(wkr-bkr)
	edgeDist := minInt(minInt(bkf, 7-bkf), minInt(bkr, 7-bkr))
	rookCut := 0
	if wrf == bkf || wrr == bkr {
		rookCut = 2
	}
	depth := kingDist + 2*edgeDist + rookCut
	if depth > 16 {
		depth = 16
	}
	return fmt.Sprintf("d%d", depth)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
