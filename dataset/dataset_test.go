package dataset_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func TestCSVRoundTrip(t *testing.T) {
	rel := dataset.Cust()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != rel.Size() || back.Arity() != rel.Arity() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.Size(), back.Arity(), rel.Size(), rel.Arity())
	}
	for i := 0; i < rel.Size(); i++ {
		a, b := rel.Row(i), back.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d: %q vs %q", i, j, a[j], b[j])
			}
		}
	}
}

func TestCSVFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cust.csv")
	if err := dataset.SaveCSVFile(path, dataset.Cust()); err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Size() != 8 {
		t.Errorf("loaded %d tuples", rel.Size())
	}
	if _, err := dataset.LoadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file must error")
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	rel, err := dataset.ReadCSV(strings.NewReader("1,x\n2,y\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 || rel.Attributes()[0] != "A1" {
		t.Errorf("auto-named attributes wrong: %v", rel.Attributes())
	}
	if _, err := dataset.ReadCSV(strings.NewReader(""), true); err == nil {
		t.Error("empty input must error")
	}
	if _, err := dataset.ReadCSV(strings.NewReader("A,B\n1\n"), true); err == nil {
		t.Error("ragged rows must error")
	}
}

// TestReadCSVLarge drives the streaming reader through a relation far larger
// than any fixture (100k rows) and spot-checks shape and content; a
// regression to slurping the whole file as [][]string would roughly double
// this test's peak memory.
func TestReadCSVLarge(t *testing.T) {
	const rows = 100_000
	var buf bytes.Buffer
	buf.WriteString("ID,GRP,VAL\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "%d,g%d,v%d\n", i, i%97, i%13)
	}
	rel, err := dataset.ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Size() != rows || rel.Arity() != 3 {
		t.Fatalf("shape = %d x %d, want %d x 3", rel.Size(), rel.Arity(), rows)
	}
	for _, i := range []int{0, 1, 50_000, rows - 1} {
		want := []string{fmt.Sprint(i), fmt.Sprintf("g%d", i%97), fmt.Sprintf("v%d", i%13)}
		got := rel.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d = %v, want %v", i, got, want)
			}
		}
	}
	// A ragged row deep in the stream reports its 1-based data-row number.
	var bad bytes.Buffer
	bad.WriteString("A,B\n")
	for i := 0; i < 1000; i++ {
		bad.WriteString("1,2\n")
	}
	bad.WriteString("only-one-field\n")
	if _, err := dataset.ReadCSV(&bad, true); err == nil || !strings.Contains(err.Error(), "row 1001") {
		t.Fatalf("ragged row error = %v, want it to name row 1001", err)
	}
}

func TestCustMatchesPaperFigure(t *testing.T) {
	rel := dataset.Cust()
	if rel.Size() != 8 || rel.Arity() != 7 {
		t.Fatalf("cust shape %dx%d", rel.Size(), rel.Arity())
	}
	ok, err := rel.Satisfies(cfd.NewFD([]string{"CC", "AC"}, "CT"))
	if err != nil || !ok {
		t.Error("f1 must hold on the packaged cust relation")
	}
	phi0 := cfd.CFD{LHS: []string{"CC", "ZIP"}, RHS: "STR", LHSPattern: []string{"44", "_"}, RHSPattern: "_"}
	ok, err = rel.Satisfies(phi0)
	if err != nil || !ok {
		t.Error("phi0 must hold on the packaged cust relation")
	}
}

func TestTaxGenerator(t *testing.T) {
	cfg := dataset.TaxConfig{Size: 500, Arity: 9, CF: 0.7, Seed: 42}
	rel, err := dataset.Tax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Size() != 500 || rel.Arity() != 9 {
		t.Fatalf("shape %dx%d", rel.Size(), rel.Arity())
	}
	// Determinism.
	again, err := dataset.Tax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rel.Size(); i += 97 {
		a, b := rel.Row(i), again.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("generator is not deterministic at row %d", i)
			}
		}
	}
	// Embedded dependencies: AC -> CT and ST(=f(CT)) hold by construction.
	ok, err := rel.Satisfies(cfd.NewFD([]string{"AC"}, "CT"))
	if err != nil || !ok {
		t.Error("AC -> CT must hold on generated tax data")
	}
	ok, err = rel.Satisfies(cfd.NewFD([]string{"CT"}, "ST"))
	if err != nil || !ok {
		t.Error("CT -> ST must hold on generated tax data")
	}
	// The conditional street dependency holds for UK tuples but not globally.
	phiUK := cfd.CFD{LHS: []string{"CC", "ZIP"}, RHS: "STR", LHSPattern: []string{"44", "_"}, RHSPattern: "_"}
	ok, err = rel.Satisfies(phiUK)
	if err != nil || !ok {
		t.Error("([CC,ZIP] -> STR, (44,_||_)) must hold on generated tax data")
	}
	global := cfd.NewFD([]string{"ZIP"}, "STR")
	ok, err = rel.Satisfies(global)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ZIP -> STR should not hold globally (the dependency is conditional)")
	}
}

func TestTaxGeneratorArityAndCF(t *testing.T) {
	// Higher arity adds extension attributes with embedded pair dependencies.
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 300, Arity: 15, CF: 0.7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	attrs := rel.Attributes()
	if len(attrs) != 15 || attrs[11] != "EXT01" {
		t.Fatalf("extension attributes wrong: %v", attrs)
	}
	ok, err := rel.Satisfies(cfd.NewFD([]string{"EXT01"}, "EXT02"))
	if err != nil || !ok {
		t.Error("EXT01 -> EXT02 must hold by construction")
	}
	// Lower CF means smaller active domains.
	low, err := dataset.Tax(dataset.TaxConfig{Size: 2000, Arity: 9, CF: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	high, err := dataset.Tax(dataset.TaxConfig{Size: 2000, Arity: 9, CF: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dLow, _ := low.DomainSize("PN")
	dHigh, _ := high.DomainSize("PN")
	if dLow >= dHigh {
		t.Errorf("CF should scale domain sizes: CF=0.3 gives %d distinct PN, CF=0.9 gives %d", dLow, dHigh)
	}
	// Invalid configurations.
	if _, err := dataset.Tax(dataset.TaxConfig{Size: 0}); err == nil {
		t.Error("Size 0 must be rejected")
	}
	if _, err := dataset.Tax(dataset.TaxConfig{Size: 10, Arity: 3}); err == nil {
		t.Error("Arity below 7 must be rejected")
	}
	if _, err := dataset.Tax(dataset.TaxConfig{Size: 10, Arity: 7, CF: 1.5}); err == nil {
		t.Error("CF above 1 must be rejected")
	}
}

func TestWisconsinLike(t *testing.T) {
	rel := dataset.WisconsinLike(0, 1)
	if rel.Size() != dataset.WBCSize || rel.Arity() != 11 {
		t.Fatalf("shape %dx%d, want %dx11", rel.Size(), rel.Arity(), dataset.WBCSize)
	}
	// Feature domains stay within the 1..10 grading of the real data set.
	for _, a := range []string{"ClumpThickness", "BareNuclei", "Mitoses"} {
		d, err := rel.DomainSize(a)
		if err != nil || d > 10 {
			t.Errorf("%s domain size %d (err %v)", a, d, err)
		}
	}
	if d, _ := rel.DomainSize("Class"); d != 2 {
		t.Errorf("Class domain size %d, want 2", d)
	}
	// The embedded exact dependency is discoverable.
	ok, err := rel.Satisfies(cfd.NewFD([]string{"CellSizeUniformity"}, "CellShapeUniformity"))
	if err != nil || !ok {
		t.Error("CellSizeUniformity -> CellShapeUniformity must hold by construction")
	}
	small := dataset.WisconsinLike(100, 1)
	if small.Size() != 100 {
		t.Errorf("custom size ignored: %d", small.Size())
	}
}

func TestChessLike(t *testing.T) {
	rel := dataset.ChessLike(2000, 3)
	if rel.Size() != 2000 || rel.Arity() != 7 {
		t.Fatalf("shape %dx%d", rel.Size(), rel.Arity())
	}
	for _, a := range []string{"WKf", "WKr", "BKf", "BKr"} {
		d, err := rel.DomainSize(a)
		if err != nil || d > 8 {
			t.Errorf("%s domain size %d (err %v)", a, d, err)
		}
	}
	d, _ := rel.DomainSize("Depth")
	if d < 2 || d > 18 {
		t.Errorf("Depth domain size %d, want 2..18", d)
	}
	// The class is a function of the position.
	ok, err := rel.Satisfies(cfd.NewFD([]string{"WKf", "WKr", "WRf", "WRr", "BKf", "BKr"}, "Depth"))
	if err != nil || !ok {
		t.Error("position -> Depth must hold by construction")
	}
	if full := dataset.ChessLike(0, 3); full.Size() != dataset.ChessSize {
		t.Errorf("default size %d, want %d", full.Size(), dataset.ChessSize)
	}
}

func TestInjectNoise(t *testing.T) {
	clean, err := dataset.Tax(dataset.TaxConfig{Size: 300, Arity: 7, CF: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dirty, perturbed := dataset.InjectNoise(clean, 0.1, 99)
	if dirty.Size() != clean.Size() {
		t.Fatalf("noise changed the size: %d vs %d", dirty.Size(), clean.Size())
	}
	if len(perturbed) == 0 || len(perturbed) > clean.Size()/4 {
		t.Errorf("unexpected number of perturbed tuples: %d", len(perturbed))
	}
	changed := 0
	for i := 0; i < clean.Size(); i++ {
		a, b := clean.Row(i), dirty.Row(i)
		diff := 0
		for j := range a {
			if a[j] != b[j] {
				diff++
			}
		}
		if diff > 1 {
			t.Errorf("tuple %d changed in %d attributes, want at most 1", i, diff)
		}
		if diff == 1 {
			changed++
		}
	}
	if changed != len(perturbed) {
		t.Errorf("reported %d perturbed tuples, observed %d changed rows", len(perturbed), changed)
	}
	// Zero rate leaves the data untouched.
	same, none := dataset.InjectNoise(clean, 0, 1)
	if len(none) != 0 {
		t.Errorf("rate 0 perturbed %d tuples", len(none))
	}
	for i := 0; i < clean.Size(); i += 53 {
		a, b := clean.Row(i), same.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("rate 0 modified the data")
			}
		}
	}
}

// TestDiscoveryOnWisconsinLike is an integration smoke test: the WBC-shaped
// data yields conditional rules for both general algorithms.
func TestDiscoveryOnWisconsinLike(t *testing.T) {
	rel := dataset.WisconsinLike(200, 2)
	res, err := discovery.FastCFD(rel, discovery.Options{Support: 20, MaxLHS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CFDs) == 0 {
		t.Error("expected CFDs on WBC-shaped data")
	}
}
