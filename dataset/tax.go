package dataset

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/cfd"
)

// TaxConfig parameterises the synthetic Tax generator used by the scalability
// experiments of §6: the number of tuples (DBSIZE), the number of attributes
// (ARITY, 7–64) and the correlation factor CF, which scales the active-domain
// sizes of the attributes — smaller CF means fewer distinct values, more
// frequent patterns, and therefore more work for the levelwise algorithm, as
// in Fig. 10 of the paper.
type TaxConfig struct {
	// Size is DBSIZE, the number of tuples. Must be positive.
	Size int
	// Arity is the number of attributes, between 7 and 64. The first attributes
	// follow the cust schema of Fig. 1 extended with tax fields; beyond those,
	// extension attributes EXTnn are added in correlated pairs so that higher
	// arities still contain discoverable dependencies.
	Arity int
	// CF is the correlation factor in (0, 1]; 0 defaults to 0.7 as in the paper.
	CF float64
	// Seed makes generation deterministic; the same config always yields the
	// same relation.
	Seed int64
}

// taxBaseAttrs is the fixed prefix of the Tax schema.
var taxBaseAttrs = []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP", "ST", "SAL", "TAX", "MAR"}

// Tax generates a synthetic tax-record relation with the embedded
// dependencies of the paper's running example: AC determines CT, ZIP
// determines CT and ST, ST determines TAX, the street attribute depends on
// ZIP conditionally on the country code, and extension attributes come in
// (independent, dependent) pairs.
func Tax(cfg TaxConfig) (*cfd.Relation, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("dataset: Tax: Size must be positive, got %d", cfg.Size)
	}
	if cfg.Arity == 0 {
		cfg.Arity = 7
	}
	if cfg.Arity < 7 || cfg.Arity > 64 {
		return nil, fmt.Errorf("dataset: Tax: Arity must be between 7 and 64, got %d", cfg.Arity)
	}
	cf := cfg.CF
	if cf <= 0 {
		cf = 0.7
	}
	if cf > 1 {
		return nil, fmt.Errorf("dataset: Tax: CF must be in (0, 1], got %g", cf)
	}

	attrs := make([]string, 0, cfg.Arity)
	for i := 0; i < cfg.Arity && i < len(taxBaseAttrs); i++ {
		attrs = append(attrs, taxBaseAttrs[i])
	}
	for i := len(attrs); i < cfg.Arity; i++ {
		attrs = append(attrs, fmt.Sprintf("EXT%02d", i-len(taxBaseAttrs)+1))
	}
	rel, err := cfd.NewRelation(attrs...)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := taxDomains(cfg.Size, cf)

	row := make([]string, cfg.Arity)
	for t := 0; t < cfg.Size; t++ {
		full := g.tuple(rng, cfg.Arity, len(taxBaseAttrs))
		copy(row, full[:cfg.Arity])
		if err := rel.Append(row...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// taxGen holds the derived domain sizes of one generator instance.
type taxGen struct {
	nAC, nCT, nZIP, nPN, nNM, nSAL, nST int
	zipPerCity                          int
	extDomains                          []int
}

// taxDomains derives per-attribute domain sizes from DBSIZE and CF. The
// high-cardinality attributes (PN, NM, ZIP) scale with CF·DBSIZE as described
// in §6.1; the categorical attributes scale with CF alone.
func taxDomains(size int, cf float64) *taxGen {
	g := &taxGen{
		nAC:  maxInt(3, int(cf*60)),
		nPN:  maxInt(10, int(cf*float64(size))),
		nNM:  maxInt(8, int(cf*float64(size)/2)),
		nZIP: maxInt(6, int(cf*float64(size)/4)),
		nSAL: maxInt(10, int(cf*400)),
	}
	g.nCT = maxInt(2, g.nAC/2)
	g.nST = maxInt(2, g.nCT/3)
	g.zipPerCity = maxInt(1, g.nZIP/g.nCT)
	// Extension attributes cycle through a few characteristic domain sizes, all
	// scaled by CF. They are deliberately medium-to-high cardinality so that
	// widening the schema grows the search space without flooding the output
	// with constant patterns.
	for _, base := range []int{30, 120, 500, 2000} {
		g.extDomains = append(g.extDomains, maxInt(4, int(cf*float64(base))))
	}
	return g
}

// tuple draws one full-width tuple (base attributes plus as many extension
// attributes as needed).
func (g *taxGen) tuple(rng *rand.Rand, arity, baseLen int) []string {
	// Country code: 70% US (01), 30% UK (44).
	cc := "01"
	if rng.Float64() < 0.3 {
		cc = "44"
	}
	ac := skewed(rng, g.nAC)
	ct := ac % g.nCT // AC -> CT
	zip := ct*g.zipPerCity + skewed(rng, g.zipPerCity)
	st := ct % g.nST // CT -> ST
	pn := skewed(rng, g.nPN)
	nm := skewed(rng, g.nNM)
	// Street: a function of ZIP for UK customers (the phi0 pattern of the
	// paper); for US customers it occasionally deviates, so [ZIP] -> STR holds
	// only conditionally on CC = 44.
	str := zip * 2
	if cc == "01" && rng.Float64() < 0.4 {
		str = zip*2 + 1 + rng.Intn(3)
	}
	sal := skewed(rng, g.nSAL)
	tax := (st*7 + 3) % 10 // ST -> TAX
	mar := rng.Intn(2)

	out := make([]string, 0, arity)
	out = append(out,
		cc,
		"A"+strconv.Itoa(ac),
		"P"+strconv.Itoa(pn),
		"N"+strconv.Itoa(nm),
		"S"+strconv.Itoa(str),
		"C"+strconv.Itoa(ct),
		"Z"+strconv.Itoa(zip),
		"ST"+strconv.Itoa(st),
		strconv.Itoa(sal),
		"T"+strconv.Itoa(tax),
		strconv.Itoa(mar),
	)
	// Extension attributes come in pairs: an independent driver followed by an
	// attribute functionally determined by it, so every added pair contributes
	// discoverable dependencies at higher arities.
	driver := 0
	for i := baseLen; i < arity; i++ {
		k := i - baseLen
		dom := g.extDomains[(k/2)%len(g.extDomains)]
		if k%2 == 0 {
			driver = skewed(rng, dom)
			out = append(out, "E"+strconv.Itoa(driver))
		} else {
			out = append(out, "F"+strconv.Itoa((driver*7+1)%dom))
		}
	}
	return out
}

// skewed draws an integer in [0, n) with a quadratic skew towards small
// values, so that even high-cardinality attributes have a few frequent values.
func skewed(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	v := int(float64(n) * u * u)
	if v >= n {
		v = n - 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
