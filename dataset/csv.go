// Package dataset provides the data substrate of the reproduction: CSV
// loading and saving, the synthetic Tax generator parameterised by ARITY,
// DBSIZE and the correlation factor CF (§6.1 of the paper), synthetic
// stand-ins for the UCI Wisconsin breast cancer and Chess data sets used in
// the paper's real-data experiments, and noise injection for the data-cleaning
// examples.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/cfd"
)

// ReadCSV reads a relation from CSV. When header is true the first record
// provides the attribute names; otherwise attributes are named A1, A2, ...
func ReadCSV(r io.Reader, header bool) (*cfd.Relation, error) {
	reader := csv.NewReader(r)
	reader.FieldsPerRecord = -1
	records, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv input")
	}
	var names []string
	var rows [][]string
	if header {
		names = records[0]
		rows = records[1:]
	} else {
		names = make([]string, len(records[0]))
		for i := range names {
			names[i] = fmt.Sprintf("A%d", i+1)
		}
		rows = records
	}
	rel, err := cfd.NewRelation(names...)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) != len(names) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(row), len(names))
		}
		if err := rel.Append(row...); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", i+1, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *cfd.Relation) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(rel.Attributes()); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	for i := 0; i < rel.Size(); i++ {
		if err := writer.Write(rel.Row(i)); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	writer.Flush()
	return writer.Error()
}

// LoadCSVFile reads a relation from a CSV file with a header row.
func LoadCSVFile(path string) (*cfd.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, true)
}

// SaveCSVFile writes a relation to a CSV file with a header row.
func SaveCSVFile(path string, rel *cfd.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Cust returns the 8-tuple cust relation of Fig. 1 of the paper, which the
// quickstart example and several tests use.
func Cust() *cfd.Relation {
	rel := cfd.MustRelation("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	rows := [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"},
		{"01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"},
		{"01", "908", "4444444", "Jim", "Elm Str.", "MH", "07974"},
		{"44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"},
		{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"},
		{"44", "908", "4444444", "Ian", "Port PI", "MH", "01202"},
		{"01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"},
	}
	for _, row := range rows {
		if err := rel.Append(row...); err != nil {
			panic(err)
		}
	}
	return rel
}
