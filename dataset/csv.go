// Package dataset provides the data substrate of the reproduction: CSV
// loading and saving, the synthetic Tax generator parameterised by ARITY,
// DBSIZE and the correlation factor CF (§6.1 of the paper), synthetic
// stand-ins for the UCI Wisconsin breast cancer and Chess data sets used in
// the paper's real-data experiments, and noise injection for the data-cleaning
// examples.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/cfd"
)

// ReadCSV reads a relation from CSV. When header is true the first record
// provides the attribute names; otherwise attributes are named A1, A2, ...
//
// Records are streamed one at a time into the relation's dictionary-encoded
// representation, so peak memory is the encoded relation plus one record —
// not, as a ReadAll would cost, a second full copy of the file as strings.
func ReadCSV(r io.Reader, header bool) (*cfd.Relation, error) {
	reader := csv.NewReader(r)
	reader.FieldsPerRecord = -1
	reader.ReuseRecord = true
	first, err := reader.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataset: empty csv input")
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	var names []string
	var rel *cfd.Relation
	if header {
		names = append(names, first...)
	} else {
		names = make([]string, len(first))
		for i := range names {
			names[i] = fmt.Sprintf("A%d", i+1)
		}
	}
	rel, err = cfd.NewRelation(names...)
	if err != nil {
		return nil, err
	}
	if !header {
		if err := rel.Append(first...); err != nil {
			return nil, fmt.Errorf("dataset: row 1: %w", err)
		}
	}
	// Data rows are 1-based in error messages, matching the pre-streaming
	// reader; with a header, record 1 is the first row after it.
	row := 0
	if !header {
		row = 1
	}
	for {
		record, err := reader.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		row++
		if len(record) != len(names) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", row, len(record), len(names))
		}
		if err := rel.Append(record...); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", row, err)
		}
	}
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *cfd.Relation) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(rel.Attributes()); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	for i := 0; i < rel.Size(); i++ {
		if err := writer.Write(rel.Row(i)); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	writer.Flush()
	return writer.Error()
}

// LoadCSVFile reads a relation from a CSV file with a header row.
func LoadCSVFile(path string) (*cfd.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, true)
}

// SaveCSVFile writes a relation to a CSV file with a header row.
func SaveCSVFile(path string, rel *cfd.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Cust returns the 8-tuple cust relation of Fig. 1 of the paper, which the
// quickstart example and several tests use.
func Cust() *cfd.Relation {
	rel := cfd.MustRelation("CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	rows := [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"},
		{"01", "212", "2222222", "Joe", "5th Ave", "NYC", "01202"},
		{"01", "908", "4444444", "Jim", "Elm Str.", "MH", "07974"},
		{"44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"},
		{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"},
		{"44", "908", "4444444", "Ian", "Port PI", "MH", "01202"},
		{"01", "131", "2222222", "Sean", "3rd Str.", "UN", "01202"},
	}
	for _, row := range rows {
		if err := rel.Append(row...); err != nil {
			panic(err)
		}
	}
	return rel
}
