# Local entry points mirroring the CI jobs (.github/workflows/ci.yml calls
# these same targets, so the two cannot drift).

GO ?= go

.PHONY: all build test race bench fmt vet staticcheck docs-check fuzz ci clean serve-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark exactly once (the CI perf-trajectory pass) and
# archives the result both as raw text and as BENCH_ci.json. The output is
# captured by redirection, not a pipe, so a benchmark failure fails the target.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . > BENCH_ci.txt || { cat BENCH_ci.txt; exit 1; }
	cat BENCH_ci.txt
	$(GO) run ./cmd/benchjson < BENCH_ci.txt > BENCH_ci.json

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when installed; locally it degrades to
# a notice so the ci target works on machines without it, while the CI job
# installs the pinned version and fails on findings.
STATICCHECK ?= staticcheck
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# docs-check verifies every relative link in README.md / ARCHITECTURE.md
# (including #anchors against the target's headings) and the load-bearing
# cross-references between them and doc.go.
docs-check:
	./scripts/check_doc_links.sh

# fuzz runs the cfd.Parse/String round-trip fuzzers for a short CI-sized
# budget each; the corpus seeds also run as normal tests under `make test`.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./cfd -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./cfd -run '^$$' -fuzz '^FuzzFormat$$' -fuzztime $(FUZZTIME)

# serve-smoke starts cmd/cfdserve on fixture rules + data, drives the API with
# curl and checks graceful shutdown; CI runs the same script.
serve-smoke:
	./scripts/serve_smoke.sh

ci: fmt vet staticcheck build race fuzz docs-check bench serve-smoke

clean:
	rm -f BENCH_ci.txt BENCH_ci.json
