# Local entry points mirroring the CI jobs (.github/workflows/ci.yml calls
# these same targets, so the two cannot drift).

GO ?= go

.PHONY: all build test race bench fmt vet staticcheck docs-check fuzz cover ci clean serve-smoke obs-smoke cluster-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark exactly once (the CI perf-trajectory pass) and
# archives the result both as raw text and as BENCH_ci.json. The output is
# captured by redirection, not a pipe, so a benchmark failure fails the target.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . > BENCH_ci.txt || { cat BENCH_ci.txt; exit 1; }
	cat BENCH_ci.txt
	$(GO) run ./cmd/benchjson < BENCH_ci.txt > BENCH_ci.json

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when installed; locally it degrades to
# a notice so the ci target works on machines without it, while the CI job
# installs the pinned version and fails on findings.
STATICCHECK ?= staticcheck
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# docs-check verifies every relative link in README.md / ARCHITECTURE.md
# (including #anchors against the target's headings) and the load-bearing
# cross-references between them and doc.go.
docs-check:
	./scripts/check_doc_links.sh

# fuzz runs the codec round-trip fuzzers for a short CI-sized budget each —
# the cfd text codec pair, the rules.Set JSON codec and the violation snapshot
# codec; the corpus seeds also run as normal tests under `make test`.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./cfd -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./cfd -run '^$$' -fuzz '^FuzzFormat$$' -fuzztime $(FUZZTIME)
	$(GO) test ./rules -run '^$$' -fuzz '^FuzzJSON$$' -fuzztime $(FUZZTIME)
	$(GO) test ./violation -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME)

# cover enforces ratcheted statement-coverage floors on the serving-critical
# packages. The floors only move up: raise them when coverage improves, and
# never lower them to make a failing build pass.
VIOLATION_COVER_FLOOR ?= 88.0
RULES_COVER_FLOOR ?= 92.0
MONITOR_COVER_FLOOR ?= 90.0
cover:
	$(GO) test -coverprofile=cover_violation.out ./violation > /dev/null
	$(GO) test -coverprofile=cover_rules.out ./rules > /dev/null
	$(GO) test -coverprofile=cover_monitor.out ./discovery/monitor > /dev/null
	@./scripts/check_coverage.sh cover_violation.out $(VIOLATION_COVER_FLOOR) violation
	@./scripts/check_coverage.sh cover_rules.out $(RULES_COVER_FLOOR) rules
	@./scripts/check_coverage.sh cover_monitor.out $(MONITOR_COVER_FLOOR) discovery/monitor

# serve-smoke starts cmd/cfdserve on fixture rules + data, drives the API with
# curl and checks graceful shutdown; CI runs the same script. Its final leg
# scrapes /metrics and checks the request-id and pprof surfaces, so obs-smoke
# only needs to add the naming check.
serve-smoke:
	./scripts/serve_smoke.sh

# obs-smoke validates the observability layer: metric naming conventions and
# the ARCHITECTURE.md catalogue against the registered names (both
# directions), then the live /metrics scrape via the smoke script.
obs-smoke:
	./scripts/check_metrics.sh
	./scripts/serve_smoke.sh

# cluster-smoke boots three shard nodes, a coordinator and a single-node
# oracle, drives the same writes through coordinator and oracle and asserts
# byte-identical merged reads, then exercises the two-phase rule swap, a
# SIGKILLed shard (degraded health, fail-closed 503) and its recovery.
cluster-smoke:
	./scripts/cluster_smoke.sh

ci: fmt vet staticcheck build race cover fuzz docs-check bench obs-smoke cluster-smoke

clean:
	rm -f BENCH_ci.txt BENCH_ci.json cover_violation.out cover_rules.out cover_monitor.out
