package discovery_test

import (
	"context"
	"fmt"

	"repro/dataset"
	"repro/discovery"
)

// ExampleEngine_Stream mines the paper's Fig. 1 cust relation and consumes
// the rules as a stream: breaking out of the loop (here via WithLimit)
// cancels the remaining mining work instead of producing the full cover. The
// stream order is deterministic for every worker count.
func ExampleEngine_Stream() {
	rel := dataset.Cust()
	eng := discovery.NewEngine(discovery.AlgCTANE, rel,
		discovery.WithSupport(2),
		discovery.WithLimit(3))
	for rule, err := range eng.Stream(context.Background()) {
		if err != nil {
			panic(err)
		}
		fmt.Println(rule)
	}
	// Output:
	// ([AC] -> CT, (908 || _))
	// ([AC] -> CT, (908 || MH))
	// ([PN] -> CC, (1111111 || _))
}

// ExampleEngine_Run collects the full cover as a first-class rule set with
// discovery provenance.
func ExampleEngine_Run() {
	rel := dataset.Cust()
	eng := discovery.NewEngine(discovery.AlgCTANE, rel, discovery.WithSupport(2))
	set, err := eng.Run(context.Background())
	if err != nil {
		panic(err)
	}
	p := set.Provenance()
	fmt.Printf("%s found %d rules (%d constant, %d variable) on %d tuples\n",
		p.Algorithm, set.Len(), set.Constant(), set.Variable(), p.Tuples)
	// Output:
	// ctane found 135 rules (38 constant, 97 variable) on 8 tuples
}
