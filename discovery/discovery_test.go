package discovery_test

import (
	"os"
	"strings"
	"testing"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func cust() *cfd.Relation { return dataset.Cust() }

func keys(cfds []cfd.CFD) map[string]bool {
	m := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		m[c.Normalize().String()] = true
	}
	return m
}

func TestDiscoverAllAlgorithmsRun(t *testing.T) {
	r := cust()
	for _, alg := range discovery.Algorithms() {
		res, err := discovery.Discover(alg, r, discovery.Options{Support: 2})
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if res.Algorithm != alg || res.Support != 2 {
			t.Errorf("%s: result metadata wrong: %+v", alg, res)
		}
		if res.Constant+res.Variable != len(res.CFDs) {
			t.Errorf("%s: class counts do not add up", alg)
		}
		if alg != discovery.AlgTANE && alg != discovery.AlgFastFD && len(res.CFDs) == 0 {
			t.Errorf("%s: expected some CFDs on cust", alg)
		}
	}
	if _, err := discovery.Discover("nope", r, discovery.Options{}); err == nil {
		t.Error("unknown algorithm must error")
	}
}

// TestGeneralAlgorithmsAgree verifies that CTANE, FastCFD, NaiveFast and the
// brute-force oracle produce the same cover through the public API.
func TestGeneralAlgorithmsAgree(t *testing.T) {
	r := cust()
	for _, k := range []int{2, 3} {
		opts := discovery.Options{Support: k}
		ct, err := discovery.CTANE(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := discovery.FastCFD(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		nf, err := discovery.NaiveFast(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		br, err := discovery.BruteForce(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := keys(br.CFDs)
		for name, res := range map[string]*discovery.Result{"ctane": ct, "fastcfd": fc, "naivefast": nf} {
			got := keys(res.CFDs)
			if len(got) != len(want) {
				t.Errorf("k=%d %s: %d CFDs, brute force %d", k, name, len(got), len(want))
			}
			for s := range want {
				if !got[s] {
					t.Errorf("k=%d %s: missing %s", k, name, s)
				}
			}
			for s := range got {
				if !want[s] {
					t.Errorf("k=%d %s: spurious %s", k, name, s)
				}
			}
		}
	}
}

// TestCFDMinerSubsetOfFastCFD verifies constant CFDs from CFDMiner are exactly
// the constant-classified CFDs of FastCFD.
func TestCFDMinerSubsetOfFastCFD(t *testing.T) {
	r := cust()
	miner, err := discovery.CFDMiner(r, discovery.Options{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := discovery.FastCFD(r, discovery.Options{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	if miner.Variable != 0 {
		t.Errorf("CFDMiner reported %d variable CFDs", miner.Variable)
	}
	fullKeys := keys(full.CFDs)
	for _, c := range miner.CFDs {
		if !fullKeys[c.Normalize().String()] {
			t.Errorf("CFDMiner CFD missing from FastCFD output: %s", c)
		}
	}
	if miner.Constant != full.Constant {
		t.Errorf("constant counts differ: CFDMiner %d, FastCFD %d", miner.Constant, full.Constant)
	}
}

// TestResultsAreMinimalOnRelation checks the public minimality predicate on
// everything discovered.
func TestResultsAreMinimalOnRelation(t *testing.T) {
	r := cust()
	res, err := discovery.FastCFD(r, discovery.Options{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.CFDs {
		min, err := r.IsMinimal(c)
		if err != nil {
			t.Fatalf("IsMinimal(%s): %v", c, err)
		}
		if !min {
			t.Errorf("non-minimal CFD reported: %s", c)
		}
		sup, err := r.Support(c)
		if err != nil || sup < 2 {
			t.Errorf("infrequent CFD reported: %s (support %d, %v)", c, sup, err)
		}
	}
}

func TestVariableOnlyAndMaxLHS(t *testing.T) {
	r := cust()
	res, err := discovery.FastCFD(r, discovery.Options{Support: 2, VariableOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Constant != 0 || res.Variable == 0 {
		t.Errorf("VariableOnly: constant=%d variable=%d", res.Constant, res.Variable)
	}
	res, err = discovery.CTANE(r, discovery.Options{Support: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.CFDs {
		if len(c.LHS) > 1 {
			t.Errorf("MaxLHS=1 violated: %s", c)
		}
	}
}

func TestFDBaselinesAgree(t *testing.T) {
	r := cust()
	taneRes, err := discovery.TANE(r, discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fastfdRes, err := discovery.FastFD(r, discovery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keys(taneRes.CFDs), keys(fastfdRes.CFDs)
	if len(a) != len(b) {
		t.Fatalf("TANE %d FDs, FastFD %d", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Errorf("FastFD missing %s", s)
		}
	}
	for _, c := range taneRes.CFDs {
		if !c.IsFD() {
			t.Errorf("TANE produced a non-FD: %s", c)
		}
	}
}

// TestDiscoverOnGeneratedData smoke-tests the pipeline on the synthetic Tax
// generator at a small scale and checks the algorithms agree there too.
func TestDiscoverOnGeneratedData(t *testing.T) {
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 400, Arity: 7, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := discovery.Options{Support: 4}
	ct, err := discovery.CTANE(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := discovery.FastCFD(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.CFDs) == 0 || len(fc.CFDs) == 0 {
		t.Fatalf("expected CFDs on generated data: ctane=%d fastcfd=%d", len(ct.CFDs), len(fc.CFDs))
	}
	a, b := keys(ct.CFDs), keys(fc.CFDs)
	if len(a) != len(b) {
		t.Errorf("CTANE found %d CFDs, FastCFD %d", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Errorf("FastCFD missing %s", s)
		}
	}
	for s := range b {
		if !a[s] {
			t.Errorf("CTANE missing %s", s)
		}
	}
}

// TestRuleExportRoundTrip checks the rule-file helpers: SaveRules/WriteRules
// emit the format cfd.ParseAll (and thus cfdclean -rules / cfdserve -rules)
// reads back, preserving the rule set exactly.
func TestRuleExportRoundTrip(t *testing.T) {
	res, err := discovery.FastCFD(cust(), discovery.Options{Support: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 8 || res.Attributes != 7 {
		t.Fatalf("relation size metadata = %d x %d, want 8 x 7", res.Tuples, res.Attributes)
	}
	path := t.TempDir() + "/rules.txt"
	if err := res.SaveRules(path); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(text), "# fastcfd on 8 tuples x 7 attributes") {
		t.Fatalf("missing summary header: %q", string(text)[:60])
	}
	parsed, err := cfd.ParseAll(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := keys(parsed), keys(res.CFDs); len(got) != len(want) {
		t.Fatalf("round trip lost rules: %d parsed, %d discovered", len(got), len(want))
	} else {
		for k := range want {
			if !got[k] {
				t.Fatalf("rule %s missing after round trip", k)
			}
		}
	}
	// WriteRules emits the same bytes.
	var buf strings.Builder
	if err := res.WriteRules(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(text) {
		t.Fatal("WriteRules and SaveRules disagree")
	}
}
