package discovery

import (
	"context"
	"io"
	"time"

	"repro/cfd"
	"repro/rules"
)

// Algorithm names a discovery algorithm.
type Algorithm string

// The available algorithms.
const (
	AlgCFDMiner  Algorithm = "cfdminer"  // constant CFDs only (§3)
	AlgCTANE     Algorithm = "ctane"     // levelwise general CFD discovery (§4)
	AlgFastCFD   Algorithm = "fastcfd"   // depth-first general CFD discovery with the closed-item-set optimisation (§5)
	AlgNaiveFast Algorithm = "naivefast" // FastCFD with partition-based difference sets (§5.4)
	AlgTANE      Algorithm = "tane"      // classical FD discovery baseline
	AlgFastFD    Algorithm = "fastfd"    // classical depth-first FD discovery baseline
	AlgBrute     Algorithm = "brute"     // exhaustive oracle (tiny inputs only)
)

// Algorithms lists every supported algorithm name, in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgCFDMiner, AlgCTANE, AlgFastCFD, AlgNaiveFast, AlgTANE, AlgFastFD, AlgBrute}
}

// Options configures a batch discovery run. It is the struct-shaped
// counterpart of the Engine's functional options, kept for the Discover /
// DiscoverContext facade; EngineOptions converts it.
type Options struct {
	// Support is the threshold k: only k-frequent CFDs are reported. Values
	// below 1 are treated as 1. Ignored by the FD baselines.
	Support int
	// MaxLHS, when positive, bounds the number of attributes on the left-hand
	// side of reported CFDs (supported by CTANE, FastCFD and NaiveFast).
	MaxLHS int
	// VariableOnly suppresses constant CFDs (FastCFD/NaiveFast only); the paper
	// uses this split when reporting CFD counts.
	VariableOnly bool
	// DisableItemsetOptimisation turns off FastCFD's §5.5 optimisation of taking
	// constant CFDs from CFDMiner, producing them inside FindMin instead.
	DisableItemsetOptimisation bool
	// Workers bounds the number of goroutines a discovery run may use: 0 runs
	// one worker per available CPU (the default), 1 runs sequentially, and any
	// larger value is used as given. CFDMiner, CTANE, FastCFD and NaiveFast
	// all parallelise under this setting; the discovered cover is identical
	// for every worker count.
	Workers int
}

// EngineOptions converts the struct form into the Engine's functional
// options, for callers migrating to NewEngine:
//
//	eng := discovery.NewEngine(alg, rel, opts.EngineOptions()...)
func (o Options) EngineOptions() []Option {
	out := []Option{WithSupport(o.Support), WithMaxLHS(o.MaxLHS), WithWorkers(o.Workers)}
	if o.VariableOnly {
		out = append(out, WithVariableOnly(true))
	}
	if o.DisableItemsetOptimisation {
		out = append(out, WithoutItemsetOptimisation())
	}
	return out
}

// Result is the outcome of one batch discovery run.
type Result struct {
	Algorithm Algorithm
	Support   int
	CFDs      []cfd.CFD
	// Constant and Variable count the two classes of reported CFDs.
	Constant int
	Variable int
	// Tuples and Attributes record the size of the mined relation, for the
	// rule-file summary line.
	Tuples     int
	Attributes int
	// Elapsed is the wall-clock time of the discovery call itself (excluding
	// data loading).
	Elapsed time.Duration
}

// resultOf converts a collected rule set into the legacy Result shape.
func resultOf(set *rules.Set) *Result {
	prov := set.Provenance()
	return &Result{
		Algorithm:  Algorithm(prov.Algorithm),
		Support:    prov.Support,
		CFDs:       set.CFDs(),
		Constant:   set.Constant(),
		Variable:   set.Variable(),
		Tuples:     prov.Tuples,
		Attributes: prov.Attributes,
		Elapsed:    prov.Elapsed,
	}
}

// Set re-wraps the result as the *rules.Set the rest of the system consumes
// (repro/violation, repro/cleaning, cmd/cfdserve).
func (r *Result) Set() *rules.Set {
	return rules.New(r.CFDs, rules.Provenance{
		Algorithm:  string(r.Algorithm),
		Support:    r.Support,
		Tuples:     r.Tuples,
		Attributes: r.Attributes,
		Elapsed:    r.Elapsed,
	})
}

// RulesText renders the result as a rule file: a '#' summary comment followed
// by one CFD per line in the paper's notation, sorted deterministically. The
// output round-trips through rules.Parse / cfd.ParseAll and is the format
// consumed by cfdclean -rules and cfdserve -rules.
func (r *Result) RulesText() string { return r.Set().Text() }

// WriteRules writes RulesText to w.
func (r *Result) WriteRules(w io.Writer) error { return r.Set().Write(w) }

// SaveRules writes the rule file to path, for handing a discovery run to the
// detection tools.
func (r *Result) SaveRules(path string) error { return r.Set().Save(path) }

// Discover runs the named algorithm on the relation.
func Discover(alg Algorithm, r *cfd.Relation, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), alg, r, opts)
}

// DiscoverContext runs the named algorithm on the relation under a context,
// so long runs can be deadlined or cancelled. Cancellation is cooperative:
// the levelwise algorithms observe it between the work units of a lattice
// level, the depth-first ones between per-attribute searches. A cancelled run
// returns ctx.Err() (possibly wrapped by the deadline machinery).
//
// DiscoverContext is a thin wrapper over NewEngine(...).Run: it collects the
// stream into the full cover and reshapes the rule set as a *Result.
func DiscoverContext(ctx context.Context, alg Algorithm, r *cfd.Relation, opts Options) (*Result, error) {
	set, err := NewEngine(alg, r, opts.EngineOptions()...).Run(ctx)
	if err != nil {
		return nil, err
	}
	return resultOf(set), nil
}

// CFDMiner discovers the k-frequent minimal constant CFDs of r (§3).
func CFDMiner(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgCFDMiner, r, opts) }

// CTANE discovers the k-frequent minimal CFDs of r levelwise (§4).
func CTANE(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgCTANE, r, opts) }

// FastCFD discovers the k-frequent minimal CFDs of r depth-first, deriving
// difference sets from 2-frequent closed item sets (§5).
func FastCFD(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgFastCFD, r, opts) }

// NaiveFast is FastCFD with partition-based difference sets (§5.4).
func NaiveFast(r *cfd.Relation, opts Options) (*Result, error) {
	return Discover(AlgNaiveFast, r, opts)
}

// TANE discovers the minimal functional dependencies of r (baseline).
func TANE(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgTANE, r, opts) }

// FastFD discovers the minimal functional dependencies of r depth-first
// (baseline).
func FastFD(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgFastFD, r, opts) }

// BruteForce enumerates every minimal k-frequent CFD exhaustively. It is a
// test oracle: use it only on relations with a handful of attributes and small
// active domains.
func BruteForce(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgBrute, r, opts) }
