// Package discovery exposes the CFD discovery algorithms of the paper behind a
// single facade: CFDMiner for constant CFDs (§3), CTANE (§4) and FastCFD /
// NaiveFast (§5) for general CFDs, plus the classical FD baselines TANE and
// FastFD they extend, and a brute-force oracle for testing.
//
// All functions take a *cfd.Relation and return a *Result whose CFDs use the
// public string representation.
package discovery

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/cfd"
	"repro/internal/bruteforce"
	"repro/internal/cfdminer"
	"repro/internal/core"
	"repro/internal/ctane"
	"repro/internal/diffset"
	"repro/internal/fastcfd"
	"repro/internal/fastfd"
	"repro/internal/tane"
)

// Algorithm names a discovery algorithm.
type Algorithm string

// The available algorithms.
const (
	AlgCFDMiner  Algorithm = "cfdminer"  // constant CFDs only (§3)
	AlgCTANE     Algorithm = "ctane"     // levelwise general CFD discovery (§4)
	AlgFastCFD   Algorithm = "fastcfd"   // depth-first general CFD discovery with the closed-item-set optimisation (§5)
	AlgNaiveFast Algorithm = "naivefast" // FastCFD with partition-based difference sets (§5.4)
	AlgTANE      Algorithm = "tane"      // classical FD discovery baseline
	AlgFastFD    Algorithm = "fastfd"    // classical depth-first FD discovery baseline
	AlgBrute     Algorithm = "brute"     // exhaustive oracle (tiny inputs only)
)

// Algorithms lists every supported algorithm name, in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgCFDMiner, AlgCTANE, AlgFastCFD, AlgNaiveFast, AlgTANE, AlgFastFD, AlgBrute}
}

// Options configures a discovery run.
type Options struct {
	// Support is the threshold k: only k-frequent CFDs are reported. Values
	// below 1 are treated as 1. Ignored by the FD baselines.
	Support int
	// MaxLHS, when positive, bounds the number of attributes on the left-hand
	// side of reported CFDs (supported by CTANE, FastCFD and NaiveFast).
	MaxLHS int
	// VariableOnly suppresses constant CFDs (FastCFD/NaiveFast only); the paper
	// uses this split when reporting CFD counts.
	VariableOnly bool
	// DisableItemsetOptimisation turns off FastCFD's §5.5 optimisation of taking
	// constant CFDs from CFDMiner, producing them inside FindMin instead.
	DisableItemsetOptimisation bool
	// Workers bounds the number of goroutines a discovery run may use: 0 runs
	// one worker per available CPU (the default), 1 runs sequentially, and any
	// larger value is used as given. CFDMiner, CTANE, FastCFD and NaiveFast
	// all parallelise under this setting; the discovered cover is identical
	// for every worker count.
	Workers int
	// Parallel is a retired flag from the era when parallelism was opt-in and
	// FastCFD-only. It is now ignored entirely: parallelism is the default
	// (Workers: 0 = one worker per CPU), so callers that previously relied on
	// Parallel: false meaning sequential must set Workers: 1 instead. The
	// field is kept only so existing struct literals continue to compile.
	//
	// Deprecated: use Workers.
	Parallel bool
}

func (o Options) support() int {
	if o.Support < 1 {
		return 1
	}
	return o.Support
}

// Result is the outcome of one discovery run.
type Result struct {
	Algorithm Algorithm
	Support   int
	CFDs      []cfd.CFD
	// Constant and Variable count the two classes of reported CFDs.
	Constant int
	Variable int
	// Tuples and Attributes record the size of the mined relation, for the
	// rule-file summary line.
	Tuples     int
	Attributes int
	// Elapsed is the wall-clock time of the discovery call itself (excluding
	// data loading).
	Elapsed time.Duration
}

// RulesText renders the result as a rule file: a '#' summary comment followed
// by one CFD per line in the paper's notation, sorted deterministically. The
// output round-trips through cfd.ParseAll and is the format consumed by
// cfdclean -rules and cfdserve -rules.
func (r *Result) RulesText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s on %d tuples x %d attributes, k=%d: %d CFDs (%d constant, %d variable) in %s\n",
		r.Algorithm, r.Tuples, r.Attributes, r.Support, len(r.CFDs), r.Constant, r.Variable, r.Elapsed.Round(time.Millisecond))
	sorted := append([]cfd.CFD(nil), r.CFDs...)
	cfd.SortCFDs(sorted)
	b.WriteString(cfd.FormatAll(sorted))
	return b.String()
}

// WriteRules writes RulesText to w.
func (r *Result) WriteRules(w io.Writer) error {
	_, err := io.WriteString(w, r.RulesText())
	return err
}

// SaveRules writes the rule file to path, for handing a discovery run to the
// detection tools.
func (r *Result) SaveRules(path string) error {
	return os.WriteFile(path, []byte(r.RulesText()), 0o644)
}

// Discover runs the named algorithm on the relation.
func Discover(alg Algorithm, r *cfd.Relation, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), alg, r, opts)
}

// DiscoverContext runs the named algorithm on the relation under a context,
// so long runs can be deadlined or cancelled. Cancellation is cooperative:
// the levelwise algorithms observe it between the work units of a lattice
// level, the depth-first ones between per-attribute searches. A cancelled run
// returns ctx.Err() (possibly wrapped by the deadline machinery).
func DiscoverContext(ctx context.Context, alg Algorithm, r *cfd.Relation, opts Options) (*Result, error) {
	start := time.Now()
	var encoded []core.CFD
	var err error
	switch alg {
	case AlgCFDMiner:
		encoded, err = cfdminer.MineContext(ctx, r.Encoded(), cfdminer.Options{
			K:       opts.support(),
			Workers: opts.Workers,
		})
	case AlgCTANE:
		encoded, err = ctane.MineContext(ctx, r.Encoded(), ctane.Options{
			K:       opts.support(),
			MaxLHS:  opts.MaxLHS,
			Workers: opts.Workers,
		})
	case AlgFastCFD:
		encoded, err = fastcfd.MineContext(ctx, r.Encoded(), fastcfd.Options{
			K:            opts.support(),
			MaxLHS:       opts.MaxLHS,
			VariableOnly: opts.VariableOnly,
			UseCFDMiner:  !opts.DisableItemsetOptimisation,
			Workers:      opts.Workers,
		})
	case AlgNaiveFast:
		encoded, err = fastcfd.MineContext(ctx, r.Encoded(), fastcfd.Options{
			K:            opts.support(),
			MaxLHS:       opts.MaxLHS,
			VariableOnly: opts.VariableOnly,
			Computer:     diffset.NewNaive(r.Encoded()),
			UseCFDMiner:  false,
			Workers:      opts.Workers,
		})
	case AlgTANE:
		encoded, err = tane.MineContext(ctx, r.Encoded())
	case AlgFastFD:
		encoded, err = fastfd.MineContext(ctx, r.Encoded(), nil)
	case AlgBrute:
		encoded, err = bruteforce.MineContext(ctx, r.Encoded(), opts.support())
	default:
		return nil, fmt.Errorf("discovery: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := &Result{
		Algorithm:  alg,
		Support:    opts.support(),
		CFDs:       cfd.DecodeAll(r, encoded),
		Tuples:     r.Size(),
		Attributes: r.Arity(),
		Elapsed:    elapsed,
	}
	res.Constant, res.Variable = cfd.CountClasses(res.CFDs)
	return res, nil
}

// CFDMiner discovers the k-frequent minimal constant CFDs of r (§3).
func CFDMiner(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgCFDMiner, r, opts) }

// CTANE discovers the k-frequent minimal CFDs of r levelwise (§4).
func CTANE(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgCTANE, r, opts) }

// FastCFD discovers the k-frequent minimal CFDs of r depth-first, deriving
// difference sets from 2-frequent closed item sets (§5).
func FastCFD(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgFastCFD, r, opts) }

// NaiveFast is FastCFD with partition-based difference sets (§5.4).
func NaiveFast(r *cfd.Relation, opts Options) (*Result, error) {
	return Discover(AlgNaiveFast, r, opts)
}

// TANE discovers the minimal functional dependencies of r (baseline).
func TANE(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgTANE, r, opts) }

// FastFD discovers the minimal functional dependencies of r depth-first
// (baseline).
func FastFD(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgFastFD, r, opts) }

// BruteForce enumerates every minimal k-frequent CFD exhaustively. It is a
// test oracle: use it only on relations with a handful of attributes and small
// active domains.
func BruteForce(r *cfd.Relation, opts Options) (*Result, error) { return Discover(AlgBrute, r, opts) }
