package monitor

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/cfd"
	"repro/discovery"
	"repro/rules"
	"repro/violation"
)

// TestMaintenanceOracle is the end-to-end leg of the oracle harness: a real
// violation.Engine under seeded churn, with this package deciding when to
// remine (bounded discovery over the live relation) and swap. After every
// step the engine's counter-derived RuleStats and its dirty-tuple union are
// checked against a naive full recomputation over the model rows — across
// whatever rule set the maintenance loop has swapped in by then.
func TestMaintenanceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded churn loop")
	}
	for _, seed := range []int64{3, 17} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runMaintenanceOracle(t, seed)
		})
	}
}

func runMaintenanceOracle(t *testing.T, seed int64) {
	attrs := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(seed))
	// D is a function of A with ~10% noise, so the miners find real rules
	// and churn genuinely moves support and confidence around.
	genRow := func() []string {
		a := rng.Intn(3)
		d := "d" + strconv.Itoa(a)
		if rng.Intn(10) == 0 {
			d = "d" + strconv.Itoa(rng.Intn(3))
		}
		return []string{
			strconv.Itoa(a), "b" + strconv.Itoa(rng.Intn(4)),
			"c" + strconv.Itoa(rng.Intn(2)), d,
		}
	}
	rows := make([][]string, 60)
	for i := range rows {
		rows[i] = genRow()
	}
	rel, err := cfd.FromRows(attrs, rows)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mine := func(r *cfd.Relation) []cfd.CFD {
		set, err := discovery.NewEngine(discovery.AlgFastCFD, r,
			discovery.WithSupport(5), discovery.WithMaxLHS(2), discovery.WithLimit(64)).Run(ctx)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		return set.CFDs()
	}
	eng, err := violation.New(attrs, rules.Of(mine(rel)...), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	model := make(map[int][]string, len(rows))
	for i, r := range rows {
		model[i] = r
	}
	nextID := len(rows)

	remines := 0
	m := New(eng, Policy{MaxSupportDrift: 0.4, MinConfidence: 0.7, MinSupport: 4, MaxEpochs: 30},
		func(ctx context.Context, _ Trigger) error {
			live, _, err := eng.Relation()
			if err != nil {
				return err
			}
			if live.Size() == 0 {
				return nil
			}
			if _, err := eng.SwapRules(ctx, rules.Of(mine(live)...)); err != nil {
				return err
			}
			remines++
			return nil
		})

	for step := 0; step < 120; step++ {
		desc := churnStep(t, rng, eng, model, &nextID, genRow)
		if tr := m.Check(); tr != nil {
			if err := m.Fire(ctx, *tr); err != nil {
				t.Fatalf("seed %d step %d (%s): remine: %v", seed, step, desc, err)
			}
		}
		verifyAgainstModel(t, eng, model, attrs, fmt.Sprintf("seed %d step %d (%s)", seed, step, desc))
	}
	if remines == 0 {
		t.Fatal("churn never triggered a remine; the policy leg went untested")
	}
	if st := m.Status(); st.Triggers == 0 || st.LastError != "" {
		t.Fatalf("final status %+v", st)
	}
}

// churnStep applies one random mutation to engine and model.
func churnStep(t *testing.T, rng *rand.Rand, eng *violation.Engine, model map[int][]string, nextID *int, genRow func() []string) string {
	t.Helper()
	live := make([]int, 0, len(model))
	for id := range model {
		live = append(live, id)
	}
	switch k := rng.Intn(10); {
	case k < 5 || len(live) == 0:
		vals := genRow()
		id, err := eng.Insert(vals...)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		if id != *nextID {
			t.Fatalf("insert id %d, model expects %d", id, *nextID)
		}
		model[id] = vals
		*nextID++
		return fmt.Sprintf("insert %d", id)
	case k < 8:
		id := live[rng.Intn(len(live))]
		vals := genRow()
		if err := eng.Update(id, vals...); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
		model[id] = vals
		return fmt.Sprintf("update %d", id)
	default:
		id := live[rng.Intn(len(live))]
		if err := eng.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
		delete(model, id)
		return fmt.Sprintf("delete %d", id)
	}
}

// verifyAgainstModel recomputes every served rule's support, groups,
// violating count and the dirty-tuple union from scratch over the model
// rows and compares them to the engine's counter-derived answers.
func verifyAgainstModel(t *testing.T, eng *violation.Engine, model map[int][]string, attrs []string, ctx string) {
	t.Helper()
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		idx[a] = i
	}
	stats := eng.RuleStats()
	served := eng.Rules()
	if len(stats) != len(served) {
		t.Fatalf("%s: %d stats for %d rules", ctx, len(stats), len(served))
	}
	dirtyUnion := make(map[int]bool)
	for i, r := range served {
		support, groups, violating := naiveRuleStats(model, idx, r, dirtyUnion)
		conf := 1.0
		if support > 0 {
			conf = float64(support-violating) / float64(support)
		}
		s := stats[i]
		if !s.Rule.Equal(r) {
			t.Fatalf("%s: stats[%d] is %s, served order says %s", ctx, i, s.Rule, r)
		}
		if s.Support != support || s.Groups != groups || s.Violating != violating || s.Confidence != conf {
			t.Fatalf("%s: %s counters {support %d, groups %d, violating %d, conf %g}, naive {%d, %d, %d, %g}",
				ctx, r, s.Support, s.Groups, s.Violating, s.Confidence, support, groups, violating, conf)
		}
	}
	rep := eng.Report()
	got := make(map[int]bool, len(rep.DirtyTuples))
	for _, id := range rep.DirtyTuples {
		got[id] = true
	}
	if len(got) != len(dirtyUnion) {
		t.Fatalf("%s: engine dirty union %v, naive %v", ctx, rep.DirtyTuples, dirtyUnion)
	}
	for id := range dirtyUnion {
		if !got[id] {
			t.Fatalf("%s: naive dirty id %d missing from engine union %v", ctx, id, rep.DirtyTuples)
		}
	}
}

// naiveRuleStats recomputes one rule's statistics by full scan: group the
// LHS-matching rows on their LHS values, then apply the paper's group
// semantics — a group violates when it disagrees on the RHS, or, for a
// constant-RHS rule, when any member misses the constant; every member of a
// violating group counts as violating.
func naiveRuleStats(model map[int][]string, idx map[string]int, r cfd.CFD, dirtyUnion map[int]bool) (support, groups, violating int) {
	type group struct {
		ids []int
		rhs map[string]int
	}
	byKey := make(map[string]*group)
	for id, row := range model {
		match := true
		key := make([]string, len(r.LHS))
		for j, a := range r.LHS {
			v := row[idx[a]]
			if p := r.LHSPattern[j]; p != cfd.Wildcard && v != p {
				match = false
				break
			}
			key[j] = v
		}
		if !match {
			continue
		}
		support++
		k := fmt.Sprintf("%q", key)
		g := byKey[k]
		if g == nil {
			g = &group{rhs: make(map[string]int)}
			byKey[k] = g
		}
		g.ids = append(g.ids, id)
		g.rhs[row[idx[r.RHS]]]++
	}
	groups = len(byKey)
	for _, g := range byKey {
		bad := len(g.rhs) > 1 ||
			(r.RHSPattern != cfd.Wildcard && g.rhs[r.RHSPattern] < len(g.ids))
		if !bad {
			continue
		}
		violating += len(g.ids)
		for _, id := range g.ids {
			dirtyUnion[id] = true
		}
	}
	return support, groups, violating
}
