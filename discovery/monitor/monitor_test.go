package monitor

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cfd"
	"repro/violation"
)

// fakeEngine is a hand-driven Engine: tests set the served stats, version
// and epoch directly and bump() wakes WaitChange waiters exactly like the
// real engine's watch channel does.
type fakeEngine struct {
	mu      sync.Mutex
	epoch   uint64
	stats   []violation.RuleStat
	version string
	watch   chan struct{}
}

func newFakeEngine(stats []violation.RuleStat, version string) *fakeEngine {
	return &fakeEngine{stats: stats, version: version, watch: make(chan struct{})}
}

func (f *fakeEngine) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeEngine) RuleStats() []violation.RuleStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]violation.RuleStat, len(f.stats))
	copy(out, f.stats)
	return out
}

func (f *fakeEngine) RulesVersion() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

func (f *fakeEngine) WaitChange(ctx context.Context, since uint64) (uint64, error) {
	for {
		f.mu.Lock()
		e, w := f.epoch, f.watch
		f.mu.Unlock()
		if e > since {
			return e, nil
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-w:
		}
	}
}

// set replaces the served stats (and optionally the version) and bumps the
// epoch, waking waiters.
func (f *fakeEngine) set(stats []violation.RuleStat, version string) {
	f.mu.Lock()
	f.stats = stats
	if version != "" {
		f.version = version
	}
	f.epoch++
	close(f.watch)
	f.watch = make(chan struct{})
	f.mu.Unlock()
}

func rule(name string) cfd.CFD { return cfd.NewFD([]string{"A"}, name) }

func stat(name string, support, violating int) violation.RuleStat {
	s := violation.RuleStat{Rule: rule(name), Support: support, Violating: violating, Groups: support, Confidence: 1}
	if support > 0 {
		s.Confidence = float64(support-violating) / float64(support)
	}
	return s
}

// fakeClock replaces the monitor's now/sleep pair: sleeps complete
// instantly, advancing the clock by the requested duration and recording it.
type fakeClock struct {
	mu     sync.Mutex
	t      time.Time
	sleeps []time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return nil
}

func (c *fakeClock) install(m *Monitor) {
	m.now = c.now
	m.sleep = c.sleep
}

func TestCheckDriftTrigger(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	m := New(eng, Policy{MaxSupportDrift: 0.5}, nil)
	if tr := m.Check(); tr != nil {
		t.Fatalf("idle check triggered: %+v", tr)
	}
	eng.set([]violation.RuleStat{stat("B", 14, 0)}, "") // 40% drift: inside
	if tr := m.Check(); tr != nil {
		t.Fatalf("40%% drift triggered at threshold 50%%: %+v", tr)
	}
	eng.set([]violation.RuleStat{stat("B", 16, 0)}, "") // 60% drift: outside
	tr := m.Check()
	if tr == nil || tr.Reason != ReasonDrift {
		t.Fatalf("60%% drift: trigger = %+v, want drift", tr)
	}
	if tr.Rule != rule("B").String() {
		t.Fatalf("trigger rule = %q", tr.Rule)
	}
	// Shrink drifts too.
	eng.set([]violation.RuleStat{stat("B", 4, 0)}, "")
	if tr := m.Check(); tr == nil || tr.Reason != ReasonDrift {
		t.Fatalf("shrink drift: trigger = %+v, want drift", tr)
	}
}

func TestCheckConfidenceHysteresis(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 100, 2)}, "v1") // 0.98
	m := New(eng, Policy{MinConfidence: 0.9}, func(context.Context, Trigger) error { return nil })
	eng.set([]violation.RuleStat{stat("B", 100, 20)}, "") // 0.80 < floor
	tr := m.Check()
	if tr == nil || tr.Reason != ReasonConfidence {
		t.Fatalf("confidence drop: trigger = %+v, want confidence", tr)
	}
	// A successful remine that keeps the same (still-dirty) state rebases
	// the baseline below the floor; the clause must not re-fire.
	if err := m.Fire(context.Background(), *tr); err != nil {
		t.Fatal(err)
	}
	if tr := m.Check(); tr != nil {
		t.Fatalf("re-triggered after adopting sub-floor baseline: %+v", tr)
	}
}

func TestCheckMinSupportExemption(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 2, 0)}, "v1")
	m := New(eng, Policy{MaxSupportDrift: 0.5, MinConfidence: 0.9, MinSupport: 5}, nil)
	eng.set([]violation.RuleStat{stat("B", 0, 0)}, "") // 100% drift on a thin rule
	if tr := m.Check(); tr != nil {
		t.Fatalf("thin rule tripped the policy: %+v", tr)
	}
	// Growing past MinSupport re-enables the clauses.
	eng.set([]violation.RuleStat{stat("B", 6, 0)}, "")
	if tr := m.Check(); tr == nil || tr.Reason != ReasonDrift {
		t.Fatalf("rule past MinSupport: trigger = %+v, want drift", tr)
	}
}

func TestCheckEpochsTrigger(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	m := New(eng, Policy{MaxEpochs: 3}, nil)
	for i := 0; i < 2; i++ {
		eng.set([]violation.RuleStat{stat("B", 10, 0)}, "")
	}
	if tr := m.Check(); tr != nil {
		t.Fatalf("2 epochs triggered with MaxEpochs=3: %+v", tr)
	}
	eng.set([]violation.RuleStat{stat("B", 10, 0)}, "")
	tr := m.Check()
	if tr == nil || tr.Reason != ReasonEpochs {
		t.Fatalf("3 epochs: trigger = %+v, want epochs", tr)
	}
	if !strings.Contains(tr.Detail, "3 epochs") {
		t.Fatalf("detail = %q", tr.Detail)
	}
}

func TestExternalSwapRebases(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	m := New(eng, Policy{MaxSupportDrift: 0.1, MinConfidence: 0.99}, nil)
	// A swap someone else performed: version changes along with wildly
	// different stats. The new set's adoption is the reference point, so no
	// clause may fire.
	eng.set([]violation.RuleStat{stat("C", 500, 100)}, "v2")
	if tr := m.Check(); tr != nil {
		t.Fatalf("check after external swap triggered: %+v", tr)
	}
	if st := m.Status(); st.BaselineVersion != "v2" {
		t.Fatalf("baseline version = %q after swap", st.BaselineVersion)
	}
}

func TestFireErrorKeepsTriggerArmed(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	boom := errors.New("miner exploded")
	var calls int
	m := New(eng, Policy{MaxSupportDrift: 0.5}, func(context.Context, Trigger) error {
		calls++
		return boom
	})
	eng.set([]violation.RuleStat{stat("B", 20, 0)}, "")
	tr := m.Check()
	if tr == nil {
		t.Fatal("no trigger")
	}
	if err := m.Fire(context.Background(), *tr); !errors.Is(err, boom) {
		t.Fatalf("Fire error = %v", err)
	}
	st := m.Status()
	if st.LastError != boom.Error() || st.Triggers != 1 {
		t.Fatalf("status after failed fire = %+v", st)
	}
	// The baseline did not rebase, so the same trigger is still pending.
	if tr := m.Check(); tr == nil || tr.Reason != ReasonDrift {
		t.Fatalf("trigger disarmed by failed remine: %+v", tr)
	}
	// A later successful fire clears the error and rebases.
	m.remine = func(context.Context, Trigger) error { return nil }
	if err := m.Fire(context.Background(), *tr); err != nil {
		t.Fatal(err)
	}
	st = m.Status()
	if st.LastError != "" || st.Triggers != 2 {
		t.Fatalf("status after recovery = %+v", st)
	}
	if tr := m.Check(); tr != nil {
		t.Fatalf("trigger survived successful remine: %+v", tr)
	}
	if calls != 1 {
		t.Fatalf("failing remine called %d times", calls)
	}
}

// TestRunTriggersOnDriftAndIdlesOtherwise is the loop-level test: Run must
// stay silent over an idle engine, fire exactly once when drift crosses the
// policy, and go silent again after the rebase.
func TestRunTriggersOnDriftAndIdlesOtherwise(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	fired := make(chan Trigger, 8)
	var m *Monitor
	m = New(eng, Policy{MaxSupportDrift: 0.5}, func(_ context.Context, tr Trigger) error {
		// Model a remine that repairs the rules for the new data shape.
		eng.set([]violation.RuleStat{stat("B", 20, 0)}, "v2")
		fired <- tr
		return nil
	})
	(&fakeClock{}).install(m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()

	// Idle churn inside the envelope: no trigger.
	eng.set([]violation.RuleStat{stat("B", 12, 0)}, "")
	select {
	case tr := <-fired:
		t.Fatalf("in-envelope churn fired %+v", tr)
	case <-time.After(50 * time.Millisecond):
	}
	// Cross the envelope: exactly one remine.
	eng.set([]violation.RuleStat{stat("B", 20, 0)}, "")
	select {
	case tr := <-fired:
		if tr.Reason != ReasonDrift {
			t.Fatalf("fired %+v, want drift", tr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drift never fired")
	}
	// Post-remine the baseline is support 20; the same state must not
	// re-fire even as epochs keep moving.
	eng.set([]violation.RuleStat{stat("B", 21, 0)}, "")
	select {
	case tr := <-fired:
		t.Fatalf("refired after rebase: %+v", tr)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	if st := m.Status(); st.Triggers != 1 {
		t.Fatalf("triggers = %d, want 1", st.Triggers)
	}
}

// TestRunMinIntervalPacesRetries drives Run against a remine that keeps
// failing: the loop must wait out MinInterval between attempts (observable
// through the fake clock) instead of hot-looping.
func TestRunMinIntervalPacesRetries(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	attempts := make(chan struct{}, 16)
	var calls int
	var mu sync.Mutex
	m := New(eng, Policy{MaxSupportDrift: 0.5, MinInterval: time.Minute},
		func(context.Context, Trigger) error {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			attempts <- struct{}{}
			if n < 3 {
				return fmt.Errorf("attempt %d fails", n)
			}
			return nil
		})
	clk := &fakeClock{}
	clk.install(m)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()

	eng.set([]violation.RuleStat{stat("B", 20, 0)}, "")
	for i := 0; i < 3; i++ {
		select {
		case <-attempts:
		case <-time.After(2 * time.Second):
			t.Fatalf("attempt %d never came", i+1)
		}
	}
	cancel()
	<-done
	clk.mu.Lock()
	sleeps := append([]time.Duration(nil), clk.sleeps...)
	clk.mu.Unlock()
	// Attempts 2 and 3 each had to wait out the full minute (the fake clock
	// only advances inside sleep, so the remaining window is always whole).
	var paced int
	for _, d := range sleeps {
		if d == time.Minute {
			paced++
		}
	}
	if paced < 2 {
		t.Fatalf("sleeps %v: want at least two full MinInterval waits", sleeps)
	}
	if st := m.Status(); st.LastError != "" {
		t.Fatalf("recovered run left error %q", st.LastError)
	}
}

// TestRunIdleNeverFires pins the acceptance criterion at the monitor layer:
// an engine that never changes produces zero remine attempts no matter how
// long the loop runs.
func TestRunIdleNeverFires(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	m := New(eng, Policy{MaxSupportDrift: 0.01, MinConfidence: 0.999, MaxEpochs: 1},
		func(context.Context, Trigger) error {
			t.Error("remine called on an idle engine")
			return nil
		})
	(&fakeClock{}).install(m)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := m.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v", err)
	}
	if st := m.Status(); st.Triggers != 0 || st.Checks == 0 {
		t.Fatalf("idle status = %+v", st)
	}
}

// fakeObserver counts events.
type fakeObserver struct {
	mu       sync.Mutex
	checks   int
	triggers map[string]int
}

func (o *fakeObserver) ObserveCheck() {
	o.mu.Lock()
	o.checks++
	o.mu.Unlock()
}

func (o *fakeObserver) ObserveTrigger(reason string) {
	o.mu.Lock()
	if o.triggers == nil {
		o.triggers = map[string]int{}
	}
	o.triggers[reason]++
	o.mu.Unlock()
}

func TestObserverEvents(t *testing.T) {
	eng := newFakeEngine([]violation.RuleStat{stat("B", 10, 0)}, "v1")
	obs := &fakeObserver{}
	m := New(eng, Policy{MaxSupportDrift: 0.5}, func(context.Context, Trigger) error { return nil },
		WithObserver(obs))
	m.Check()
	eng.set([]violation.RuleStat{stat("B", 20, 0)}, "")
	tr := m.Check()
	if tr == nil {
		t.Fatal("no trigger")
	}
	m.Fire(context.Background(), *tr)
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.checks != 2 || obs.triggers[ReasonDrift] != 1 {
		t.Fatalf("observer saw checks=%d triggers=%v", obs.checks, obs.triggers)
	}
}
