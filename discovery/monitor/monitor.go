// Package monitor is the continuous rule-maintenance layer between the live
// violation engine and the batch discovery algorithms: it watches the
// engine's mutation stream, maintains per-served-rule support and confidence
// from the counters the engine's rule indexes already keep (no rescans), and
// fires a bounded remine only when a staleness policy says the data has
// drifted away from the rules.
//
// The paper's miners (CTANE, CFDMiner, FastCFD) take a static instance;
// ROADMAP item 3 observes that re-running them on a timer cannot keep up
// with a live relation. The hybrid here is the standard materialized-view
// answer: exact incremental tracking of the cheap quantities (support,
// confidence — both O(1) per rule off core.RuleIndex counters), and a
// re-run of the expensive global computation (mining a new cover) only when
// those quantities cross thresholds. The remine itself stays bounded via
// discovery.WithLimit / support / maxlhs knobs, and its result flows
// through the caller's existing SwapRules/WAL path, so the monitor never
// mutates the engine directly.
//
// A Monitor is driven either by Run (blocking loop over Engine.WaitChange)
// or by calling Check/Fire manually; cfdserve uses Run. The clock is
// injectable, so policy timing is testable without sleeping.
package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/violation"
)

// Engine is the slice of *violation.Engine the monitor needs: the mutation
// epoch and its long-poll, the counter-derived per-rule statistics, and the
// rule-set fingerprint used to detect swaps performed by others.
type Engine interface {
	Epoch() uint64
	WaitChange(ctx context.Context, since uint64) (uint64, error)
	RuleStats() []violation.RuleStat
	RulesVersion() string
}

// Policy is the staleness policy: when any enabled clause fires for any
// served rule, the monitor triggers a remine. Zero values disable the
// corresponding clause, so the zero Policy never triggers.
type Policy struct {
	// MaxSupportDrift triggers when a rule's live support has moved more
	// than this fraction away from its support at the last adoption:
	// |now-then| / max(then, 1) > MaxSupportDrift. <= 0 disables.
	MaxSupportDrift float64

	// MinConfidence triggers when a rule's live confidence falls below this
	// floor. The check has hysteresis: it only fires for rules whose
	// confidence was at or above the floor when the baseline was taken, so
	// a remine that keeps the rule set (dirty data the miners still accept)
	// does not re-trigger every epoch. <= 0 disables.
	MinConfidence float64

	// MinSupport exempts thin rules from the drift and confidence clauses:
	// a rule participates only when max(baseline, live) support reaches
	// this many tuples. Small absolute changes on near-empty rules would
	// otherwise read as large relative drift. <= 0 means no exemption.
	MinSupport int

	// MaxEpochs triggers unconditionally once this many mutation epochs
	// have accumulated since the last adoption, bounding how stale the rule
	// set can get even when per-rule statistics stay inside the envelope
	// (e.g. churn that only touches tuples outside every rule's scope).
	// 0 disables.
	MaxEpochs uint64

	// MinInterval is the minimum spacing between remine attempts (successful
	// or failed). A pending trigger waits out the remainder rather than
	// being dropped. 0 means no pacing.
	MinInterval time.Duration
}

// Trigger records why a remine fired.
type Trigger struct {
	// Reason is "drift", "confidence" or "epochs".
	Reason string `json:"reason"`
	// Rule is the serialized rule that tripped the policy; empty for the
	// rule-independent "epochs" reason.
	Rule string `json:"rule,omitempty"`
	// Detail is a human-readable account of the threshold crossing.
	Detail string `json:"detail"`
	// Epoch is the engine epoch at which the trigger was observed.
	Epoch uint64 `json:"epoch"`
}

// Reasons a Trigger can carry, in the order Check evaluates them.
const (
	ReasonDrift      = "drift"
	ReasonConfidence = "confidence"
	ReasonEpochs     = "epochs"
)

// Observer receives monitor events. Implementations must be cheap and
// non-blocking; the monitor calls them outside its mutex. The obs wiring
// lives in the caller (cfdserve) so this package, like violation, never
// imports the metrics layer.
type Observer interface {
	// ObserveCheck is called once per policy evaluation.
	ObserveCheck()
	// ObserveTrigger is called when a check trips the policy, with the
	// trigger's reason.
	ObserveTrigger(reason string)
}

// baselineStat is a rule's support and confidence at the moment the current
// rule set was adopted (monitor start, external swap, or successful remine).
type baselineStat struct {
	support    int
	confidence float64
}

// Monitor tracks one Engine under one Policy and calls remine when the
// policy trips. Safe for concurrent use; Run is typically the only caller
// of the mutating methods, with Status polled from health handlers.
type Monitor struct {
	eng    Engine
	pol    Policy
	remine func(ctx context.Context, tr Trigger) error
	obs    Observer

	// now and sleep are the injectable clock (tests replace both).
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	mu          sync.Mutex
	baseline    map[string]baselineStat // rule.String() -> stats at adoption
	baseVersion string                  // RulesVersion the baseline belongs to
	baseEpoch   uint64                  // engine epoch at adoption
	lastRun     time.Time               // last remine attempt (zero: none yet)
	haveRun     bool
	lastTrigger *Trigger
	lastErr     error
	checks      uint64
	triggers    uint64
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithObserver attaches an Observer for check/trigger events.
func WithObserver(o Observer) Option { return func(m *Monitor) { m.obs = o } }

// New returns a Monitor over eng with the baseline seeded from the engine's
// current rules and counters. remine performs one bounded re-discovery and
// swap; it is only ever called from Run (or Fire), one invocation at a time.
func New(eng Engine, pol Policy, remine func(ctx context.Context, tr Trigger) error, opts ...Option) *Monitor {
	m := &Monitor{
		eng:    eng,
		pol:    pol,
		remine: remine,
		now:    time.Now,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	for _, o := range opts {
		o(m)
	}
	m.mu.Lock()
	m.rebaseLocked()
	m.mu.Unlock()
	return m
}

// rebaseLocked re-seeds the baseline from the engine's current state. Called
// at construction, after a successful remine, and when an external swap is
// detected.
func (m *Monitor) rebaseLocked() {
	stats := m.eng.RuleStats()
	base := make(map[string]baselineStat, len(stats))
	for _, s := range stats {
		base[s.Rule.String()] = baselineStat{support: s.Support, confidence: s.Confidence}
	}
	m.baseline = base
	m.baseVersion = m.eng.RulesVersion()
	m.baseEpoch = m.eng.Epoch()
}

// Check evaluates the policy against the baseline and returns the first
// trigger found, or nil. Rules swapped in by someone else since the last
// check rebase the baseline first (their adoption is the new reference
// point). Check never calls remine.
func (m *Monitor) Check() *Trigger {
	m.mu.Lock()
	m.checks++
	if v := m.eng.RulesVersion(); v != m.baseVersion {
		m.rebaseLocked()
	}
	tr := m.checkLocked()
	m.mu.Unlock()
	if m.obs != nil {
		m.obs.ObserveCheck()
	}
	return tr
}

func (m *Monitor) checkLocked() *Trigger {
	epoch := m.eng.Epoch()
	stats := m.eng.RuleStats()
	for _, s := range stats {
		key := s.Rule.String()
		b, ok := m.baseline[key]
		if !ok {
			// Unreachable while baseline and stats come from the same
			// version, but a fresh rule counts as adopted-now, not drifted.
			continue
		}
		if m.pol.MinSupport > 0 && s.Support < m.pol.MinSupport && b.support < m.pol.MinSupport {
			continue
		}
		if m.pol.MaxSupportDrift > 0 {
			ref := b.support
			if ref < 1 {
				ref = 1
			}
			drift := float64(abs(s.Support-b.support)) / float64(ref)
			if drift > m.pol.MaxSupportDrift {
				return &Trigger{
					Reason: ReasonDrift,
					Rule:   key,
					Detail: fmt.Sprintf("support %d -> %d (drift %.2f > %.2f)", b.support, s.Support, drift, m.pol.MaxSupportDrift),
					Epoch:  epoch,
				}
			}
		}
		if m.pol.MinConfidence > 0 && b.confidence >= m.pol.MinConfidence && s.Confidence < m.pol.MinConfidence {
			return &Trigger{
				Reason: ReasonConfidence,
				Rule:   key,
				Detail: fmt.Sprintf("confidence %.3f < floor %.3f (was %.3f)", s.Confidence, m.pol.MinConfidence, b.confidence),
				Epoch:  epoch,
			}
		}
	}
	if m.pol.MaxEpochs > 0 && epoch >= m.baseEpoch+m.pol.MaxEpochs {
		return &Trigger{
			Reason: ReasonEpochs,
			Detail: fmt.Sprintf("%d epochs since adoption at epoch %d (max %d)", epoch-m.baseEpoch, m.baseEpoch, m.pol.MaxEpochs),
			Epoch:  epoch,
		}
	}
	return nil
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// untilAllowed returns how long MinInterval pacing still blocks a remine.
func (m *Monitor) untilAllowed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pol.MinInterval <= 0 || !m.haveRun {
		return 0
	}
	return m.pol.MinInterval - m.now().Sub(m.lastRun)
}

// Fire performs one remine attempt for tr, recording the outcome: on
// success the baseline rebases to the post-swap state, on failure the error
// is kept for Status and the trigger stays armed (Check will find it again;
// MinInterval paces the retry). Fire does not itself enforce MinInterval —
// Run does, and manual callers opt out by calling Fire directly.
func (m *Monitor) Fire(ctx context.Context, tr Trigger) error {
	m.mu.Lock()
	m.triggers++
	m.lastTrigger = &tr
	m.lastRun = m.now()
	m.haveRun = true
	m.mu.Unlock()
	if m.obs != nil {
		m.obs.ObserveTrigger(tr.Reason)
	}
	err := m.remine(ctx, tr)
	m.mu.Lock()
	m.lastErr = err
	if err == nil {
		m.rebaseLocked()
	}
	m.mu.Unlock()
	return err
}

// Run is the maintenance loop: long-poll the engine for changes, evaluate
// the policy, pace and fire remines. It returns when ctx is cancelled (with
// ctx's error) and is meant to be the goroutine's whole body.
func (m *Monitor) Run(ctx context.Context) error {
	seen := m.eng.Epoch()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr := m.Check()
		if tr == nil {
			e, err := m.eng.WaitChange(ctx, seen)
			if err != nil {
				return err
			}
			seen = e
			continue
		}
		if wait := m.untilAllowed(); wait > 0 {
			// Sleep out the pacing window, then re-check: the pending
			// trigger may have healed (or changed reason) in the meantime.
			if err := m.sleep(ctx, wait); err != nil {
				return err
			}
			continue
		}
		m.Fire(ctx, *tr)
	}
}

// Status is a point-in-time snapshot of the monitor for health endpoints.
type Status struct {
	Checks          uint64    `json:"checks"`
	Triggers        uint64    `json:"triggers"`
	BaselineEpoch   uint64    `json:"baseline_epoch"`
	BaselineVersion string    `json:"baseline_version"`
	LastTrigger     *Trigger  `json:"last_trigger,omitempty"`
	LastRun         time.Time `json:"last_run,omitzero"`
	LastError       string    `json:"last_error,omitempty"`
}

// Status returns the monitor's current counters and last trigger/run/error.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Checks:          m.checks,
		Triggers:        m.triggers,
		BaselineEpoch:   m.baseEpoch,
		BaselineVersion: m.baseVersion,
	}
	if m.lastTrigger != nil {
		tr := *m.lastTrigger
		st.LastTrigger = &tr
	}
	if m.haveRun {
		st.LastRun = m.lastRun
	}
	if m.lastErr != nil {
		st.LastError = m.lastErr.Error()
	}
	return st
}
