// Package discovery exposes the CFD discovery algorithms of the paper behind
// one engine: CFDMiner for constant CFDs (§3), CTANE (§4) and FastCFD /
// NaiveFast (§5) for general CFDs, plus the classical FD baselines TANE and
// FastFD they extend, and a brute-force oracle for testing.
//
// # The streaming engine
//
// Engine is the primary API. It binds an algorithm to a *cfd.Relation under
// functional options and runs in two modes:
//
//	eng := discovery.NewEngine(discovery.AlgCTANE, rel,
//	    discovery.WithSupport(10), discovery.WithWorkers(8))
//
//	// Collected: the full cover as a *rules.Set with provenance.
//	set, err := eng.Run(ctx)
//
//	// Streaming: rules arrive as the miners find them; breaking the loop
//	// (or WithLimit) cancels the remaining mining work.
//	for rule, err := range eng.Stream(ctx) { ... }
//
// Stream is what makes early-termination workloads cheap: CTANE emits each
// lattice level as it is validated, CFDMiner each free item set's rules,
// FastCFD/NaiveFast the constant cover and then each right-hand-side
// attribute's search. A consumer that stops after the first k rules skips the
// deep lattice levels and remaining attribute searches entirely. All runs are
// parallel by default (WithWorkers(0) = one worker per CPU) and the stream is
// byte-identical for every worker count.
//
// Run returns a *rules.Set — the rule-set currency shared with repro/rules,
// repro/violation, repro/cleaning and cmd/cfdserve — carrying the run's
// provenance (algorithm, support, relation shape, elapsed time).
//
// # The batch facade
//
// Discover, DiscoverContext and the per-algorithm helpers (CTANE, FastCFD,
// ...) are thin wrappers over Engine.Run kept for batch callers; they take an
// Options struct and return a *Result with the same cover.
package discovery
