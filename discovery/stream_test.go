package discovery_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

// collect drains a stream, failing the test on any yielded error.
func collect(t *testing.T, eng *discovery.Engine) []cfd.CFD {
	t.Helper()
	var out []cfd.CFD
	for c, err := range eng.Stream(context.Background()) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, c)
	}
	return out
}

// sortedText renders rules canonically for byte-level comparison.
func sortedText(cfds []cfd.CFD) string {
	sorted := append([]cfd.CFD(nil), cfds...)
	cfd.SortCFDs(sorted)
	return cfd.FormatAll(sorted)
}

// TestStreamMatchesDiscover is the streaming-parity harness: for every
// algorithm and worker count, collecting Stream with no limit, Engine.Run and
// the legacy Discover facade must produce byte-identical rule files.
func TestStreamMatchesDiscover(t *testing.T) {
	gen, err := dataset.Tax(dataset.TaxConfig{Size: 400, Arity: 7, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]*relAndSupport{
		"cust": {cust(), 2},
		"tax":  {gen, 4},
	}
	for name, rs := range rels {
		for _, alg := range discovery.Algorithms() {
			if name == "tax" && alg == discovery.AlgBrute {
				continue // the oracle is for tiny inputs only
			}
			legacy, err := discovery.Discover(alg, rs.rel, discovery.Options{Support: rs.k})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
			want := sortedText(legacy.CFDs)
			for _, workers := range []int{1, 4} {
				eng := discovery.NewEngine(alg, rs.rel,
					discovery.WithSupport(rs.k), discovery.WithWorkers(workers))
				if got := sortedText(collect(t, eng)); got != want {
					t.Errorf("%s/%s workers=%d: stream disagrees with Discover\nstream:\n%s\nbatch:\n%s", name, alg, workers, got, want)
				}
				set, err := eng.Run(context.Background())
				if err != nil {
					t.Fatalf("%s/%s workers=%d: Run: %v", name, alg, workers, err)
				}
				if got := sortedText(set.CFDs()); got != want {
					t.Errorf("%s/%s workers=%d: Run disagrees with Discover", name, alg, workers)
				}
				if set.Constant() != legacy.Constant || set.Variable() != legacy.Variable {
					t.Errorf("%s/%s workers=%d: class counts (%d, %d) vs legacy (%d, %d)",
						name, alg, workers, set.Constant(), set.Variable(), legacy.Constant, legacy.Variable)
				}
			}
		}
	}
}

// TestStreamDeterministicOrder asserts the stronger per-element property: the
// stream's emission order (not just its contents) is identical for every
// worker count.
func TestStreamDeterministicOrder(t *testing.T) {
	gen, err := dataset.Tax(dataset.TaxConfig{Size: 400, Arity: 7, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []discovery.Algorithm{
		discovery.AlgCFDMiner, discovery.AlgCTANE, discovery.AlgFastCFD, discovery.AlgNaiveFast,
	} {
		seq := collect(t, discovery.NewEngine(alg, gen, discovery.WithSupport(4), discovery.WithWorkers(1)))
		par := collect(t, discovery.NewEngine(alg, gen, discovery.WithSupport(4), discovery.WithWorkers(4)))
		if len(seq) != len(par) {
			t.Errorf("%s: sequential stream has %d rules, parallel %d", alg, len(seq), len(par))
			continue
		}
		for i := range seq {
			if !seq[i].Equal(par[i]) {
				t.Errorf("%s: stream position %d differs between worker counts: %s vs %s", alg, i, seq[i], par[i])
				break
			}
		}
	}
}

// TestStreamLimitAndProgress checks WithLimit truncation, the progress
// callback, and that the limited prefix equals the unlimited stream's prefix.
func TestStreamLimitAndProgress(t *testing.T) {
	r := cust()
	full := collect(t, discovery.NewEngine(discovery.AlgCTANE, r, discovery.WithSupport(2)))
	if len(full) < 5 {
		t.Fatalf("need at least 5 rules on cust, got %d", len(full))
	}
	var seen []int
	eng := discovery.NewEngine(discovery.AlgCTANE, r,
		discovery.WithSupport(2),
		discovery.WithLimit(3),
		discovery.WithProgress(func(found int) { seen = append(seen, found) }))
	got := collect(t, eng)
	if len(got) != 3 {
		t.Fatalf("limited stream yielded %d rules, want 3", len(got))
	}
	for i := range got {
		if !got[i].Equal(full[i]) {
			t.Errorf("limited stream position %d = %s, unlimited has %s", i, got[i], full[i])
		}
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("progress callbacks = %v, want [1 2 3]", seen)
	}
	// Run honours the limit too.
	set, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("limited Run collected %d rules, want 3", set.Len())
	}
}

// TestStreamErrors checks error delivery: unknown algorithms and cancelled
// contexts surface as the stream's final yielded error.
func TestStreamErrors(t *testing.T) {
	r := cust()
	var streamErr error
	for _, err := range discovery.NewEngine("nope", r).Stream(context.Background()) {
		streamErr = err
	}
	if streamErr == nil {
		t.Error("unknown algorithm must yield an error")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	streamErr = nil
	n := 0
	for _, err := range discovery.NewEngine(discovery.AlgCTANE, r, discovery.WithSupport(2)).Stream(ctx) {
		if err != nil {
			streamErr = err
		} else {
			n++
		}
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Errorf("pre-cancelled stream error = %v, want context.Canceled", streamErr)
	}
	if n != 0 {
		t.Errorf("pre-cancelled stream yielded %d rules", n)
	}
}

// TestStreamCancelMidStreamNoGoroutineLeak breaks out of streams over a
// non-trivial mine (forcing cancellation of in-flight internal/pool workers)
// and asserts every miner goroutine shuts down: Stream's contract is that it
// returns only after the mining goroutine has wound down.
func TestStreamCancelMidStreamNoGoroutineLeak(t *testing.T) {
	gen, err := dataset.Tax(dataset.TaxConfig{Size: 2000, Arity: 8, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, alg := range []discovery.Algorithm{
		discovery.AlgCFDMiner, discovery.AlgCTANE, discovery.AlgFastCFD,
	} {
		for i := 0; i < 3; i++ {
			eng := discovery.NewEngine(alg, gen, discovery.WithSupport(4), discovery.WithWorkers(4))
			for _, err := range eng.Stream(context.Background()) {
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				break // abandon the stream after the first rule
			}
		}
	}
	// The pool goroutines exit after their in-flight item; give the runtime a
	// moment to reap them before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after abandoned streams", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProgressSerialInvocation pins the WithProgress contract: however many
// workers the run uses, the callback is never invoked concurrently and the
// cumulative count advances by exactly one per call — so callers (cfdserve's
// rules-streamed counter among them) may keep plain, unsynchronised state in
// the callback.
func TestProgressSerialInvocation(t *testing.T) {
	gen, err := dataset.Tax(dataset.TaxConfig{Size: 300, Arity: 7, CF: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []discovery.Algorithm{
		discovery.AlgCFDMiner, discovery.AlgCTANE, discovery.AlgFastCFD,
	} {
		var inFlight atomic.Int32
		overlaps := 0
		calls := 0
		eng := discovery.NewEngine(alg, gen,
			discovery.WithSupport(4), discovery.WithWorkers(8),
			discovery.WithProgress(func(found int) {
				if !inFlight.CompareAndSwap(0, 1) {
					overlaps++
				}
				calls++ // plain int: the race detector flags any overlap too
				if found != calls {
					t.Errorf("%s: progress(found=%d) on call %d, want strictly +1 steps", alg, found, calls)
				}
				inFlight.Store(0)
			}))
		set, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if overlaps != 0 {
			t.Fatalf("%s: %d overlapping progress invocations", alg, overlaps)
		}
		if calls == 0 || calls < set.Len() {
			t.Fatalf("%s: %d progress calls for %d rules", alg, calls, set.Len())
		}
	}
}
