package discovery

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/cfd"
	"repro/internal/bruteforce"
	"repro/internal/cfdminer"
	"repro/internal/core"
	"repro/internal/ctane"
	"repro/internal/diffset"
	"repro/internal/fastcfd"
	"repro/internal/fastfd"
	"repro/internal/tane"
	"repro/rules"
)

// Engine binds one discovery algorithm to one relation and exposes the run
// both as a stream (Stream, rules arriving as the miners find them) and as a
// collected rule set (Run). Configure it with functional options:
//
//	eng := discovery.NewEngine(discovery.AlgCTANE, rel,
//	    discovery.WithSupport(10),
//	    discovery.WithWorkers(8),
//	    discovery.WithLimit(25))
//	for rule, err := range eng.Stream(ctx) { ... }
//
// An Engine is immutable after construction and may be reused for several
// runs.
type Engine struct {
	alg Algorithm
	rel *cfd.Relation
	cfg engineConfig
}

type engineConfig struct {
	support      int
	maxLHS       int
	workers      int
	limit        int
	progress     func(found int)
	variableOnly bool
	noItemsetOpt bool
}

func (c engineConfig) supportOrOne() int {
	if c.support < 1 {
		return 1
	}
	return c.support
}

// Option configures an Engine.
type Option func(*engineConfig)

// WithSupport sets the support threshold k: only k-frequent CFDs are
// reported. Values below 1 are treated as 1. Ignored by the FD baselines.
func WithSupport(k int) Option { return func(c *engineConfig) { c.support = k } }

// WithMaxLHS bounds the number of attributes on the left-hand side of
// reported CFDs (CTANE, FastCFD and NaiveFast). Zero means unbounded.
func WithMaxLHS(n int) Option { return func(c *engineConfig) { c.maxLHS = n } }

// WithWorkers bounds the number of goroutines a run may use: 0 runs one
// worker per available CPU (the default), 1 runs sequentially. The discovered
// cover — and the emitted stream — is identical for every worker count.
func WithWorkers(n int) Option { return func(c *engineConfig) { c.workers = n } }

// WithLimit stops the stream after the first n rules: remaining mining work
// is cancelled instead of running to the full cover, which is what makes
// top-k and interactive workloads cheap. Zero means unlimited. Run honours
// the limit too.
func WithLimit(n int) Option { return func(c *engineConfig) { c.limit = n } }

// WithProgress registers a callback invoked after every streamed rule with
// the cumulative number of rules seen so far.
//
// Invocations are guaranteed serial regardless of WithWorkers: parallel
// miners hand their results to a single reordering consumer (internal/pool),
// and the callback fires on the stream's consumer goroutine between yields,
// so calls never overlap and found only ever increases by one. Callers may
// therefore use a plain (non-atomic) counter from the callback — but it runs
// on the hot streaming path, so keep it cheap.
func WithProgress(fn func(found int)) Option { return func(c *engineConfig) { c.progress = fn } }

// WithVariableOnly suppresses constant CFDs (FastCFD/NaiveFast only); the
// paper uses this split when reporting CFD counts.
func WithVariableOnly(v bool) Option { return func(c *engineConfig) { c.variableOnly = v } }

// WithoutItemsetOptimisation turns off FastCFD's §5.5 optimisation of taking
// constant CFDs from CFDMiner, producing them inside FindMin instead.
func WithoutItemsetOptimisation() Option { return func(c *engineConfig) { c.noItemsetOpt = true } }

// NewEngine builds an engine running alg over rel under the given options.
func NewEngine(alg Algorithm, rel *cfd.Relation, opts ...Option) *Engine {
	e := &Engine{alg: alg, rel: rel}
	for _, opt := range opts {
		opt(&e.cfg)
	}
	return e
}

// mine dispatches to the algorithm implementations. With a nil emit it
// returns the full cover, like the batch facade always has; with a non-nil
// emit the streaming-capable miners hand rules out as they find them (CTANE
// per lattice level, CFDMiner per free item set, FastCFD/NaiveFast per
// right-hand-side attribute) and return a nil slice, while the FD baselines
// and the brute-force oracle mine fully and then emit their (already sorted)
// cover.
func (e *Engine) mine(ctx context.Context, emit func(core.CFD)) ([]core.CFD, error) {
	r := e.rel
	k := e.cfg.supportOrOne()
	switch e.alg {
	case AlgCFDMiner:
		return cfdminer.MineContext(ctx, r.Encoded(), cfdminer.Options{
			K:       k,
			Workers: e.cfg.workers,
			Emit:    emit,
		})
	case AlgCTANE:
		return ctane.MineContext(ctx, r.Encoded(), ctane.Options{
			K:       k,
			MaxLHS:  e.cfg.maxLHS,
			Workers: e.cfg.workers,
			Emit:    emit,
		})
	case AlgFastCFD:
		return fastcfd.MineContext(ctx, r.Encoded(), fastcfd.Options{
			K:            k,
			MaxLHS:       e.cfg.maxLHS,
			VariableOnly: e.cfg.variableOnly,
			UseCFDMiner:  !e.cfg.noItemsetOpt,
			Workers:      e.cfg.workers,
			Emit:         emit,
		})
	case AlgNaiveFast:
		return fastcfd.MineContext(ctx, r.Encoded(), fastcfd.Options{
			K:            k,
			MaxLHS:       e.cfg.maxLHS,
			VariableOnly: e.cfg.variableOnly,
			Computer:     diffset.NewNaive(r.Encoded()),
			UseCFDMiner:  false,
			Workers:      e.cfg.workers,
			Emit:         emit,
		})
	case AlgTANE:
		return emitAll(tane.MineContext(ctx, r.Encoded()))(emit)
	case AlgFastFD:
		return emitAll(fastfd.MineContext(ctx, r.Encoded(), nil))(emit)
	case AlgBrute:
		return emitAll(bruteforce.MineContext(ctx, r.Encoded(), k))(emit)
	default:
		return nil, fmt.Errorf("discovery: unknown algorithm %q", e.alg)
	}
}

// emitAll adapts a batch-only miner to the emit contract of mine.
func emitAll(out []core.CFD, err error) func(func(core.CFD)) ([]core.CFD, error) {
	return func(emit func(core.CFD)) ([]core.CFD, error) {
		if err != nil || emit == nil {
			return out, err
		}
		for _, c := range out {
			emit(c)
		}
		return nil, nil
	}
}

// Stream runs the algorithm and yields rules as the miners find them: CTANE
// emits each lattice level as it is validated, CFDMiner each free item set's
// rules, FastCFD and NaiveFast the constant cover followed by each
// right-hand-side attribute's variable CFDs. The FD baselines and the
// brute-force oracle have no incremental structure and emit their cover only
// once complete.
//
// Breaking out of the loop — or reaching the WithLimit bound — cancels the
// remaining mining work; Stream returns only after the miner goroutine has
// shut down, so an abandoned stream leaks nothing. A mining failure (context
// cancellation included) is yielded as the final element's error. The yielded
// sequence is deterministic: identical for every worker count.
//
// Collecting an unlimited stream yields exactly the cover of Run and of the
// batch Discover facade (up to order, which the stream derives from the
// miners' traversal rather than the canonical sort).
func (e *Engine) Stream(ctx context.Context) iter.Seq2[cfd.CFD, error] {
	return func(yield func(cfd.CFD, error) bool) {
		mctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := make(chan core.CFD)
		errc := make(chan error, 1)
		go func() {
			_, err := e.mine(mctx, func(c core.CFD) {
				select {
				case ch <- c:
				case <-mctx.Done():
				}
			})
			close(ch)
			errc <- err
		}()
		// stop cancels the miner and waits for it to wind down; emit's select
		// keeps it from ever blocking on an abandoned channel.
		stop := func() {
			cancel()
			<-errc
		}
		found := 0
		for c := range ch {
			if !yield(cfd.Decode(e.rel, c), nil) {
				stop()
				return
			}
			found++
			if e.cfg.progress != nil {
				e.cfg.progress(found)
			}
			if e.cfg.limit > 0 && found >= e.cfg.limit {
				stop()
				return
			}
		}
		if err := <-errc; err != nil {
			yield(cfd.CFD{}, err)
		}
	}
}

// Run collects the run into a rules.Set carrying the run's provenance. An
// unlimited Run produces exactly the cover of the legacy Discover facade
// (deduplicated, canonically sorted); with WithLimit it stops early like the
// stream does.
//
// A run with neither limit nor progress callback takes the miners' batch
// path directly — no per-rule channel handoff — so the legacy facade keeps
// its original cost; otherwise Run drains Stream.
func (e *Engine) Run(ctx context.Context) (*rules.Set, error) {
	start := time.Now()
	var collected []cfd.CFD
	if e.cfg.limit == 0 && e.cfg.progress == nil {
		encoded, err := e.mine(ctx, nil)
		if err != nil {
			return nil, err
		}
		collected = cfd.DecodeAll(e.rel, encoded)
	} else {
		for c, err := range e.Stream(ctx) {
			if err != nil {
				return nil, err
			}
			collected = append(collected, c)
		}
	}
	collected = sortAndDedup(collected)
	return rules.New(collected, rules.Provenance{
		Algorithm:  string(e.alg),
		Support:    e.cfg.supportOrOne(),
		Tuples:     e.rel.Size(),
		Attributes: e.rel.Arity(),
		Elapsed:    time.Since(start),
	}), nil
}

// sortAndDedup canonically orders the collected rules and drops duplicates
// (the streaming miners never emit any; this keeps Run's contract independent
// of that invariant).
func sortAndDedup(cfds []cfd.CFD) []cfd.CFD {
	cfd.SortCFDs(cfds)
	out := cfds[:0]
	prev := ""
	for i, c := range cfds {
		key := c.Normalize().String()
		if i == 0 || key != prev {
			out = append(out, c)
			prev = key
		}
	}
	return out
}
