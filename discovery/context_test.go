package discovery_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

// TestDiscoverContextPreCancelled asserts that every algorithm returns
// promptly with ctx.Err() when handed an already-cancelled context.
func TestDiscoverContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := cust()
	for _, alg := range discovery.Algorithms() {
		start := time.Now()
		res, err := discovery.DiscoverContext(ctx, alg, r, discovery.Options{Support: 2})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
		if res != nil {
			t.Errorf("%s: expected nil result from a cancelled run", alg)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("%s: cancelled run took %s", alg, elapsed)
		}
	}
}

// TestDiscoverContextCancelMidRun cancels long discovery runs shortly after
// they start and checks they abort with the context's error rather than
// running to completion. Support 2 makes each algorithm's dominant phase
// (lattice levels for CTANE, item-set mining for CFDMiner and FastCFD) take
// orders of magnitude longer than the deadline, so a completed run
// (err == nil) means cancellation was not observed there.
func TestDiscoverContextCancelMidRun(t *testing.T) {
	rel, err := dataset.Tax(dataset.TaxConfig{Size: 8000, Arity: 9, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []discovery.Algorithm{discovery.AlgCFDMiner, discovery.AlgCTANE, discovery.AlgFastCFD} {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err = discovery.DiscoverContext(ctx, alg, rel, discovery.Options{Support: 2})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", alg, err)
		}
	}
}

// TestDiscoverWorkersDeterministic asserts, through the public API, that
// Workers: 4 produces exactly the same CFD set as Workers: 1 for every
// parallel algorithm on the fixture relations.
func TestDiscoverWorkersDeterministic(t *testing.T) {
	gen, err := dataset.Tax(dataset.TaxConfig{Size: 400, Arity: 7, CF: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]*relAndSupport{
		"cust": {cust(), 2},
		"tax":  {gen, 4},
	}
	algs := []discovery.Algorithm{
		discovery.AlgCFDMiner, discovery.AlgCTANE, discovery.AlgFastCFD, discovery.AlgNaiveFast,
	}
	for name, rs := range rels {
		for _, alg := range algs {
			seq, err := discovery.Discover(alg, rs.rel, discovery.Options{Support: rs.k, Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, alg, err)
			}
			par, err := discovery.Discover(alg, rs.rel, discovery.Options{Support: rs.k, Workers: 4})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", name, alg, err)
			}
			if len(seq.CFDs) != len(par.CFDs) {
				t.Errorf("%s/%s: sequential %d CFDs, parallel %d", name, alg, len(seq.CFDs), len(par.CFDs))
				continue
			}
			for i := range seq.CFDs {
				if seq.CFDs[i].Normalize().String() != par.CFDs[i].Normalize().String() {
					t.Errorf("%s/%s: CFD %d differs between worker counts", name, alg, i)
					break
				}
			}
		}
	}
}

type relAndSupport struct {
	rel *cfd.Relation
	k   int
}
