package cfd_test

import (
	"fmt"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

// ExampleRelation_Satisfies checks two of the paper's CFDs against the Fig. 1
// cust relation.
func ExampleRelation_Satisfies() {
	rel := dataset.Cust()

	f1 := cfd.NewFD([]string{"CC", "AC"}, "CT")
	phi1 := cfd.CFD{
		LHS: []string{"CC", "AC"}, RHS: "CT",
		LHSPattern: []string{"01", "908"}, RHSPattern: "MH",
	}
	ok1, _ := rel.Satisfies(f1)
	ok2, _ := rel.Satisfies(phi1)
	fmt.Println(f1, ok1)
	fmt.Println(phi1, ok2)
	// Output:
	// ([CC,AC] -> CT, (_, _ || _)) true
	// ([CC,AC] -> CT, (01, 908 || MH)) true
}

// ExampleParse shows round-tripping a CFD through the textual notation used in
// rule files.
func ExampleParse() {
	c, err := cfd.Parse("([CC,ZIP] -> STR, (44, _ || _))")
	if err != nil {
		panic(err)
	}
	fmt.Println(c.RHS, c.IsVariable())
	fmt.Println(c)
	// Output:
	// STR true
	// ([CC,ZIP] -> STR, (44, _ || _))
}

// ExampleBuildTableaux groups single-pattern CFDs into the pattern-tableau
// form of §2.3 of the paper.
func ExampleBuildTableaux() {
	rules := []cfd.CFD{
		{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "908"}, RHSPattern: "MH"},
		{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"44", "131"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "AC"}, "CT"),
	}
	for _, t := range cfd.BuildTableaux(rules) {
		fmt.Println(t)
	}
	// Output:
	// ([AC,CC] -> CT)
	//   (131, 44 || EDI)
	//   (908, 01 || MH)
	//   (_, _ || _)
}

// ExampleRemoveImplied drops CFDs that are syntactically implied by another
// rule in the cover.
func ExampleRemoveImplied() {
	rules := []cfd.CFD{
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "01"},
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "_"},
	}
	for _, c := range cfd.RemoveImplied(rules) {
		fmt.Println(c)
	}
	// Output:
	// ([ZIP] -> CC, (07974 || 01))
}

// Example_discoverAndClean is the end-to-end workflow: discover rules, then
// use them to validate other data.
func Example_discoverAndClean() {
	rel := dataset.Cust()
	res, _ := discovery.CFDMiner(rel, discovery.Options{Support: 4})
	for _, c := range res.CFDs {
		fmt.Println(c)
	}
	// Output:
	// ([AC] -> CT, (908 || MH))
	// ([CT] -> AC, (MH || 908))
}
