package cfd

import (
	"fmt"
	"strconv"
	"strings"
)

// The paper's notation separates tokens with the characters '[', ']', '(',
// ')', ',' and '|', and uses "_" for the unnamed variable. Attribute names and
// constants that would collide with those separators (or with surrounding
// whitespace trimming) are written as Go double-quoted strings, so that every
// CFD — whatever its values — round-trips through String and Parse. Plain
// tokens are written bare, which keeps the classic examples of the paper
// unchanged.

// needsQuote reports whether a token must be double-quoted to survive the
// rule-file notation: empty strings, tokens with leading or trailing
// whitespace, and tokens containing a separator, quote, backslash or control
// character.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	for _, r := range s {
		switch r {
		case ',', '(', ')', '[', ']', '|', '"', '\\':
			return true
		}
		if r < 0x20 || r == 0x7f {
			return true
		}
	}
	return false
}

// quoteToken renders one attribute name or pattern entry. The wildcard "_" is
// never quoted: it is the notation's unnamed variable.
func quoteToken(s string) string {
	if needsQuote(s) {
		return strconv.Quote(s)
	}
	return s
}

// decodeToken reverses quoteToken: a token starting with a double quote is
// unquoted, anything else is returned verbatim.
func decodeToken(s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		return strconv.Unquote(s)
	}
	return s, nil
}

// indexUnquoted returns the index of the first occurrence of sep in s outside
// double-quoted segments, or -1.
func indexUnquoted(s, sep string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		if inQuote {
			switch s[i] {
			case '\\':
				i++ // skip the escaped byte
			case '"':
				inQuote = false
			}
			continue
		}
		if s[i] == '"' {
			inQuote = true
			continue
		}
		if strings.HasPrefix(s[i:], sep) {
			return i
		}
	}
	return -1
}

// splitUnquoted splits s on every occurrence of sep outside double-quoted
// segments.
func splitUnquoted(s, sep string) []string {
	var out []string
	for {
		i := indexUnquoted(s, sep)
		if i < 0 {
			return append(out, s)
		}
		out = append(out, s[:i])
		s = s[i+len(sep):]
	}
}

// Parse reads a CFD written in the paper's notation, as produced by
// CFD.String, for example:
//
//	([CC,AC] -> CT, (01, _ || MH))
//	([ZIP] -> STR, (_ || _))
//	([] -> CC, ( || 01))
//
// Whitespace around separators is ignored and the unnamed variable is "_".
// Constants and attribute names containing a separator character (or leading/
// trailing whitespace) are Go double-quoted, e.g.
//
//	([CT] -> STR, (NYC || "5th Ave, No. 1"))
func Parse(s string) (CFD, error) {
	orig := s
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return CFD{}, fmt.Errorf("cfd: %q: expected outer parentheses", orig)
	}
	s = strings.TrimSpace(s[1 : len(s)-1])
	if !strings.HasPrefix(s, "[") {
		return CFD{}, fmt.Errorf("cfd: %q: expected '[' starting the LHS attribute list", orig)
	}
	close := indexUnquoted(s, "]")
	if close < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: unterminated LHS attribute list", orig)
	}
	lhsPart := strings.TrimSpace(s[1:close])
	rest := strings.TrimSpace(s[close+1:])
	if !strings.HasPrefix(rest, "->") {
		return CFD{}, fmt.Errorf("cfd: %q: expected '->' after the LHS attribute list", orig)
	}
	rest = strings.TrimSpace(rest[2:])
	comma := indexUnquoted(rest, ",")
	if comma < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: expected ',' after the RHS attribute", orig)
	}
	rhs, err := decodeToken(strings.TrimSpace(rest[:comma]))
	if err != nil {
		return CFD{}, fmt.Errorf("cfd: %q: RHS attribute: %w", orig, err)
	}
	patPart := strings.TrimSpace(rest[comma+1:])
	if !strings.HasPrefix(patPart, "(") || !strings.HasSuffix(patPart, ")") {
		return CFD{}, fmt.Errorf("cfd: %q: expected parenthesised pattern tuple", orig)
	}
	patPart = patPart[1 : len(patPart)-1]
	bar := indexUnquoted(patPart, "||")
	if bar < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: expected '||' separating LHS and RHS patterns", orig)
	}
	lhsPatPart := strings.TrimSpace(patPart[:bar])
	rhsPatTok := strings.TrimSpace(patPart[bar+2:])
	if rhsPatTok == "" {
		return CFD{}, fmt.Errorf("cfd: %q: empty RHS pattern", orig)
	}
	rhsPat, err := decodeToken(rhsPatTok)
	if err != nil {
		return CFD{}, fmt.Errorf("cfd: %q: RHS pattern: %w", orig, err)
	}

	c := CFD{RHS: rhs, RHSPattern: rhsPat}
	if lhsPart != "" {
		for _, a := range splitUnquoted(lhsPart, ",") {
			tok, err := decodeToken(strings.TrimSpace(a))
			if err != nil {
				return CFD{}, fmt.Errorf("cfd: %q: LHS attribute: %w", orig, err)
			}
			c.LHS = append(c.LHS, tok)
		}
	}
	if lhsPatPart != "" {
		for _, p := range splitUnquoted(lhsPatPart, ",") {
			tok, err := decodeToken(strings.TrimSpace(p))
			if err != nil {
				return CFD{}, fmt.Errorf("cfd: %q: LHS pattern: %w", orig, err)
			}
			c.LHSPattern = append(c.LHSPattern, tok)
		}
	}
	if len(c.LHS) != len(c.LHSPattern) {
		return CFD{}, fmt.Errorf("cfd: %q: %d LHS attributes but %d pattern entries", orig, len(c.LHS), len(c.LHSPattern))
	}
	if err := c.Validate(); err != nil {
		return CFD{}, fmt.Errorf("cfd: %q: %w", orig, err)
	}
	return c, nil
}

// ParseAll parses one CFD per non-empty, non-comment line ('#' starts a
// comment). It is the format used by the cfdclean command's rule files.
func ParseAll(text string) ([]CFD, error) {
	var out []CFD
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// FormatAll renders CFDs one per line in the format accepted by ParseAll.
func FormatAll(cfds []CFD) string {
	var b strings.Builder
	for _, c := range cfds {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
