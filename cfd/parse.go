package cfd

import (
	"fmt"
	"strings"
)

// Parse reads a CFD written in the paper's notation, as produced by
// CFD.String, for example:
//
//	([CC,AC] -> CT, (01, _ || MH))
//	([ZIP] -> STR, (_ || _))
//	([] -> CC, ( || 01))
//
// Whitespace around separators is ignored. Constants may not contain the
// characters '[', ']', '(', ')', ',' or '|'; the unnamed variable is "_".
func Parse(s string) (CFD, error) {
	orig := s
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return CFD{}, fmt.Errorf("cfd: %q: expected outer parentheses", orig)
	}
	s = strings.TrimSpace(s[1 : len(s)-1])
	if !strings.HasPrefix(s, "[") {
		return CFD{}, fmt.Errorf("cfd: %q: expected '[' starting the LHS attribute list", orig)
	}
	close := strings.Index(s, "]")
	if close < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: unterminated LHS attribute list", orig)
	}
	lhsPart := strings.TrimSpace(s[1:close])
	rest := strings.TrimSpace(s[close+1:])
	if !strings.HasPrefix(rest, "->") {
		return CFD{}, fmt.Errorf("cfd: %q: expected '->' after the LHS attribute list", orig)
	}
	rest = strings.TrimSpace(rest[2:])
	comma := strings.Index(rest, ",")
	if comma < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: expected ',' after the RHS attribute", orig)
	}
	rhs := strings.TrimSpace(rest[:comma])
	patPart := strings.TrimSpace(rest[comma+1:])
	if !strings.HasPrefix(patPart, "(") || !strings.HasSuffix(patPart, ")") {
		return CFD{}, fmt.Errorf("cfd: %q: expected parenthesised pattern tuple", orig)
	}
	patPart = patPart[1 : len(patPart)-1]
	bar := strings.Index(patPart, "||")
	if bar < 0 {
		return CFD{}, fmt.Errorf("cfd: %q: expected '||' separating LHS and RHS patterns", orig)
	}
	lhsPatPart := strings.TrimSpace(patPart[:bar])
	rhsPat := strings.TrimSpace(patPart[bar+2:])
	if rhsPat == "" {
		return CFD{}, fmt.Errorf("cfd: %q: empty RHS pattern", orig)
	}

	c := CFD{RHS: rhs, RHSPattern: rhsPat}
	if lhsPart != "" {
		for _, a := range strings.Split(lhsPart, ",") {
			c.LHS = append(c.LHS, strings.TrimSpace(a))
		}
	}
	if lhsPatPart != "" {
		for _, p := range strings.Split(lhsPatPart, ",") {
			c.LHSPattern = append(c.LHSPattern, strings.TrimSpace(p))
		}
	}
	if len(c.LHS) != len(c.LHSPattern) {
		return CFD{}, fmt.Errorf("cfd: %q: %d LHS attributes but %d pattern entries", orig, len(c.LHS), len(c.LHSPattern))
	}
	if err := c.Validate(); err != nil {
		return CFD{}, fmt.Errorf("cfd: %q: %w", orig, err)
	}
	return c, nil
}

// ParseAll parses one CFD per non-empty, non-comment line ('#' starts a
// comment). It is the format used by the cfdclean command's rule files.
func ParseAll(text string) ([]CFD, error) {
	var out []CFD
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// FormatAll renders CFDs one per line in the format accepted by ParseAll.
func FormatAll(cfds []CFD) string {
	var b strings.Builder
	for _, c := range cfds {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
