package cfd

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Metrics collects the interest measures of a CFD on a relation. Support and
// confidence follow the paper (§2.2.2) and its discussion of [21] (Chiang &
// Miller, "Discovering Data Quality Rules"), which proposes support,
// conviction and the χ² test as quality measures for discovered rules.
type Metrics struct {
	// MatchingLHS is the number of tuples matching the constants of the
	// left-hand-side pattern.
	MatchingLHS int
	// Support is |sup(φ, r)|: tuples matching the pattern on LHS ∪ {RHS}.
	Support int
	// SupportRatio is Support divided by the relation size (0 for an empty
	// relation).
	SupportRatio float64
	// Confidence is the largest fraction of the LHS-matching tuples that can be
	// kept while satisfying the dependency: for a constant right-hand side, the
	// fraction carrying the required constant; for a variable right-hand side,
	// the fraction remaining after keeping the majority RHS value of every
	// LHS-group. It is 1 exactly when the relation satisfies the CFD (and 1 by
	// convention when no tuple matches the LHS).
	Confidence float64
	// Conviction is the association-rule conviction of a constant-RHS CFD:
	// (1 − P(RHS value)) / (1 − Confidence), +Inf for exact rules and NaN for
	// variable-RHS CFDs (where the measure is undefined).
	Conviction float64
	// ChiSquare is the χ² statistic of the 2×2 contingency table
	// (matches LHS pattern) × (carries the RHS constant) for constant-RHS CFDs,
	// and NaN for variable-RHS CFDs.
	ChiSquare float64
}

// MetricsOf computes the interest measures of the CFD on the relation.
func (r *Relation) MetricsOf(c CFD) (Metrics, error) {
	enc, err := Encode(r, c)
	if err != nil {
		return Metrics{}, err
	}
	n := r.Size()
	inner := r.Encoded()

	m := Metrics{
		MatchingLHS: inner.CountMatching(enc.LHS, enc.Tp),
		Support:     core.Support(inner, enc),
	}
	if n > 0 {
		m.SupportRatio = float64(m.Support) / float64(n)
	}

	rhsConst := enc.Tp[enc.RHS]
	switch {
	case m.MatchingLHS == 0:
		m.Confidence = 1
	case rhsConst != core.Wildcard:
		m.Confidence = float64(m.Support) / float64(m.MatchingLHS)
	default:
		m.Confidence = variableConfidence(inner, enc, m.MatchingLHS)
	}

	if rhsConst != core.Wildcard {
		m.Conviction = conviction(inner, enc, m.Confidence, n)
		m.ChiSquare = chiSquare(inner, enc, m, n)
	} else {
		m.Conviction = math.NaN()
		m.ChiSquare = math.NaN()
	}
	return m, nil
}

// Confidence is a convenience wrapper returning only the confidence measure.
func (r *Relation) Confidence(c CFD) (float64, error) {
	m, err := r.MetricsOf(c)
	if err != nil {
		return 0, err
	}
	return m.Confidence, nil
}

// variableConfidence computes the keep-the-majority confidence of a
// variable-RHS CFD: within each group of LHS-matching tuples sharing the same
// LHS values, only the most common RHS value can be kept.
func variableConfidence(r *core.Relation, c core.CFD, matching int) float64 {
	attrs := c.LHS.Attrs()
	groups := make(map[string]map[int32]int)
	var key []byte
	for t := 0; t < r.Size(); t++ {
		if !c.Tp.MatchesTuple(r, t, c.LHS) {
			continue
		}
		key = key[:0]
		for _, a := range attrs {
			v := r.Value(t, a)
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		g := groups[string(key)]
		if g == nil {
			g = make(map[int32]int)
			groups[string(key)] = g
		}
		g[r.Value(t, c.RHS)]++
	}
	kept := 0
	for _, g := range groups {
		best := 0
		for _, cnt := range g {
			if cnt > best {
				best = cnt
			}
		}
		kept += best
	}
	return float64(kept) / float64(matching)
}

// conviction computes the association-rule conviction of a constant-RHS CFD.
func conviction(r *core.Relation, c core.CFD, confidence float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	rhsCount := 0
	col := r.Column(c.RHS)
	for _, v := range col {
		if v == c.Tp[c.RHS] {
			rhsCount++
		}
	}
	pRHS := float64(rhsCount) / float64(n)
	if confidence >= 1 {
		return math.Inf(1)
	}
	return (1 - pRHS) / (1 - confidence)
}

// chiSquare computes the χ² statistic of the 2×2 table (LHS match × RHS value)
// for a constant-RHS CFD.
func chiSquare(r *core.Relation, c core.CFD, m Metrics, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	rhsCount := 0
	col := r.Column(c.RHS)
	for _, v := range col {
		if v == c.Tp[c.RHS] {
			rhsCount++
		}
	}
	// Observed counts.
	a := float64(m.Support)                 // LHS match, RHS value
	b := float64(m.MatchingLHS - m.Support) // LHS match, other value
	cc := float64(rhsCount - m.Support)     // no match, RHS value
	d := float64(n - m.MatchingLHS - (rhsCount - m.Support))
	total := float64(n)
	rowMatch := a + b
	rowOther := cc + d
	colVal := a + cc
	colOther := b + d
	chi := 0.0
	for _, cell := range []struct{ obs, rowTot, colTot float64 }{
		{a, rowMatch, colVal}, {b, rowMatch, colOther},
		{cc, rowOther, colVal}, {d, rowOther, colOther},
	} {
		expected := cell.rowTot * cell.colTot / total
		if expected > 0 {
			diff := cell.obs - expected
			chi += diff * diff / expected
		}
	}
	return chi
}

// RankByInterest orders CFDs by decreasing support and, within equal support,
// by decreasing confidence. It is a simple helper for presenting discovered
// rules to a reviewer, following the spirit of the interest measures of [21].
func (r *Relation) RankByInterest(cfds []CFD) ([]CFD, error) {
	type scored struct {
		c          CFD
		support    int
		confidence float64
	}
	all := make([]scored, 0, len(cfds))
	for _, c := range cfds {
		m, err := r.MetricsOf(c)
		if err != nil {
			return nil, fmt.Errorf("ranking %s: %w", c, err)
		}
		all = append(all, scored{c: c, support: m.Support, confidence: m.Confidence})
	}
	out := make([]CFD, len(all))
	// Stable selection sort by (support desc, confidence desc, String asc);
	// n is small (covers, not relations), so clarity wins over asymptotics.
	for i := range all {
		best := i
		for j := i + 1; j < len(all); j++ {
			if less := func(x, y scored) bool {
				if x.support != y.support {
					return x.support > y.support
				}
				if x.confidence != y.confidence {
					return x.confidence > y.confidence
				}
				return x.c.Normalize().String() < y.c.Normalize().String()
			}; less(all[j], all[best]) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		out[i] = all[i].c
	}
	return out, nil
}
