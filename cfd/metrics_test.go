package cfd_test

import (
	"math"
	"testing"

	"repro/cfd"
	"repro/dataset"
)

func TestMetricsConstantRule(t *testing.T) {
	r := dataset.Cust()
	// (AC -> CT, (908 || MH)) holds exactly: 4 matching tuples, all with CT=MH.
	rule := cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"908"}, RHSPattern: "MH"}
	m, err := r.MetricsOf(rule)
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchingLHS != 4 || m.Support != 4 {
		t.Errorf("MatchingLHS/Support = %d/%d, want 4/4", m.MatchingLHS, m.Support)
	}
	if m.Confidence != 1 {
		t.Errorf("Confidence = %v, want 1", m.Confidence)
	}
	if !math.IsInf(m.Conviction, 1) {
		t.Errorf("Conviction of an exact rule should be +Inf, got %v", m.Conviction)
	}
	if m.ChiSquare <= 0 {
		t.Errorf("ChiSquare should be positive for a correlated rule, got %v", m.ChiSquare)
	}
	if m.SupportRatio != 0.5 {
		t.Errorf("SupportRatio = %v, want 0.5", m.SupportRatio)
	}

	// (AC -> CT, (131 || EDI)) is violated by t8: 3 matching, 2 satisfying.
	rule = cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"}
	m, err = r.MetricsOf(rule)
	if err != nil {
		t.Fatal(err)
	}
	if m.MatchingLHS != 3 || m.Support != 2 {
		t.Errorf("MatchingLHS/Support = %d/%d, want 3/2", m.MatchingLHS, m.Support)
	}
	if want := 2.0 / 3.0; math.Abs(m.Confidence-want) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", m.Confidence, want)
	}
	// Conviction = (1 - P(CT=EDI)) / (1 - conf) = (1 - 2/8) / (1/3) = 2.25.
	if math.Abs(m.Conviction-2.25) > 1e-9 {
		t.Errorf("Conviction = %v, want 2.25", m.Conviction)
	}
}

func TestMetricsVariableRule(t *testing.T) {
	r := dataset.Cust()
	// f1 holds: confidence 1, conviction/chi-square undefined.
	m, err := r.MetricsOf(cfd.NewFD([]string{"CC", "AC"}, "CT"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Confidence != 1 || m.Support != 8 {
		t.Errorf("f1 metrics wrong: %+v", m)
	}
	if !math.IsNaN(m.Conviction) || !math.IsNaN(m.ChiSquare) {
		t.Error("conviction and chi-square are undefined for variable-RHS CFDs")
	}
	// [CC,ZIP] -> STR is violated: the (01,07974) group keeps 2 of 3, the
	// (01,01202) group keeps 1 of 2, and the two clean groups keep 2 and 1:
	// (2+1+2+1)/8 = 6/8.
	m, err = r.MetricsOf(cfd.NewFD([]string{"CC", "ZIP"}, "STR"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 6.0 / 8.0; math.Abs(m.Confidence-want) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", m.Confidence, want)
	}
	if conf, err := r.Confidence(cfd.NewFD([]string{"CC", "ZIP"}, "STR")); err != nil || conf != m.Confidence {
		t.Errorf("Confidence() = %v, %v", conf, err)
	}
}

func TestMetricsOutOfDomainConstant(t *testing.T) {
	r := dataset.Cust()
	rule := cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"999"}, RHSPattern: "MH"}
	if _, err := r.MetricsOf(rule); err == nil {
		t.Error("constants outside the active domain must error")
	}
}

func TestRankByInterest(t *testing.T) {
	r := dataset.Cust()
	rules := []cfd.CFD{
		{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"44", "131"}, RHSPattern: "EDI"}, // support 2
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"908"}, RHSPattern: "MH"},              // support 4
		cfd.NewFD([]string{"CC", "AC"}, "CT"),                                                        // support 8
	}
	ranked, err := r.RankByInterest(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d rules", len(ranked))
	}
	s0, _ := r.Support(ranked[0])
	s1, _ := r.Support(ranked[1])
	s2, _ := r.Support(ranked[2])
	if !(s0 >= s1 && s1 >= s2) {
		t.Errorf("ranking not by decreasing support: %d, %d, %d", s0, s1, s2)
	}
}

func TestRemoveImplied(t *testing.T) {
	constant := cfd.CFD{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "01"}
	variable := cfd.CFD{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "_"}
	wider := cfd.CFD{LHS: []string{"ZIP", "AC"}, RHS: "CC", LHSPattern: []string{"07974", "_"}, RHSPattern: "_"}
	unrelated := cfd.NewFD([]string{"CC", "AC"}, "CT")
	duplicate := cfd.CFD{LHS: []string{"AC", "CC"}, RHS: "CT", LHSPattern: []string{"_", "_"}, RHSPattern: "_"}

	out := cfd.RemoveImplied([]cfd.CFD{constant, variable, wider, unrelated, duplicate})
	if len(out) != 2 {
		t.Fatalf("expected 2 CFDs to survive, got %d: %v", len(out), out)
	}
	if !out[0].Equal(constant) || !out[1].Equal(unrelated) {
		t.Errorf("unexpected survivors: %v", out)
	}
	// Regardless of input order, the constant rule survives and absorbs the
	// variable one (never the other way around).
	out = cfd.RemoveImplied([]cfd.CFD{variable, constant})
	if len(out) != 1 || !out[0].Equal(constant) {
		t.Errorf("the constant rule must survive and absorb the variable one: %v", out)
	}
	// Different RHS attributes never imply one another syntactically.
	other := cfd.CFD{LHS: []string{"ZIP"}, RHS: "AC", LHSPattern: []string{"07974"}, RHSPattern: "908"}
	out = cfd.RemoveImplied([]cfd.CFD{constant, other})
	if len(out) != 2 {
		t.Errorf("rules on different RHS attributes must both survive: %v", out)
	}
}

// TestRemoveImpliedPreservesSemantics checks soundness on the cust relation: a
// relation satisfying the reduced cover satisfies everything that was removed.
func TestRemoveImpliedPreservesSemantics(t *testing.T) {
	r := dataset.Cust()
	all := []cfd.CFD{
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "01"},
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "_"},
		{LHS: []string{"ZIP", "CT"}, RHS: "CC", LHSPattern: []string{"07974", "_"}, RHSPattern: "_"},
	}
	kept := cfd.RemoveImplied(all)
	if len(kept) >= len(all) {
		t.Fatal("expected at least one CFD to be removed")
	}
	// Everything removed must still hold on a relation satisfying the kept set
	// (cust satisfies all of them, so this is a consistency check of the rules
	// used by impliedBy rather than a full semantic proof).
	for _, c := range all {
		ok, err := r.Satisfies(c)
		if err != nil || !ok {
			t.Errorf("%s should hold on cust: %v %v", c, ok, err)
		}
	}
}
