// Package cfd is the public data model of the library: relations over named
// attributes, conditional functional dependencies written with attribute names
// and string constants, and the satisfaction, violation, support and
// minimality primitives of the paper "Discovering Conditional Functional
// Dependencies" (Fan, Geerts, Li, Xiong).
//
// A CFD (X → A, tp) pairs an embedded functional dependency X → A with a
// pattern tuple tp of constants and the unnamed variable "_" over X ∪ {A}.
// The discovery algorithms of the paper live in the companion package
// repro/discovery; synthetic and CSV data sources in repro/dataset; and the
// data-cleaning application layer in repro/cleaning.
package cfd

import (
	"fmt"

	"repro/internal/core"
)

// Wildcard is the unnamed variable "_" of pattern tuples.
const Wildcard = "_"

// Relation is an instance of a relation schema: an ordered list of attributes
// and a list of tuples. Values are dictionary-encoded internally, so repeated
// values cost one string no matter how many tuples carry them.
type Relation struct {
	inner *core.Relation
}

// NewRelation creates an empty relation over the given attribute names. At
// most 64 attributes are supported.
func NewRelation(attributes ...string) (*Relation, error) {
	schema, err := core.NewSchema(attributes...)
	if err != nil {
		return nil, err
	}
	return &Relation{inner: core.NewRelation(schema)}, nil
}

// MustRelation is like NewRelation but panics on error; intended for tests and
// generators with fixed attribute lists.
func MustRelation(attributes ...string) *Relation {
	r, err := NewRelation(attributes...)
	if err != nil {
		panic(err)
	}
	return r
}

// FromRows builds a relation from attribute names and rows of values.
func FromRows(attributes []string, rows [][]string) (*Relation, error) {
	r, err := NewRelation(attributes...)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if err := r.Append(row...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return r, nil
}

// Append adds one tuple given in schema order.
func (r *Relation) Append(values ...string) error {
	return r.inner.AppendRow(values)
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return r.inner.Size() }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.inner.Arity() }

// Attributes returns the attribute names in schema order.
func (r *Relation) Attributes() []string { return r.inner.Schema().Names() }

// Row returns tuple i as strings in schema order.
func (r *Relation) Row(i int) []string { return r.inner.Row(i) }

// Value returns the value of tuple i for the named attribute.
func (r *Relation) Value(i int, attribute string) (string, error) {
	a, ok := r.inner.Schema().Index(attribute)
	if !ok {
		return "", fmt.Errorf("cfd: unknown attribute %q", attribute)
	}
	return r.inner.ValueString(i, a), nil
}

// DomainSize returns the number of distinct values the named attribute takes.
func (r *Relation) DomainSize(attribute string) (int, error) {
	a, ok := r.inner.Schema().Index(attribute)
	if !ok {
		return 0, fmt.Errorf("cfd: unknown attribute %q", attribute)
	}
	return r.inner.DomainSize(a), nil
}

// Head returns a new relation holding the first n tuples.
func (r *Relation) Head(n int) *Relation {
	return &Relation{inner: r.inner.Head(n)}
}

// Project returns a new relation restricted to the named attributes.
func (r *Relation) Project(attributes ...string) (*Relation, error) {
	keep, err := r.inner.Schema().AttrSetOf(attributes...)
	if err != nil {
		return nil, err
	}
	inner, err := r.inner.Restrict(keep)
	if err != nil {
		return nil, err
	}
	return &Relation{inner: inner}, nil
}

// Encoded exposes the dictionary-encoded representation used by the discovery
// algorithms. It is a bridge for the repro/discovery, repro/dataset and
// repro/cleaning packages; most applications never need it.
func (r *Relation) Encoded() *core.Relation { return r.inner }

// WrapEncoded wraps an encoded relation in the public Relation type. It is the
// inverse bridge of Encoded.
func WrapEncoded(inner *core.Relation) *Relation { return &Relation{inner: inner} }
