package cfd

// This file provides a syntactic redundancy reducer for discovered covers.
// The paper lists "the use of CFD inference in discovery, to eliminate CFDs
// that are entailed by those already found" as future work (§8); full CFD
// implication analysis is coNP-complete in general, so RemoveImplied applies
// only sound, syntactic entailment rules — it never removes a CFD that is not
// logically implied by the remaining ones, but it does not find every
// redundancy.

// impliedBy reports whether the CFD c is implied by the single CFD by, using
// two sound rules:
//
//  1. by is (Y → A, (sp ‖ a)) with a constant right-hand side, c has the same
//     right-hand side attribute, Y ⊆ LHS(c), and c's pattern agrees with sp on
//     Y. Then every tuple matching c's LHS pattern also matches sp, hence
//     carries A = a, so c holds whenever by does (for both constant and
//     variable right-hand sides of c, provided a constant right-hand side of c
//     equals a).
//  2. by and c are the same dependency (same embedded FD and pattern) — the
//     trivial case.
func impliedBy(c, by CFD) bool {
	if c.RHS != by.RHS {
		return false
	}
	if c.Equal(by) {
		return true
	}
	if by.RHSPattern == Wildcard {
		return false
	}
	if c.RHSPattern != Wildcard && c.RHSPattern != by.RHSPattern {
		return false
	}
	// Every (attribute, constant) of by's LHS must appear identically in c's LHS.
	cPattern := make(map[string]string, len(c.LHS))
	for i, a := range c.LHS {
		cPattern[a] = c.LHSPattern[i]
	}
	for i, a := range by.LHS {
		got, ok := cPattern[a]
		if !ok {
			return false
		}
		if by.LHSPattern[i] == Wildcard {
			continue
		}
		if got != by.LHSPattern[i] {
			return false
		}
	}
	return true
}

// RemoveImplied returns the cover with CFDs that are syntactically implied by
// another retained CFD removed. The reduction is sound: the returned set is
// logically equivalent to the input. It is not complete: CFDs implied only
// through deeper inference are kept. Within a group of mutually implied CFDs
// the one listed first is retained.
func RemoveImplied(cfds []CFD) []CFD {
	removed := make([]bool, len(cfds))
	for i := range cfds {
		if removed[i] {
			continue
		}
		for j := range cfds {
			if i == j || removed[j] {
				continue
			}
			if impliedBy(cfds[j], cfds[i]) {
				removed[j] = true
			}
		}
	}
	var out []CFD
	for i, c := range cfds {
		if !removed[i] {
			out = append(out, c)
		}
	}
	return out
}
