package cfd_test

import (
	"strings"
	"testing"

	"repro/cfd"
	"repro/dataset"
)

func custRelation(t *testing.T) *cfd.Relation {
	t.Helper()
	return dataset.Cust()
}

func TestRelationBasics(t *testing.T) {
	r, err := cfd.NewRelation("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append("1", "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Append("2"); err == nil {
		t.Error("short row must be rejected")
	}
	if r.Size() != 1 || r.Arity() != 2 {
		t.Errorf("Size/Arity = %d/%d", r.Size(), r.Arity())
	}
	if got := r.Attributes(); got[0] != "A" || got[1] != "B" {
		t.Errorf("Attributes = %v", got)
	}
	if v, err := r.Value(0, "B"); err != nil || v != "x" {
		t.Errorf("Value = %q, %v", v, err)
	}
	if _, err := r.Value(0, "Z"); err == nil {
		t.Error("unknown attribute must error")
	}
	if d, err := r.DomainSize("A"); err != nil || d != 1 {
		t.Errorf("DomainSize = %d, %v", d, err)
	}
	if _, err := cfd.NewRelation("A", "A"); err == nil {
		t.Error("duplicate attributes must be rejected")
	}
}

func TestFromRowsProjectHead(t *testing.T) {
	r, err := cfd.FromRows([]string{"A", "B", "C"}, [][]string{
		{"1", "x", "p"}, {"2", "y", "q"}, {"3", "z", "p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Head(2)
	if h.Size() != 2 {
		t.Errorf("Head size = %d", h.Size())
	}
	p, err := r.Project("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 {
		t.Errorf("Project arity = %d", p.Arity())
	}
	if _, err := r.Project("missing"); err == nil {
		t.Error("projecting an unknown attribute must error")
	}
}

func TestCFDClassificationAndString(t *testing.T) {
	c := cfd.CFD{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "908"}, RHSPattern: "MH"}
	if !c.IsConstant() || c.IsVariable() || c.IsFD() {
		t.Error("constant CFD misclassified")
	}
	v := cfd.NewFD([]string{"CC", "AC"}, "CT")
	if !v.IsVariable() || !v.IsFD() || v.IsConstant() {
		t.Error("FD misclassified")
	}
	mixed := cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"_"}, RHSPattern: "MH"}
	if mixed.IsConstant() || mixed.IsVariable() {
		t.Error("mixed CFD misclassified")
	}
	want := "([CC,AC] -> CT, (01, 908 || MH))"
	if c.String() != want {
		t.Errorf("String = %q, want %q", c.String(), want)
	}
}

func TestCFDValidate(t *testing.T) {
	good := cfd.CFD{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"_"}, RHSPattern: "x"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid CFD rejected: %v", err)
	}
	cases := []cfd.CFD{
		{LHS: []string{"A"}, RHS: "B", LHSPattern: []string{"_", "_"}, RHSPattern: "x"},
		{LHS: []string{"A"}, RHS: "", LHSPattern: []string{"_"}, RHSPattern: "x"},
		{LHS: []string{"A", "A"}, RHS: "B", LHSPattern: []string{"_", "_"}, RHSPattern: "x"},
		{LHS: []string{"B"}, RHS: "B", LHSPattern: []string{"_"}, RHSPattern: "x"},
		{LHS: []string{""}, RHS: "B", LHSPattern: []string{"_"}, RHSPattern: "x"},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid CFD accepted: %v", i, c)
		}
	}
}

func TestNormalizeAndEqual(t *testing.T) {
	a := cfd.CFD{LHS: []string{"AC", "CC"}, RHS: "CT", LHSPattern: []string{"908", "01"}, RHSPattern: "MH"}
	b := cfd.CFD{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "908"}, RHSPattern: "MH"}
	if !a.Equal(b) {
		t.Error("attribute order must not affect equality")
	}
	c := cfd.CFD{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "212"}, RHSPattern: "MH"}
	if a.Equal(c) {
		t.Error("different patterns must not be equal")
	}
	n := a.Normalize()
	if n.LHS[0] != "AC" || n.LHSPattern[0] != "908" {
		t.Errorf("Normalize misaligned pattern: %v / %v", n.LHS, n.LHSPattern)
	}
}

func TestSatisfactionOnCust(t *testing.T) {
	r := custRelation(t)
	f1 := cfd.NewFD([]string{"CC", "AC"}, "CT")
	ok, err := r.Satisfies(f1)
	if err != nil || !ok {
		t.Errorf("f1 should hold: %v %v", ok, err)
	}
	phi1 := cfd.CFD{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "908"}, RHSPattern: "MH"}
	if sup, err := r.Support(phi1); err != nil || sup != 3 {
		t.Errorf("support of phi1 = %d, %v; want 3", sup, err)
	}
	if min, err := r.IsMinimal(phi1); err != nil || min {
		t.Errorf("phi1 should not be minimal (CC can be dropped): %v %v", min, err)
	}
	bad := cfd.NewFD([]string{"CC", "ZIP"}, "STR")
	ok, err = r.Satisfies(bad)
	if err != nil || ok {
		t.Errorf("[CC,ZIP] -> STR should not hold")
	}
	viol, err := r.Violations(bad)
	if err != nil || len(viol) == 0 {
		t.Errorf("expected violations, got %v, %v", viol, err)
	}
	// Unknown attribute and unknown constant produce errors.
	if _, err := r.Satisfies(cfd.NewFD([]string{"XX"}, "CT")); err == nil {
		t.Error("unknown attribute must error")
	}
	missing := cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"99"}, RHSPattern: "_"}
	if _, err := r.Satisfies(missing); err == nil {
		t.Error("constant outside the active domain must error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := custRelation(t)
	orig := cfd.CFD{LHS: []string{"CC", "ZIP"}, RHS: "STR", LHSPattern: []string{"44", "_"}, RHSPattern: "_"}
	enc, err := cfd.Encode(r, orig)
	if err != nil {
		t.Fatal(err)
	}
	back := cfd.Decode(r, enc)
	if !back.Equal(orig) {
		t.Errorf("round trip changed the CFD: %s vs %s", back, orig)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"([CC,AC] -> CT, (01, 908 || MH))",
		"([CC,ZIP] -> STR, (44, _ || _))",
		"([ZIP] -> CC, (07974 || 01))",
		"([] -> CC, ( || 01))",
	}
	for _, s := range cases {
		c, err := cfd.Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		back, err := cfd.Parse(c.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", c.String(), err)
			continue
		}
		if !c.Equal(back) {
			t.Errorf("round trip mismatch: %q vs %q", c, back)
		}
	}
	bad := []string{
		"",
		"[CC] -> CT, (01 || MH)",
		"([CC] -> CT)",
		"([CC] -> CT, (01, 02 || MH))",
		"([CC] -> CT, (01 | MH))",
		"([CC] -> CT, (01 || ))",
		"([CT] -> CT, (_ || _))",
	}
	for _, s := range bad {
		if _, err := cfd.Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseAllAndFormatAll(t *testing.T) {
	text := `
# discovered rules
([CC,AC] -> CT, (_, _ || _))
([ZIP] -> CC, (07974 || 01))
`
	rules, err := cfd.ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	out := cfd.FormatAll(rules)
	if !strings.Contains(out, "([ZIP] -> CC, (07974 || 01))") {
		t.Errorf("FormatAll output missing rule: %q", out)
	}
	if _, err := cfd.ParseAll("([broken"); err == nil {
		t.Error("ParseAll must report parse errors with line numbers")
	}
}

func TestSortAndCount(t *testing.T) {
	cfds := []cfd.CFD{
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "01"},
		cfd.NewFD([]string{"CC", "AC"}, "CT"),
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"908"}, RHSPattern: "MH"},
	}
	cfd.SortCFDs(cfds)
	for i := 1; i < len(cfds); i++ {
		if cfds[i-1].Normalize().String() > cfds[i].Normalize().String() {
			t.Error("SortCFDs did not sort")
		}
	}
	constant, variable := cfd.CountClasses(cfds)
	if constant != 2 || variable != 1 {
		t.Errorf("CountClasses = %d/%d, want 2/1", constant, variable)
	}
}

func TestTableaux(t *testing.T) {
	r := custRelation(t)
	cfds := []cfd.CFD{
		{LHS: []string{"CC", "AC"}, RHS: "CT", LHSPattern: []string{"01", "908"}, RHSPattern: "MH"},
		{LHS: []string{"AC", "CC"}, RHS: "CT", LHSPattern: []string{"131", "44"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "AC"}, "CT"),
		{LHS: []string{"ZIP"}, RHS: "CC", LHSPattern: []string{"07974"}, RHSPattern: "01"},
	}
	tableaux := cfd.BuildTableaux(cfds)
	if len(tableaux) != 2 {
		t.Fatalf("expected 2 tableaux, got %d", len(tableaux))
	}
	var ctTab cfd.TableauCFD
	for _, tb := range tableaux {
		if tb.RHS == "CT" {
			ctTab = tb
		}
	}
	if len(ctTab.Patterns) != 3 {
		t.Fatalf("CT tableau should have 3 pattern tuples, got %d", len(ctTab.Patterns))
	}
	if got := len(ctTab.CFDs()); got != 3 {
		t.Errorf("CFDs() returned %d", got)
	}
	ok, err := r.SatisfiesTableau(ctTab)
	if err != nil || !ok {
		t.Errorf("tableau should be satisfied: %v %v", ok, err)
	}
	// Tableau support is the minimum pattern support: phi2 has support 2.
	sup, err := r.TableauSupport(ctTab)
	if err != nil || sup != 2 {
		t.Errorf("tableau support = %d, %v; want 2", sup, err)
	}
	if s := ctTab.String(); !strings.Contains(s, "-> CT") {
		t.Errorf("tableau String malformed: %q", s)
	}
	if sup, _ := r.TableauSupport(cfd.TableauCFD{LHS: []string{"CC"}, RHS: "CT"}); sup != 0 {
		t.Errorf("empty tableau support = %d", sup)
	}
}
