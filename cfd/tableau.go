package cfd

import (
	"fmt"
	"sort"
	"strings"
)

// TableauCFD is a CFD with a pattern tableau (§2.3 of the paper): one embedded
// FD X → A together with a set of pattern tuples. It is equivalent to the set
// of single-pattern CFDs {(X → A, tp) | tp ∈ Patterns}.
type TableauCFD struct {
	LHS []string
	RHS string
	// Patterns holds one row per pattern tuple: len(LHS) entries for the LHS
	// followed by one entry for the RHS.
	Patterns [][]string
}

// String renders the tableau CFD with one pattern tuple per line.
func (t TableauCFD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "([%s] -> %s)", strings.Join(t.LHS, ","), t.RHS)
	for _, p := range t.Patterns {
		fmt.Fprintf(&b, "\n  (%s || %s)", strings.Join(p[:len(t.LHS)], ", "), p[len(t.LHS)])
	}
	return b.String()
}

// CFDs expands the tableau back into single-pattern CFDs.
func (t TableauCFD) CFDs() []CFD {
	out := make([]CFD, 0, len(t.Patterns))
	for _, p := range t.Patterns {
		out = append(out, CFD{
			LHS:        append([]string(nil), t.LHS...),
			RHS:        t.RHS,
			LHSPattern: append([]string(nil), p[:len(t.LHS)]...),
			RHSPattern: p[len(t.LHS)],
		})
	}
	return out
}

// BuildTableaux groups single-pattern CFDs by their embedded FD (the pair of
// LHS attribute set and RHS attribute) and collects their pattern tuples into
// pattern tableaux, following the equivalence of §2.3. Pattern rows are sorted
// for deterministic output.
func BuildTableaux(cfds []CFD) []TableauCFD {
	type key struct {
		lhs string
		rhs string
	}
	groups := make(map[key]*TableauCFD)
	var order []key
	for _, c := range cfds {
		n := c.Normalize()
		k := key{lhs: strings.Join(n.LHS, ","), rhs: n.RHS}
		t, ok := groups[k]
		if !ok {
			t = &TableauCFD{LHS: n.LHS, RHS: n.RHS}
			groups[k] = t
			order = append(order, k)
		}
		row := append(append([]string(nil), n.LHSPattern...), n.RHSPattern)
		t.Patterns = append(t.Patterns, row)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].rhs != order[j].rhs {
			return order[i].rhs < order[j].rhs
		}
		return order[i].lhs < order[j].lhs
	})
	out := make([]TableauCFD, 0, len(order))
	for _, k := range order {
		t := groups[k]
		sort.Slice(t.Patterns, func(i, j int) bool {
			return strings.Join(t.Patterns[i], "\x00") < strings.Join(t.Patterns[j], "\x00")
		})
		out = append(out, *t)
	}
	return out
}

// TableauSupport returns the support of the tableau CFD on the relation, which
// the paper defines as the minimum support over its pattern tuples (§2.3).
// A tableau without patterns has support 0.
func (r *Relation) TableauSupport(t TableauCFD) (int, error) {
	if len(t.Patterns) == 0 {
		return 0, nil
	}
	minSup := -1
	for _, c := range t.CFDs() {
		s, err := r.Support(c)
		if err != nil {
			return 0, err
		}
		if minSup < 0 || s < minSup {
			minSup = s
		}
	}
	return minSup, nil
}

// SatisfiesTableau reports whether the relation satisfies every pattern tuple
// of the tableau CFD.
func (r *Relation) SatisfiesTableau(t TableauCFD) (bool, error) {
	for _, c := range t.CFDs() {
		ok, err := r.Satisfies(c)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
