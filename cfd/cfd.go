package cfd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// CFD is a conditional functional dependency (X → A, tp) written with
// attribute names and string constants. LHSPattern[i] is the pattern entry for
// LHS[i]; entries and RHSPattern are either constants or the Wildcard "_".
type CFD struct {
	LHS        []string
	RHS        string
	LHSPattern []string
	RHSPattern string
}

// NewFD returns the CFD form of a plain functional dependency X → A: every
// pattern entry is the unnamed variable.
func NewFD(lhs []string, rhs string) CFD {
	pattern := make([]string, len(lhs))
	for i := range pattern {
		pattern[i] = Wildcard
	}
	return CFD{LHS: append([]string(nil), lhs...), RHS: rhs, LHSPattern: pattern, RHSPattern: Wildcard}
}

// IsConstant reports whether the CFD is a constant CFD (every pattern entry is
// a constant).
func (c CFD) IsConstant() bool {
	if c.RHSPattern == Wildcard {
		return false
	}
	for _, p := range c.LHSPattern {
		if p == Wildcard {
			return false
		}
	}
	return true
}

// IsVariable reports whether the CFD is a variable CFD (its RHS pattern entry
// is the unnamed variable).
func (c CFD) IsVariable() bool { return c.RHSPattern == Wildcard }

// IsFD reports whether the CFD is a plain functional dependency: every pattern
// entry, left and right, is the unnamed variable.
func (c CFD) IsFD() bool {
	if c.RHSPattern != Wildcard {
		return false
	}
	for _, p := range c.LHSPattern {
		if p != Wildcard {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness: the pattern has one entry per
// LHS attribute, attribute names are non-empty, and the RHS does not repeat an
// LHS attribute.
func (c CFD) Validate() error {
	if len(c.LHS) != len(c.LHSPattern) {
		return fmt.Errorf("cfd: %d LHS attributes but %d pattern entries", len(c.LHS), len(c.LHSPattern))
	}
	if c.RHS == "" {
		return fmt.Errorf("cfd: empty RHS attribute")
	}
	seen := make(map[string]bool, len(c.LHS))
	for _, a := range c.LHS {
		if a == "" {
			return fmt.Errorf("cfd: empty LHS attribute name")
		}
		if seen[a] {
			return fmt.Errorf("cfd: duplicate LHS attribute %q", a)
		}
		seen[a] = true
	}
	if seen[c.RHS] {
		return fmt.Errorf("cfd: RHS attribute %q also appears in the LHS (trivial CFD)", c.RHS)
	}
	return nil
}

// String renders the CFD in the paper's notation, e.g.
// "([CC,AC] -> CT, (01, 908 || MH))". Attributes are shown in the order given.
// Names and constants that would collide with the notation's separators are
// double-quoted, so the output always parses back with Parse.
func (c CFD) String() string {
	var b strings.Builder
	b.WriteString("([")
	for i, a := range c.LHS {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quoteToken(a))
	}
	b.WriteString("] -> ")
	b.WriteString(quoteToken(c.RHS))
	b.WriteString(", (")
	for i, p := range c.LHSPattern {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteToken(p))
	}
	b.WriteString(" || ")
	b.WriteString(quoteToken(c.RHSPattern))
	b.WriteString("))")
	return b.String()
}

// Normalize returns a copy with LHS attributes (and their pattern entries)
// sorted by attribute name, so that structurally equal CFDs compare equal.
func (c CFD) Normalize() CFD {
	idx := make([]int, len(c.LHS))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return c.LHS[idx[i]] < c.LHS[idx[j]] })
	out := CFD{RHS: c.RHS, RHSPattern: c.RHSPattern}
	for _, i := range idx {
		out.LHS = append(out.LHS, c.LHS[i])
		out.LHSPattern = append(out.LHSPattern, c.LHSPattern[i])
	}
	return out
}

// Equal reports whether two CFDs are the same dependency, ignoring the order
// in which LHS attributes are listed.
func (c CFD) Equal(o CFD) bool {
	a, b := c.Normalize(), o.Normalize()
	if a.RHS != b.RHS || a.RHSPattern != b.RHSPattern || len(a.LHS) != len(b.LHS) {
		return false
	}
	for i := range a.LHS {
		if a.LHS[i] != b.LHS[i] || a.LHSPattern[i] != b.LHSPattern[i] {
			return false
		}
	}
	return true
}

// Encode translates the CFD into the dictionary-encoded form used by the
// discovery algorithms, against the dictionaries of r. Constants absent from
// an attribute's active domain are rejected (such a CFD can never have
// positive support on r).
func Encode(r *Relation, c CFD) (core.CFD, error) {
	if err := c.Validate(); err != nil {
		return core.CFD{}, err
	}
	inner := r.Encoded()
	schema := inner.Schema()
	rhs, ok := schema.Index(c.RHS)
	if !ok {
		return core.CFD{}, fmt.Errorf("cfd: unknown RHS attribute %q", c.RHS)
	}
	lhs := core.EmptyAttrSet
	tp := core.NewPattern(schema.Arity())
	for i, name := range c.LHS {
		a, ok := schema.Index(name)
		if !ok {
			return core.CFD{}, fmt.Errorf("cfd: unknown LHS attribute %q", name)
		}
		lhs = lhs.Add(a)
		if c.LHSPattern[i] != Wildcard {
			code, ok := inner.Dict(a).Lookup(c.LHSPattern[i])
			if !ok {
				return core.CFD{}, fmt.Errorf("cfd: constant %q is not in the active domain of %s", c.LHSPattern[i], name)
			}
			tp[a] = code
		}
	}
	if c.RHSPattern != Wildcard {
		code, ok := inner.Dict(rhs).Lookup(c.RHSPattern)
		if !ok {
			return core.CFD{}, fmt.Errorf("cfd: constant %q is not in the active domain of %s", c.RHSPattern, c.RHS)
		}
		tp[rhs] = code
	}
	return core.CFD{LHS: lhs, RHS: rhs, Tp: tp}, nil
}

// Decode translates an encoded CFD back into the public representation, using
// the dictionaries of r. LHS attributes appear in schema order.
func Decode(r *Relation, c core.CFD) CFD {
	inner := r.Encoded()
	schema := inner.Schema()
	out := CFD{RHS: schema.Name(c.RHS), RHSPattern: Wildcard}
	if c.Tp[c.RHS] != core.Wildcard {
		out.RHSPattern = inner.Dict(c.RHS).Value(c.Tp[c.RHS])
	}
	c.LHS.ForEach(func(a int) {
		out.LHS = append(out.LHS, schema.Name(a))
		if c.Tp[a] == core.Wildcard {
			out.LHSPattern = append(out.LHSPattern, Wildcard)
		} else {
			out.LHSPattern = append(out.LHSPattern, inner.Dict(a).Value(c.Tp[a]))
		}
	})
	return out
}

// DecodeAll translates a slice of encoded CFDs.
func DecodeAll(r *Relation, cfds []core.CFD) []CFD {
	out := make([]CFD, len(cfds))
	for i, c := range cfds {
		out[i] = Decode(r, c)
	}
	return out
}

// Satisfies reports whether the relation satisfies the CFD under the exact
// pair semantics of the paper (§2.1.2).
func (r *Relation) Satisfies(c CFD) (bool, error) {
	enc, err := Encode(r, c)
	if err != nil {
		return false, err
	}
	return core.Satisfies(r.inner, enc), nil
}

// Violations returns the indexes of tuples involved in at least one violation
// of the CFD.
func (r *Relation) Violations(c CFD) ([]int, error) {
	enc, err := Encode(r, c)
	if err != nil {
		return nil, err
	}
	return core.Violations(r.inner, enc), nil
}

// Support returns |sup(c, r)|: the number of tuples matching the CFD's pattern
// on LHS ∪ {RHS} (§2.2.2).
func (r *Relation) Support(c CFD) (int, error) {
	enc, err := Encode(r, c)
	if err != nil {
		return 0, err
	}
	return core.Support(r.inner, enc), nil
}

// IsMinimal reports whether the CFD is minimal on the relation: nontrivial,
// satisfied and left-reduced (§2.2.1).
func (r *Relation) IsMinimal(c CFD) (bool, error) {
	enc, err := Encode(r, c)
	if err != nil {
		return false, err
	}
	return core.IsMinimal(r.inner, enc), nil
}

// SortCFDs orders CFDs deterministically (by RHS, then LHS, then patterns),
// which keeps reports and test output stable.
func SortCFDs(cfds []CFD) {
	sort.Slice(cfds, func(i, j int) bool {
		a, b := cfds[i].Normalize(), cfds[j].Normalize()
		return a.String() < b.String()
	})
}

// CountClasses returns how many of the given CFDs are constant and how many
// are variable (CFDs that are neither — constant RHS with wildcard LHS entries
// — are counted as constant, following Lemma 1's normalisation).
func CountClasses(cfds []CFD) (constant, variable int) {
	for _, c := range cfds {
		if c.IsVariable() {
			variable++
		} else {
			constant++
		}
	}
	return constant, variable
}
