package cfd_test

import (
	"testing"

	"repro/cfd"
)

// FuzzParse checks that Parse and String are a closed pair: any input Parse
// accepts must render to a string that parses back to the same CFD, and the
// rendering must be canonical (String of the reparse is byte-identical). This
// is the round-trip contract cfddiscover's rule files, cfdclean -rules and
// cfdserve -rules rely on.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"([CC,AC] -> CT, (01, _ || MH))",
		"([ZIP] -> STR, (_ || _))",
		"([] -> CC, ( || 01))",
		"( [ CC ] ->  CT , ( 44 || EDI ) )",
		`(["a,b"] -> B, ("x(" || "y,z"))`,
		`([A] -> "we]ird", (_ || "||"))`,
		`([A] -> B, ("" || " spaced "))`,
		`([A,B] -> C, (v"1, v2 || w))`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := cfd.Parse(s)
		if err != nil {
			t.Skip()
		}
		rendered := c.String()
		back, err := cfd.Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded but its rendering %q does not parse: %v", s, rendered, err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip changed the CFD: %q parsed to %#v, rendering %q parsed to %#v", s, c, rendered, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not canonical: %q then %q", rendered, again)
		}
	})
}

// FuzzFormat drives the opposite direction: an arbitrary structurally valid
// CFD — whatever bytes its attribute names and constants contain — must
// survive String → Parse unchanged. This is what catches the historical
// escaping bugs (values containing ',', '(', ']', '|', quotes, or surrounding
// whitespace).
func FuzzFormat(f *testing.F) {
	f.Add("CC", "AC", "CT", "01", "_", "MH")
	f.Add("a,b", "c(d", "e]f", "_", "\"q\"", " spaced ")
	f.Add("A", "B", "C", "", "v|w", "x\\y")
	f.Add("A", "B", "C", "_", "_", "_")
	f.Fuzz(func(t *testing.T, a1, a2, rhs, p1, p2, pr string) {
		c := cfd.CFD{
			LHS:        []string{a1, a2},
			RHS:        rhs,
			LHSPattern: []string{p1, p2},
			RHSPattern: pr,
		}
		if c.Validate() != nil {
			t.Skip()
		}
		rendered := c.String()
		back, err := cfd.Parse(rendered)
		if err != nil {
			t.Fatalf("%#v rendered as %q, which does not parse: %v", c, rendered, err)
		}
		if !back.Equal(c) {
			t.Fatalf("%#v rendered as %q, which parsed to %#v", c, rendered, back)
		}
	})
}
