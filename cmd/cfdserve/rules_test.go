package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/rules"
)

// doRaw sends a request with a raw (non-JSON-encoded) body and returns the
// decoded JSON response.
func doRaw(t *testing.T, method, url, body string, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	out := make(map[string]any)
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return out
}

// TestPutRulesLifecycle drives the hot-swap path over HTTP: upload a new
// rule file, watch the delta, the version etag and the violation report all
// move together, then feed the served JSON straight back (a no-op swap).
func TestPutRulesLifecycle(t *testing.T) {
	ts := newTestServer(t)

	before := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)
	v0 := before["version"].(string)
	if v0 == "" {
		t.Fatal("GET /rules must report a version")
	}
	health := do(t, "GET", ts.URL+"/health", nil, http.StatusOK)
	if health["rules_version"] != v0 {
		t.Fatalf("health rules_version %v, want %v", health["rules_version"], v0)
	}

	// Swap: keep the street FD, drop the constant city rule, add a fresh FD.
	out := doRaw(t, "PUT", ts.URL+"/rules",
		"([CC,ZIP] -> STR, (_, _ || _))\n([NM] -> PN, (_ || _))\n", http.StatusOK)
	if out["swapped"] != true || out["rules"].(float64) != 2 {
		t.Fatalf("swap response = %v", out)
	}
	delta := out["delta"].(map[string]any)
	if added := delta["added"].([]any); len(added) != 1 {
		t.Fatalf("delta added = %v, want the NM->PN FD", added)
	}
	if removed := delta["removed"].([]any); len(removed) != 1 {
		t.Fatalf("delta removed = %v, want the AC->CT rule", removed)
	}
	if delta["retained"].(float64) != 1 {
		t.Fatalf("delta retained = %v", delta["retained"])
	}

	after := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)
	v1 := after["version"].(string)
	if v1 == v0 || v1 != out["version"].(string) {
		t.Fatalf("version after swap = %q (before %q, response %q)", v1, v0, out["version"])
	}
	// The constant-rule violations {4,5,7} are gone; only FD groups remain.
	viol := do(t, "GET", ts.URL+"/violations", nil, http.StatusOK)
	if got := viol["rules_checked"].(float64); got != 2 {
		t.Fatalf("rules_checked = %v after swap", got)
	}

	// Feeding the served ruleset document back is a no-op swap.
	raw, err := json.Marshal(after["ruleset"])
	if err != nil {
		t.Fatal(err)
	}
	out = doRaw(t, "PUT", ts.URL+"/rules", string(raw), http.StatusOK)
	if out["swapped"] != false || out["version"].(string) != v1 {
		t.Fatalf("round-trip swap response = %v", out)
	}

	// Bad uploads are rejected without touching the serving set: a file that
	// does not parse is 400, one that parses but names an unknown attribute
	// is rejected by the swap as 422.
	doRaw(t, "PUT", ts.URL+"/rules", "this is not a rule file", http.StatusBadRequest)
	doRaw(t, "PUT", ts.URL+"/rules", "([BOGUS] -> CT, (_ || _))\n", http.StatusUnprocessableEntity)
	if got := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)["version"].(string); got != v1 {
		t.Fatalf("version moved to %q after rejected uploads", got)
	}
}

// TestRulesETag: GET /rules serves the version fingerprint as an ETag and
// honours If-None-Match until a swap changes the rules.
func TestRulesETag(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("GET /rules must set an ETag")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/rules", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET with current etag: status %d, want 304", resp.StatusCode)
	}

	doRaw(t, "PUT", ts.URL+"/rules", "([CC,ZIP] -> STR, (_, _ || _))\n", http.StatusOK)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after swap: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Fatal("etag must change when the rules do")
	}
}

// TestETagForms: If-Match/If-None-Match accept the RFC 9110 forms — "*"
// (match-any), comma-separated lists, weak W/ tags — on the parsing helpers
// and over HTTP.
func TestETagForms(t *testing.T) {
	match := []struct {
		header, version string
		want            bool
	}{
		{`"v1"`, "v1", true},
		{`"v1"`, "v2", false},
		{`*`, "anything", true},
		{`*`, "", false}, // match-any still needs a current version
		{`"v1", "v2"`, "v2", true},
		{`W/"v1", "v2"`, "v1", true},
		{`"v1" , *`, "v3", true},
		{``, "v1", false},
	}
	for _, tc := range match {
		if got := etagMatch(tc.header, tc.version); got != tc.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", tc.header, tc.version, got, tc.want)
		}
	}
	if tags, any := etagList(`W/"v1", "v2"`); any || len(tags) != 2 || tags[0] != "v1" || tags[1] != "v2" {
		t.Fatalf(`etagList(W/"v1", "v2") = %v, %v`, tags, any)
	}
	if tags, any := etagList(`"v1", *`); !any || tags != nil {
		t.Fatalf(`etagList("v1", *) = %v, %v — "*" anywhere must mean match-any`, tags, any)
	}

	ts := newTestServer(t)
	cur := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)["version"].(string)
	put := func(ifMatch string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest("PUT", ts.URL+"/rules", strings.NewReader("([CC,ZIP] -> STR, (_, _ || _))\n"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-Match", ifMatch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("PUT /rules with If-Match %s: status %d, want %d", ifMatch, resp.StatusCode, wantStatus)
		}
	}
	put(`"stale"`, http.StatusConflict)
	put(`"stale", "`+cur+`"`, http.StatusOK) // list naming the current version
	put(`*`, http.StatusOK)                  // match-any, not a literal version

	// If-None-Match: * matches whatever is served — always 304 on GET.
	req, _ := http.NewRequest("GET", ts.URL+"/rules", nil)
	req.Header.Set("If-None-Match", "*")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("GET /rules with If-None-Match *: status %d, want 304", resp.StatusCode)
	}
}

// TestRemineEndpoint: a synchronous remine over the live tuples swaps in the
// discovered rules, records the run for /health, and a second remine over
// unchanged data keeps the serving set by fingerprint.
func TestRemineEndpoint(t *testing.T) {
	ts := newTestServer(t) // config carries support=2, maxlhs=2 for remining

	v0 := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)["version"].(string)
	out := do(t, "POST", ts.URL+"/rules/remine?wait=1", nil, http.StatusOK)
	if out["error"] != nil {
		t.Fatalf("remine failed: %v", out["error"])
	}
	if out["tuples"].(float64) != 8 || out["swapped"] != true {
		t.Fatalf("remine result = %v", out)
	}
	if el, ok := out["elapsed"].(string); !ok || el == "" {
		t.Fatalf("remine result must record its elapsed time: %v", out)
	}
	v1 := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)["version"].(string)
	if v1 == v0 || v1 != out["version"].(string) {
		t.Fatalf("version after remine = %q (before %q, result %v)", v1, v0, out)
	}
	// The remined provenance is served.
	health := do(t, "GET", ts.URL+"/health", nil, http.StatusOK)
	last := health["last_remine"].(map[string]any)
	if last["swapped"] != true || health["rules_version"] != v1 {
		t.Fatalf("health after remine = %v", health)
	}

	// Unchanged data: same fingerprint, no swap.
	out = do(t, "POST", ts.URL+"/rules/remine?wait=1", nil, http.StatusOK)
	if out["swapped"] != false || out["version"].(string) != v1 {
		t.Fatalf("second remine result = %v", out)
	}

	// Async flavour: accepted and eventually recorded.
	if resp, err := http.Post(ts.URL+"/rules/remine", "", nil); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async remine status %d, want 202", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestStateRestartAfterSwap is the durability acceptance check for the rule
// lifecycle: a hot swap followed by mutations and a kill (no final
// compaction, WAL replay) or a graceful close must restart into a
// byte-identical /violations report under the *new* rule set.
func TestStateRestartAfterSwap(t *testing.T) {
	for _, graceful := range []bool{false, true} {
		t.Run(map[bool]string{false: "crash-replay", true: "graceful-compacted"}[graceful], func(t *testing.T) {
			dir := t.TempDir()
			sv, err := buildServing(fixtureConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(newServer(sv.eng, sv.store, config{compactEvery: 4096}).handler())
			// Mutate, swap live, then mutate again under the new rules.
			mutate(t, ts.URL)
			swap := doRaw(t, "PUT", ts.URL+"/rules",
				"([CC,ZIP] -> STR, (_, _ || _))\n([NM] -> PN, (_ || _))\n", http.StatusOK)
			if swap["swapped"] != true {
				t.Fatalf("swap response = %v", swap)
			}
			do(t, "POST", ts.URL+"/tuples", map[string]any{
				"values": []string{"01", "908", "3333333", "Zoe", "Tree Ave.", "MH", "07974"},
			}, http.StatusOK)
			want := getRaw(t, ts.URL+"/violations")
			wantRules := getRaw(t, ts.URL+"/rules")
			ts.Close()
			if graceful {
				if err := sv.close(); err != nil {
					t.Fatal(err)
				}
			} else if err := sv.store.Close(); err != nil {
				t.Fatal(err)
			}

			sv2, err := buildServing(config{statePath: dir, compactEvery: 4096})
			if err != nil {
				t.Fatal(err)
			}
			defer sv2.close()
			ts2 := httptest.NewServer(newServer(sv2.eng, sv2.store, config{compactEvery: 4096}).handler())
			defer ts2.Close()
			if got := getRaw(t, ts2.URL+"/violations"); !bytes.Equal(got, want) {
				t.Fatalf("restarted /violations differs:\n%s\nvs\n%s", got, want)
			}
			if got := getRaw(t, ts2.URL+"/rules"); !bytes.Equal(got, wantRules) {
				t.Fatalf("restarted /rules differs:\n%s\nvs\n%s", got, wantRules)
			}
			set, err := rules.Parse(string(wantRules))
			if err != nil {
				t.Fatal(err)
			}
			if set.Len() != 2 {
				t.Fatalf("restarted server serves %d rules, want the 2 swapped-in ones", set.Len())
			}
		})
	}
}
