// Command cfdserve serves CFD violation detection over HTTP: the serving side
// of the paper's workflow, where discovered rules become live data-quality
// checks. The rule set comes from a rule file — either the text format of
// cfddiscover -o or the rules.Set JSON served by GET /v1/rules, sniffed
// automatically — or is discovered on a trusted sample at startup; tuples are
// then bulk loaded from a CSV and kept current through the API, with the
// repro/violation engine maintaining per-rule indexes so every mutation costs
// O(rules), not a rescan. The engine is safe under concurrent load: reads
// serve immutable epoch snapshots, mutations are serialised and fanned out
// across rule shards.
//
// Usage:
//
//	cfdserve -rules rules.txt -data dirty.csv
//	cfdserve -sample clean.csv -support 10 -addr :8080
//	cfdserve -rules rules.txt -data dirty.csv -state ./state   # durable
//	cfdserve -state ./state                                    # restart
//	cfdserve -coordinator -shards http://a:8081,http://b:8081  # cluster front
//
// API (versioned under /v1; API.md in the repository root is the full wire
// contract — error envelope, pagination, the delta format):
//
//	GET    /v1/health                  engine size, rule count + version,
//	                                   dirty estimate, epoch, WAL backlog,
//	                                   last remine
//	GET    /v1/rules                   the served rule set as rules.Set JSON
//	                                   (rules, tableaux, provenance, schema),
//	                                   with its version as the ETag
//	PUT    /v1/rules                   upload a rule file (text or JSON) and
//	                                   atomically swap the served set —
//	                                   conditionally under If-Match; responds
//	                                   with the added/removed/retained delta
//	POST   /v1/rules/remine            re-mine rules over the live tuples in
//	                                   the background and swap if they changed
//	                                   (?wait=1 runs synchronously)
//	GET    /v1/violations              full snapshot: per-rule tuples + dirty
//	                                   set, stamped with its epoch; ?since=N
//	                                   returns the exact delta since that
//	                                   epoch instead (410 once compacted)
//	GET    /v1/violations/stream       the same deltas live, as SSE — one
//	                                   event per commit
//	GET    /v1/suspects                tuples most likely erroneous (repair
//	                                   view)
//	GET    /v1/tuples                  bulk export in id order (limit/cursor)
//	POST   /v1/tuples                  insert {"values":[...]} or
//	                                   {"rows":[[...]]} (a rows batch is
//	                                   atomic)
//	POST   /v1/batch                   atomic mixed batch
//	                                   {"ops":[{"op":"insert","values":[...]},
//	                                   {"op":"delete","id":3},{"op":"update",
//	                                   "id":2,"values":[...]}]}
//	GET    /v1/tuples/{id}             one tuple's values
//	GET    /v1/tuples/{id}/violations  rules the tuple violates
//	PUT    /v1/tuples/{id}             replace {"values":[...]}
//	DELETE /v1/tuples/{id}             remove the tuple
//
// Endpoints that predate versioning are also served at their historical
// unversioned paths as deprecated aliases; those responses carry a
// Deprecation header and a Link to the /v1 successor.
//
// The rule set is live: PUT /v1/rules and POST /v1/rules/remine (or the periodic
// -remine-every loop) swap it atomically while traffic proceeds, and on a
// durable server the swap is write-ahead logged, so a restart — graceful or
// not — always comes back under the rule set it last served. -support and
// -maxlhs double as the remine discovery parameters.
//
// With -state <dir> the server is durable: every mutation is appended to a
// JSONL write-ahead log before it is applied, and snapshots are compacted in
// the background every -compact-every ops (plus once at startup and once at
// graceful shutdown). A restarted server replays snapshot + WAL and serves a
// byte-identical /v1/violations report, tuple ids included. -fsync trades
// ingest latency for durability against machine crashes rather than just
// process exits.
//
// With -coordinator the process holds no tuples at all: it fronts the
// -shards fleet of ordinary cfdserve nodes, routing writes by partition key
// (derived from the served rules, or -partition-by), assigning globally
// unique tuple ids, scatter-gathering reads into deterministically merged
// reports, and driving PUT /v1/rules as a two-phase all-or-nothing swap
// across every shard. Reads fail closed with 503 {"code":"unavailable"}
// when a shard is unreachable; GET /v1/health instead degrades, reporting
// per-shard status. See the Coordinator mode section of API.md and the
// Cluster section of ARCHITECTURE.md.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and compacting a final snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cfd"
	"repro/discovery"
	"repro/discovery/monitor"
	"repro/obs"
	"repro/rules"
)

// config carries the parsed command line.
type config struct {
	addr      string
	rulesPath string
	dataPath  string
	schema    []string
	workers   int

	samplePath string
	support    int
	maxLHS     int

	statePath    string
	fsync        bool
	compactEvery int
	remineEvery  time.Duration
	remineLimit  int

	maintain           bool
	maintainDrift      float64
	maintainConfidence float64
	maintainMinSupport int
	maintainEpochs     uint64
	maintainInterval   time.Duration

	coordinator  bool
	shardURLs    []string
	partitionBy  []string
	shardTimeout time.Duration
	initWait     time.Duration

	debugAddr string
	logLevel  string
	logFormat string
	logw      io.Writer // log destination override (tests); nil = stderr
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		rules        = flag.String("rules", "", "rule file: cfddiscover -o text or rules.Set JSON (as served by GET /v1/rules)")
		data         = flag.String("data", "", "CSV file to bulk load at startup (header row required)")
		schema       = flag.String("schema", "", "comma-separated attribute names (needed only without -data/-sample)")
		workers      = flag.Int("workers", 0, "worker goroutines for bulk loads, batches and snapshots (0 = one per CPU)")
		sample       = flag.String("sample", "", "trusted CSV sample to discover rules from (alternative to -rules)")
		support      = flag.Int("support", 10, "support threshold used when discovering rules from -sample")
		maxLHS       = flag.Int("maxlhs", 3, "LHS bound used when discovering rules from -sample")
		state        = flag.String("state", "", "state directory for the write-ahead log and snapshots (empty = memory-only)")
		fsync        = flag.Bool("fsync", false, "fsync the write-ahead log on every commit (durable against machine crashes)")
		compactEvery = flag.Int("compact-every", 4096, "background-compact a snapshot every N logged ops (0 = only at startup/shutdown)")
		remineEvery  = flag.Duration("remine-every", 0, "re-mine rules over the live tuples on this interval and hot-swap them when changed; ticks with an unmoved epoch are skipped (0 = only on POST /v1/rules/remine)")
		remineLimit  = flag.Int("remine-limit", 0, "bound every remine run to the first N mined rules, keeping maintenance mining cheap (0 = mine the full cover)")
		maintain     = flag.Bool("maintain", false, "continuously maintain the rule set: track live per-rule support/confidence and remine only when the -maintain-* policy says the data drifted (replaces -remine-every)")
		maintDrift   = flag.Float64("maintain-drift", 0.25, "trigger a remine when a rule's live support drifts more than this fraction from its value at adoption (0 disables)")
		maintConf    = flag.Float64("maintain-confidence", 0.95, "trigger a remine when a rule's live confidence falls below this floor (0 disables)")
		maintMinSupp = flag.Int("maintain-min-support", 0, "exempt rules under this many supporting tuples from the drift/confidence clauses (0 = use -support)")
		maintEpochs  = flag.Uint64("maintain-epochs", 0, "trigger a remine after this many mutation epochs regardless of per-rule drift (0 disables)")
		maintEvery   = flag.Duration("maintain-interval", 30*time.Second, "minimum spacing between maintenance-triggered remines")
		coordinator  = flag.Bool("coordinator", false, "serve as a cluster coordinator over the -shards fleet instead of holding tuples locally")
		shards       = flag.String("shards", "", "comma-separated shard base URLs for -coordinator, e.g. http://10.0.0.7:8081,http://10.0.0.8:8081 (shard order is part of the cluster identity)")
		partitionBy  = flag.String("partition-by", "", "comma-separated partition key attributes for -coordinator (default: derived from the served rules)")
		shardTimeout = flag.Duration("shard-timeout", 5*time.Second, "per-request timeout for coordinator-to-shard round trips")
		initWait     = flag.Duration("init-wait", 30*time.Second, "how long the coordinator retries contacting its shards at startup before giving up")
		debugAddr    = flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = disabled)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()

	cfg := config{
		addr: *addr, rulesPath: *rules, dataPath: *data, workers: *workers,
		samplePath: *sample, support: *support, maxLHS: *maxLHS,
		statePath: *state, fsync: *fsync, compactEvery: *compactEvery,
		remineEvery: *remineEvery, remineLimit: *remineLimit,
		maintain: *maintain, maintainDrift: *maintDrift, maintainConfidence: *maintConf,
		maintainMinSupport: *maintMinSupp, maintainEpochs: *maintEpochs, maintainInterval: *maintEvery,
		coordinator: *coordinator, shardTimeout: *shardTimeout, initWait: *initWait,
		debugAddr: *debugAddr, logLevel: *logLevel, logFormat: *logFormat,
	}
	if *schema != "" {
		for _, a := range strings.Split(*schema, ",") {
			cfg.schema = append(cfg.schema, strings.TrimSpace(a))
		}
	}
	cfg.shardURLs = splitList(*shards)
	cfg.partitionBy = splitList(*partitionBy)

	// Validate and install the process logger before anything can log:
	// buildServing and the libraries log through slog.Default, the per-request
	// access log through the same handler with the request id attached.
	logger, err := obs.NewLogger(os.Stderr, cfg.logLevel, cfg.logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	if cfg.coordinator {
		if err := runCoordinator(cfg, logger); err != nil {
			fatal(err)
		}
		return
	}

	sv, err := buildServing(cfg)
	if err != nil {
		fatal(err)
	}
	logger.Info("serving state loaded",
		"rules", len(sv.eng.Rules()), "attributes", len(sv.eng.Attributes()), "tuples", sv.eng.Size())
	if sv.store != nil {
		logger.Info("durable state attached",
			"state_dir", sv.store.Dir(), "fsync", cfg.fsync, "compact_every", cfg.compactEvery)
	}

	h := newServer(sv.eng, sv.store, cfg)
	srv := &http.Server{Addr: cfg.addr, Handler: h.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	h.baseCtx = ctx // bounds background remines at shutdown

	// The pprof endpoints live on their own listener, never the serving
	// address: profiling stays reachable when the API is saturated, and the
	// serving port exposes no debug surface.
	if cfg.debugAddr != "" {
		go func() {
			logger.Info("debug listener on", "addr", cfg.debugAddr)
			if err := http.ListenAndServe(cfg.debugAddr, debugMux()); err != nil {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	// The loop runs remines synchronously on its own goroutine, so waiting
	// for loopDone at shutdown covers an in-flight periodic or
	// maintenance-triggered remine.
	loopDone := make(chan struct{})
	switch {
	case cfg.maintain:
		if cfg.remineEvery > 0 {
			sv.close()
			fatal(errors.New("-maintain replaces the blind -remine-every tick; set only one of them"))
		}
		pol := maintainPolicy(cfg)
		mon := monitor.New(sv.eng, pol, h.maintainRemine, monitor.WithObserver(h.obs))
		h.mon = mon
		logger.Info("continuous rule maintenance enabled",
			"drift", pol.MaxSupportDrift, "confidence", pol.MinConfidence,
			"min_support", pol.MinSupport, "epochs", pol.MaxEpochs,
			"interval", pol.MinInterval.String(), "remine_limit", cfg.remineLimit)
		go func() {
			defer close(loopDone)
			mon.Run(ctx)
		}()
	case cfg.remineEvery > 0:
		logger.Info("periodic remining enabled",
			"every", cfg.remineEvery.String(), "support", cfg.support, "maxlhs", cfg.maxLHS)
		go func() {
			defer close(loopDone)
			h.remineLoop(ctx, cfg.remineEvery)
		}()
	default:
		close(loopDone)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			sv.close()
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			sv.close()
			fatal(err)
		}
		// In-flight requests, background compactions and remines are
		// drained: fold the WAL into a final snapshot so the next start
		// replays nothing.
		<-loopDone
		h.drainBackground()
		if err := sv.close(); err != nil {
			fatal(err)
		}
	}
}

// splitList splits a comma-separated flag value into trimmed, non-empty
// entries.
func splitList(raw string) []string {
	var out []string
	for _, v := range strings.Split(raw, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// runCoordinator is the -coordinator serving path: no engine, no store — the
// process fronts the -shards fleet, forming the cluster (with startup
// retries while shards boot) and serving the coordinator API until
// SIGINT/SIGTERM. The coordinator is stateless, so shutdown is just draining
// in-flight requests; the shards own all durable state.
func runCoordinator(cfg config, logger *slog.Logger) error {
	if len(cfg.shardURLs) == 0 {
		return errors.New("-coordinator requires -shards")
	}
	if cfg.statePath != "" || cfg.dataPath != "" || cfg.rulesPath != "" || cfg.samplePath != "" {
		return errors.New("-coordinator holds no local state; -state/-data/-rules/-sample belong on the shard nodes")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cs, err := newCoordinator(ctx, cfg)
	if err != nil {
		return err
	}
	logger.Info("cluster formed",
		"shards", cs.cl.Shards(), "partition_key", strings.Join(cs.cl.Key(), ","),
		"schema", len(cs.cl.Schema()), "next_id", cs.cl.NextID())

	if cfg.debugAddr != "" {
		go func() {
			logger.Info("debug listener on", "addr", cfg.debugAddr)
			if err := http.ListenAndServe(cfg.debugAddr, debugMux()); err != nil {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	srv := &http.Server{Addr: cfg.addr, Handler: cs.handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("coordinator listening", "addr", cfg.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
	}
	return nil
}

// debugMux serves the net/http/pprof endpoints. An explicit mux, not
// http.DefaultServeMux, so nothing else a dependency registers globally leaks
// onto the debug port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// maintainPolicy resolves the -maintain-* flags to a monitor.Policy. The
// MinSupport default follows the discovery threshold: a rule the miners
// would not even report at the current -support should not drive remines.
func maintainPolicy(cfg config) monitor.Policy {
	minSupport := cfg.maintainMinSupport
	if minSupport <= 0 {
		minSupport = cfg.support
	}
	return monitor.Policy{
		MaxSupportDrift: cfg.maintainDrift,
		MinConfidence:   cfg.maintainConfidence,
		MinSupport:      minSupport,
		MaxEpochs:       cfg.maintainEpochs,
		MinInterval:     cfg.maintainInterval,
	}
}

// discoverRules mines the serving rule set on the given relation (the
// trusted startup sample, or the live tuples during a remine); the resulting
// set carries the discovery provenance, which GET /v1/rules exposes. A
// cancelled ctx aborts the mining run promptly. progress, when non-nil, is
// the discovery progress hook: called with the cumulative rule count after
// every streamed rule (the remine path counts candidates through it). limit
// bounds the run to the first N mined rules (-remine-limit; 0 = the full
// cover) — the remine paths pass it so maintenance mining stays cheap, while
// startup sample discovery always mines the full cover.
func discoverRules(ctx context.Context, sample *cfd.Relation, cfg config, limit int, progress func(found int)) (*rules.Set, error) {
	options := []discovery.Option{
		discovery.WithSupport(cfg.support),
		discovery.WithMaxLHS(cfg.maxLHS),
		discovery.WithWorkers(cfg.workers),
	}
	if limit > 0 {
		options = append(options, discovery.WithLimit(limit))
	}
	if progress != nil {
		options = append(options, discovery.WithProgress(progress))
	}
	eng := discovery.NewEngine(discovery.AlgFastCFD, sample, options...)
	return eng.Run(ctx)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdserve:", err)
	os.Exit(1)
}
