// Command cfdserve serves CFD violation detection over HTTP: the serving side
// of the paper's workflow, where discovered rules become live data-quality
// checks. The rule set comes from a rule file — either the text format of
// cfddiscover -o or the rules.Set JSON served by GET /rules, sniffed
// automatically — or is discovered on a trusted sample at startup; tuples are
// then bulk loaded from a CSV and kept current through the API, with the
// repro/violation engine maintaining per-rule indexes so every mutation costs
// O(rules), not a rescan.
//
// Usage:
//
//	cfdserve -rules rules.txt -data dirty.csv
//	cfdserve -sample clean.csv -support 10 -addr :8080
//
// API:
//
//	GET    /health                  engine size, rule count, dirty estimate
//	GET    /rules                   the served rule set as rules.Set JSON
//	                                (rules, tableaux, provenance, schema)
//	GET    /violations              full snapshot: per-rule tuples + dirty set
//	GET    /suspects                tuples most likely erroneous (repair view)
//	POST   /tuples                  insert {"values":[...]} or {"rows":[[...]]}
//	GET    /tuples/{id}             one tuple's values
//	GET    /tuples/{id}/violations  rules the tuple violates
//	PUT    /tuples/{id}             replace {"values":[...]}
//	DELETE /tuples/{id}             remove the tuple
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
	"repro/rules"
)

// config carries the parsed command line.
type config struct {
	addr      string
	rulesPath string
	dataPath  string
	schema    []string
	workers   int

	samplePath string
	support    int
	maxLHS     int
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		rules   = flag.String("rules", "", "rule file: cfddiscover -o text or rules.Set JSON (as served by GET /rules)")
		data    = flag.String("data", "", "CSV file to bulk load at startup (header row required)")
		schema  = flag.String("schema", "", "comma-separated attribute names (needed only without -data/-sample)")
		workers = flag.Int("workers", 0, "worker goroutines for the bulk load (0 = one per CPU)")
		sample  = flag.String("sample", "", "trusted CSV sample to discover rules from (alternative to -rules)")
		support = flag.Int("support", 10, "support threshold used when discovering rules from -sample")
		maxLHS  = flag.Int("maxlhs", 3, "LHS bound used when discovering rules from -sample")
	)
	flag.Parse()

	cfg := config{
		addr: *addr, rulesPath: *rules, dataPath: *data, workers: *workers,
		samplePath: *sample, support: *support, maxLHS: *maxLHS,
	}
	if *schema != "" {
		for _, a := range strings.Split(*schema, ",") {
			cfg.schema = append(cfg.schema, strings.TrimSpace(a))
		}
	}

	eng, err := loadEngine(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cfdserve: %d rules over %d attributes, %d tuples loaded\n",
		len(eng.Rules()), len(eng.Attributes()), eng.Size())

	srv := &http.Server{Addr: cfg.addr, Handler: newServer(eng).handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("cfdserve: listening on %s\n", cfg.addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("cfdserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
	}
}

func loadCSV(path string) (*cfd.Relation, error) {
	return dataset.LoadCSVFile(path)
}

// discoverRules mines the serving rule set on the trusted sample; the
// resulting set carries the discovery provenance, which GET /rules exposes.
func discoverRules(sample *cfd.Relation, cfg config) (*rules.Set, error) {
	eng := discovery.NewEngine(discovery.AlgFastCFD, sample,
		discovery.WithSupport(cfg.support),
		discovery.WithMaxLHS(cfg.maxLHS),
		discovery.WithWorkers(cfg.workers))
	return eng.Run(context.Background())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdserve:", err)
	os.Exit(1)
}
