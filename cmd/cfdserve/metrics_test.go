package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newObsServer builds a server like newTestServer but keeps the *server
// around so tests can reach the metrics registry and access-log plumbing.
func newObsServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	eng, err := loadEngine(config{
		rulesPath: "testdata/rules.txt",
		dataPath:  "testdata/cust.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, nil, config{support: 2, maxLHS: 2, logw: io.Discard})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestEveryRouteEmitsMetricsAndRequestID walks the whole route table: each
// endpoint must answer with an X-Request-Id header and leave a
// cfd_http_requests_total series labeled with its route pattern behind.
func TestEveryRouteEmitsMetricsAndRequestID(t *testing.T) {
	s, ts := newObsServer(t)
	for _, rt := range s.routes() {
		path := strings.ReplaceAll(rt.pattern, "{id}", "0")
		if rt.pattern == "/violations/stream" {
			path += "?since=notanepoch" // 400 fast instead of an open stream
		}
		req, err := http.NewRequest(rt.method, ts.URL+"/v1"+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", rt.method, path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if id := resp.Header.Get("X-Request-Id"); !validRequestID(id) {
			t.Errorf("%s /v1%s: X-Request-Id = %q, want a generated id", rt.method, path, id)
		}
	}

	scrape := metricsBody(t, ts)
	for _, rt := range s.routes() {
		series := fmt.Sprintf(`cfd_http_requests_total{route=%q,method=%q,`, rt.pattern, rt.method)
		if !strings.Contains(scrape, series) {
			t.Errorf("no request counter for %s %s:\nscrape has %s", rt.method, rt.pattern,
				grepLines(scrape, "cfd_http_requests_total"))
		}
		durSeries := fmt.Sprintf(`cfd_http_request_duration_seconds_count{route=%q,method=%q}`, rt.pattern, rt.method)
		if !strings.Contains(scrape, durSeries) {
			t.Errorf("no duration histogram for %s %s", rt.method, rt.pattern)
		}
	}
	// The scrape endpoint must not instrument itself.
	if strings.Contains(scrape, `route="/metrics"`) {
		t.Error("/metrics appears in its own request counters")
	}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("GET /metrics: Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsCoverAllLayers asserts one scrape exposes engine, WAL, HTTP and
// discovery families side by side (the WAL series via a durable server).
func TestMetricsCoverAllLayers(t *testing.T) {
	sv, err := buildServing(config{
		rulesPath: "testdata/rules.txt",
		dataPath:  "testdata/cust.csv",
		statePath: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.close() })
	s := newServer(sv.eng, sv.store, config{compactEvery: 4096, logw: io.Discard})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	do(t, "POST", ts.URL+"/v1/tuples",
		map[string]any{"values": []string{"01", "212", "5555555", "Ann", "5th Ave", "NYC", "01202"}},
		http.StatusOK)

	scrape := metricsBody(t, ts)
	for _, series := range []string{
		`cfd_engine_commits_total{kind="insert"} 1`,
		"cfd_engine_epoch",
		"cfd_engine_tuples 9",
		"cfd_engine_delta_ring_capacity",
		`cfd_wal_appends_total{result="ok"} 1`,
		"cfd_wal_pending_ops 1",
		`cfd_http_requests_total{route="/tuples",method="POST",code="2xx"} 1`,
		"cfd_http_in_flight_requests 0",
		"cfd_http_sse_subscribers 0",
		"cfd_remine_duration_seconds_count 0",
		"cfd_discovery_rules_streamed_total 0",
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("scrape missing %q:\n%s", series, grepLines(scrape, strings.SplitN(series, "{", 2)[0]))
		}
	}
	if !strings.HasSuffix(scrape, "# EOF\n") {
		t.Error("scrape missing the OpenMetrics EOF trailer")
	}
}

// TestRequestIDPropagation pins the client-facing id contract: a
// well-formed client id is adopted and echoed, a malformed one replaced,
// and error envelopes carry the id for log correlation.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newObsServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/health", nil)
	req.Header.Set("X-Request-Id", "client-id.42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id.42" {
		t.Errorf("valid client id not echoed: got %q", got)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/v1/health", nil)
	req.Header.Set("X-Request-Id", "spaces and punctuation!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "spaces and punctuation!" || !validRequestID(got) {
		t.Errorf("malformed client id must be replaced, got %q", got)
	}

	// Error envelopes carry the same id.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/tuples/999999", nil)
	req.Header.Set("X-Request-Id", "err-trace-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var envelope struct {
		Error map[string]string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error["request_id"] != "err-trace-1" {
		t.Errorf("error envelope request_id = %q, want err-trace-1", envelope.Error["request_id"])
	}
}

// TestAccessLog pins the structured access log: one line per request, with
// the request id, route and status attached.
func TestAccessLog(t *testing.T) {
	eng, err := loadEngine(config{
		rulesPath: "testdata/rules.txt",
		dataPath:  "testdata/cust.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	s := newServer(eng, nil, config{logw: &logBuf, logFormat: "json"})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/health", nil)
	req.Header.Set("X-Request-Id", "log-line-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var rec map[string]any
	if err := json.Unmarshal([]byte(logBuf.String()), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, logBuf.String())
	}
	if rec["msg"] != "request" || rec["request_id"] != "log-line-1" ||
		rec["route"] != "/health" || rec["method"] != "GET" || rec["status"] != float64(200) {
		t.Errorf("unexpected access log record: %v", rec)
	}
}

// TestHealthObservability pins the enriched health payload: in-flight state
// booleans and the delta-ring block.
func TestHealthObservability(t *testing.T) {
	_, ts := newObsServer(t)
	h := do(t, "GET", ts.URL+"/v1/health", nil, http.StatusOK)
	if h["compacting"] != false {
		t.Errorf("compacting = %v, want false", h["compacting"])
	}
	if h["remine_running"] != false {
		t.Errorf("remine_running = %v, want false", h["remine_running"])
	}
	ring, ok := h["delta_ring"].(map[string]any)
	if !ok {
		t.Fatalf("delta_ring missing or not an object: %v", h["delta_ring"])
	}
	for _, k := range []string{"occupancy", "capacity", "evictions", "compacted_reads", "waiters"} {
		if _, ok := ring[k]; !ok {
			t.Errorf("delta_ring missing %q: %v", k, ring)
		}
	}
	if _, ok := h["last_compaction_error"]; ok {
		t.Error("memory-only server must not report last_compaction_error")
	}
}
