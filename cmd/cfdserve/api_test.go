package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestRouteParity pins the /v1 API surface three ways: every route is served
// under /v1, every legacy alias answers with deprecation headers pointing at
// its successor (and /v1 itself does not), and API.md documents exactly the
// served routes — no more, no fewer.
func TestRouteParity(t *testing.T) {
	ts := newTestServer(t)
	s := &server{} // routes() is pure; only the handler fields differ

	probe := func(method, path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for _, rt := range s.routes() {
		path := strings.ReplaceAll(rt.pattern, "{id}", "0")
		if rt.pattern == "/violations/stream" {
			continue // long-lived; covered by TestViolationStream
		}
		v1 := probe(rt.method, "/v1"+path)
		// Routed: the mux's own not-found/method-not-allowed answers are
		// text/plain, every real handler speaks JSON.
		if ct := v1.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s /v1%s: content type %q, want JSON (unrouted?)", rt.method, path, ct)
		}
		if v1.Header.Get("Deprecation") != "" {
			t.Errorf("%s /v1%s must not carry a Deprecation header", rt.method, path)
		}
		if !rt.legacy {
			// No unversioned alias: the mux's own answer (404, or 405 when
			// another method owns the path) is text, never handler JSON.
			if legacy := probe(rt.method, path); strings.Contains(legacy.Header.Get("Content-Type"), "json") {
				t.Errorf("%s %s: /v1-only route must not have an unversioned alias", rt.method, path)
			}
			continue
		}
		legacy := probe(rt.method, path)
		// Statuses must agree on reads; mutating probes legitimately diverge
		// (the /v1 probe consumed the tuple, or holds the remine CAS guard).
		if rt.method == "GET" && legacy.StatusCode != v1.StatusCode {
			t.Errorf("%s %s: legacy status %d, /v1 status %d", rt.method, path, legacy.StatusCode, v1.StatusCode)
		}
		if legacy.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s: legacy alias must set Deprecation: true", rt.method, path)
		}
		if want := "</v1" + rt.pattern + `>; rel="successor-version"`; legacy.Header.Get("Link") != want {
			t.Errorf("%s %s: Link = %q, want %q", rt.method, path, legacy.Header.Get("Link"), want)
		}
	}

	// API.md lists exactly the served routes, as "### METHOD /v1/path".
	data, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatal(err)
	}
	headings := regexp.MustCompile(`(?m)^### (GET|PUT|POST|DELETE) (/v1\S*)$`).FindAllStringSubmatch(string(data), -1)
	documented := make([]string, 0, len(headings))
	for _, h := range headings {
		documented = append(documented, h[1]+" "+h[2])
	}
	served := make([]string, 0, len(s.routes()))
	for _, rt := range s.routes() {
		served = append(served, rt.method+" /v1"+rt.pattern)
	}
	sort.Strings(documented)
	sort.Strings(served)
	if strings.Join(documented, "\n") != strings.Join(served, "\n") {
		t.Errorf("API.md and the route table disagree\ndocumented:\n%s\nserved:\n%s",
			strings.Join(documented, "\n"), strings.Join(served, "\n"))
	}
}

// TestErrorEnvelope drives every error path through the API and asserts the
// uniform {"error":{"code","message"}} envelope with the pinned status and
// code.
func TestErrorEnvelope(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		header     [2]string
		wantStatus int
		wantCode   string
	}{
		{"tuple-unknown-id", "GET", "/v1/tuples/4242", "", [2]string{}, 404, "not_found"},
		{"tuple-violations-unknown-id", "GET", "/v1/tuples/4242/violations", "", [2]string{}, 404, "not_found"},
		{"tuple-bad-id", "GET", "/v1/tuples/abc", "", [2]string{}, 400, "bad_request"},
		{"delete-unknown-id", "DELETE", "/v1/tuples/4242", "", [2]string{}, 404, "not_found"},
		{"insert-undecodable", "POST", "/v1/tuples", "{not json", [2]string{}, 400, "bad_request"},
		{"insert-empty", "POST", "/v1/tuples", `{}`, [2]string{}, 400, "bad_request"},
		{"insert-bad-arity", "POST", "/v1/tuples", `{"values":["too","short"]}`, [2]string{}, 422, "unprocessable"},
		{"update-bad-arity", "PUT", "/v1/tuples/0", `{"values":["too","short"]}`, [2]string{}, 422, "unprocessable"},
		{"batch-unknown-op", "POST", "/v1/batch", `{"ops":[{"op":"frobnicate"}]}`, [2]string{}, 422, "unprocessable"},
		{"batch-empty", "POST", "/v1/batch", `{"ops":[]}`, [2]string{}, 400, "bad_request"},
		{"rules-unparsable", "PUT", "/v1/rules", "this is not a rule file", [2]string{}, 400, "bad_request"},
		{"rules-unknown-attr", "PUT", "/v1/rules", "([BOGUS] -> CT, (_ || _))\n", [2]string{}, 422, "unprocessable"},
		{"rules-cas-miss", "PUT", "/v1/rules", "([AC] -> CT, (131 || EDI))\n", [2]string{"If-Match", `"not-the-version"`}, 409, "conflict"},
		{"since-bad", "GET", "/v1/violations?since=abc", "", [2]string{}, 400, "bad_request"},
		{"since-ahead", "GET", "/v1/violations?since=999999", "", [2]string{}, 410, "compacted"},
		{"limit-bad", "GET", "/v1/violations?limit=0", "", [2]string{}, 400, "bad_request"},
		{"cursor-bad", "GET", "/v1/tuples?cursor=-1", "", [2]string{}, 400, "bad_request"},
		{"suspects-cursor-bad", "GET", "/v1/suspects?cursor=x", "", [2]string{}, 400, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.header[0] != "" {
				req.Header.Set(tc.header[0], tc.header[1])
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var out struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("decoding envelope: %v", err)
			}
			if out.Error.Code != tc.wantCode || out.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %q and a message", out.Error, tc.wantCode)
			}
		})
	}
}

// TestPagination pins the deterministic cursor order of the three list
// endpoints: walking pages with any limit reassembles exactly the unpaged
// response, in the same order.
func TestPagination(t *testing.T) {
	ts := newTestServer(t)

	// /v1/tuples: ascending ids, id-based cursor.
	var ids []int
	var values [][]any
	url := ts.URL + "/v1/tuples?limit=3"
	for {
		page := do(t, "GET", url, nil, http.StatusOK)
		for _, raw := range page["tuples"].([]any) {
			tu := raw.(map[string]any)
			ids = append(ids, int(tu["id"].(float64)))
			values = append(values, tu["values"].([]any))
		}
		next, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		url = ts.URL + "/v1/tuples?limit=3&cursor=" + next
	}
	if !sort.IntsAreSorted(ids) || len(ids) != 8 {
		t.Fatalf("paged tuple ids = %v, want ids 0..7 ascending", ids)
	}
	whole := do(t, "GET", ts.URL+"/v1/tuples", nil, http.StatusOK)
	if all := whole["tuples"].([]any); len(all) != len(ids) {
		t.Fatalf("unpaged %d tuples, paged %d", len(all), len(ids))
	}
	if whole["total"].(float64) != 8 {
		t.Fatalf("total = %v, want 8", whole["total"])
	}

	// /v1/violations: per-rule entries in rule order, offset cursor.
	unpaged := do(t, "GET", ts.URL+"/v1/violations", nil, http.StatusOK)["violations"].([]any)
	var paged []any
	url = ts.URL + "/v1/violations?limit=1"
	for {
		page := do(t, "GET", url, nil, http.StatusOK)
		paged = append(paged, page["violations"].([]any)...)
		next, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		url = ts.URL + "/v1/violations?limit=1&cursor=" + next
	}
	if fmt.Sprint(paged) != fmt.Sprint(unpaged) {
		t.Fatalf("paged violations %v, unpaged %v", paged, unpaged)
	}

	// /v1/suspects: ascending ids, offset cursor.
	unpagedS := do(t, "GET", ts.URL+"/v1/suspects", nil, http.StatusOK)["suspects"].([]any)
	var pagedS []any
	url = ts.URL + "/v1/suspects?limit=2"
	for {
		page := do(t, "GET", url, nil, http.StatusOK)
		pagedS = append(pagedS, page["suspects"].([]any)...)
		next, ok := page["next_cursor"].(string)
		if !ok {
			break
		}
		url = ts.URL + "/v1/suspects?limit=2&cursor=" + next
	}
	if fmt.Sprint(pagedS) != fmt.Sprint(unpagedS) {
		t.Fatalf("paged suspects %v, unpaged %v", pagedS, unpagedS)
	}
}

// TestDeltaEndpoint covers the polling contract of GET /v1/violations?since=:
// an empty delta at the head, an exact delta across a mutation, and 410 once
// the epoch is out of range (the compacted-resync path is exercised against
// a real restart in scripts/serve_smoke.sh).
func TestDeltaEndpoint(t *testing.T) {
	ts := newTestServer(t)
	full := do(t, "GET", ts.URL+"/v1/violations", nil, http.StatusOK)
	epoch := int(full["epoch"].(float64))

	out := do(t, "GET", fmt.Sprintf("%s/v1/violations?since=%d", ts.URL, epoch), nil, http.StatusOK)
	delta := out["delta"].(map[string]any)
	if int(out["epoch"].(float64)) != epoch || len(delta["added"].([]any)) != 0 {
		t.Fatalf("delta at head = %v", out)
	}

	// A duplicate of tuple 7 joins Sean's violating FD group: the delta must
	// carry exactly the change, not the whole report.
	ins := do(t, "POST", ts.URL+"/v1/tuples", map[string]any{
		"values": []string{"01", "131", "2222222", "Sean", "3rd Str.", "EDI", "01202"},
	}, http.StatusOK)
	id := ints(t, ins["ids"])[0]
	out = do(t, "GET", fmt.Sprintf("%s/v1/violations?since=%d", ts.URL, epoch), nil, http.StatusOK)
	if int(out["epoch"].(float64)) != epoch+1 {
		t.Fatalf("delta epoch = %v, want %d", out["epoch"], epoch+1)
	}
	delta = out["delta"].(map[string]any)
	added := delta["added"].([]any)
	if len(added) == 0 {
		t.Fatalf("delta after a violating insert = %v", delta)
	}
	dirtyAdded := ints(t, delta["dirty_added"])
	found := false
	for _, d := range dirtyAdded {
		if d == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty_added %v misses the inserted id %d", dirtyAdded, id)
	}
	if delta["rules"] != nil {
		t.Fatalf("rules = %v without a swap, want null", delta["rules"])
	}
}

// TestViolationStream exercises GET /v1/violations/stream end to end: SSE
// connect, the initial position event, ordered delta events across
// mutations, and a clean disconnect when the server shuts down.
func TestViolationStream(t *testing.T) {
	eng, err := loadEngine(config{rulesPath: "testdata/rules.txt", dataPath: "testdata/cust.csv"})
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(eng, nil, config{})
	shutdown, cancel := context.WithCancel(context.Background())
	h.baseCtx = shutdown
	ts := httptest.NewServer(h.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(cancel)

	resp, err := http.Get(ts.URL + "/v1/violations/stream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// events forwards each SSE event as "<event>\t<data>" and closes on EOF.
	type event struct{ name, data string }
	events := make(chan event, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && name != "":
				events <- event{name, data}
				name, data = "", ""
			}
		}
	}()
	next := func() event {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("no event within 5s")
			panic("unreachable")
		}
	}

	ev := next()
	if ev.name != "epoch" {
		t.Fatalf("first event %q, want epoch", ev.name)
	}
	var pos struct{ Epoch uint64 }
	if err := json.Unmarshal([]byte(ev.data), &pos); err != nil {
		t.Fatal(err)
	}
	if pos.Epoch != eng.Epoch() {
		t.Fatalf("stream position %d, engine epoch %d", pos.Epoch, eng.Epoch())
	}

	// Two mutations; the stream may coalesce them, but epochs must arrive in
	// order and reach the engine's head.
	do(t, "POST", ts.URL+"/v1/tuples", map[string]any{
		"values": []string{"01", "131", "2222222", "Sean", "3rd Str.", "EDI", "01202"},
	}, http.StatusOK)
	last := pos.Epoch
	for last < pos.Epoch+1 {
		ev = next()
		if ev.name != "delta" {
			t.Fatalf("event %q, want delta", ev.name)
		}
		var d struct{ Epoch uint64 }
		if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
			t.Fatal(err)
		}
		if d.Epoch <= last {
			t.Fatalf("delta epochs out of order: %d after %d", d.Epoch, last)
		}
		last = d.Epoch
	}
	do(t, "DELETE", fmt.Sprintf("%s/v1/tuples/%d", ts.URL, 8), nil, http.StatusOK)
	for last < pos.Epoch+2 {
		ev = next()
		var d struct{ Epoch uint64 }
		if ev.name != "delta" || json.Unmarshal([]byte(ev.data), &d) != nil || d.Epoch <= last {
			t.Fatalf("bad delta event %+v after epoch %d", ev, last)
		}
		last = d.Epoch
	}

	// Server shutdown must end the stream promptly (the events channel closes
	// on EOF), not leave the client hanging.
	cancel()
	select {
	case ev, ok := <-events:
		if ok {
			t.Fatalf("unexpected event %+v after shutdown", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close at shutdown")
	}
}
