package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// getRaw fetches a URL and returns the raw response body, for byte-identical
// comparisons across restarts.
func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func fixtureConfig(state string) config {
	return config{
		rulesPath:    "testdata/rules.txt",
		dataPath:     "testdata/cust.csv",
		statePath:    state,
		compactEvery: 4096,
	}
}

// mutate drives a representative op mix through the HTTP API: a rows insert,
// a mixed atomic batch, a single-tuple update and a delete.
func mutate(t *testing.T, base string) {
	t.Helper()
	do(t, "POST", base+"/tuples", map[string]any{"rows": [][]string{
		{"01", "212", "9999999", "Ann", "5th Ave", "NYC", "01202"},
		{"86", "10", "8888888", "Wei", "Main Rd.", "BJ", "100000"},
	}}, http.StatusOK)
	do(t, "POST", base+"/batch", map[string]any{"ops": []map[string]any{
		{"op": "insert", "values": []string{"44", "131", "7777777", "Ada", "High St.", "GLA", "EH4 1DT"}},
		{"op": "update", "id": 10, "values": []string{"44", "131", "7777777", "Ada", "High St.", "EDI", "EH4 1DT"}},
		{"op": "delete", "id": 9},
	}}, http.StatusOK)
	do(t, "PUT", base+"/tuples/7", map[string]any{
		"values": []string{"01", "131", "2222222", "Sean", "3rd Str.", "EDI", "01202"},
	}, http.StatusOK)
	do(t, "DELETE", base+"/tuples/2", nil, http.StatusOK)
}

// TestBatchEndpoint exercises POST /batch: a mixed atomic batch, intra-batch
// id references, and all-or-nothing on a bad op.
func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)

	out := do(t, "POST", ts.URL+"/batch", map[string]any{"ops": []map[string]any{
		{"op": "insert", "values": []string{"86", "10", "8888888", "Wei", "Main Rd.", "BJ", "100000"}},
		{"op": "update", "id": 8, "values": []string{"86", "10", "8888888", "Wei", "Main Rd.", "SH", "100000"}},
		{"op": "delete", "id": 0},
	}}, http.StatusOK)
	if got := ints(t, out["ids"]); !reflect.DeepEqual(got, []int{8}) {
		t.Fatalf("batch ids = %v, want [8]", got)
	}
	if out["applied"].(float64) != 3 || out["tuples"].(float64) != 8 {
		t.Fatalf("batch response = %v", out)
	}
	row := do(t, "GET", ts.URL+"/tuples/8", nil, http.StatusOK)
	if got := row["values"].([]any); got[5] != "SH" {
		t.Fatalf("intra-batch update lost: %v", got)
	}

	// A bad op anywhere voids the whole batch.
	before := getRaw(t, ts.URL+"/violations")
	do(t, "POST", ts.URL+"/batch", map[string]any{"ops": []map[string]any{
		{"op": "insert", "values": []string{"01", "212", "9999999", "Ann", "5th Ave", "NYC", "01202"}},
		{"op": "delete", "id": 4242},
	}}, http.StatusNotFound)
	do(t, "POST", ts.URL+"/batch", map[string]any{"ops": []map[string]any{
		{"op": "frobnicate"},
	}}, http.StatusUnprocessableEntity)
	do(t, "POST", ts.URL+"/batch", map[string]any{"ops": []map[string]any{}}, http.StatusBadRequest)
	after := getRaw(t, ts.URL+"/violations")
	if !bytes.Equal(before, after) {
		t.Fatal("failed batches must not change the violation state")
	}
	// Atomic rows insert: one bad row, nothing lands.
	tuples := do(t, "GET", ts.URL+"/health", nil, http.StatusOK)["tuples"]
	do(t, "POST", ts.URL+"/tuples", map[string]any{"rows": [][]string{
		{"01", "212", "9999999", "Ann", "5th Ave", "NYC", "01202"},
		{"too", "short"},
	}}, http.StatusUnprocessableEntity)
	if got := do(t, "GET", ts.URL+"/health", nil, http.StatusOK)["tuples"]; got != tuples {
		t.Fatalf("tuples %v after a failed rows insert, want %v", got, tuples)
	}
}

// TestStateRestart is the durability acceptance check: a server started with
// -state, killed without a final compaction (the crash path, WAL replay) or
// with one (the graceful path), serves a byte-identical /violations report
// after restart — tuple ids included — and keeps assigning ids where the
// original would.
func TestStateRestart(t *testing.T) {
	for _, graceful := range []bool{false, true} {
		t.Run(map[bool]string{false: "crash-replay", true: "graceful-compacted"}[graceful], func(t *testing.T) {
			dir := t.TempDir()
			sv, err := buildServing(fixtureConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(newServer(sv.eng, sv.store, config{compactEvery: 4096}).handler())
			mutate(t, ts.URL)
			want := getRaw(t, ts.URL+"/violations")
			wantRules := getRaw(t, ts.URL+"/rules")
			ts.Close()
			if graceful {
				if err := sv.close(); err != nil {
					t.Fatal(err)
				}
				// A graceful shutdown folds the WAL into the snapshot.
				if data, err := os.ReadFile(filepath.Join(dir, "wal.jsonl")); err != nil || len(data) != 0 {
					t.Fatalf("wal after graceful close: %d bytes, err=%v", len(data), err)
				}
			} else {
				// Kill: the WAL survives, no final snapshot is written.
				if data, err := os.ReadFile(filepath.Join(dir, "wal.jsonl")); err != nil || len(data) == 0 {
					t.Fatalf("wal before crash: %d bytes, err=%v", len(data), err)
				}
				if err := sv.store.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// Restart from the state directory alone: no -rules, no -data.
			sv2, err := buildServing(config{statePath: dir, compactEvery: 4096})
			if err != nil {
				t.Fatal(err)
			}
			defer sv2.close()
			ts2 := httptest.NewServer(newServer(sv2.eng, sv2.store, config{compactEvery: 4096}).handler())
			defer ts2.Close()
			if got := getRaw(t, ts2.URL+"/violations"); !bytes.Equal(got, want) {
				t.Fatalf("restarted /violations differs:\n%s\nvs\n%s", got, want)
			}
			if got := getRaw(t, ts2.URL+"/rules"); !bytes.Equal(got, wantRules) {
				t.Fatalf("restarted /rules differs:\n%s\nvs\n%s", got, wantRules)
			}
			ins := do(t, "POST", ts2.URL+"/tuples", map[string]any{
				"values": []string{"01", "908", "1111111", "Zoe", "Tree Ave.", "MH", "07974"},
			}, http.StatusOK)
			if got := ints(t, ins["ids"]); !reflect.DeepEqual(got, []int{11}) {
				t.Fatalf("id sequence after restart = %v, want [11]", got)
			}
		})
	}
}

// TestStateBackgroundCompaction: a tiny -compact-every keeps the WAL backlog
// bounded while the server stays correct across a restart.
func TestStateBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := fixtureConfig(dir)
	cfg.compactEvery = 2
	sv, err := buildServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(sv.eng, sv.store, cfg)
	ts := httptest.NewServer(h.handler())
	for i := 0; i < 20; i++ {
		row := []string{"01", "212", fmt.Sprintf("%07d", i), "Ann", "5th Ave", "NYC", "01202"}
		out := do(t, "POST", ts.URL+"/tuples", map[string]any{"values": row}, http.StatusOK)
		do(t, "DELETE", fmt.Sprintf("%s/tuples/%d", ts.URL, ints(t, out["ids"])[0]), nil, http.StatusOK)
	}
	want := getRaw(t, ts.URL+"/violations")
	ts.Close()
	h.drainBackground()
	if err := sv.store.Close(); err != nil { // crash path
		t.Fatal(err)
	}
	sv2, err := buildServing(config{statePath: dir, compactEvery: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sv2.close()
	ts2 := httptest.NewServer(newServer(sv2.eng, sv2.store, config{compactEvery: 4096}).handler())
	defer ts2.Close()
	if got := getRaw(t, ts2.URL+"/violations"); !bytes.Equal(got, want) {
		t.Fatal("state diverged across background compactions")
	}
}

// TestConcurrentHandlers hammers one durable server with parallel readers and
// writers; under -race this is the serving layer's thread-safety check. Every
// writer cleans up after itself, so the final violation report must equal the
// initial one.
func TestConcurrentHandlers(t *testing.T) {
	dir := t.TempDir()
	cfg := fixtureConfig(dir)
	cfg.compactEvery = 16 // force background compactions into the mix
	sv, err := buildServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.close()
	h := newServer(sv.eng, sv.store, cfg)
	defer h.drainBackground()
	ts := httptest.NewServer(h.handler())
	defer ts.Close()

	initial := violationsSansEpoch(t, getRaw(t, ts.URL+"/violations"))

	const writers, readers, iters = 4, 4, 25
	var writerWG, readerWG sync.WaitGroup
	errs := make(chan string, writers+readers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				row := []string{"01", "212", fmt.Sprintf("%d-%d", w, i), "Ann", "5th Ave", "NYC", "01202"}
				resp, err := http.Post(ts.URL+"/tuples", "application/json",
					bytes.NewBufferString(fmt.Sprintf(`{"values":["%s","%s","%s","%s","%s","%s","%s"]}`,
						row[0], row[1], row[2], row[3], row[4], row[5], row[6])))
				if err != nil {
					errs <- err.Error()
					return
				}
				var out struct {
					IDs []int `json:"ids"`
				}
				if err := jsonDecode(resp, &out); err != nil || len(out.IDs) != 1 {
					errs <- fmt.Sprintf("insert: ids=%v err=%v", out.IDs, err)
					return
				}
				id := out.IDs[0]
				// Update it via /batch, then delete it.
				b, err := http.Post(ts.URL+"/batch", "application/json",
					bytes.NewBufferString(fmt.Sprintf(
						`{"ops":[{"op":"update","id":%d,"values":["86","10","x","Wei","Main Rd.","BJ","100000"]},{"op":"delete","id":%d}]}`, id, id)))
				if err != nil {
					errs <- err.Error()
					return
				}
				if b.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("batch status %d", b.StatusCode)
					b.Body.Close()
					return
				}
				io.Copy(io.Discard, b.Body) //nolint:errcheck
				b.Body.Close()
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/violations", "/health", "/rules", "/tuples/0", "/tuples/0/violations"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						errs <- err.Error()
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	// Readers overlap the whole write phase, then stop.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := violationsSansEpoch(t, getRaw(t, ts.URL+"/violations")); !reflect.DeepEqual(got, initial) {
		t.Fatal("violation state diverged after self-cleaning writers")
	}
}

// violationsSansEpoch decodes a /violations body and drops the epoch, which
// counts mutations and so legitimately moves under self-cleaning writers.
func violationsSansEpoch(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	delete(out, "epoch")
	return out
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
