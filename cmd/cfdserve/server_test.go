package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/rules"
)

// newTestServer builds the server exactly as main does, from the testdata
// fixtures (the cust relation of Fig. 1 and two rules over it).
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := loadEngine(config{
		rulesPath: "testdata/rules.txt",
		dataPath:  "testdata/cust.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, nil, config{support: 2, maxLHS: 2}).handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	out := make(map[string]any)
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return out
}

func ints(t *testing.T, v any) []int {
	t.Helper()
	raw, ok := v.([]any)
	if !ok {
		t.Fatalf("expected array, got %T", v)
	}
	out := make([]int, len(raw))
	for i, x := range raw {
		out[i] = int(x.(float64))
	}
	return out
}

func TestServeEndToEnd(t *testing.T) {
	ts := newTestServer(t)

	// Health: 8 tuples, 2 rules, violations present.
	health := do(t, "GET", ts.URL+"/health", nil, http.StatusOK)
	if health["status"] != "ok" || health["tuples"].(float64) != 8 || health["rules"].(float64) != 2 {
		t.Fatalf("health = %v", health)
	}
	if health["dirty"].(float64) == 0 {
		t.Fatal("fixture data must be dirty")
	}

	// Rules are served as rules.Set JSON: file order preserved, class counts
	// and pattern tableaux included, plus the serving schema.
	rulesResp := do(t, "GET", ts.URL+"/rules", nil, http.StatusOK)
	if got := rulesResp["attributes"].([]any); len(got) != 7 || got[0] != "CC" {
		t.Fatalf("attributes = %v", got)
	}
	ruleset := rulesResp["ruleset"].(map[string]any)
	if got := ruleset["rules"].([]any); len(got) != 2 || got[0] != "([AC] -> CT, (131 || EDI))" {
		t.Fatalf("rules = %v", got)
	}
	if ruleset["constant"].(float64) != 1 || ruleset["variable"].(float64) != 1 {
		t.Fatalf("class counts = %v", ruleset)
	}
	if got := ruleset["tableaux"].([]any); len(got) != 2 {
		t.Fatalf("tableaux = %v", got)
	}
	// The served document round-trips back into a rule set.
	raw, err := json.Marshal(ruleset)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rules.Parse(string(raw))
	if err != nil {
		t.Fatalf("GET /rules output does not parse back: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-tripped rule set has %d rules", back.Len())
	}

	// Violations: the constant rule flags the AC=131 group {4,5,7}; the FD
	// flags the CC/ZIP groups {0,1,3} and {2,7}.
	viol := do(t, "GET", ts.URL+"/violations", nil, http.StatusOK)
	if got := ints(t, viol["dirty"]); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 7}) {
		t.Fatalf("dirty = %v", got)
	}
	vlist := viol["violations"].([]any)
	if len(vlist) != 2 {
		t.Fatalf("violations = %v", vlist)
	}
	first := vlist[0].(map[string]any)
	if !reflect.DeepEqual(ints(t, first["tuples"]), []int{4, 5, 7}) {
		t.Fatalf("constant-rule tuples = %v", first["tuples"])
	}

	// Suspects are sharper than the dirty set: Sean (7) violates the constant
	// rule on his own and holds minority street values.
	suspects := do(t, "GET", ts.URL+"/suspects", nil, http.StatusOK)
	sus := ints(t, suspects["suspects"])
	if len(sus) == 0 || len(sus) >= 7 {
		t.Fatalf("suspects = %v, want a non-empty strict subset of the dirty set", sus)
	}

	// Per-tuple lookup: tuple 7 violates both rules, tuple 6 neither.
	t7 := do(t, "GET", ts.URL+"/tuples/7/violations", nil, http.StatusOK)
	if got := t7["violated"].([]any); len(got) != 2 {
		t.Fatalf("tuple 7 violates %v, want both rules", got)
	}
	t6 := do(t, "GET", ts.URL+"/tuples/6/violations", nil, http.StatusOK)
	if got := t6["violated"].([]any); len(got) != 0 {
		t.Fatalf("tuple 6 violates %v, want none", got)
	}

	// Insert a batch: Ann joins the (01, 01202) street group (still split two
	// ways) and one clean tuple.
	ins := do(t, "POST", ts.URL+"/tuples", map[string]any{"rows": [][]string{
		{"01", "212", "9999999", "Ann", "5th Ave", "NYC", "01202"},
		{"86", "10", "8888888", "Wei", "Main Rd.", "BJ", "100000"},
	}}, http.StatusOK)
	if got := ints(t, ins["ids"]); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("insert ids = %v", got)
	}
	viol = do(t, "GET", ts.URL+"/violations", nil, http.StatusOK)
	if got := ints(t, viol["dirty"]); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 7, 8}) {
		t.Fatalf("dirty after insert = %v", got)
	}

	// Update: repairing Sean's city still leaves his street in the minority.
	do(t, "PUT", ts.URL+"/tuples/7", map[string]any{
		"values": []string{"01", "131", "2222222", "Sean", "3rd Str.", "EDI", "01202"},
	}, http.StatusOK)
	t7 = do(t, "GET", ts.URL+"/tuples/7/violations", nil, http.StatusOK)
	if got := t7["violated"].([]any); len(got) != 1 {
		t.Fatalf("tuple 7 violates %v after city repair, want the FD only", got)
	}

	// Delete the two street deviants; the FD heals for their groups.
	do(t, "DELETE", ts.URL+"/tuples/7", nil, http.StatusOK)
	do(t, "DELETE", ts.URL+"/tuples/8", nil, http.StatusOK)
	viol = do(t, "GET", ts.URL+"/violations", nil, http.StatusOK)
	if got := ints(t, viol["dirty"]); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Fatalf("dirty after deletes = %v", got)
	}

	// Reading a deleted tuple 404s.
	if out := do(t, "GET", ts.URL+"/tuples/7", nil, http.StatusNotFound); out["error"] == "" {
		t.Fatal("expected an error body")
	}
	// A well-formed insert with the wrong arity is 422 unprocessable.
	do(t, "POST", ts.URL+"/tuples", map[string]any{"values": []string{"too", "short"}}, http.StatusUnprocessableEntity)
	// Updating a live tuple with the wrong arity 422s; a deleted id 404s.
	do(t, "PUT", ts.URL+"/tuples/0", map[string]any{"values": []string{"too", "short"}}, http.StatusUnprocessableEntity)
	do(t, "PUT", ts.URL+"/tuples/7", map[string]any{"values": []string{"a", "b", "c", "d", "e", "f", "g"}}, http.StatusNotFound)
}

func TestServeSampleDiscovery(t *testing.T) {
	// Rules discovered on the fixture data itself: the engine starts serving
	// whatever FastCFD finds, with the same relation bulk loaded.
	eng, err := loadEngine(config{
		samplePath: "testdata/cust.csv",
		dataPath:   "testdata/cust.csv",
		support:    2,
		maxLHS:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Rules()) == 0 {
		t.Fatal("sample discovery found no rules")
	}
	if eng.Size() != 8 {
		t.Fatalf("loaded %d tuples, want 8", eng.Size())
	}
}

// TestLoadEngineJSONRules checks the -rules format sniffing: the engine loads
// a rules.Set JSON document (as served by GET /rules) interchangeably with
// the text rule file.
func TestLoadEngineJSONRules(t *testing.T) {
	fromText, err := rules.Load("testdata/rules.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(fromText)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := loadEngine(config{rulesPath: jsonPath, dataPath: "testdata/cust.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Rules()) != 2 || eng.Size() != 8 {
		t.Fatalf("JSON rules: %d rules, %d tuples", len(eng.Rules()), eng.Size())
	}
}

// TestSampleDiscoveryProvenance checks that a sample-discovered rule set
// carries its discovery provenance through to the serving engine.
func TestSampleDiscoveryProvenance(t *testing.T) {
	eng, err := loadEngine(config{samplePath: "testdata/cust.csv", support: 2, maxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	prov := eng.RuleSet().Provenance()
	if prov.Algorithm != "fastcfd" || prov.Support != 2 || prov.Tuples != 8 {
		t.Fatalf("provenance = %+v", prov)
	}
}

func TestLoadEngineErrors(t *testing.T) {
	if _, err := loadEngine(config{}); err == nil {
		t.Error("missing rules and sample must error")
	}
	if _, err := loadEngine(config{rulesPath: "testdata/rules.txt"}); err == nil {
		t.Error("missing schema must error")
	}
	if _, err := loadEngine(config{rulesPath: "testdata/rules.txt", schema: []string{"A", "B"}}); err == nil {
		t.Error("rules over unknown attributes must error")
	}
	if _, err := loadEngine(config{rulesPath: "testdata/missing.txt", dataPath: "testdata/cust.csv"}); err == nil {
		t.Error("missing rule file must error")
	}
}

func Example_quickstart() {
	eng, err := loadEngine(config{rulesPath: "testdata/rules.txt", dataPath: "testdata/cust.csv"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d rules, %d tuples, %d dirty\n", len(eng.Rules()), eng.Size(), len(eng.Dirty()))
	// Output:
	// 2 rules, 8 tuples, 7 dirty
}
