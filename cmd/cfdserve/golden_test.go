package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/cfd"
	"repro/dataset"
	"repro/rules"
	"repro/violation"
)

// goldenRulesA is the rule set testdata/golden_v1 was booted with; the swap
// record in its WAL replaces it with goldenRulesB. Both are spelled out here
// — not read back from the fixture — so the fixture and this test check each
// other.
func goldenRulesA() *rules.Set {
	return rules.Of(
		cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"_"}, RHSPattern: "MH"},
	)
}

func goldenRulesB() *rules.Set {
	return rules.Of(
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		cfd.NewFD([]string{"AC"}, "CT"),
		cfd.CFD{LHS: []string{"CC"}, RHS: "CT", LHSPattern: []string{"99"}, RHSPattern: "XXX"},
		cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
	)
}

// goldenOps replays, against a fresh engine, the exact mutation sequence the
// golden_v1 fixture generator ran: one mixed batch, a live rule swap, and a
// second batch with unicode and separator-bearing values (WAL seq 1..3).
func goldenOps(t *testing.T, eng *violation.Engine) {
	t.Helper()
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: []string{"01", "908", "9999999", "Zoe", "Tree Ave.", "MH", "07974"}},
		{Kind: violation.OpInsert, Values: []string{"44", "131", "5555555", "Amy", "High St.", "GLA", "EH4 1DT"}},
		{Kind: violation.OpUpdate, ID: 3, Values: []string{"01", "908", "1111111", "Jim", "Oak Ave.", "MH", "07974"}},
		{Kind: violation.OpDelete, ID: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SwapRules(context.Background(), goldenRulesB()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyBatch([]violation.Op{
		{Kind: violation.OpInsert, Values: []string{"66", "020", "7777777", "Ada — ünïcode", "a|b", "LDN", "N1"}},
		{Kind: violation.OpUpdate, ID: 8, Values: []string{"01", "212", "9999999", "Zoe", "5th Ave", "NYC", "01202"}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenV1CrossLayout is the cross-layout differential check: engine A is
// restored from testdata/golden_v1 — a state directory written by the
// pre-columnar build (format 1 snapshot plus WAL) — while engine B is a fresh
// engine driven through the identical boot and op sequence. Every read
// endpoint, paginated ones page by page, must serve byte-identical bodies
// (epoch included) from both.
func TestGoldenV1CrossLayout(t *testing.T) {
	// The checked-in fixture is copied into a temp dir: opening a store drops
	// a LOCK file and compaction could rewrite it, and testdata must stay the
	// pre-refactor bytes.
	dirA := t.TempDir()
	for _, name := range []string{"snapshot.json", "wal.jsonl"} {
		data, err := os.ReadFile(filepath.Join("testdata", "golden_v1", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dirA, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stA, err := violation.OpenStore(dirA, violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stA.Close() })
	engA, found, err := stA.Load(violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("golden_v1 snapshot not found")
	}
	engA.AttachWAL(stA)
	// Fixture integrity: the generator ended at WAL seq 3 with 10 live tuples.
	if engA.Epoch() != 3 || engA.Size() != 10 {
		t.Fatalf("golden_v1 restored to epoch %d size %d, want 3 and 10", engA.Epoch(), engA.Size())
	}

	rel := dataset.Cust()
	engB, err := violation.New(rel.Attributes(), goldenRulesA(), violation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := engB.BulkLoad(rel); err != nil {
		t.Fatal(err)
	}
	stB, err := violation.OpenStore(t.TempDir(), violation.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stB.Close() })
	if err := stB.Compact(engB); err != nil {
		t.Fatal(err)
	}
	engB.AttachWAL(stB)
	goldenOps(t, engB)

	tsA := httptest.NewServer(newServer(engA, stA, config{compactEvery: 4096}).handler())
	defer tsA.Close()
	tsB := httptest.NewServer(newServer(engB, stB, config{compactEvery: 4096}).handler())
	defer tsB.Close()

	for _, path := range []string{
		"/v1/violations",
		"/v1/rules",
		"/v1/suspects",
		"/v1/tuples",
		"/v1/tuples/8",
		"/v1/tuples/8/violations",
	} {
		a, b := getRaw(t, tsA.URL+path), getRaw(t, tsB.URL+path)
		if string(a) != string(b) {
			t.Errorf("GET %s diverges across layouts\nrestored v1: %s\nfresh:       %s", path, a, b)
		}
	}
	// Paginated reads must agree page by page, cursors included.
	for _, base := range []string{"/v1/suspects?limit=2", "/v1/tuples?limit=3"} {
		pa, pb := goldenPages(t, tsA.URL, base), goldenPages(t, tsB.URL, base)
		if len(pa) != len(pb) {
			t.Fatalf("GET %s: %d pages from the restored engine, %d from the fresh one", base, len(pa), len(pb))
		}
		if len(pa) < 2 {
			t.Fatalf("GET %s returned %d page(s); the fixture should need several", base, len(pa))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Errorf("GET %s page %d diverges\nrestored v1: %s\nfresh:       %s", base, i, pa[i], pb[i])
			}
		}
	}
}

// goldenPages walks a paginated endpoint to exhaustion via next_cursor and
// returns the raw page bodies.
func goldenPages(t *testing.T, serverURL, base string) []string {
	t.Helper()
	var pages []string
	url := base
	for {
		body := getRaw(t, serverURL+url)
		pages = append(pages, string(body))
		var doc struct {
			NextCursor string `json:"next_cursor"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		if doc.NextCursor == "" {
			return pages
		}
		url = base + "&cursor=" + doc.NextCursor
	}
}
