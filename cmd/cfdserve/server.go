package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/cfd"
	"repro/cleaning"
	"repro/dataset"
	"repro/discovery/monitor"
	"repro/obs"
	"repro/rules"
	"repro/violation"
)

// server exposes the violation engine over HTTP. The engine itself is safe
// for concurrent use — reads serve immutable epoch snapshots, mutations
// (tuple ops and live rule swaps alike) are serialised and write-ahead
// logged internally — so the handlers hold no lock of their own; the server
// only adds the persistence glue (compaction scheduling against the attached
// Store) and the rule lifecycle (PUT /rules uploads, background remining).
type server struct {
	eng          *violation.Engine
	store        *violation.Store // nil when running memory-only
	cfg          config           // compaction cadence + remine discovery knobs
	baseCtx      context.Context  // cancelled at shutdown; bounds background remines
	obs          *obsStack        // metrics registry + structured logger
	compacting   atomic.Bool
	remining     atomic.Bool // CAS guard: at most one remine at a time
	bg           sync.WaitGroup
	started      time.Time
	mon          *monitor.Monitor // -maintain loop; nil unless enabled
	lastRemineMu sync.Mutex
	lastRemine   *remineResult
	// lastRemineEpoch is the engine epoch whose data the last successful
	// remine covered; the -remine-every loop skips ticks while the epoch has
	// not moved past it. haveRemineEpoch distinguishes "no remine yet" from
	// epoch 0.
	lastRemineEpoch uint64
	haveRemineEpoch bool

	lastCompactMu  sync.Mutex
	lastCompactErr string // last background-compaction failure; "" once one succeeds
}

func newServer(eng *violation.Engine, store *violation.Store, cfg config) *server {
	st, err := newObsStack(cfg, cfg.logw)
	if err != nil {
		// Invalid -log-level/-log-format values are rejected in main before
		// the server is built; a bad value reaching here (a test constructing
		// its own config) falls back to the defaults.
		fallback := cfg
		fallback.logLevel, fallback.logFormat = "", ""
		st, _ = newObsStack(fallback, cfg.logw)
	}
	obs.InstrumentEngine(st.reg, eng)
	if store != nil {
		obs.InstrumentStore(st.reg, store)
	}
	return &server{eng: eng, store: store, cfg: cfg, obs: st, started: time.Now()}
}

// route is one API endpoint: the pattern is the path under the /v1 prefix.
// Endpoints that predate versioning are also served at their historical
// unversioned path, marked deprecated; new endpoints are /v1-only.
type route struct {
	method  string
	pattern string // path under /v1, e.g. "/violations" or "/tuples/{id}"
	legacy  bool   // also served unversioned, with Deprecation headers
	handler http.HandlerFunc
}

// routes is the single source of truth for the API surface; the route-parity
// test checks it against API.md.
func (s *server) routes() []route {
	return []route{
		{"GET", "/health", true, s.health},
		{"GET", "/rules", true, s.rules},
		{"PUT", "/rules", true, s.putRules},
		{"POST", "/rules/remine", true, s.remine},
		{"GET", "/violations", true, s.violations},
		{"GET", "/violations/stream", false, s.stream},
		{"GET", "/suspects", true, s.suspects},
		{"GET", "/tuples", false, s.listTuples},
		{"POST", "/tuples", true, s.insert},
		{"POST", "/batch", true, s.batch},
		{"GET", "/tuples/{id}", true, s.tuple},
		{"GET", "/tuples/{id}/violations", true, s.tupleViolations},
		{"PUT", "/tuples/{id}", true, s.update},
		{"DELETE", "/tuples/{id}", true, s.remove},
	}
}

// handler builds the mux from the route table: every route under /v1, legacy
// routes additionally at their unversioned path behind a deprecation wrapper.
// All bodies and responses are JSON (except the PUT rules request body, which
// is a rule file in either text or JSON form, and the violations stream,
// which is text/event-stream).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" /v1"+rt.pattern, s.obs.instrument(rt.method, rt.pattern, rt.handler))
		if rt.legacy {
			mux.HandleFunc(rt.method+" "+rt.pattern, s.obs.instrument(rt.method, rt.pattern, deprecate(rt.pattern, rt.handler)))
		}
	}
	// The scrape endpoint itself is outside the /v1 contract and outside the
	// instrument middleware: scrapes should not move the series they read.
	mux.Handle("GET /metrics", s.obs.reg.Handler())
	return mux
}

// deprecate serves a legacy unversioned route with the standard deprecation
// headers (RFC 8594 successor link, draft Deprecation header) pointing at the
// /v1 pattern, so clients can migrate mechanically.
func deprecate(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+pattern+`>; rel="successor-version"`)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Error codes of the uniform error envelope {"error":{"code":..,"message":..}}.
// Every non-2xx JSON response uses it; the code is a stable machine-readable
// discriminator, the message is for humans and not part of the contract.
const (
	codeBadRequest      = "bad_request"       // 400: malformed request (bad JSON, bad query param)
	codeNotFound        = "not_found"         // 404: the tuple id does not exist
	codeConflict        = "conflict"          // 409: CAS miss (If-Match) or a remine already running
	codeCompacted       = "compacted"         // 410: ?since= epoch older than the delta history
	codePayloadTooLarge = "payload_too_large" // 413: request body over the limit
	codeUnprocessable   = "unprocessable"     // 422: well-formed but semantically invalid (arity, unknown op, bad rule)
	codeInternal        = "internal"          // 500: WAL append or other engine failure
	codeUnavailable     = "unavailable"       // 503: a shard behind the coordinator cannot answer
)

func writeError(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	e := map[string]string{
		"code":    code,
		"message": err.Error(),
	}
	// The same id the middleware put in X-Request-Id, so an error report can
	// be matched to its access-log line.
	if id := obs.RequestID(r.Context()); id != "" {
		e["request_id"] = id
	}
	writeJSON(w, status, map[string]any{"error": e})
}

// writeOpError maps an engine mutation error onto a status: unknown ids are
// 404, write-ahead log failures 500, and anything else — a well-formed
// request the engine rejected (arity mismatch, unknown op kind, invalid
// rule) — 422.
func writeOpError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, violation.ErrNotFound):
		writeError(w, r, http.StatusNotFound, codeNotFound, err)
	case errors.Is(err, violation.ErrWAL):
		writeError(w, r, http.StatusInternalServerError, codeInternal, err)
	default:
		writeError(w, r, http.StatusUnprocessableEntity, codeUnprocessable, err)
	}
}

// etagList parses an If-Match/If-None-Match header into its bare entity
// tags: a comma-separated list of quoted (optionally W/-prefixed) tags, per
// RFC 9110. matchAny reports a "*" anywhere in the list, which matches every
// current version; an empty header yields (nil, false).
func etagList(header string) (tags []string, matchAny bool) {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "*" {
			return nil, true
		}
		part = strings.TrimPrefix(part, "W/")
		tags = append(tags, strings.Trim(part, `"`))
	}
	return tags, false
}

// etagMatch reports whether an If-Match/If-None-Match header matches the
// current version: "*" matches whenever a version is served, otherwise the
// version must appear among the listed tags. An empty header never matches
// (callers treat it as "header absent").
func etagMatch(header, version string) bool {
	tags, matchAny := etagList(header)
	if matchAny {
		return version != ""
	}
	for _, tag := range tags {
		if tag == version {
			return true
		}
	}
	return false
}

// pageWindow resolves the limit/cursor query parameters to a [lo,hi) window
// over n items held in a fixed deterministic order, and, when items remain
// past the window, the cursor of the next page. No limit means everything.
func pageWindow(q url.Values, n int) (lo, hi int, next string, err error) {
	if c := q.Get("cursor"); c != "" {
		v, err := strconv.Atoi(c)
		if err != nil || v < 0 {
			return 0, 0, "", fmt.Errorf("cursor %q is not a non-negative integer", c)
		}
		lo = v
	}
	if lo > n {
		lo = n
	}
	hi = n
	if l := q.Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v <= 0 {
			return 0, 0, "", fmt.Errorf("limit %q is not a positive integer", l)
		}
		if lo+v < hi {
			hi = lo + v
			next = strconv.Itoa(hi)
		}
	}
	return lo, hi, next, nil
}

func pathID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

// maybeCompact starts a background snapshot compaction when enough WAL ops
// have accumulated. At most one compaction runs at a time; Store.Compact
// captures its consistent view under a read lock in O(live tuples) pointer
// work, so writers stall only for that capture, not for the decode or the
// file write.
func (s *server) maybeCompact() {
	if s.store == nil || s.cfg.compactEvery <= 0 || s.store.Pending() < s.cfg.compactEvery {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer s.compacting.Store(false)
		err := s.store.Compact(s.eng)
		s.lastCompactMu.Lock()
		if err != nil {
			s.lastCompactErr = err.Error()
		} else {
			s.lastCompactErr = ""
		}
		s.lastCompactMu.Unlock()
		if err != nil {
			s.logger().Error("background compaction failed", "error", err)
		} else {
			s.logger().Debug("background compaction done", "wal_pending", s.store.Pending())
		}
	}()
}

// drainBackground waits for in-flight background work — compactions and
// remine runs. Call it after the HTTP server has drained (no handler can
// start new work) and before closing the store.
func (s *server) drainBackground() { s.bg.Wait() }

// ruleStatJSON is the wire form of one rule's live discovery statistics,
// served in rule-set order by GET /v1/rules and GET /v1/health.
type ruleStatJSON struct {
	Rule       string  `json:"rule"`
	Support    int     `json:"support"`
	Groups     int     `json:"groups"`
	Violating  int     `json:"violating"`
	Confidence float64 `json:"confidence"`
}

func toRuleStatsJSON(stats []violation.RuleStat) []ruleStatJSON {
	out := make([]ruleStatJSON, len(stats))
	for i, st := range stats {
		out[i] = ruleStatJSON{
			Rule:       st.Rule.String(),
			Support:    st.Support,
			Groups:     st.Groups,
			Violating:  st.Violating,
			Confidence: st.Confidence,
		}
	}
	return out
}

func (s *server) health(w http.ResponseWriter, _ *http.Request) {
	ds := s.eng.DeltaStats()
	out := map[string]any{
		"status": "ok",
		"tuples": s.eng.Size(),
		"rules":  len(s.eng.Rules()),
		// dirty is the O(rules) per-rule sum, an upper bound across
		// overlapping rules; GET /violations has the exact set.
		"dirty":         s.eng.DirtyCount(),
		"epoch":         s.eng.Epoch(),
		"uptime":        time.Since(s.started).Round(time.Millisecond).String(),
		"rules_version": s.eng.RulesVersion(),
		// The id the next insert gets — a cluster coordinator recovers its
		// global id counter as the max across its shards.
		"next_id": s.eng.NextID(),
		// In-flight state, not just last-completed results: both booleans flip
		// while the background work runs.
		"compacting":     s.compacting.Load(),
		"remine_running": s.remining.Load(),
		"delta_ring": map[string]any{
			"occupancy":       ds.Occupancy,
			"capacity":        ds.Capacity,
			"evictions":       ds.Evictions,
			"compacted_reads": ds.CompactedReads,
			"waiters":         ds.Waiters,
		},
	}
	if s.store != nil {
		out["state_dir"] = s.store.Dir()
		out["wal_pending"] = s.store.Pending()
		s.lastCompactMu.Lock()
		if s.lastCompactErr != "" {
			out["last_compaction_error"] = s.lastCompactErr
		}
		s.lastCompactMu.Unlock()
	}
	// The live per-rule counters: what continuous maintenance watches, and
	// what an operator reads to judge how far the data has drifted from the
	// served rules without waiting for a remine.
	out["rule_stats"] = toRuleStatsJSON(s.eng.RuleStats())
	if s.mon != nil {
		out["maintain"] = s.mon.Status()
	}
	s.lastRemineMu.Lock()
	if s.lastRemine != nil {
		out["last_remine"] = s.lastRemine
	}
	s.lastRemineMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// rules serves the engine's current rule set as rules.Set JSON — the rules
// in set order plus class counts, pattern tableaux and (when the set came
// from discovery or a remine) its provenance — alongside the serving schema
// and the set's version fingerprint, which is also sent as the ETag. A
// client that polls with If-None-Match sees 304 until a swap changes the
// rules. The ruleset document round-trips through rules.Parse, so it feeds
// straight back into cfdserve -rules, PUT /rules or cfdclean -rules.
func (s *server) rules(w http.ResponseWriter, r *http.Request) {
	// The 304 polling fast path costs only the cached digest, no set copy.
	if match := r.Header.Get("If-None-Match"); match != "" {
		if v := s.eng.RulesVersion(); etagMatch(match, v) {
			w.Header().Set("ETag", `"`+v+`"`)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	// One copy serves both the header and the body, so they cannot disagree
	// even if a swap lands between them.
	set := s.eng.RuleSet()
	version := set.Fingerprint()
	// Stats are read after the set; when a swap lands exactly between the
	// two reads the lengths diverge, and one re-read restores agreement
	// (rule swaps are rare and never back-to-back within a request).
	stats := s.eng.RuleStats()
	if len(stats) != set.Len() {
		set = s.eng.RuleSet()
		version = set.Fingerprint()
		stats = s.eng.RuleStats()
	}
	w.Header().Set("ETag", `"`+version+`"`)
	writeJSON(w, http.StatusOK, map[string]any{
		"attributes": s.eng.Attributes(),
		"ruleset":    set,
		"version":    version,
		"stats":      toRuleStatsJSON(stats),
	})
}

// maxRulesBody bounds the PUT /rules request body (32 MiB is far above any
// realistic rule file).
const maxRulesBody = 32 << 20

func ruleStrings(cfds []cfd.CFD) []string {
	out := make([]string, len(cfds))
	for i, c := range cfds {
		out[i] = c.String()
	}
	return out
}

// putRules atomically swaps the served rule set for the uploaded rule file —
// text (cfddiscover -o) or rules.Set JSON (GET /rules), sniffed — and
// responds with the delta. An If-Match header makes the swap conditional on
// the currently served rules version (the ETag of GET /rules): a mismatch is
// rejected with 409, so two operators cannot silently overwrite each other.
// The swap is write-ahead logged on a durable server, so a crash right after
// the 200 still restarts under the new rules.
func (s *server) putRules(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRulesBody+1))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxRulesBody {
		writeError(w, r, http.StatusRequestEntityTooLarge, codePayloadTooLarge, fmt.Errorf("rule file exceeds %d bytes", maxRulesBody))
		return
	}
	if match := r.Header.Get("If-Match"); match != "" {
		if v := s.eng.RulesVersion(); !etagMatch(match, v) {
			writeError(w, r, http.StatusConflict, codeConflict,
				fmt.Errorf("the served rules version is %q, which does not match If-Match %s", v, match))
			return
		}
	}
	set, err := rules.Parse(string(body))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	delta, err := s.eng.SwapRules(r.Context(), set)
	if err != nil {
		writeOpError(w, r, err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, map[string]any{
		"swapped": !delta.Unchanged(),
		"version": delta.New,
		"rules":   set.Len(),
		"delta": map[string]any{
			"summary":  delta.String(),
			"added":    ruleStrings(delta.Added),
			"removed":  ruleStrings(delta.Removed),
			"retained": len(delta.Retained),
		},
	})
}

// remineResult records the outcome of one remine run; /health serves the
// latest one — including failed runs, so a broken maintenance loop is loud
// in health rather than leaving the previous success on display.
type remineResult struct {
	At      time.Time `json:"at"`
	Outcome string    `json:"outcome"` // swapped | unchanged | error
	Elapsed string    `json:"elapsed"`
	Tuples  int       `json:"tuples"`
	Swapped bool      `json:"swapped"`
	Version string    `json:"version,omitempty"`
	Delta   string    `json:"delta,omitempty"`
	Error   string    `json:"error,omitempty"`

	// minedEpoch is the engine epoch the mined relation covered (bumped past
	// the swap when the run swapped cleanly); the periodic loop skips ticks
	// until the epoch moves past it. Not part of the wire result.
	minedEpoch uint64
}

// remine re-runs rule discovery over the live relation and swaps the result
// in — in the background by default (202, poll /health for last_remine), or
// synchronously with ?wait=1 (200 with the result). A CAS guard, like the
// compaction one, keeps at most one remine running; a concurrent request
// gets 409. The swap is skipped when the mined fingerprint matches the
// serving one, so a remine over unchanged data is a no-op.
func (s *server) remine(w http.ResponseWriter, r *http.Request) {
	if !s.remining.CompareAndSwap(false, true) {
		writeError(w, r, http.StatusConflict, codeConflict, errors.New("a remine is already running"))
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		// Synchronous: cancelled when the client goes away.
		writeJSON(w, http.StatusOK, s.remineOnce(r.Context()))
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		// Background: cancelled at shutdown, so draining never waits out a
		// long mining run.
		s.remineOnce(s.shutdownCtx())
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "remine started"})
}

// shutdownCtx returns the context background remines run under: the
// server's base context (cancelled at shutdown), or Background when main
// did not install one (tests).
func (s *server) shutdownCtx() context.Context {
	if s.baseCtx != nil {
		return s.baseCtx
	}
	return context.Background()
}

// remineOnce runs one remine (the CAS flag must be held), records the result
// for /health and releases the flag.
func (s *server) remineOnce(ctx context.Context) remineResult {
	defer s.remining.Store(false)
	start := time.Now()
	res := s.runRemine(ctx)
	res.Outcome = "unchanged"
	switch {
	case res.Error != "":
		res.Outcome = "error"
	case res.Swapped:
		res.Outcome = "swapped"
	}
	s.obs.remineTotal.With(res.Outcome).Inc()
	s.obs.remineDur.ObserveSince(start)
	s.lastRemineMu.Lock()
	s.lastRemine = &res
	if res.Error == "" {
		// Only completed runs move the skip baseline: after a failure the
		// next periodic tick retries instead of skipping.
		s.lastRemineEpoch, s.haveRemineEpoch = res.minedEpoch, true
	}
	s.lastRemineMu.Unlock()
	return res
}

func (s *server) runRemine(ctx context.Context) (res remineResult) {
	start := time.Now()
	res = remineResult{At: start}
	defer func() { res.Elapsed = time.Since(start).Round(time.Millisecond).String() }()
	// Captured before Relation(), so it never exceeds the epoch the mined
	// copy reflects: a skip decision based on it is always conservative.
	res.minedEpoch = s.eng.Epoch()
	rel, _, err := s.eng.Relation()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Tuples = rel.Size()
	if rel.Size() == 0 {
		// Mining nothing would swap in the empty rule set and silently stop
		// checking anything; refuse instead.
		res.Error = "no live tuples to mine rules from"
		return res
	}
	lastFound := 0
	set, err := discoverRules(ctx, rel, s.cfg, s.cfg.remineLimit, func(found int) {
		// The hook reports the cumulative count; convert it to increments so
		// the counter keeps rising monotonically across remine runs. The
		// non-atomic lastFound is safe because WithProgress guarantees serial
		// invocation regardless of the worker count (see discovery.Engine).
		if found > lastFound {
			s.obs.rulesStreamed.Add(uint64(found - lastFound))
			lastFound = found
		}
	})
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Version = set.Fingerprint()
	if res.Version == s.eng.RulesVersion() {
		return res // same rules: keep the serving set (and its indexes)
	}
	delta, err := s.eng.SwapRules(ctx, set)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	s.maybeCompact()
	res.Swapped = true
	res.Delta = delta.String()
	// When our swap was the only write since the capture, the post-swap
	// epoch is fully covered too; otherwise stay at the conservative
	// capture (the interleaved writes deserve the next tick's look).
	if e := s.eng.Epoch(); e == res.minedEpoch+1 {
		res.minedEpoch = e
	}
	s.logger().Info("remine swapped rules", "tuples", rel.Size(), "delta", delta.String(), "version", res.Version)
	return res
}

// remineLoop drives the -remine-every cadence: a tick starts a remine only
// when the engine epoch has moved since the last completed run — an idle
// server performs zero discovery runs, each skipped tick counted under
// cfd_remine_total{outcome="skipped"}. It exits when ctx is cancelled
// (shutdown), and the tick's run is cancelled by the same context, so
// shutdown never waits out a long mining run.
func (s *server) remineLoop(ctx context.Context, every time.Duration) {
	// Seed the skip baseline from the head epoch: the data the server booted
	// with is what the serving rules were mined from (or uploaded for), so
	// an untouched engine needs no first run either.
	s.lastRemineMu.Lock()
	if !s.haveRemineEpoch {
		s.lastRemineEpoch, s.haveRemineEpoch = s.eng.Epoch(), true
	}
	s.lastRemineMu.Unlock()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.lastRemineMu.Lock()
			skip := s.haveRemineEpoch && s.eng.Epoch() == s.lastRemineEpoch
			s.lastRemineMu.Unlock()
			if skip {
				s.obs.remineTotal.With("skipped").Inc()
				continue
			}
			if s.remining.CompareAndSwap(false, true) {
				s.remineOnce(ctx)
			}
		}
	}
}

// maintainRemine is the monitor's remine callback in -maintain mode: one
// bounded remine through the same CAS guard, result recording and metrics as
// every other remine path. A run already in flight (a concurrent manual
// POST /v1/rules/remine) is an error, so the monitor keeps the trigger
// armed and retries after its pacing interval.
func (s *server) maintainRemine(ctx context.Context, tr monitor.Trigger) error {
	if !s.remining.CompareAndSwap(false, true) {
		return errors.New("a remine is already running")
	}
	s.logger().Info("maintenance remine triggered",
		"reason", tr.Reason, "rule", tr.Rule, "detail", tr.Detail, "epoch", tr.Epoch)
	res := s.remineOnce(ctx)
	if res.Error != "" {
		return errors.New(res.Error)
	}
	return nil
}

type violationJSON struct {
	Rule   string `json:"rule"`
	Tuples []int  `json:"tuples"`
}

func toViolationJSON(vs []violation.Violation) []violationJSON {
	out := make([]violationJSON, 0, len(vs))
	for _, v := range vs {
		out = append(out, violationJSON{Rule: v.Rule.String(), Tuples: v.Tuples})
	}
	return out
}

// deltaDoc is the wire form of a violation.Delta: one mutation epoch's (or a
// merged range's) exact change to the violation report. rules is present only
// when the range contains a rule swap, and then carries the full replacement
// rule list the added/removed entries are relative to.
type deltaDoc struct {
	Epoch        uint64          `json:"epoch"`
	Added        []violationJSON `json:"added"`
	Removed      []violationJSON `json:"removed"`
	DirtyAdded   []int           `json:"dirty_added"`
	DirtyRemoved []int           `json:"dirty_removed"`
	// Rules is null when the span contains no rule swap; on a swap it is the
	// full replacement rule list, possibly empty.
	Rules []string `json:"rules"`
}

func intsOrEmpty(v []int) []int {
	if v == nil {
		return []int{}
	}
	return v
}

func newDeltaDoc(d *violation.Delta) deltaDoc {
	doc := deltaDoc{
		Epoch:        d.Epoch,
		Added:        toViolationJSON(d.Added),
		Removed:      toViolationJSON(d.Removed),
		DirtyAdded:   intsOrEmpty(d.DirtyAdded),
		DirtyRemoved: intsOrEmpty(d.DirtyRemoved),
	}
	if d.Rules != nil {
		doc.Rules = ruleStrings(d.Rules)
	}
	return doc
}

// violations serves the violation state. Without parameters: the full report
// from one immutable epoch snapshot, consistent even while writers proceed.
// With ?since=<epoch>: the exact delta between that epoch and now, in
// O(changes) — 410 with code "compacted" when the epoch has left the bounded
// delta history, telling the client to resync with a full read. limit/cursor
// page the full report over its per-rule entries, which are in rule order.
func (s *server) violations(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if raw := q.Get("since"); raw != "" {
		since, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("since %q is not an epoch", raw))
			return
		}
		d, err := s.eng.Changes(since)
		if err != nil {
			writeError(w, r, http.StatusGone, codeCompacted, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"epoch": d.Epoch, "delta": newDeltaDoc(d)})
		return
	}
	rep := s.eng.Report()
	out := toViolationJSON(rep.Violations)
	lo, hi, next, err := pageWindow(q, len(out))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	resp := map[string]any{
		"epoch":         rep.Epoch,
		"violations":    out[lo:hi],
		"dirty":         rep.DirtyTuples,
		"rules_checked": rep.RulesChecked,
	}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// stream serves violation deltas as server-sent events: an initial "epoch"
// event naming the stream position, then one "delta" event per change (the
// event id is the delta's epoch, so Last-Event-ID style resume maps onto
// ?since=). A client that connects with a ?since= epoch already outside the
// delta history gets a terminal "compacted" event and must resync with a
// full read. The stream ends when the client disconnects or the server shuts
// down.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, codeInternal, errors.New("streaming is unsupported by this connection"))
		return
	}
	cur := s.eng.Epoch()
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("since %q is not an epoch", raw))
			return
		}
		cur = since
	}
	// The request context ends when the client goes away; fold in the server
	// shutdown context so graceful shutdown does not wait out open streams.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.shutdownCtx(), cancel)()

	s.obs.sse.Inc()
	defer s.obs.sse.Dec()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: epoch\ndata: {\"epoch\":%d}\n\n", cur)
	fl.Flush()
	for {
		if _, err := s.eng.WaitChange(ctx, cur); err != nil {
			return // client disconnected or server shutting down
		}
		d, err := s.eng.Changes(cur)
		if err != nil {
			// The client fell behind the delta history: tell it to resync.
			fmt.Fprintf(w, "event: compacted\ndata: {\"error\":{\"code\":%q,\"message\":%q}}\n\n", codeCompacted, err.Error())
			fl.Flush()
			return
		}
		cur = d.Epoch
		payload, err := json.Marshal(newDeltaDoc(d))
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: delta\ndata: %s\n\n", d.Epoch, payload)
		fl.Flush()
	}
}

func (s *server) suspects(w http.ResponseWriter, r *http.Request) {
	// Relation() materialises one consistent copy; the batch suspect analysis
	// then runs on the copy without holding anything, so a polling client
	// never stalls writers.
	rel, ids, err := s.eng.Relation()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, codeInternal, err)
		return
	}
	suspects, err := cleaning.Suspects(rel, s.eng.RuleSet())
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, codeInternal, err)
		return
	}
	out := make([]int, len(suspects))
	for i, t := range suspects {
		out[i] = ids[t]
	}
	// Ascending tuple ids pin the pagination order.
	sort.Ints(out)
	lo, hi, next, err := pageWindow(r.URL.Query(), len(out))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	resp := map[string]any{"suspects": out[lo:hi]}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

type tupleJSON struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

// listTuples pages through the live tuples in ascending id order — the
// bulk-export counterpart of POST /v1/tuples. The cursor is the id to resume
// from (as handed back in next_cursor), so a page stays correct even when
// tuples are inserted or deleted between requests.
func (s *server) listTuples(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start := 0
	if c := q.Get("cursor"); c != "" {
		v, err := strconv.Atoi(c)
		if err != nil || v < 0 {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("cursor %q is not a non-negative integer", c))
			return
		}
		start = v
	}
	limit := 0
	if l := q.Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v <= 0 {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("limit %q is not a positive integer", l))
			return
		}
		limit = v
	}
	tuples, next, more := s.eng.Tuples(start, limit)
	out := make([]tupleJSON, len(tuples))
	for i, t := range tuples {
		out[i] = tupleJSON{ID: t.ID, Values: t.Values}
	}
	resp := map[string]any{"tuples": out, "total": s.eng.Size()}
	if more {
		resp["next_cursor"] = strconv.Itoa(next)
	}
	writeJSON(w, http.StatusOK, resp)
}

// insertRequest accepts either a single tuple ("values") or a batch ("rows").
type insertRequest struct {
	Values []string   `json:"values,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
}

func (s *server) insert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	rows := req.Rows
	if len(req.Values) > 0 {
		rows = append(rows, req.Values)
	}
	if len(rows) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry \"values\" or \"rows\""))
		return
	}
	ops := make([]violation.Op, len(rows))
	for i, row := range rows {
		ops[i] = violation.Op{Kind: violation.OpInsert, Values: row}
	}
	// One atomic batch: either every row is inserted (and write-ahead
	// logged as one record) or none is.
	ids, err := s.eng.ApplyBatch(ops)
	if err != nil {
		writeOpError(w, r, err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, map[string]any{
		"ids":    ids,
		"tuples": s.eng.Size(),
		"dirty":  s.eng.DirtyCount(),
	})
}

// batchRequest is the body of POST /batch: ops applied in order as one
// atomic, write-ahead-logged mutation.
type batchRequest struct {
	Ops []violation.Op `json:"ops"`
}

func (s *server) batch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry a non-empty \"ops\" array"))
		return
	}
	ids, err := s.eng.ApplyBatch(req.Ops)
	if err != nil {
		writeOpError(w, r, err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": len(req.Ops),
		"ids":     ids,
		"tuples":  s.eng.Size(),
		"dirty":   s.eng.DirtyCount(),
	})
}

func (s *server) tuple(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	row, err := s.eng.Row(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "values": row})
}

func (s *server) tupleViolations(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	rules, err := s.eng.TupleViolations(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, codeNotFound, err)
		return
	}
	out := make([]string, len(rules))
	for i, rule := range rules {
		out[i] = rule.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "violated": out})
}

func (s *server) update(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Values) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry \"values\""))
		return
	}
	if err := s.eng.Update(id, req.Values...); err != nil {
		writeOpError(w, r, err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "dirty": s.eng.DirtyCount()})
}

func (s *server) remove(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if err := s.eng.Delete(id); err != nil {
		writeOpError(w, r, err)
		return
	}
	s.maybeCompact()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     id,
		"tuples": s.eng.Size(),
		"dirty":  s.eng.DirtyCount(),
	})
}

// serving bundles what main (and the tests) boot: the engine plus its
// optional persistence.
type serving struct {
	eng   *violation.Engine
	store *violation.Store
}

// close compacts a final snapshot (so the next start replays no WAL) and
// closes the store. Memory-only servings close trivially.
func (sv *serving) close() error {
	if sv.store == nil {
		return nil
	}
	if err := sv.store.Compact(sv.eng); err != nil {
		sv.store.Close()
		return err
	}
	return sv.store.Close()
}

// buildServing assembles the serving state from the command-line
// configuration. With -state it prefers the state directory: when the
// directory already holds a snapshot, the engine — rules, tuples, ids — is
// rebuilt from it (WAL replayed) and -rules/-data/-sample are ignored;
// otherwise the engine is built as in a memory-only run, a first snapshot is
// compacted, and from then on every mutation is write-ahead logged.
func buildServing(cfg config) (*serving, error) {
	if cfg.statePath == "" {
		eng, err := loadEngine(cfg)
		if err != nil {
			return nil, err
		}
		return &serving{eng: eng}, nil
	}
	store, err := violation.OpenStore(cfg.statePath, violation.StoreOptions{Sync: cfg.fsync})
	if err != nil {
		return nil, err
	}
	eng, restored, err := store.Load(violation.Options{Workers: cfg.workers})
	if err != nil {
		store.Close()
		return nil, err
	}
	if restored {
		if cfg.rulesPath != "" || cfg.dataPath != "" || cfg.samplePath != "" {
			slog.Warn("state directory has a snapshot; ignoring -rules/-data/-sample", "state_dir", cfg.statePath)
		}
	} else {
		eng, err = loadEngine(cfg)
		if err != nil {
			store.Close()
			return nil, err
		}
		// The initial bulk load is captured by a snapshot, not the WAL.
		if err := store.Compact(eng); err != nil {
			store.Close()
			return nil, err
		}
	}
	eng.AttachWAL(store)
	return &serving{eng: eng, store: store}, nil
}

// loadEngine builds the serving engine from the command-line configuration:
// a rule set from a rule file (text or JSON, sniffed by rules.Load) or
// discovered on a trusted sample, the schema from -data, -schema or the
// sample, and an optional initial bulk load of -data.
func loadEngine(cfg config) (*violation.Engine, error) {
	var set *rules.Set
	var sampleRel *cfd.Relation
	if cfg.samplePath != "" {
		var err error
		sampleRel, err = loadCSV(cfg.samplePath)
		if err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.rulesPath != "":
		var err error
		set, err = rules.Load(cfg.rulesPath)
		if err != nil {
			return nil, err
		}
	case sampleRel != nil:
		var err error
		set, err = discoverRules(context.Background(), sampleRel, cfg, 0, nil)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("either -rules or -sample is required")
	}

	var initial *cfd.Relation
	if cfg.dataPath != "" {
		var err error
		initial, err = loadCSV(cfg.dataPath)
		if err != nil {
			return nil, err
		}
	}
	attrs := cfg.schema
	switch {
	case len(attrs) > 0:
	case initial != nil:
		attrs = initial.Attributes()
	case sampleRel != nil:
		attrs = sampleRel.Attributes()
	default:
		return nil, fmt.Errorf("the schema is unknown: pass -data, -sample or -schema")
	}
	eng, err := violation.New(attrs, set, violation.Options{Workers: cfg.workers})
	if err != nil {
		return nil, err
	}
	if initial != nil {
		if err := eng.BulkLoad(initial); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

func loadCSV(path string) (*cfd.Relation, error) {
	return dataset.LoadCSVFile(path)
}
