package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/cfd"
	"repro/cleaning"
	"repro/rules"
	"repro/violation"
)

// server wraps the single-writer violation engine behind an RWMutex so the
// HTTP handlers can serve reads concurrently and serialise mutations.
type server struct {
	mu      sync.RWMutex
	eng     *violation.Engine
	started time.Time
}

func newServer(eng *violation.Engine) *server {
	return &server{eng: eng, started: time.Now()}
}

// handler builds the route table. All bodies and responses are JSON.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.health)
	mux.HandleFunc("GET /rules", s.rules)
	mux.HandleFunc("GET /violations", s.violations)
	mux.HandleFunc("GET /suspects", s.suspects)
	mux.HandleFunc("POST /tuples", s.insert)
	mux.HandleFunc("GET /tuples/{id}", s.tuple)
	mux.HandleFunc("GET /tuples/{id}/violations", s.tupleViolations)
	mux.HandleFunc("PUT /tuples/{id}", s.update)
	mux.HandleFunc("DELETE /tuples/{id}", s.remove)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func pathID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *server) health(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"tuples": s.eng.Size(),
		"rules":  len(s.eng.Rules()),
		// dirty is the O(rules) per-rule sum, an upper bound across
		// overlapping rules; GET /violations has the exact set.
		"dirty":  s.eng.DirtyCount(),
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
	})
}

// rules serves the engine's rule set as rules.Set JSON — the rules in set
// order plus class counts, pattern tableaux and (when the set came from
// discovery) its provenance — alongside the serving schema. The document
// round-trips through rules.Parse, so a client can feed it straight back to
// cfdserve -rules or cfdclean -rules.
func (s *server) rules(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"attributes": s.eng.Attributes(),
		"ruleset":    s.eng.RuleSet(),
	})
}

type violationJSON struct {
	Rule   string `json:"rule"`
	Tuples []int  `json:"tuples"`
}

func (s *server) violations(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := s.eng.Report()
	out := make([]violationJSON, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		out = append(out, violationJSON{Rule: v.Rule.String(), Tuples: v.Tuples})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"violations":    out,
		"dirty":         rep.DirtyTuples,
		"rules_checked": rep.RulesChecked,
	})
}

func (s *server) suspects(w http.ResponseWriter, _ *http.Request) {
	// Materialise under the read lock, but run the batch suspect analysis on
	// the copy outside it: it rescans the whole relation, and holding the lock
	// for that long would stall every writer behind a polling client.
	s.mu.RLock()
	rel, ids, err := s.eng.Relation()
	set := s.eng.RuleSet()
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	suspects, err := cleaning.Suspects(rel, set)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]int, len(suspects))
	for i, t := range suspects {
		out[i] = ids[t]
	}
	writeJSON(w, http.StatusOK, map[string]any{"suspects": out})
}

// insertRequest accepts either a single tuple ("values") or a batch ("rows").
type insertRequest struct {
	Values []string   `json:"values,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
}

func (s *server) insert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	rows := req.Rows
	if len(req.Values) > 0 {
		rows = append(rows, req.Values)
	}
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body must carry \"values\" or \"rows\""))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(rows))
	for _, row := range rows {
		id, err := s.eng.Insert(row...)
		if err != nil {
			// Earlier rows of the batch stay inserted; report how far we got.
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "ids": ids})
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ids":    ids,
		"tuples": s.eng.Size(),
		"dirty":  s.eng.DirtyCount(),
	})
}

func (s *server) tuple(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	row, err := s.eng.Row(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "values": row})
}

func (s *server) tupleViolations(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rules, err := s.eng.TupleViolations(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	out := make([]string, len(rules))
	for i, rule := range rules {
		out[i] = rule.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "violated": out})
}

func (s *server) update(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Values) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body must carry \"values\""))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.eng.Row(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The tuple exists, so a failing update is a bad request (arity mismatch).
	if err := s.eng.Update(id, req.Values...); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "dirty": s.eng.DirtyCount()})
}

func (s *server) remove(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.eng.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     id,
		"tuples": s.eng.Size(),
		"dirty":  s.eng.DirtyCount(),
	})
}

// loadEngine builds the serving engine from the command-line configuration:
// a rule set from a rule file (text or JSON, sniffed by rules.Load) or
// discovered on a trusted sample, the schema from -data, -schema or the
// sample, and an optional initial bulk load of -data.
func loadEngine(cfg config) (*violation.Engine, error) {
	var set *rules.Set
	var sampleRel *cfd.Relation
	if cfg.samplePath != "" {
		var err error
		sampleRel, err = loadCSV(cfg.samplePath)
		if err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.rulesPath != "":
		var err error
		set, err = rules.Load(cfg.rulesPath)
		if err != nil {
			return nil, err
		}
	case sampleRel != nil:
		var err error
		set, err = discoverRules(sampleRel, cfg)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("either -rules or -sample is required")
	}

	var initial *cfd.Relation
	if cfg.dataPath != "" {
		var err error
		initial, err = loadCSV(cfg.dataPath)
		if err != nil {
			return nil, err
		}
	}
	attrs := cfg.schema
	switch {
	case len(attrs) > 0:
	case initial != nil:
		attrs = initial.Attributes()
	case sampleRel != nil:
		attrs = sampleRel.Attributes()
	default:
		return nil, fmt.Errorf("the schema is unknown: pass -data, -sample or -schema")
	}
	eng, err := violation.New(attrs, set, violation.Options{Workers: cfg.workers})
	if err != nil {
		return nil, err
	}
	if initial != nil {
		if err := eng.BulkLoad(initial); err != nil {
			return nil, err
		}
	}
	return eng, nil
}
