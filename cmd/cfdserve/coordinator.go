package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/cluster"
)

// coordServer is the coordinator mode of cfdserve: a thin stateless HTTP
// front over a fleet of shard nodes. It holds no engine and no store — every
// request is routed (writes) or scatter-gathered (reads) through the
// cluster handle, and the response shapes mirror the single-node API so the
// same clients work against either. See the "Cluster" section of
// ARCHITECTURE.md for the partitioning and consistency argument.
type coordServer struct {
	cl  *cluster.Cluster
	obs *obsStack
}

// coordRoutes is the coordinator's API surface — the single-node routes that
// make sense across a fleet. No legacy aliases (coordinator mode postdates
// versioning), no delta/stream reads (each shard commits on its own WAL, so
// there is no fleet-wide epoch to resume from; consume the shards' streams
// directly), and no remine (mining is a per-node operation).
func (s *coordServer) routes() []route {
	return []route{
		{"GET", "/health", false, s.health},
		{"GET", "/rules", false, s.rules},
		{"PUT", "/rules", false, s.putRules},
		{"GET", "/violations", false, s.violations},
		{"GET", "/suspects", false, s.suspects},
		{"GET", "/tuples", false, s.listTuples},
		{"POST", "/tuples", false, s.insert},
		{"POST", "/batch", false, s.batch},
		{"GET", "/tuples/{id}", false, s.tuple},
		{"GET", "/tuples/{id}/violations", false, s.tupleViolations},
		{"PUT", "/tuples/{id}", false, s.update},
		{"DELETE", "/tuples/{id}", false, s.remove},
	}
}

func (s *coordServer) handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" /v1"+rt.pattern, s.obs.instrument(rt.method, rt.pattern, rt.handler))
	}
	mux.Handle("GET /metrics", s.obs.reg.Handler())
	return mux
}

// writeClusterError maps a cluster error onto the wire: an unavailable shard
// is 503 with the "unavailable" code (the partial-failure contract — reads
// fail closed rather than returning silently partial results), a shard's own
// API error passes through with the shard's status and code, anything else
// is 500.
func writeClusterError(w http.ResponseWriter, r *http.Request, err error) {
	var api *cluster.APIError
	switch {
	case errors.Is(err, cluster.ErrUnavailable):
		writeError(w, r, http.StatusServiceUnavailable, codeUnavailable, err)
	case errors.As(err, &api):
		writeError(w, r, api.Status, api.Code, err)
	default:
		writeError(w, r, http.StatusInternalServerError, codeInternal, err)
	}
}

// health aggregates the fleet's health. It always answers 200 — a down shard
// degrades status instead, with the per-shard breakdown saying which and why
// — so orchestration probes can distinguish "coordinator dead" from
// "coordinator up, fleet degraded".
func (s *coordServer) health(w http.ResponseWriter, r *http.Request) {
	h := s.cl.Health(r.Context())
	shards := make([]map[string]any, len(h.Shards))
	for i, st := range h.Shards {
		doc := map[string]any{
			"index":   st.Index,
			"url":     st.URL,
			"healthy": st.Healthy,
		}
		if st.Healthy {
			doc["tuples"] = st.Doc.Tuples
			doc["rules"] = st.Doc.Rules
			doc["dirty"] = st.Doc.Dirty
			doc["epoch"] = st.Doc.Epoch
			doc["rules_version"] = st.Doc.RulesVersion
			doc["next_id"] = st.Doc.NextID
		} else {
			doc["error"] = st.Err
		}
		shards[i] = doc
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        h.Status,
		"mode":          "coordinator",
		"shards":        shards,
		"tuples":        h.Tuples,
		"dirty":         h.Dirty,
		"rules_version": h.RulesVersion,
		"next_id":       h.NextID,
		"partition_key": s.cl.Key(),
	})
}

// rules serves the rule document the fleet agrees on, with the fingerprint
// as the ETag — the same contract as the single node, which is what makes
// If-Match swaps through the coordinator work unchanged.
func (s *coordServer) rules(w http.ResponseWriter, r *http.Request) {
	doc, err := s.cl.Rules(r.Context())
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatch(match, doc.Version) {
		w.Header().Set("ETag", `"`+doc.Version+`"`)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("ETag", `"`+doc.Version+`"`)
	writeJSON(w, http.StatusOK, map[string]any{
		"attributes": doc.Attributes,
		"ruleset":    doc.Ruleset,
		"version":    doc.Version,
	})
}

// putRules runs the coordinated two-phase swap: all shards move to the
// uploaded set or none does (cluster.SwapRules has the protocol). An
// If-Match header additionally requires every shard's current version to
// appear among its listed tags, like the single-node CAS; "*" (match-any)
// leaves the swap unconditional.
func (s *coordServer) putRules(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRulesBody+1))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxRulesBody {
		writeError(w, r, http.StatusRequestEntityTooLarge, codePayloadTooLarge, fmt.Errorf("rule file exceeds %d bytes", maxRulesBody))
		return
	}
	ifMatch, _ := etagList(r.Header.Get("If-Match")) // * = match-any = unconditional
	res, err := s.cl.SwapRules(r.Context(), body, ifMatch)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"swapped": res.Swapped,
		"version": res.Version,
		"rules":   res.Rules,
		"shards":  res.Shards,
	})
}

// violations serves the merged fleet-wide report: per-rule tuple sets in
// rule order, ascending ids — the same deterministic shape a single node
// serving all the tuples would produce, except that "epoch" is the per-shard
// "epochs" array (each shard commits on its own WAL). limit/cursor page over
// the merged per-rule entries exactly like the single node. ?since= delta
// reads are not served here.
func (s *coordServer) violations(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("since") != "" {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			errors.New("delta reads (?since=) are not served by the coordinator; read the full report or each shard's /v1/violations/stream"))
		return
	}
	rep, err := s.cl.Violations(r.Context())
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	out := rep.Violations
	if out == nil {
		out = []cluster.RuleTuples{}
	}
	lo, hi, next, err := pageWindow(q, len(out))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	resp := map[string]any{
		"epochs":        rep.Epochs,
		"violations":    out[lo:hi],
		"dirty":         rep.Dirty,
		"rules_checked": rep.RulesChecked,
	}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *coordServer) suspects(w http.ResponseWriter, r *http.Request) {
	out, err := s.cl.Suspects(r.Context())
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	lo, hi, next, err := pageWindow(r.URL.Query(), len(out))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	resp := map[string]any{"suspects": out[lo:hi]}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *coordServer) listTuples(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor := 0
	if c := q.Get("cursor"); c != "" {
		v, err := strconv.Atoi(c)
		if err != nil || v < 0 {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("cursor %q is not a non-negative integer", c))
			return
		}
		cursor = v
	}
	limit := 0
	if l := q.Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v <= 0 {
			writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("limit %q is not a positive integer", l))
			return
		}
		limit = v
	}
	page, err := s.cl.Tuples(r.Context(), cursor, limit)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	resp := map[string]any{"tuples": page.Tuples, "total": page.Total}
	if page.Next != "" {
		resp["next_cursor"] = page.Next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *coordServer) insert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	rows := req.Rows
	if len(req.Values) > 0 {
		rows = append(rows, req.Values)
	}
	if len(rows) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry \"values\" or \"rows\""))
		return
	}
	res, err := s.cl.Insert(r.Context(), rows)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": res.IDs})
}

func (s *coordServer) batch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry a non-empty \"ops\" array"))
		return
	}
	res, err := s.cl.Batch(r.Context(), req.Ops)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"applied": len(req.Ops), "ids": ids})
}

func (s *coordServer) tuple(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	doc, err := s.cl.Get(r.Context(), id)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": doc.ID, "values": doc.Values})
}

func (s *coordServer) tupleViolations(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	doc, err := s.cl.TupleViolations(r.Context(), id)
	if err != nil {
		writeClusterError(w, r, err)
		return
	}
	violated := doc.Violated
	if violated == nil {
		violated = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": doc.ID, "violated": violated})
}

func (s *coordServer) update(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Values) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("body must carry \"values\""))
		return
	}
	if err := s.cl.Update(r.Context(), id, req.Values); err != nil {
		writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id})
}

func (s *coordServer) remove(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if err := s.cl.Delete(r.Context(), id); err != nil {
		writeClusterError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id})
}

// newCoordinator wires the cluster handle and its telemetry, and retries
// Init until the fleet answers or the deadline passes — shard nodes booting
// alongside the coordinator (the smoke test, docker-compose) need a grace
// window before all of them serve /v1/health.
func newCoordinator(ctx context.Context, cfg config) (*coordServer, error) {
	st, err := newObsStack(cfg, cfg.logw)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Shards:   cfg.shardURLs,
		Key:      cfg.partitionBy,
		Timeout:  cfg.shardTimeout,
		Observer: newCoordObs(st.reg),
	})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.initWait)
	for {
		err = cl.Init(ctx)
		if err == nil {
			break
		}
		// Config-shaped rejections (mixed rule sets, a bad partition key) do
		// not heal by waiting; only unavailability is worth retrying.
		if !errors.Is(err, cluster.ErrUnavailable) || time.Now().After(deadline) {
			return nil, fmt.Errorf("forming the cluster: %w", err)
		}
		st.logger().Info("waiting for shards", "error", err)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
	return &coordServer{cl: cl, obs: st}, nil
}
