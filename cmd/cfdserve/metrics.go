package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/obs"
)

// obsStack bundles the server's observability state: the metrics registry
// behind GET /metrics, the structured logger, and the HTTP-layer series the
// instrument middleware feeds. Engine, WAL and delta series are registered by
// obs.InstrumentEngine/InstrumentStore against the same registry.
type obsStack struct {
	reg *obs.Registry
	log *slog.Logger

	reqTotal *obs.CounterVec   // route, method, code (status class: 2xx..5xx)
	reqDur   *obs.HistogramVec // route, method
	inFlight *obs.Gauge
	sse      *obs.Gauge

	remineTotal   *obs.CounterVec // outcome: swapped | unchanged | error
	remineDur     *obs.Histogram
	rulesStreamed *obs.Counter
}

// newObsStack builds the registry, the HTTP/discovery families and the logger.
// logW is the log destination (nil = stderr); level and format come from the
// -log-level/-log-format flags and default to info/text.
func newObsStack(cfg config, logW io.Writer) (*obsStack, error) {
	if logW == nil {
		logW = os.Stderr
	}
	log, err := obs.NewLogger(logW, cfg.logLevel, cfg.logFormat)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	return &obsStack{
		reg:           reg,
		log:           log,
		reqTotal:      reg.CounterVec("cfd_http_requests_total", "HTTP requests served, by route pattern, method and status class.", "route", "method", "code"),
		reqDur:        reg.HistogramVec("cfd_http_request_duration_seconds", "HTTP request duration by route pattern and method.", obs.DefBuckets, "route", "method"),
		inFlight:      reg.Gauge("cfd_http_in_flight_requests", "HTTP requests currently being served."),
		sse:           reg.Gauge("cfd_http_sse_subscribers", "Open /v1/violations/stream SSE connections."),
		remineTotal:   reg.CounterVec("cfd_remine_total", "Completed remine runs by outcome (swapped, unchanged, error).", "outcome"),
		remineDur:     reg.Histogram("cfd_remine_duration_seconds", "Wall-clock duration of remine runs.", obs.DefBuckets),
		rulesStreamed: reg.Counter("cfd_discovery_rules_streamed_total", "Candidate rules streamed by discovery during remines."),
	}, nil
}

// statusWriter captures the response status for the access log and metrics.
// It forwards Flush (the SSE handler type-asserts http.Flusher) and exposes
// the wrapped writer via Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// validRequestID bounds what the server echoes back: a client-supplied id is
// reused only when it is short and header/log-safe, anything else is replaced.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// instrument wraps one route handler with the observability middleware: it
// assigns (or adopts) the request id, echoes it as X-Request-Id, carries it in
// the context so every log line and error envelope repeats it, tracks the
// in-flight gauge, and emits the per-route counter, duration histogram and
// access log line when the handler returns. route is the pattern label
// ("/violations", not the concrete path), so the series stay low-cardinality.
func (s *server) instrument(method, route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.obs.inFlight.Inc()
		defer func() {
			s.obs.inFlight.Dec()
			elapsed := time.Since(start)
			s.obs.reqTotal.With(route, method, fmt.Sprintf("%dxx", sw.status/100)).Inc()
			s.obs.reqDur.With(route, method).Observe(elapsed.Seconds())
			s.logger().LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
			)
		}()
		h(sw, r)
	}
}

// logger returns the server's structured logger (the process default when the
// server was built without an obs stack, which only happens in tests that
// construct the struct directly).
func (s *server) logger() *slog.Logger {
	if s.obs != nil && s.obs.log != nil {
		return s.obs.log
	}
	return slog.Default()
}
