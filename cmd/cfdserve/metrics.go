package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/obs"
)

// obsStack bundles the server's observability state: the metrics registry
// behind GET /metrics, the structured logger, and the HTTP-layer series the
// instrument middleware feeds. Engine, WAL and delta series are registered by
// obs.InstrumentEngine/InstrumentStore against the same registry.
type obsStack struct {
	reg *obs.Registry
	log *slog.Logger

	reqTotal *obs.CounterVec   // route, method, code (status class: 2xx..5xx)
	reqDur   *obs.HistogramVec // route, method
	inFlight *obs.Gauge
	sse      *obs.Gauge

	remineTotal   *obs.CounterVec // outcome: swapped | unchanged | error | skipped
	remineDur     *obs.Histogram
	rulesStreamed *obs.Counter

	maintainChecks   *obs.Counter    // maintenance-policy evaluations
	maintainTriggers *obs.CounterVec // reason: drift | confidence | epochs
}

// newObsStack builds the registry, the HTTP/discovery families and the logger.
// logW is the log destination (nil = stderr); level and format come from the
// -log-level/-log-format flags and default to info/text.
func newObsStack(cfg config, logW io.Writer) (*obsStack, error) {
	if logW == nil {
		logW = os.Stderr
	}
	log, err := obs.NewLogger(logW, cfg.logLevel, cfg.logFormat)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	return &obsStack{
		reg:           reg,
		log:           log,
		reqTotal:      reg.CounterVec("cfd_http_requests_total", "HTTP requests served, by route pattern, method and status class.", "route", "method", "code"),
		reqDur:        reg.HistogramVec("cfd_http_request_duration_seconds", "HTTP request duration by route pattern and method.", obs.DefBuckets, "route", "method"),
		inFlight:      reg.Gauge("cfd_http_in_flight_requests", "HTTP requests currently being served."),
		sse:           reg.Gauge("cfd_http_sse_subscribers", "Open /v1/violations/stream SSE connections."),
		remineTotal:   reg.CounterVec("cfd_remine_total", "Remine runs by outcome (swapped, unchanged, error), plus periodic ticks skipped because the epoch had not moved (skipped).", "outcome"),
		remineDur:     reg.Histogram("cfd_remine_duration_seconds", "Wall-clock duration of remine runs.", obs.DefBuckets),
		rulesStreamed: reg.Counter("cfd_discovery_rules_streamed_total", "Candidate rules streamed by discovery during remines."),

		maintainChecks:   reg.Counter("cfd_maintain_checks_total", "Rule-maintenance policy evaluations against the live per-rule counters."),
		maintainTriggers: reg.CounterVec("cfd_maintain_triggers_total", "Maintenance-triggered remines by policy reason (drift, confidence, epochs).", "reason"),
	}, nil
}

// ObserveCheck and ObserveTrigger make the obs stack the monitor.Observer of
// the -maintain loop, so the monitor package stays metrics-free the same way
// the violation engine does.
func (o *obsStack) ObserveCheck() { o.maintainChecks.Inc() }

func (o *obsStack) ObserveTrigger(reason string) { o.maintainTriggers.With(reason).Inc() }

// statusWriter captures the response status for the access log and metrics.
// It forwards Flush (the SSE handler type-asserts http.Flusher) and exposes
// the wrapped writer via Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// validRequestID bounds what the server echoes back: a client-supplied id is
// reused only when it is short and header/log-safe, anything else is replaced.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// instrument wraps one route handler with the observability middleware: it
// assigns (or adopts) the request id, echoes it as X-Request-Id, carries it in
// the context so every log line and error envelope repeats it, tracks the
// in-flight gauge, and emits the per-route counter, duration histogram and
// access log line when the handler returns. route is the pattern label
// ("/violations", not the concrete path), so the series stay low-cardinality.
// A method on the obs stack so the single-node server and the coordinator
// share one middleware.
func (o *obsStack) instrument(method, route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obs.WithRequestID(r.Context(), id)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		o.inFlight.Inc()
		defer func() {
			o.inFlight.Dec()
			elapsed := time.Since(start)
			o.reqTotal.With(route, method, fmt.Sprintf("%dxx", sw.status/100)).Inc()
			o.reqDur.With(route, method).Observe(elapsed.Seconds())
			o.logger().LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
			)
		}()
		h(sw, r)
	}
}

// logger returns the stack's structured logger, or the process default for a
// zero stack (tests constructing the structs directly).
func (o *obsStack) logger() *slog.Logger {
	if o != nil && o.log != nil {
		return o.log
	}
	return slog.Default()
}

// logger returns the server's structured logger (the process default when the
// server was built without an obs stack, which only happens in tests that
// construct the struct directly).
func (s *server) logger() *slog.Logger {
	if s.obs == nil {
		return slog.Default()
	}
	return s.obs.logger()
}

// coordObs is the coordinator's shard-facing telemetry: the cluster.Observer
// the shard clients call into, backed by the same registry the HTTP families
// live in. All five families carry the shard index (or scatter op / swap
// outcome) as their only label, so cardinality is bounded by the fleet size.
type coordObs struct {
	shardReqTotal *obs.CounterVec   // shard, result (ok | error)
	shardReqDur   *obs.HistogramVec // shard
	shardUp       *obs.GaugeVec     // shard: 1 healthy, 0 breaker open
	scatterErrs   *obs.CounterVec   // op (violations, tuples, swap, ...)
	swapTotal     *obs.CounterVec   // outcome (committed, rejected, aborted, mixed)
}

// newCoordObs registers the coordinator families against the stack's registry.
func newCoordObs(reg *obs.Registry) *coordObs {
	return &coordObs{
		shardReqTotal: reg.CounterVec("cfd_coord_shard_requests_total", "Coordinator-to-shard round trips by shard index and result (ok, error).", "shard", "result"),
		shardReqDur:   reg.HistogramVec("cfd_coord_shard_request_duration_seconds", "Coordinator-to-shard round-trip duration by shard index.", obs.DefBuckets, "shard"),
		shardUp:       reg.GaugeVec("cfd_coord_shard_up", "Per-shard availability as seen by the coordinator's circuit breaker (1 up, 0 down).", "shard"),
		scatterErrs:   reg.CounterVec("cfd_coord_scatter_errors_total", "Scatter-gather operations that failed as a whole, by operation.", "op"),
		swapTotal:     reg.CounterVec("cfd_coord_rule_swaps_total", "Coordinated two-phase rule swaps by outcome (committed, rejected, aborted, mixed).", "outcome"),
	}
}

func (c *coordObs) ObserveShardRequest(shard string, seconds float64, failed bool) {
	result := "ok"
	if failed {
		result = "error"
	}
	c.shardReqTotal.With(shard, result).Inc()
	c.shardReqDur.With(shard).Observe(seconds)
}

func (c *coordObs) ObserveShardHealth(shard string, healthy bool) {
	v := 0.0
	if healthy {
		v = 1
	}
	c.shardUp.With(shard).Set(v)
}

func (c *coordObs) ObserveScatterError(op string) { c.scatterErrs.With(op).Inc() }

func (c *coordObs) ObserveSwap(outcome string) { c.swapTotal.With(outcome).Inc() }
