package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The cluster fixtures: the cust schema with rules sharing the CC attribute,
// so the derived partition key is [CC] and a multi-shard placement is exact.
// (The single-node fixture rules have disjoint LHS — a legal cluster would
// collapse them onto one shard, which exercises nothing.)
var clusterSchema = []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP"}

const clusterRules = "([CC,AC] -> CT, (_, _ || _))\n([CC,ZIP] -> STR, (_, _ || _))\n"

// newShardNode boots one single-node cfdserve over the cluster fixtures —
// empty, memory-only — exactly as a shard of the smoke-test fleet would run.
func newShardNode(t *testing.T, rules string) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rules.txt")
	if err := os.WriteFile(path, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := loadEngine(config{rulesPath: path, schema: clusterSchema})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng, nil, config{logw: io.Discard}).handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoord forms a coordinator over the given shard URLs and serves it.
func newCoord(t *testing.T, urls []string) (*coordServer, *httptest.Server) {
	t.Helper()
	cs, err := newCoordinator(context.Background(), config{
		shardURLs:    urls,
		shardTimeout: 2 * time.Second,
		initWait:     5 * time.Second,
		logw:         io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cs.handler())
	t.Cleanup(ts.Close)
	return cs, ts
}

// canonicalReport strips a /v1/violations response to the fields both
// serving modes share — violations, dirty, rules_checked — re-marshalled so
// two equal reports are byte-identical.
func canonicalReport(t *testing.T, doc map[string]any) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"violations":    doc["violations"],
		"dirty":         doc["dirty"],
		"rules_checked": doc["rules_checked"],
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterOracle drives an identical randomized op sequence through a
// 3-shard coordinator and a single node and requires byte-identical merged
// reports at every checkpoint: same assigned ids, same violations (per-rule
// tuple sets in rule order), same dirty set, same suspects, same tuple
// listing. This is the partitioning correctness argument, executed.
func TestClusterOracle(t *testing.T) {
	urls := make([]string, 3)
	for i := range urls {
		urls[i] = newShardNode(t, clusterRules).URL
	}
	cs, coord := newCoord(t, urls)
	if got := strings.Join(cs.cl.Key(), ","); got != "CC" {
		t.Fatalf("derived partition key = %q, want CC", got)
	}
	single := newShardNode(t, clusterRules)

	rng := rand.New(rand.NewSource(20260808))
	ccs := []string{"01", "44", "07", "33", "99"}
	acs := []string{"908", "131", "212"}
	cts := []string{"MH", "EDI", "NYC"}
	zips := []string{"07974", "01202", "EH4 1DT"}
	strs := []string{"Tree Ave.", "High St.", "5th Ave"}
	row := func() []string {
		return []string{
			ccs[rng.Intn(len(ccs))], acs[rng.Intn(len(acs))],
			fmt.Sprintf("%07d", rng.Intn(4)), "N" + fmt.Sprint(rng.Intn(3)),
			strs[rng.Intn(len(strs))], cts[rng.Intn(len(cts))], zips[rng.Intn(len(zips))],
		}
	}

	var live []int
	pick := func() (int, bool) {
		if len(live) == 0 {
			return 0, false
		}
		return live[rng.Intn(len(live))], true
	}
	drop := func(id int) {
		for i, v := range live {
			if v == id {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}
	both := func(method, path string, body any) (map[string]any, map[string]any) {
		c := do(t, method, coord.URL+path, body, http.StatusOK)
		s := do(t, method, single.URL+path, body, http.StatusOK)
		return c, s
	}

	check := func(step int) {
		t.Helper()
		c := do(t, "GET", coord.URL+"/v1/violations", nil, http.StatusOK)
		s := do(t, "GET", single.URL+"/v1/violations", nil, http.StatusOK)
		if cc, ss := canonicalReport(t, c), canonicalReport(t, s); cc != ss {
			t.Fatalf("step %d: reports diverge\ncoordinator: %s\nsingle node: %s", step, cc, ss)
		}
		c = do(t, "GET", coord.URL+"/v1/suspects", nil, http.StatusOK)
		s = do(t, "GET", single.URL+"/v1/suspects", nil, http.StatusOK)
		cb, _ := json.Marshal(c["suspects"])
		sb, _ := json.Marshal(s["suspects"])
		if string(cb) != string(sb) {
			t.Fatalf("step %d: suspects diverge: %s vs %s", step, cb, sb)
		}
	}

	const steps = 140
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert a small batch of rows
			rows := make([][]string, 1+rng.Intn(3))
			for j := range rows {
				rows[j] = row()
			}
			c, s := both("POST", "/v1/tuples", map[string]any{"rows": rows})
			cids, sids := ints(t, c["ids"]), ints(t, s["ids"])
			if fmt.Sprint(cids) != fmt.Sprint(sids) {
				t.Fatalf("step %d: insert ids diverge: %v vs %v", i, cids, sids)
			}
			live = append(live, cids...)
		case r < 7: // delete one live tuple
			id, ok := pick()
			if !ok {
				continue
			}
			both("DELETE", fmt.Sprintf("/v1/tuples/%d", id), nil)
			drop(id)
		case r < 9: // update one live tuple (often a cross-shard move: CC changes)
			id, ok := pick()
			if !ok {
				continue
			}
			both("PUT", fmt.Sprintf("/v1/tuples/%d", id), map[string]any{"values": row()})
		default: // mixed atomic-ish batch
			ops := []map[string]any{{"op": "insert", "values": row()}}
			if id, ok := pick(); ok {
				ops = append(ops, map[string]any{"op": "update", "id": id, "values": row()})
			}
			ops = append(ops, map[string]any{"op": "insert", "values": row()})
			c, s := both("POST", "/v1/batch", map[string]any{"ops": ops})
			cids, sids := ints(t, c["ids"]), ints(t, s["ids"])
			if fmt.Sprint(cids) != fmt.Sprint(sids) {
				t.Fatalf("step %d: batch ids diverge: %v vs %v", i, cids, sids)
			}
			live = append(live, cids...)
		}
		if i%20 == 19 {
			check(i)
		}
	}
	check(steps)

	// The tuple listing merges to the same id-ordered sequence, page by page.
	var coordAll, singleAll []any
	for _, base := range []string{coord.URL, single.URL} {
		var all []any
		cursor := ""
		for {
			u := base + "/v1/tuples?limit=7"
			if cursor != "" {
				u += "&cursor=" + cursor
			}
			doc := do(t, "GET", u, nil, http.StatusOK)
			all = append(all, doc["tuples"].([]any)...)
			next, _ := doc["next_cursor"].(string)
			if next == "" {
				break
			}
			cursor = next
		}
		if base == coord.URL {
			coordAll = all
		} else {
			singleAll = all
		}
	}
	cb, _ := json.Marshal(coordAll)
	sb, _ := json.Marshal(singleAll)
	if string(cb) != string(sb) {
		t.Fatalf("paged tuple listings diverge:\n%s\n%s", cb, sb)
	}
	if len(coordAll) != len(live) {
		t.Fatalf("listing has %d tuples, driver tracked %d", len(coordAll), len(live))
	}

	// Point reads agree too (served by whichever shard owns the id).
	for _, id := range live[:min(5, len(live))] {
		c := do(t, "GET", fmt.Sprintf("%s/v1/tuples/%d", coord.URL, id), nil, http.StatusOK)
		s := do(t, "GET", fmt.Sprintf("%s/v1/tuples/%d", single.URL, id), nil, http.StatusOK)
		cb, _ := json.Marshal(c)
		sb, _ := json.Marshal(s)
		if string(cb) != string(sb) {
			t.Fatalf("tuple %d diverges: %s vs %s", id, cb, sb)
		}
	}
}

// putGate lets a test reject PUT /v1/rules on one shard mid-swap, simulating
// a node that answers reads but cannot commit.
type putGate struct {
	h     http.Handler
	block atomic.Bool
}

func (p *putGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.block.Load() && r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/rules") {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"code":"internal","message":"induced swap failure"}}`))
		return
	}
	p.h.ServeHTTP(w, r)
}

// shardVersion reads the rules fingerprint a shard itself serves.
func shardVersion(t *testing.T, url string) string {
	t.Helper()
	doc := do(t, "GET", url+"/v1/rules", nil, http.StatusOK)
	v, _ := doc["version"].(string)
	return v
}

// TestClusterSwapAllOrNothing injects a commit failure mid-swap and requires
// the fleet to converge back: after the failed attempt every shard reports
// the same (old) fingerprint — a mixed rule set is never observable.
func TestClusterSwapAllOrNothing(t *testing.T) {
	gates := make([]*putGate, 3)
	urls := make([]string, 3)
	for i := range urls {
		node := newShardNode(t, clusterRules)
		gates[i] = &putGate{h: node.Config.Handler}
		node.Config.Handler = gates[i]
		urls[i] = node.URL
	}
	_, coord := newCoord(t, urls)
	oldVersion := shardVersion(t, urls[0])

	// Shard 1 commits reads but refuses the PUT: commit reaches shard 0,
	// fails at shard 1, and must roll shard 0 back.
	gates[1].block.Store(true)
	newRules := "([CC,AC] -> CT, (_, _ || _))\n"
	resp := clusterReq(t, "PUT", coord.URL+"/v1/rules", newRules, "", http.StatusServiceUnavailable)
	if code := errCode(t, resp); code != codeUnavailable {
		t.Fatalf("failed swap error code = %q, want %q", code, codeUnavailable)
	}
	for i, u := range urls {
		if v := shardVersion(t, u); v != oldVersion {
			t.Fatalf("after the aborted swap shard %d serves %q, want the old %q", i, v, oldVersion)
		}
	}
	// The fleet is consistent, so reads still work.
	doc := do(t, "GET", coord.URL+"/v1/rules", nil, http.StatusOK)
	if doc["version"] != oldVersion {
		t.Fatalf("coordinator serves %v, want %q", doc["version"], oldVersion)
	}

	// A stale If-Match is rejected before any shard changes.
	clusterReq(t, "PUT", coord.URL+"/v1/rules", newRules, `"not-the-version"`, http.StatusConflict)

	// Rules that cannot be partitioned by the cluster key are rejected.
	clusterReq(t, "PUT", coord.URL+"/v1/rules", "([AC] -> CT, (131 || EDI))\n", "", http.StatusUnprocessableEntity)

	// Unblocked, the same swap commits everywhere, CAS-guarded end to end.
	gates[1].block.Store(false)
	swap := doJSON(t, clusterReq(t, "PUT", coord.URL+"/v1/rules", newRules, `"`+oldVersion+`"`, http.StatusOK))
	newVersion, _ := swap["version"].(string)
	if newVersion == "" || newVersion == oldVersion {
		t.Fatalf("swap response = %v", swap)
	}
	// If-Match "*" is match-any, and a list naming the current version among
	// stale ones passes — the RFC forms, same as the single node.
	clusterReq(t, "PUT", coord.URL+"/v1/rules", newRules, `*`, http.StatusOK)
	clusterReq(t, "PUT", coord.URL+"/v1/rules", newRules, `"stale-version", "`+newVersion+`"`, http.StatusOK)
	for i, u := range urls {
		if v := shardVersion(t, u); v != newVersion {
			t.Fatalf("after the committed swap shard %d serves %q, want %q", i, v, newVersion)
		}
	}
	// The merge cache followed the swap: reads serve under the new set.
	do(t, "GET", coord.URL+"/v1/violations", nil, http.StatusOK)
}

// TestClusterDegraded kills a shard and checks the partial-failure contract:
// aggregated health degrades naming the shard, correctness-bearing reads
// fail closed with the 503 "unavailable" envelope, and writes routed to the
// live shards still work.
func TestClusterDegraded(t *testing.T) {
	nodes := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range urls {
		nodes[i] = newShardNode(t, clusterRules)
		urls[i] = nodes[i].URL
	}
	_, coord := newCoord(t, urls)
	do(t, "POST", coord.URL+"/v1/tuples", map[string]any{"rows": [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
		{"44", "131", "3333333", "Ben", "High St.", "EDI", "EH4 1DT"},
	}}, http.StatusOK)

	nodes[2].Close()

	health := do(t, "GET", coord.URL+"/v1/health", nil, http.StatusOK)
	if health["status"] != "degraded" {
		t.Fatalf("health status = %v, want degraded", health["status"])
	}
	shards := health["shards"].([]any)
	down := shards[2].(map[string]any)
	if down["healthy"] != false || down["error"] == nil {
		t.Fatalf("shard 2 status = %v, want unhealthy with an error", down)
	}
	if shards[0].(map[string]any)["healthy"] != true {
		t.Fatalf("shard 0 must stay healthy: %v", shards[0])
	}

	resp := clusterReq(t, "GET", coord.URL+"/v1/violations", "", "", http.StatusServiceUnavailable)
	if code := errCode(t, resp); code != codeUnavailable {
		t.Fatalf("degraded read error code = %q, want %q", code, codeUnavailable)
	}
	clusterReq(t, "GET", coord.URL+"/v1/suspects", "", "", http.StatusServiceUnavailable)
	clusterReq(t, "GET", coord.URL+"/v1/tuples", "", "", http.StatusServiceUnavailable)
}

// clusterReq performs a request with a literal body (and optional If-Match),
// asserting the status; the response body is returned undecoded.
func clusterReq(t *testing.T, method, url, body, ifMatch string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, url, resp.StatusCode, wantStatus, data)
	}
	return data
}

func doJSON(t *testing.T, data []byte) map[string]any {
	t.Helper()
	out := map[string]any{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	return out
}

// errCode extracts the stable code of an error envelope.
func errCode(t *testing.T, data []byte) string {
	t.Helper()
	doc := doJSON(t, data)
	env, _ := doc["error"].(map[string]any)
	code, _ := env["code"].(string)
	return code
}
