package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/discovery/monitor"
)

// newMaintainServer is newTestServer exposing the *server, so tests can read
// its obs counters and drive the remine/maintenance loops directly.
func newMaintainServer(t *testing.T, cfg config) (*httptest.Server, *server) {
	t.Helper()
	eng, err := loadEngine(config{
		rulesPath: "testdata/rules.txt",
		dataPath:  "testdata/cust.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(eng, nil, cfg)
	ts := httptest.NewServer(h.handler())
	t.Cleanup(ts.Close)
	return ts, h
}

// remineRuns sums the completed remine outcomes (everything but skipped).
func remineRuns(h *server) uint64 {
	return h.obs.remineTotal.With("swapped").Value() +
		h.obs.remineTotal.With("unchanged").Value() +
		h.obs.remineTotal.With("error").Value()
}

// TestRemineLoopSkipsIdle pins the acceptance criterion: a periodic remine
// loop over an idle engine performs zero discovery runs — every tick lands
// on cfd_remine_total{outcome="skipped"} — and starts mining again as soon
// as the epoch moves.
func TestRemineLoopSkipsIdle(t *testing.T) {
	ts, h := newMaintainServer(t, config{support: 2, maxLHS: 2})

	runLoop := func(d time.Duration) {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		h.remineLoop(ctx, 3*time.Millisecond)
	}
	runLoop(60 * time.Millisecond)
	if got := h.obs.remineTotal.With("skipped").Value(); got == 0 {
		t.Fatal("idle ticks were not counted as skipped")
	}
	if got := remineRuns(h); got != 0 {
		t.Fatalf("idle loop performed %d discovery runs, want 0", got)
	}
	if got := h.obs.rulesStreamed.Value(); got != 0 {
		t.Fatalf("idle loop streamed %d rules through discovery, want 0", got)
	}

	// Move the epoch: the next loop run must mine exactly once, then go
	// back to skipping.
	do(t, "POST", ts.URL+"/v1/tuples", map[string]any{
		"values": []string{"01", "908", "3333333", "Zoe", "Tree Ave.", "MH", "07974"},
	}, http.StatusOK)
	runLoop(100 * time.Millisecond)
	if got := remineRuns(h); got != 1 {
		t.Fatalf("loop after one insert performed %d runs, want exactly 1", got)
	}

	// A manual remine also moves the baseline: another idle stretch stays
	// at skips.
	before := remineRuns(h)
	runLoop(40 * time.Millisecond)
	if got := remineRuns(h); got != before {
		t.Fatalf("post-remine idle loop mined again (%d -> %d runs)", before, got)
	}
}

// TestRemineErrorRecorded: a remine that fails must land in /v1/health as
// the last run — outcome "error" plus the error string — not leave the
// previous success (or nothing) on display.
func TestRemineErrorRecorded(t *testing.T) {
	// No data: the remine refuses to mine an empty relation.
	eng, err := loadEngine(config{rulesPath: "testdata/rules.txt", schema: []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP"}})
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(eng, nil, config{support: 2, maxLHS: 2})
	ts := httptest.NewServer(h.handler())
	t.Cleanup(ts.Close)

	out := do(t, "POST", ts.URL+"/v1/rules/remine?wait=1", nil, http.StatusOK)
	if msg, _ := out["error"].(string); out["outcome"] != "error" || msg == "" {
		t.Fatalf("failed remine result = %v", out)
	}
	health := do(t, "GET", ts.URL+"/v1/health", nil, http.StatusOK)
	last, ok := health["last_remine"].(map[string]any)
	if !ok {
		t.Fatalf("health after failed remine has no last_remine: %v", health)
	}
	if last["outcome"] != "error" {
		t.Fatalf("last_remine outcome = %v, want error", last["outcome"])
	}
	if msg, _ := last["error"].(string); msg == "" {
		t.Fatalf("last_remine must carry the error string: %v", last)
	}
	if got := h.obs.remineTotal.With("error").Value(); got != 1 {
		t.Fatalf("error outcome counter = %d, want 1", got)
	}

	// A failed run must not move the periodic loop's skip baseline: with the
	// loop already running, churn that moves the epoch but leaves the
	// relation empty makes every tick retry (and fail) instead of skipping.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); h.remineLoop(ctx, 3*time.Millisecond) }()
	ids := do(t, "POST", ts.URL+"/v1/tuples", map[string]any{
		"values": []string{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
	}, http.StatusOK)["ids"].([]any)
	do(t, "DELETE", fmt.Sprintf("%s/v1/tuples/%d", ts.URL, int(ids[0].(float64))), nil, http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for h.obs.remineTotal.With("error").Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.obs.remineTotal.With("error").Value(); got < 3 {
		t.Fatalf("loop stopped retrying after a failed remine (error count %d)", got)
	}
	cancel()
	<-done
}

// TestRuleStatsServed: GET /v1/rules and /v1/health serve the live per-rule
// support/confidence derived from the engine counters.
func TestRuleStatsServed(t *testing.T) {
	ts, _ := newMaintainServer(t, config{support: 2, maxLHS: 2})

	rulesDoc := do(t, "GET", ts.URL+"/v1/rules", nil, http.StatusOK)
	stats, ok := rulesDoc["stats"].([]any)
	if !ok || len(stats) == 0 {
		t.Fatalf("GET /v1/rules must carry per-rule stats: %v", rulesDoc)
	}
	for _, raw := range stats {
		st := raw.(map[string]any)
		support := st["support"].(float64)
		violating := st["violating"].(float64)
		conf := st["confidence"].(float64)
		if st["rule"] == "" || support < violating || conf < 0 || conf > 1 {
			t.Fatalf("implausible rule stat %v", st)
		}
		want := 1.0
		if support > 0 {
			want = (support - violating) / support
		}
		if conf != want {
			t.Fatalf("stat %v: confidence %v, want %v", st, conf, want)
		}
	}

	health := do(t, "GET", ts.URL+"/v1/health", nil, http.StatusOK)
	hs, ok := health["rule_stats"].([]any)
	if !ok || len(hs) != len(stats) {
		t.Fatalf("health rule_stats = %v, want the same %d entries as /v1/rules", health["rule_stats"], len(stats))
	}

	// The fixture's constant rule ([AC] -> CT, (131 || EDI)) matches the
	// three AC=131 tuples, which form one CT-disagreeing group (EDI, EDI,
	// UN) — so support 3, 1 group, all 3 violating, confidence 0.
	found := false
	for _, raw := range stats {
		st := raw.(map[string]any)
		if st["rule"] == "([AC] -> CT, (131 || EDI))" {
			found = true
			if st["support"].(float64) != 3 || st["groups"].(float64) != 1 || st["violating"].(float64) != 3 {
				t.Fatalf("constant-rule stat = %v, want support 3 groups 1 violating 3", st)
			}
		}
	}
	if !found {
		t.Fatalf("fixture constant rule missing from stats: %v", stats)
	}
}

// TestMaintainEndToEnd wires the monitor exactly as main's -maintain path
// does and drives it over HTTP: idle server → zero remines; enough inserts
// to drift support → exactly one policy-triggered remine, visible in the
// cfd_maintain_* counters and the health maintain block.
func TestMaintainEndToEnd(t *testing.T) {
	ts, h := newMaintainServer(t, config{support: 2, maxLHS: 2})
	pol := monitor.Policy{MaxSupportDrift: 0.25, MinSupport: 1}
	mon := monitor.New(h.eng, pol, h.maintainRemine, monitor.WithObserver(h.obs))
	h.mon = mon

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); mon.Run(ctx) }()

	// The health maintain block is served as soon as the monitor is wired.
	health := do(t, "GET", ts.URL+"/v1/health", nil, http.StatusOK)
	if _, ok := health["maintain"].(map[string]any); !ok {
		t.Fatalf("health must serve the maintain status: %v", health)
	}

	// Idle: no triggers, no remines.
	time.Sleep(30 * time.Millisecond)
	if got := h.obs.maintainTriggers.With("drift").Value(); got != 0 {
		t.Fatalf("idle monitor triggered %d times", got)
	}
	if got := remineRuns(h); got != 0 {
		t.Fatalf("idle monitor remined %d times", got)
	}

	// Drift: the fixture loads 8 tuples, every rule has wildcard-free-ish
	// support near that; 3 inserts push support past the 25% envelope.
	for i := 0; i < 3; i++ {
		do(t, "POST", ts.URL+"/v1/tuples", map[string]any{
			"values": []string{"01", "908", "555000" + string(rune('1'+i)), "Zoe", "Tree Ave.", "MH", "07974"},
		}, http.StatusOK)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.obs.maintainTriggers.With("drift").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.obs.maintainTriggers.With("drift").Value(); got == 0 {
		t.Fatal("drift past the policy never triggered a remine")
	}
	deadline = time.Now().Add(5 * time.Second)
	for remineRuns(h) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := remineRuns(h); got == 0 {
		t.Fatal("the triggered remine never ran")
	}
	if got := h.obs.maintainChecks.Value(); got == 0 {
		t.Fatal("policy evaluations were not counted")
	}

	health = do(t, "GET", ts.URL+"/v1/health", nil, http.StatusOK)
	maintain := health["maintain"].(map[string]any)
	if maintain["triggers"].(float64) < 1 {
		t.Fatalf("health maintain block after trigger = %v", maintain)
	}
	if lt, ok := maintain["last_trigger"].(map[string]any); !ok || lt["reason"] != "drift" {
		t.Fatalf("health last_trigger = %v, want a drift trigger", maintain["last_trigger"])
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("monitor loop did not stop on cancel")
	}
}
