// Command benchjson converts the text output of `go test -bench` (read from
// stdin) into a machine-readable JSON document (written to stdout). CI runs it
// after the benchmark job to archive BENCH_ci.json as a build artifact, so the
// performance trajectory of the discovery algorithms is tracked per PR.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | benchjson > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full sub-benchmark path, without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were measured over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional unit the benchmark reported (via
	// b.ReportMetric or -benchmem), keyed by unit, e.g. "cfds" or "B/op".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName/sub-8   1   251178698 ns/op   1072 cfds
//
// i.e. the name and iteration count followed by (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the final path element, if present.
	if i := strings.LastIndex(name, "-"); i > strings.LastIndex(name, "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = value
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = value
	}
	return b, true
}
