// Command cfdgen generates the synthetic data sets used by the reproduction's
// experiments and writes them as CSV.
//
// Usage:
//
//	cfdgen -dataset tax -size 20000 -arity 9 -cf 0.7 -o tax.csv
//	cfdgen -dataset wbc -o wbc.csv
//	cfdgen -dataset chess -size 5000 -o chess.csv
//	cfdgen -dataset cust -o cust.csv
//
// With -noise a copy with randomly perturbed values is produced, which the
// cfdclean command (and the datacleaning example) can then analyse.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/cfd"
	"repro/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "tax", "data set: tax, wbc, chess, cust")
		size   = flag.Int("size", 10000, "number of tuples (tax, wbc, chess); 0 selects the original UCI size")
		arity  = flag.Int("arity", 9, "number of attributes (tax only, 7-64)")
		cf     = flag.Float64("cf", 0.7, "correlation factor in (0,1] (tax only)")
		seed   = flag.Int64("seed", 1, "generator seed")
		noise  = flag.Float64("noise", 0, "per-tuple probability of perturbing one attribute value")
		output = flag.String("o", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	rel, err := build(*name, *size, *arity, *cf, *seed)
	if err != nil {
		fatal(err)
	}
	if *noise > 0 {
		dirty, perturbed := dataset.InjectNoise(rel, *noise, *seed+1)
		slog.Info("injected noise", "perturbed", len(perturbed), "tuples", rel.Size())
		rel = dirty
	}
	if *output == "" {
		if err := dataset.WriteCSV(os.Stdout, rel); err != nil {
			fatal(err)
		}
		return
	}
	if err := dataset.SaveCSVFile(*output, rel); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d tuples x %d attributes to %s\n", rel.Size(), rel.Arity(), *output)
}

func build(name string, size, arity int, cf float64, seed int64) (*cfd.Relation, error) {
	switch name {
	case "tax":
		return dataset.Tax(dataset.TaxConfig{Size: size, Arity: arity, CF: cf, Seed: seed})
	case "wbc":
		return dataset.WisconsinLike(size, seed), nil
	case "chess":
		return dataset.ChessLike(size, seed), nil
	case "cust":
		return dataset.Cust(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want tax, wbc, chess or cust)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdgen:", err)
	os.Exit(1)
}
