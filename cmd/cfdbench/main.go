// Command cfdbench regenerates the figures of the paper's experimental study
// (§6) and prints them as text tables.
//
// Usage:
//
//	cfdbench -fig all            # every figure at the scaled-down default size
//	cfdbench -fig fig05          # one figure
//	cfdbench -fig fig07 -full    # paper-scale sweep (can take hours)
//	cfdbench -fig all -quick     # minimal smoke-test scale
//
// See EXPERIMENTS.md for the recorded results and their comparison with the
// paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id (fig05..fig16, ablation, datasets) or 'all'")
		full    = flag.Bool("full", false, "run the paper-scale sweeps (hours)")
		quick   = flag.Bool("quick", false, "run the minimal smoke-test sweeps")
		seed    = flag.Int64("seed", 1, "data generation seed")
		workers = flag.Int("workers", 0, "worker goroutines per discovery run (0 = one per CPU, 1 = sequential as in the paper's testbed)")
		out     = flag.String("o", "", "append the tables to this file instead of stdout")
	)
	flag.Parse()

	cfg := experiments.Config{Full: *full, Quick: *quick, Seed: *seed, Workers: *workers}
	ids := experiments.IDs()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}

	var sink *os.File = os.Stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = f
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		figure, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(sink, figure.Table())
		fmt.Fprintf(sink, "(regenerated in %s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdbench:", err)
	os.Exit(1)
}
