// Command cfddiscover discovers conditional functional dependencies in a CSV
// file using any of the paper's algorithms.
//
// Usage:
//
//	cfddiscover -input data.csv -algorithm fastcfd -support 10
//	cfddiscover -demo -algorithm ctane -support 2
//
// The input CSV must have a header row naming the attributes. With -demo the
// built-in cust relation of Fig. 1 of the paper is used instead of a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	var (
		input     = flag.String("input", "", "input CSV file with a header row")
		demo      = flag.Bool("demo", false, "use the built-in cust relation of Fig. 1 instead of -input")
		algorithm = flag.String("algorithm", "fastcfd", "algorithm: cfdminer, ctane, fastcfd, naivefast, tane, fastfd, brute")
		support   = flag.Int("support", 2, "support threshold k (k-frequent CFDs only)")
		maxLHS    = flag.Int("maxlhs", 0, "bound on the number of LHS attributes (0 = unbounded)")
		varOnly   = flag.Bool("variable-only", false, "report variable CFDs only")
		workers   = flag.Int("workers", 0, "worker goroutines for the discovery run (0 = one per CPU, 1 = sequential)")
		timeout   = flag.Duration("timeout", 0, "abort the discovery run after this duration (0 = no limit)")
		tableau   = flag.Bool("tableau", false, "group the discovered CFDs into pattern tableaux per embedded FD")
		output    = flag.String("o", "", "write the discovered CFDs to this file instead of stdout")
	)
	flag.Parse()

	rel, err := loadRelation(*input, *demo)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := discovery.DiscoverContext(ctx, discovery.Algorithm(*algorithm), rel, discovery.Options{
		Support:      *support,
		MaxLHS:       *maxLHS,
		VariableOnly: *varOnly,
		Workers:      *workers,
	})
	if err != nil {
		fatal(err)
	}

	var body strings.Builder
	if *tableau {
		fmt.Fprintf(&body, "# %s on %d tuples x %d attributes, k=%d: %d CFDs (%d constant, %d variable) in %s\n",
			res.Algorithm, rel.Size(), rel.Arity(), res.Support, len(res.CFDs), res.Constant, res.Variable, res.Elapsed.Round(1e6))
		for _, t := range cfd.BuildTableaux(res.CFDs) {
			body.WriteString(t.String())
			body.WriteByte('\n')
		}
	} else {
		// The rule-file format shared with cfdclean -rules and cfdserve -rules.
		body.WriteString(res.RulesText())
	}

	if *output != "" {
		if err := os.WriteFile(*output, []byte(body.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d CFDs to %s\n", len(res.CFDs), *output)
		return
	}
	fmt.Print(body.String())
}

func loadRelation(input string, demo bool) (*cfd.Relation, error) {
	switch {
	case demo:
		return dataset.Cust(), nil
	case input != "":
		return dataset.LoadCSVFile(input)
	default:
		return nil, fmt.Errorf("either -input or -demo is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfddiscover:", err)
	os.Exit(1)
}
