// Command cfddiscover discovers conditional functional dependencies in a CSV
// file using any of the paper's algorithms, through the streaming
// discovery.Engine.
//
// Usage:
//
//	cfddiscover -input data.csv -algorithm fastcfd -support 10
//	cfddiscover -demo -algorithm ctane -support 2
//	cfddiscover -input data.csv -limit 25 -progress   # first 25 rules only
//	cfddiscover -input data.csv -json -o rules.json   # rules.Set JSON
//
// The input CSV must have a header row naming the attributes. With -demo the
// built-in cust relation of Fig. 1 of the paper is used instead of a file.
// With -limit the engine stops as soon as that many rules have been streamed,
// cancelling the remaining mining work — the cheap way to peek at a data set.
//
// Output is the rule-file text format by default (consumed by cfdclean -rules
// and cfdserve -rules), the pattern-tableau grouping with -tableau, or the
// rules.Set JSON document with -json (the same shape cfdserve's GET /rules
// serves; also accepted by both -rules flags).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/cfd"
	"repro/dataset"
	"repro/discovery"
)

func main() {
	var (
		input     = flag.String("input", "", "input CSV file with a header row")
		demo      = flag.Bool("demo", false, "use the built-in cust relation of Fig. 1 instead of -input")
		algorithm = flag.String("algorithm", "fastcfd", "algorithm: cfdminer, ctane, fastcfd, naivefast, tane, fastfd, brute")
		support   = flag.Int("support", 2, "support threshold k (k-frequent CFDs only)")
		maxLHS    = flag.Int("maxlhs", 0, "bound on the number of LHS attributes (0 = unbounded)")
		varOnly   = flag.Bool("variable-only", false, "report variable CFDs only")
		workers   = flag.Int("workers", 0, "worker goroutines for the discovery run (0 = one per CPU, 1 = sequential)")
		timeout   = flag.Duration("timeout", 0, "abort the discovery run after this duration (0 = no limit)")
		limit     = flag.Int("limit", 0, "stop after this many rules, cancelling the remaining mining work (0 = full cover)")
		progress  = flag.Bool("progress", false, "report streamed rule counts on stderr while mining")
		tableau   = flag.Bool("tableau", false, "group the discovered CFDs into pattern tableaux per embedded FD")
		jsonOut   = flag.Bool("json", false, "write the rule set as rules.Set JSON instead of the text rule file")
		output    = flag.String("o", "", "write the discovered CFDs to this file instead of stdout")
	)
	flag.Parse()

	rel, err := loadRelation(*input, *demo)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	engOpts := []discovery.Option{
		discovery.WithSupport(*support),
		discovery.WithMaxLHS(*maxLHS),
		discovery.WithWorkers(*workers),
		discovery.WithVariableOnly(*varOnly),
		discovery.WithLimit(*limit),
	}
	if *progress {
		engOpts = append(engOpts, discovery.WithProgress(func(found int) {
			fmt.Fprintf(os.Stderr, "\rcfddiscover: %d rules streamed", found)
		}))
	}
	eng := discovery.NewEngine(discovery.Algorithm(*algorithm), rel, engOpts...)
	set, err := eng.Run(ctx)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fatal(err)
	}

	var body strings.Builder
	switch {
	case *jsonOut:
		data, err := json.MarshalIndent(set, "", "  ")
		if err != nil {
			fatal(err)
		}
		body.Write(data)
		body.WriteByte('\n')
	case *tableau:
		body.WriteString(set.Header())
		body.WriteByte('\n')
		for _, t := range set.Tableaux() {
			body.WriteString(t.String())
			body.WriteByte('\n')
		}
	default:
		// The rule-file format shared with cfdclean -rules and cfdserve -rules.
		body.WriteString(set.Text())
	}

	if *output != "" {
		if err := os.WriteFile(*output, []byte(body.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d CFDs to %s\n", set.Len(), *output)
		return
	}
	fmt.Print(body.String())
}

func loadRelation(input string, demo bool) (*cfd.Relation, error) {
	switch {
	case demo:
		return dataset.Cust(), nil
	case input != "":
		return dataset.LoadCSVFile(input)
	default:
		return nil, fmt.Errorf("either -input or -demo is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfddiscover:", err)
	os.Exit(1)
}
