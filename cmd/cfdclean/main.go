// Command cfdclean applies CFD rules to a CSV file, reports violations, and
// optionally suggests and applies repairs — the data-cleaning workflow that
// motivates the paper.
//
// Rules either come from a rule file — the text format written by cfddiscover
// (one CFD per line in the paper's notation) or the rules.Set JSON served by
// cfdserve's GET /rules, sniffed automatically — or are discovered on a
// trusted sample given with -sample.
//
// Usage:
//
//	cfdclean -data dirty.csv -rules rules.txt
//	cfdclean -data dirty.csv -sample clean.csv -support 10 -repair repaired.csv
//	cfdclean -data dirty.csv -rules rules.txt -json > report.json
//
// Exit status composes in pipelines and CI: 0 when the data is clean, 1 when
// violations were found, 2 on errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/cfd"
	"repro/cleaning"
	"repro/dataset"
	"repro/discovery"
	"repro/rules"
)

// jsonViolation and jsonRepair are the machine-readable forms of the report.
type jsonViolation struct {
	Rule   string `json:"rule"`
	Tuples []int  `json:"tuples"`
}

type jsonRepair struct {
	Tuple     int    `json:"tuple"`
	Attribute string `json:"attribute"`
	Current   string `json:"current"`
	Suggested string `json:"suggested"`
	Rule      string `json:"rule"`
}

type jsonReport struct {
	Tuples       int             `json:"tuples"`
	RulesChecked int             `json:"rules_checked"`
	Clean        bool            `json:"clean"`
	Violations   []jsonViolation `json:"violations"`
	DirtyTuples  []int           `json:"dirty_tuples"`
	Repairs      []jsonRepair    `json:"repairs"`
}

func main() {
	var (
		data      = flag.String("data", "", "CSV file to check (header row required)")
		rulesPath = flag.String("rules", "", "rule file: cfddiscover -o text or rules.Set JSON")
		sample    = flag.String("sample", "", "trusted CSV sample to discover rules from (alternative to -rules)")
		support   = flag.Int("support", 10, "support threshold used when discovering rules from -sample")
		maxLHS    = flag.Int("maxlhs", 3, "LHS bound used when discovering rules from -sample")
		repair    = flag.String("repair", "", "write a repaired copy of the data to this CSV file")
		verbose   = flag.Bool("v", false, "list every violated rule with its tuples")
		jsonOut   = flag.Bool("json", false, "write the report as JSON to stdout instead of text")
	)
	flag.Parse()

	if *data == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	rel, err := dataset.LoadCSVFile(*data)
	if err != nil {
		fatal(err)
	}
	ruleSet, err := loadRules(*rulesPath, *sample, *support, *maxLHS)
	if err != nil {
		fatal(err)
	}

	report, err := cleaning.Detect(rel, ruleSet)
	if err != nil {
		fatal(err)
	}
	// Clean data needs no repair pass (SuggestRepairs re-detects internally)
	// and no repaired copy.
	var repairs []cleaning.Repair
	repairedPath := ""
	if !report.Clean() {
		repairs, err = cleaning.SuggestRepairs(rel, ruleSet)
		if err != nil {
			fatal(err)
		}
		if *repair != "" {
			repaired := cleaning.ApplyRepairs(rel, repairs)
			if err := dataset.SaveCSVFile(*repair, repaired); err != nil {
				fatal(err)
			}
			repairedPath = *repair
		}
	}

	if *jsonOut {
		emitJSON(rel.Size(), report, repairs)
	} else {
		emitText(rel, ruleSet, report, repairs, repairedPath, *verbose)
	}
	if !report.Clean() {
		os.Exit(1)
	}
}

func emitJSON(tuples int, report *cleaning.Report, repairs []cleaning.Repair) {
	out := jsonReport{
		Tuples:       tuples,
		RulesChecked: report.RulesChecked,
		Clean:        report.Clean(),
		Violations:   []jsonViolation{},
		DirtyTuples:  report.DirtyTuples,
		Repairs:      []jsonRepair{},
	}
	for _, v := range report.Violations {
		out.Violations = append(out.Violations, jsonViolation{Rule: v.Rule.String(), Tuples: v.Tuples})
	}
	for _, rp := range repairs {
		out.Repairs = append(out.Repairs, jsonRepair{
			Tuple: rp.Tuple, Attribute: rp.Attribute,
			Current: rp.Current, Suggested: rp.Suggested, Rule: rp.Rule.String(),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func emitText(rel *cfd.Relation, ruleSet *rules.Set, report *cleaning.Report, repairs []cleaning.Repair, repairPath string, verbose bool) {
	fmt.Printf("checking %d tuples against %d rules\n", rel.Size(), ruleSet.Len())
	if report.Clean() {
		fmt.Println("no violations found")
		return
	}
	fmt.Printf("%d rules violated, %d tuples flagged dirty\n", len(report.Violations), len(report.DirtyTuples))
	if verbose {
		for _, v := range report.Violations {
			fmt.Printf("  %s  -> tuples %v\n", v.Rule, v.Tuples)
		}
	}
	fmt.Printf("%d repairs suggested\n", len(repairs))
	if verbose {
		for _, rp := range repairs {
			fmt.Printf("  tuple %d: %s %q -> %q (rule %s)\n", rp.Tuple, rp.Attribute, rp.Current, rp.Suggested, rp.Rule)
		}
	}
	if repairPath != "" {
		fmt.Printf("wrote repaired data to %s\n", repairPath)
	}
}

func loadRules(rulesPath, samplePath string, support, maxLHS int) (*rules.Set, error) {
	switch {
	case rulesPath != "":
		// Both rule-file formats are accepted; rules.Load sniffs them.
		return rules.Load(rulesPath)
	case samplePath != "":
		sampleRel, err := dataset.LoadCSVFile(samplePath)
		if err != nil {
			return nil, err
		}
		eng := discovery.NewEngine(discovery.AlgFastCFD, sampleRel,
			discovery.WithSupport(support), discovery.WithMaxLHS(maxLHS))
		return eng.Run(context.Background())
	default:
		return nil, fmt.Errorf("either -rules or -sample is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdclean:", err)
	os.Exit(2)
}
