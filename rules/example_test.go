package rules_test

import (
	"encoding/json"
	"fmt"

	"repro/cfd"
	"repro/rules"
)

// ExampleSet_Text renders a rule set in the text rule-file format — the
// format cfddiscover -o writes and cfdserve/cfdclean -rules read — whose
// '#' header carries the provenance through a round trip.
func ExampleSet_Text() {
	set := rules.New([]cfd.CFD{
		{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"},
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
	}, rules.Provenance{Algorithm: "ctane", Support: 2, Tuples: 8, Attributes: 7})

	text := set.Text()
	fmt.Println(text)

	back, err := rules.Parse(text)
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip:", back.Len(), "rules, algorithm", back.Provenance().Algorithm)
	// Output:
	// # ctane on 8 tuples x 7 attributes, k=2: 2 CFDs (1 constant, 1 variable) in 0s
	// ([AC] -> CT, (131 || EDI))
	// ([CC,ZIP] -> STR, (_, _ || _))
	//
	// round trip: 2 rules, algorithm ctane
}

// ExampleSet_json marshals a rule set as the JSON document cfdserve's
// GET /rules serves; rules.Parse sniffs the format, so the same bytes load
// interchangeably with the text form.
func ExampleSet_json() {
	set := rules.Of(cfd.CFD{LHS: []string{"AC"}, RHS: "CT", LHSPattern: []string{"131"}, RHSPattern: "EDI"})
	data, err := json.Marshal(set)
	if err != nil {
		panic(err)
	}
	var doc struct {
		Rules    []string `json:"rules"`
		Constant int      `json:"constant"`
		Tableaux []any    `json:"tableaux"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		panic(err)
	}
	fmt.Printf("document: %d rules, %d constant, %d tableaux\n", len(doc.Rules), doc.Constant, len(doc.Tableaux))

	back, err := rules.Parse(string(data))
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip:", back.CFDs()[0])
	// Output:
	// document: 1 rules, 1 constant, 1 tableaux
	// round trip: ([AC] -> CT, (131 || EDI))
}
