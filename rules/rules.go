package rules

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/cfd"
)

// Provenance records where a rule set came from: the discovery algorithm, its
// support threshold, the shape of the mined relation and the wall-clock time
// of the run. A zero Provenance marks a hand-built or externally supplied set.
type Provenance struct {
	// Algorithm names the discovery algorithm ("ctane", "fastcfd", ...), or
	// is empty for sets not produced by discovery.
	Algorithm string `json:"algorithm,omitempty"`
	// Support is the threshold k the set was mined at.
	Support int `json:"support,omitempty"`
	// Tuples and Attributes record the shape of the source relation.
	Tuples     int `json:"tuples,omitempty"`
	Attributes int `json:"attributes,omitempty"`
	// Elapsed is the wall-clock time of the discovery run (excluding data
	// loading). It marshals as integer nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// IsZero reports whether the provenance carries no information.
func (p Provenance) IsZero() bool { return p == Provenance{} }

// Set is an ordered set of single-pattern CFDs with provenance and lazily
// computed derived views. Build one with New (or Of for ad-hoc sets), receive
// one from discovery.Engine.Run, or read one back with Parse/Load. The
// contained rules are immutable after construction; the lazy views make
// concurrent reads safe.
type Set struct {
	cfds []cfd.CFD
	prov Provenance

	countOnce sync.Once
	constant  int
	variable  int

	tableauOnce sync.Once
	tableaux    []cfd.TableauCFD

	fpOnce sync.Once
	fp     string // canonical content fingerprint, see Fingerprint
}

// New builds a Set from the given rules and provenance. The slice is copied.
func New(cfds []cfd.CFD, prov Provenance) *Set {
	return &Set{cfds: append([]cfd.CFD(nil), cfds...), prov: prov}
}

// Of builds a Set without provenance, for hand-written rules and tests.
func Of(cfds ...cfd.CFD) *Set { return New(cfds, Provenance{}) }

// Len returns the number of rules. A nil Set is empty.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cfds)
}

// CFDs returns the rules in set order. The slice is shared; do not modify it.
// A nil Set returns nil.
func (s *Set) CFDs() []cfd.CFD {
	if s == nil {
		return nil
	}
	return s.cfds
}

// Provenance returns the set's provenance.
func (s *Set) Provenance() Provenance {
	if s == nil {
		return Provenance{}
	}
	return s.prov
}

func (s *Set) count() {
	s.countOnce.Do(func() {
		s.constant, s.variable = cfd.CountClasses(s.cfds)
	})
}

// Constant returns the number of constant CFDs in the set (computed lazily).
func (s *Set) Constant() int {
	if s == nil {
		return 0
	}
	s.count()
	return s.constant
}

// Variable returns the number of variable CFDs in the set (computed lazily).
func (s *Set) Variable() int {
	if s == nil {
		return 0
	}
	s.count()
	return s.variable
}

// Tableaux groups the rules into pattern tableaux, one per embedded FD (§2.3
// of the paper). The result is computed lazily and cached; it is shared, do
// not modify it.
func (s *Set) Tableaux() []cfd.TableauCFD {
	if s == nil {
		return nil
	}
	s.tableauOnce.Do(func() {
		s.tableaux = cfd.BuildTableaux(s.cfds)
	})
	return s.tableaux
}

// Header renders the '#' summary comment line of the rule-file format.
func (s *Set) Header() string {
	p := s.Provenance()
	alg := p.Algorithm
	if alg == "" {
		alg = "rules"
	}
	return fmt.Sprintf("# %s on %d tuples x %d attributes, k=%d: %d CFDs (%d constant, %d variable) in %s",
		alg, p.Tuples, p.Attributes, p.Support, s.Len(), s.Constant(), s.Variable(), p.Elapsed.Round(time.Millisecond))
}

// Text renders the set as a rule file: the Header comment followed by one CFD
// per line in the paper's notation, sorted deterministically. The output
// round-trips through Parse (and cfd.ParseAll) and is the format consumed by
// cfdclean -rules and cfdserve -rules.
func (s *Set) Text() string {
	var b strings.Builder
	b.WriteString(s.Header())
	b.WriteByte('\n')
	sorted := append([]cfd.CFD(nil), s.CFDs()...)
	cfd.SortCFDs(sorted)
	b.WriteString(cfd.FormatAll(sorted))
	return b.String()
}

// Write writes the rule-file rendering to w.
func (s *Set) Write(w io.Writer) error {
	_, err := io.WriteString(w, s.Text())
	return err
}

// Save writes the rule-file rendering to path.
func (s *Set) Save(path string) error {
	return os.WriteFile(path, []byte(s.Text()), 0o644)
}

// Parse reads a Set from either supported format, sniffed from the content: a
// JSON document (as marshalled by the Set itself and served by cfdserve) or a
// rule file (as written by Save / cfddiscover -o), whose '#' summary line —
// when present and well-formed — is parsed back into the provenance.
func Parse(text string) (*Set, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasPrefix(trimmed, "{") {
		s := new(Set)
		if err := json.Unmarshal([]byte(trimmed), s); err != nil {
			return nil, fmt.Errorf("rules: parsing JSON rule set: %w", err)
		}
		return s, nil
	}
	cfds, err := cfd.ParseAll(text)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return New(cfds, provenanceFromHeader(text)), nil
}

// Load reads a Set from a file in either supported format.
func Load(path string) (*Set, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return Parse(string(text))
}

// provenanceFromHeader recovers the provenance from the leading '#' summary
// comment of a rule file, if it matches the format Header writes. Any other
// leading comment (or none) yields a zero provenance.
func provenanceFromHeader(text string) Provenance {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "#") {
			break
		}
		var p Provenance
		var total, constant, variable int
		var elapsed string
		if _, err := fmt.Sscanf(line, "# %s on %d tuples x %d attributes, k=%d: %d CFDs (%d constant, %d variable) in %s",
			&p.Algorithm, &p.Tuples, &p.Attributes, &p.Support, &total, &constant, &variable, &elapsed); err == nil {
			if p.Algorithm == "rules" {
				// Header's placeholder for a provenance-less set: a text
				// round trip must not fabricate provenance from it.
				return Provenance{}
			}
			if d, err := time.ParseDuration(elapsed); err == nil {
				p.Elapsed = d
			}
			return p
		}
		break
	}
	return Provenance{}
}
