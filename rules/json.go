package rules

import (
	"encoding/json"
	"fmt"

	"repro/cfd"
)

// setJSON is the wire form of a Set. Rules are carried as strings in the
// paper's notation (the source of truth on decode); the class counts and
// tableaux are derived views included for consumers that should not have to
// recompute them, and are ignored — recomputed lazily — when unmarshalling.
type setJSON struct {
	Provenance *Provenance   `json:"provenance,omitempty"`
	Rules      []string      `json:"rules"`
	Constant   int           `json:"constant"`
	Variable   int           `json:"variable"`
	Tableaux   []tableauJSON `json:"tableaux,omitempty"`
}

type tableauJSON struct {
	LHS      []string   `json:"lhs"`
	RHS      string     `json:"rhs"`
	Patterns [][]string `json:"patterns"`
}

// MarshalJSON renders the set with its rules (in set order), provenance,
// class counts and pattern tableaux.
func (s *Set) MarshalJSON() ([]byte, error) {
	out := setJSON{
		Rules:    make([]string, 0, s.Len()),
		Constant: s.Constant(),
		Variable: s.Variable(),
	}
	if p := s.Provenance(); !p.IsZero() {
		out.Provenance = &p
	}
	for _, c := range s.CFDs() {
		out.Rules = append(out.Rules, c.String())
	}
	for _, t := range s.Tableaux() {
		out.Tableaux = append(out.Tableaux, tableauJSON{LHS: t.LHS, RHS: t.RHS, Patterns: t.Patterns})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire form, re-parsing each rule string. The full
// GET /rules envelope of cmd/cfdserve ({"attributes": ..., "ruleset": {...}})
// is accepted too, so a saved /rules response feeds straight back into
// -rules flags; any other document without a "rules" array is rejected
// rather than silently decoded as an empty set. Decode into a fresh (zero)
// Set: the lazy views of a previously used Set are not reset.
func (s *Set) UnmarshalJSON(data []byte) error {
	var raw setJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Rules == nil {
		var envelope struct {
			Ruleset json.RawMessage `json:"ruleset"`
		}
		if err := json.Unmarshal(data, &envelope); err == nil && len(envelope.Ruleset) > 0 {
			return s.UnmarshalJSON(envelope.Ruleset)
		}
		return fmt.Errorf(`rules: JSON document has no "rules" array`)
	}
	cfds := make([]cfd.CFD, 0, len(raw.Rules))
	for i, line := range raw.Rules {
		c, err := cfd.Parse(line)
		if err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
		cfds = append(cfds, c)
	}
	s.cfds = cfds
	s.prov = Provenance{}
	if raw.Provenance != nil {
		s.prov = *raw.Provenance
	}
	return nil
}
