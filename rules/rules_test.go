package rules_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cfd"
	"repro/rules"
)

func custRules() []cfd.CFD {
	constant, err := cfd.Parse("([AC] -> CT, (131 || EDI))")
	if err != nil {
		panic(err)
	}
	return []cfd.CFD{
		constant,
		cfd.NewFD([]string{"CC", "ZIP"}, "STR"),
		cfd.NewFD([]string{"CC", "AC"}, "CT"),
	}
}

func prov() rules.Provenance {
	return rules.Provenance{Algorithm: "ctane", Support: 2, Tuples: 8, Attributes: 7, Elapsed: 3 * time.Millisecond}
}

func TestSetBasics(t *testing.T) {
	s := rules.New(custRules(), prov())
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Constant() != 1 || s.Variable() != 2 {
		t.Fatalf("classes = (%d, %d), want (1, 2)", s.Constant(), s.Variable())
	}
	if got := s.Provenance(); got != prov() {
		t.Fatalf("provenance = %+v", got)
	}
	// Set order is preserved.
	if s.CFDs()[0].RHSPattern != "EDI" {
		t.Fatalf("first rule = %s", s.CFDs()[0])
	}
	// Tableaux group by embedded FD: ([AC]->CT) and ([CC,AC]->CT) differ,
	// so three rules make three tableaux here.
	if got := len(s.Tableaux()); got != 3 {
		t.Fatalf("%d tableaux", got)
	}
}

func TestNilSetIsEmpty(t *testing.T) {
	var s *rules.Set
	if s.Len() != 0 || s.CFDs() != nil || s.Constant() != 0 || s.Variable() != 0 || s.Tableaux() != nil {
		t.Fatal("nil set must behave as empty")
	}
	if !s.Provenance().IsZero() {
		t.Fatal("nil set must have zero provenance")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := rules.New(custRules(), prov())
	text := s.Text()
	if !strings.HasPrefix(text, "# ctane on 8 tuples x 7 attributes, k=2: 3 CFDs (1 constant, 2 variable) in 3ms\n") {
		t.Fatalf("header = %q", strings.SplitN(text, "\n", 2)[0])
	}
	back, err := rules.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Constant() != 1 || back.Variable() != 2 {
		t.Fatalf("round trip: %d rules (%d constant, %d variable)", back.Len(), back.Constant(), back.Variable())
	}
	if got := back.Provenance(); got != prov() {
		t.Fatalf("provenance after text round trip = %+v, want %+v", got, prov())
	}
	// The rendered rules agree as sets.
	want := keys(s.CFDs())
	if got := keys(back.CFDs()); !reflect.DeepEqual(got, want) {
		t.Fatalf("rules after round trip = %v, want %v", got, want)
	}
}

func TestTextHeaderWithoutProvenance(t *testing.T) {
	s := rules.Of(custRules()...)
	if !strings.HasPrefix(s.Text(), "# rules on 0 tuples") {
		t.Fatalf("header = %q", strings.SplitN(s.Text(), "\n", 2)[0])
	}
	back, err := rules.Parse(s.Text())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip lost rules: %d", back.Len())
	}
	// The placeholder header must not be mistaken for real provenance: a
	// hand-built set stays provenance-less through a text round trip.
	if !back.Provenance().IsZero() {
		t.Fatalf("text round trip fabricated provenance: %+v", back.Provenance())
	}
}

// TestParseServeEnvelope checks the GET /rules round trip: the full envelope
// cfdserve serves ({"attributes": ..., "ruleset": {...}}) parses into the
// contained rule set, while JSON objects carrying no rules at all are
// rejected instead of silently yielding an empty set.
func TestParseServeEnvelope(t *testing.T) {
	s := rules.New(custRules(), prov())
	inner, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	envelope, err := json.Marshal(map[string]any{
		"attributes": []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP"},
		"ruleset":    json.RawMessage(inner),
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := rules.Parse(string(envelope))
	if err != nil {
		t.Fatalf("the GET /rules envelope must parse: %v", err)
	}
	if back.Len() != 3 || back.Provenance() != prov() {
		t.Fatalf("envelope round trip: %d rules, provenance %+v", back.Len(), back.Provenance())
	}
	for _, bogus := range []string{`{}`, `{"violations": []}`, `{"ruleset": {}}`} {
		if _, err := rules.Parse(bogus); err == nil {
			t.Errorf("JSON without a rules array must be rejected: %s", bogus)
		}
	}
	// An explicitly empty rule set is still valid.
	empty, err := rules.Parse(`{"rules": []}`)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty rule array: set %v, err %v", empty, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := rules.New(custRules(), prov())
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// The wire form carries the derived views for consumers.
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire["constant"].(float64) != 1 || wire["variable"].(float64) != 2 {
		t.Fatalf("wire counts = %v", wire)
	}
	if len(wire["rules"].([]any)) != 3 || len(wire["tableaux"].([]any)) != 3 {
		t.Fatalf("wire rules/tableaux = %v", wire)
	}
	if wire["provenance"].(map[string]any)["algorithm"] != "ctane" {
		t.Fatalf("wire provenance = %v", wire["provenance"])
	}

	back, err := rules.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Provenance() != prov() {
		t.Fatalf("JSON round trip: %d rules, provenance %+v", back.Len(), back.Provenance())
	}
	// Rule order is preserved exactly by the JSON codec.
	for i, c := range back.CFDs() {
		if !c.Equal(s.CFDs()[i]) {
			t.Fatalf("rule %d changed: %s vs %s", i, c, s.CFDs()[i])
		}
	}
}

func TestLoadSniffsFormats(t *testing.T) {
	s := rules.New(custRules(), prov())
	dir := t.TempDir()

	textPath := filepath.Join(dir, "rules.txt")
	if err := s.Save(textPath); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "rules.json")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(jsonPath, data); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{textPath, jsonPath} {
		got, err := rules.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.Len() != 3 || got.Provenance() != prov() {
			t.Fatalf("%s: %d rules, provenance %+v", path, got.Len(), got.Provenance())
		}
	}
	if _, err := rules.Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := rules.Parse("{not json"); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, err := rules.Parse("([A] -> , broken"); err == nil {
		t.Fatal("malformed rule file must error")
	}
}

// TestConcurrentLazyViews exercises the lazily computed views from many
// goroutines, as cfdserve's handlers do under its read lock.
func TestConcurrentLazyViews(t *testing.T) {
	s := rules.New(custRules(), prov())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Constant() != 1 || s.Variable() != 2 || len(s.Tableaux()) != 3 {
				t.Error("derived views wrong under concurrency")
			}
			if _, err := json.Marshal(s); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func keys(cfds []cfd.CFD) map[string]bool {
	m := make(map[string]bool, len(cfds))
	for _, c := range cfds {
		m[c.Normalize().String()] = true
	}
	return m
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
