package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/cfd"
)

// ruleKey is the canonical fingerprint of one rule: its normalised rendering
// (LHS attributes sorted by name), so two structurally equal CFDs — however
// their LHS entries are ordered — key identically.
func ruleKey(c cfd.CFD) string { return c.Normalize().String() }

// Fingerprint returns the canonical content fingerprint of the set: a short
// hex digest over the sorted canonical rule keys, independent of rule order,
// LHS attribute order, duplicates' positions and provenance. Two sets with
// the same fingerprint serve the same dependencies, which is what lets a
// live swap (violation.Engine.SwapRules) and cfdserve's remine loop skip
// no-op reloads, and what GET /rules serves as its ETag. The digest is
// computed lazily and cached; a nil or empty set fingerprints to a fixed
// value.
func (s *Set) Fingerprint() string {
	if s == nil {
		return emptyFingerprint()
	}
	s.fpOnce.Do(func() {
		keys := make([]string, s.Len())
		for i, c := range s.cfds {
			keys[i] = ruleKey(c)
		}
		// Sorted, so the fingerprint ignores set order.
		sort.Strings(keys)
		h := sha256.New()
		for _, k := range keys {
			h.Write([]byte(k))
			h.Write([]byte{'\n'})
		}
		s.fp = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return s.fp
}

func emptyFingerprint() string {
	h := sha256.New()
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Delta is the difference between two rule sets, as computed by Diff: the
// rules only in the new set (Added), only in the old set (Removed), and in
// both (Retained), each in the order of the set they came from — Added and
// Retained in new-set order, Removed in old-set order. Old and New carry the
// two sets' fingerprints for version logging and etags.
type Delta struct {
	Added    []cfd.CFD
	Removed  []cfd.CFD
	Retained []cfd.CFD
	Old, New string
}

// Unchanged reports whether the two sets hold the same rules (the delta has
// no additions and no removals).
func (d Delta) Unchanged() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// String renders the delta compactly for logs: the counts plus the version
// transition, e.g. "+2 -1 =4 rules (3aa1… -> 9f04…)".
func (d Delta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%d -%d =%d rules", len(d.Added), len(d.Removed), len(d.Retained))
	if d.Old != "" || d.New != "" {
		if d.Unchanged() {
			fmt.Fprintf(&b, " (%s unchanged)", short(d.New))
		} else {
			fmt.Fprintf(&b, " (%s -> %s)", short(d.Old), short(d.New))
		}
	}
	return b.String()
}

func short(fp string) string {
	if len(fp) > 4 {
		return fp[:4] + "…"
	}
	return fp
}

// Diff compares two rule sets by canonical rule fingerprint and returns the
// added / removed / retained partition. Either set may be nil (treated as
// empty). Duplicate rules inside one set are matched up pairwise: a rule
// appearing twice in old and once in new yields one retained and one removed
// entry.
func Diff(old, new *Set) Delta {
	d := Delta{Old: old.Fingerprint(), New: new.Fingerprint()}
	counts := make(map[string]int, old.Len())
	for _, c := range old.CFDs() {
		counts[ruleKey(c)]++
	}
	for _, c := range new.CFDs() {
		k := ruleKey(c)
		if counts[k] > 0 {
			counts[k]--
			d.Retained = append(d.Retained, c)
		} else {
			d.Added = append(d.Added, c)
		}
	}
	// Whatever old rules the new set did not consume are removed.
	for _, c := range old.CFDs() {
		if k := ruleKey(c); counts[k] > 0 {
			counts[k]--
			d.Removed = append(d.Removed, c)
		}
	}
	return d
}
