package rules_test

import (
	"strings"
	"testing"

	"repro/cfd"
	"repro/rules"
)

func mustParse(t *testing.T, lines ...string) []cfd.CFD {
	t.Helper()
	cfds, err := cfd.ParseAll(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return cfds
}

func TestFingerprint(t *testing.T) {
	a := mustParse(t,
		"([CC,AC] -> CT, (01, _ || MH))",
		"([ZIP] -> STR, (_ || _))",
	)
	base := rules.Of(a...)

	// Order-independent, provenance-independent, stable across recomputation.
	if got := rules.Of(a[1], a[0]).Fingerprint(); got != base.Fingerprint() {
		t.Fatalf("fingerprint depends on set order: %s vs %s", got, base.Fingerprint())
	}
	withProv := rules.New(a, rules.Provenance{Algorithm: "ctane", Support: 5})
	if withProv.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint must ignore provenance")
	}
	// LHS attribute order is canonicalised away.
	swapped := cfd.CFD{LHS: []string{"AC", "CC"}, RHS: "CT", LHSPattern: []string{"_", "01"}, RHSPattern: "MH"}
	if rules.Of(swapped, a[1]).Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint must normalise LHS attribute order")
	}
	// Content changes move it.
	if rules.Of(a[0]).Fingerprint() == base.Fingerprint() {
		t.Fatal("dropping a rule must change the fingerprint")
	}
	// Nil and empty sets agree.
	var nilSet *rules.Set
	if nilSet.Fingerprint() != rules.Of().Fingerprint() {
		t.Fatal("nil and empty fingerprints must match")
	}
	if nilSet.Fingerprint() == base.Fingerprint() {
		t.Fatal("empty and non-empty fingerprints must differ")
	}
	if len(base.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", base.Fingerprint())
	}
}

func TestDiff(t *testing.T) {
	r := mustParse(t,
		"([CC,AC] -> CT, (01, _ || MH))",
		"([ZIP] -> STR, (_ || _))",
		"([NM] -> PN, (_ || _))",
		"([CT] -> CC, (_ || _))",
	)
	old := rules.Of(r[0], r[1], r[2])
	new := rules.Of(r[3], r[1], r[0])

	d := rules.Diff(old, new)
	if len(d.Added) != 1 || !d.Added[0].Equal(r[3]) {
		t.Fatalf("added = %v", d.Added)
	}
	if len(d.Removed) != 1 || !d.Removed[0].Equal(r[2]) {
		t.Fatalf("removed = %v", d.Removed)
	}
	if len(d.Retained) != 2 {
		t.Fatalf("retained = %v", d.Retained)
	}
	if d.Old != old.Fingerprint() || d.New != new.Fingerprint() {
		t.Fatalf("delta fingerprints %s -> %s", d.Old, d.New)
	}
	if d.Unchanged() {
		t.Fatal("a real diff must not report Unchanged")
	}
	if s := d.String(); !strings.Contains(s, "+1 -1 =2 rules") {
		t.Fatalf("String() = %q", s)
	}

	// Identity, against a reordered and LHS-permuted copy.
	perm := cfd.CFD{LHS: []string{"AC", "CC"}, RHS: "CT", LHSPattern: []string{"_", "01"}, RHSPattern: "MH"}
	same := rules.Diff(old, rules.Of(r[2], r[1], perm))
	if !same.Unchanged() || len(same.Retained) != 3 {
		t.Fatalf("identity diff = %v", same)
	}
	if s := same.String(); !strings.Contains(s, "unchanged") {
		t.Fatalf("identity String() = %q", s)
	}

	// Nil sets are empty.
	fromNil := rules.Diff(nil, old)
	if len(fromNil.Added) != 3 || len(fromNil.Removed) != 0 || len(fromNil.Retained) != 0 {
		t.Fatalf("diff from nil = %v", fromNil)
	}
	toNil := rules.Diff(old, nil)
	if len(toNil.Added) != 0 || len(toNil.Removed) != 3 || len(toNil.Retained) != 0 {
		t.Fatalf("diff to nil = %v", toNil)
	}

	// Duplicates pair up: two copies in old vs one in new leaves one removed.
	dup := rules.Diff(rules.Of(r[0], r[0]), rules.Of(r[0]))
	if len(dup.Retained) != 1 || len(dup.Removed) != 1 || len(dup.Added) != 0 {
		t.Fatalf("duplicate diff = %v", dup)
	}
}
