package rules_test

import (
	"encoding/json"
	"testing"

	"repro/rules"
)

// FuzzJSON checks that the Set JSON codec is a closed pair, the same
// contract FuzzParse pins for the cfd text codec: any document UnmarshalJSON
// accepts must marshal to a document that unmarshals back to the same set —
// same rules in the same order, same provenance — and the rendering must be
// canonical (a second marshal is byte-identical). This is the round trip
// GET /rules → PUT /rules / -rules flags rely on.
func FuzzJSON(f *testing.F) {
	f.Add(`{"rules":["([CC,AC] -> CT, (01, _ || MH))","([ZIP] -> STR, (_ || _))"]}`)
	f.Add(`{"provenance":{"algorithm":"ctane","support":5,"tuples":100,"attributes":7,"elapsed_ns":12345},"rules":["([A] -> B, (_ || _))"]}`)
	f.Add(`{"rules":[]}`)
	f.Add(`{"rules":["([\"a,b\"] -> B, (\"x(\" || \"y,z\"))"]}`)
	f.Add(`{"attributes":["A","B"],"ruleset":{"rules":["([A] -> B, (_ || _))"]}}`)
	f.Add(`{"rules":["([A] -> B, (_ || _))","([A] -> B, (_ || _))"]}`)
	f.Add(`{"rules":["(bogus"]}`)
	f.Add(`{"tableaux":[{"lhs":["A"],"rhs":"B","patterns":[["_","_"]]}],"rules":["([A] -> B, (_ || _))"]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		var set rules.Set
		if err := json.Unmarshal([]byte(doc), &set); err != nil {
			t.Skip()
		}
		data, err := json.Marshal(&set)
		if err != nil {
			t.Fatalf("accepted %q but cannot marshal the result: %v", doc, err)
		}
		var back rules.Set
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("own rendering %s does not unmarshal: %v", data, err)
		}
		if back.Len() != set.Len() {
			t.Fatalf("round trip changed the rule count: %d vs %d (doc %q)", back.Len(), set.Len(), doc)
		}
		for i, c := range set.CFDs() {
			if !back.CFDs()[i].Equal(c) {
				t.Fatalf("round trip changed rule %d: %s vs %s (doc %q)", i, back.CFDs()[i], c, doc)
			}
		}
		if back.Provenance() != set.Provenance() {
			t.Fatalf("round trip changed provenance: %+v vs %+v (doc %q)", back.Provenance(), set.Provenance(), doc)
		}
		if back.Fingerprint() != set.Fingerprint() {
			t.Fatalf("round trip changed the fingerprint (doc %q)", doc)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(data) {
			t.Fatalf("marshal is not canonical:\n%s\nthen\n%s", data, again)
		}
	})
}
