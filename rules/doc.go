// Package rules defines the first-class rule set shared across the whole CFD
// system: discovery produces a *Set, the violation engine and the cleaning
// layer consume one, and cfdserve serves one over HTTP.
//
// A Set is an ordered collection of single-pattern CFDs together with its
// provenance — which algorithm mined it, at what support threshold, from a
// relation of what shape, and how long the run took — and lazily computed
// derived views: the constant/variable class counts and the pattern tableaux
// of §2.3 of the paper (one tableau per embedded FD). The derived views are
// computed on first use and cached; a Set is safe for concurrent reads.
//
// Two codecs round-trip a Set:
//
//   - the rule-file text format of cfddiscover -o (one CFD per line in the
//     paper's notation, preceded by a '#' summary comment that carries the
//     provenance), read back by Parse/Load via cfd.ParseAll;
//   - a JSON document with the rules, provenance, class counts and tableaux,
//     served by cfdserve's GET /rules and accepted by its -rules flag.
//
// Parse and Load sniff the format, so every tool that reads rules accepts
// either interchangeably.
package rules
