// Package cluster turns N independent cfdserve shard nodes into one
// horizontally scaled violation-detection service. Each shard runs the
// ordinary single-node stack — violation.Engine plus its write-ahead-logged
// Store — over a slice of the relation; a stateless coordinator (cfdserve
// -coordinator) routes tuple writes to the owning shard by partition key,
// scatter-gathers the read endpoints, merging shard results
// deterministically, and fans rule swaps out to every shard with a
// two-phase fingerprint CAS so that a mixed rule set is never observable.
//
// # Why hash partitioning is exact
//
// Every rule the engine serves groups tuples by the values of the rule's
// LHS attributes, and a violating set is always a union of whole groups
// (internal/core.RuleIndex marks the entire group bad — for a variable rule
// when two groups members disagree on the RHS, for a constant rule when any
// member misses the RHS constant). All members of a group agree on the
// rule's LHS values by construction. Therefore, when the partition key is a
// subset of every served rule's LHS, all members of any group agree on the
// key, hash to the same shard, and each shard detects exactly the
// violations among its tuples: the union of per-shard reports equals the
// single-node report, tuple for tuple. Partitioner.Check enforces the
// containment for every rule — constant and variable alike — and rejects
// rule sets the cluster cannot serve exactly.
//
// # Consistency and failure semantics
//
// The coordinator assigns tuple ids from one global counter (recovered at
// boot as the maximum next_id across shards) and pins them on the owning
// shard, so ids — and with them every violation report — are identical to a
// single node fed the same operations. Writes are atomic per shard (one
// engine batch, one WAL record); a multi-shard insert or cross-shard move
// is applied shard by shard and rolled back on failure, but is not atomic
// under a coordinator crash. Reads that bear on correctness fail closed: if
// any shard cannot answer, the scatter returns ErrUnavailable rather than a
// silently partial result. Aggregated health never fails — it reports
// per-shard status and degrades the cluster status instead. A shard that
// fails repeatedly is marked unhealthy by its client's circuit breaker and
// is probed again after a cooldown, so a dead node costs one fast error
// per scatter, not a timeout.
package cluster
