package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flaky is a shard stub whose behaviour is switched per test phase.
type flaky struct {
	mu     sync.Mutex
	status int // response status for /v1/health
	hits   atomic.Int64
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	f.mu.Lock()
	status := f.status
	f.mu.Unlock()
	if status >= 400 {
		w.WriteHeader(status)
		w.Write([]byte(`{"error":{"code":"internal","message":"induced"}}`))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok","tuples":1,"rules":1,"next_id":1,"rules_version":"v"}`))
}

func (f *flaky) set(status int) {
	f.mu.Lock()
	f.status = status
	f.mu.Unlock()
}

// obsLog records observer callbacks for assertions.
type obsLog struct {
	mu     sync.Mutex
	health []bool
	swaps  []string
	errs   []string
}

func (o *obsLog) ObserveShardRequest(string, float64, bool) {}
func (o *obsLog) ObserveShardHealth(_ string, healthy bool) {
	o.mu.Lock()
	o.health = append(o.health, healthy)
	o.mu.Unlock()
}
func (o *obsLog) ObserveScatterError(op string) {
	o.mu.Lock()
	o.errs = append(o.errs, op)
	o.mu.Unlock()
}
func (o *obsLog) ObserveSwap(outcome string) {
	o.mu.Lock()
	o.swaps = append(o.swaps, outcome)
	o.mu.Unlock()
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	f := &flaky{status: http.StatusInternalServerError}
	ts := httptest.NewServer(f)
	defer ts.Close()
	log := &obsLog{}
	s := NewShardClient(ts.URL, "0", time.Second, log)
	ctx := context.Background()

	// breakerThreshold consecutive 5xx responses trip the breaker. Rules()
	// is a retrying read, so each call can burn up to two attempts.
	for i := 0; s.Healthy(); i++ {
		if _, err := s.Rules(ctx); err == nil {
			t.Fatal("a 500 response must be an error")
		} else if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("5xx must wrap ErrUnavailable, got %v", err)
		}
		if i > breakerThreshold {
			t.Fatal("breaker never opened")
		}
	}

	// Open: requests fail fast without a round trip.
	before := f.hits.Load()
	if _, err := s.Rules(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open breaker must fail with ErrUnavailable, got %v", err)
	}
	if f.hits.Load() != before {
		t.Fatal("open breaker must not send requests")
	}

	// The health probe bypasses the breaker — it is how recovery is noticed.
	f.set(http.StatusOK)
	if _, err := s.Health(ctx); err != nil {
		t.Fatalf("health probe through an open breaker: %v", err)
	}
	// The successful probe reset the failure count: the breaker is closed.
	if !s.Healthy() {
		t.Fatal("a successful probe must close the breaker")
	}
	if _, err := s.Rules(ctx); err != nil {
		t.Fatalf("closed breaker must serve again: %v", err)
	}

	log.mu.Lock()
	defer log.mu.Unlock()
	want := []bool{false, true}
	if len(log.health) != 2 || log.health[0] != want[0] || log.health[1] != want[1] {
		t.Fatalf("health transitions = %v, want %v", log.health, want)
	}
}

func TestBreakerHalfOpenAfterCooldown(t *testing.T) {
	f := &flaky{status: http.StatusInternalServerError}
	ts := httptest.NewServer(f)
	defer ts.Close()
	s := NewShardClient(ts.URL, "0", time.Second, nil)
	ctx := context.Background()
	for s.Healthy() {
		s.Rules(ctx)
	}
	// Expire the cooldown directly rather than sleeping it out.
	s.mu.Lock()
	s.openUntil = time.Now().Add(-time.Millisecond)
	s.mu.Unlock()
	f.set(http.StatusOK)
	before := f.hits.Load()
	if _, err := s.Rules(ctx); err != nil {
		t.Fatalf("half-open trial must go through: %v", err)
	}
	if f.hits.Load() == before {
		t.Fatal("half-open trial never reached the shard")
	}
	if !s.Healthy() {
		t.Fatal("a successful trial must close the breaker")
	}
}

// TestBreakerHalfOpenSingleProbe: once the cooldown passes, exactly one
// caller is admitted as the probe; everyone else keeps failing fast until
// the probe resolves, so a scatter cannot fan a full fan-out at a shard
// that is still dead.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	f := &flaky{status: http.StatusInternalServerError}
	ts := httptest.NewServer(f)
	defer ts.Close()
	s := NewShardClient(ts.URL, "0", time.Second, nil)
	ctx := context.Background()
	for s.Healthy() {
		s.Rules(ctx)
	}
	// Expire the cooldown: the next allow() is the half-open probe and must
	// re-arm the window so concurrent callers are refused.
	s.mu.Lock()
	s.openUntil = time.Now().Add(-time.Millisecond)
	s.mu.Unlock()
	if !s.allow() {
		t.Fatal("the first caller past the cooldown must be admitted as the probe")
	}
	if s.allow() {
		t.Fatal("half-open must admit a single probe, not every caller")
	}
	before := f.hits.Load()
	if _, err := s.Rules(ctx); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("callers during the probe window must fail fast, got %v", err)
	}
	if f.hits.Load() != before {
		t.Fatal("a refused caller must not reach the shard")
	}
	// The probe's failure re-opens the breaker for a full cooldown; its
	// success (simulated by the recovery path in TestBreakerHalfOpen) closes
	// it for everyone.
}

func TestAPIErrorsDoNotTripBreaker(t *testing.T) {
	f := &flaky{status: http.StatusNotFound}
	ts := httptest.NewServer(f)
	defer ts.Close()
	s := NewShardClient(ts.URL, "0", time.Second, nil)
	ctx := context.Background()
	for i := 0; i < breakerThreshold+2; i++ {
		_, err := s.GetTuple(ctx, 7)
		var api *APIError
		if !errors.As(err, &api) || api.Status != http.StatusNotFound || api.Code != "internal" {
			t.Fatalf("want the shard's 404 APIError, got %v", err)
		}
		if errors.Is(err, ErrUnavailable) {
			t.Fatalf("a definite answer must not be unavailable: %v", err)
		}
	}
	if !s.Healthy() {
		t.Fatal("4xx answers must not trip the breaker")
	}
}

func TestDecodeEnvelope(t *testing.T) {
	e := decodeEnvelope("http://x", 409, []byte(`{"error":{"code":"conflict","message":"CAS miss"}}`))
	if e.Code != "conflict" || e.Status != 409 || e.Message != "CAS miss" {
		t.Fatalf("envelope decode = %+v", e)
	}
	e = decodeEnvelope("http://x", 502, []byte("bad gateway"))
	if e.Code != "internal" || e.Message != "bad gateway" {
		t.Fatalf("fallback decode = %+v", e)
	}
}
