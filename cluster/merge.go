package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
)

// MergedViolations is the cluster-wide violation report: the deterministic
// merge of every shard's full report. Violations are in rule-set order with
// ascending tuple ids, Dirty is the sorted union — exactly the single-node
// report shape, minus the single epoch scalar (each shard commits on its
// own WAL; Epochs carries them per shard, in shard order).
type MergedViolations struct {
	Epochs       []uint64
	Violations   []RuleTuples
	Dirty        []int
	RulesChecked int
}

// Violations scatter-gathers the full report from every shard and merges.
// It fails closed: any shard unable to answer yields an error rather than a
// silently partial report.
func (c *Cluster) Violations(ctx context.Context) (*MergedViolations, error) {
	docs := make([]ViolationsDoc, len(c.shards))
	if err := c.scatter("violations", func(i int, s *ShardClient) error {
		var err error
		docs[i], err = s.Violations(ctx)
		return err
	}); err != nil {
		return nil, err
	}
	merged, err := c.merge(docs)
	if err == nil {
		return merged, nil
	}
	// A rule string the cache does not know: the fleet's rules changed out
	// of band (not through this coordinator). Refresh once and retry.
	if err := c.refreshRules(ctx); err != nil {
		return nil, err
	}
	if merged, err = c.merge(docs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return merged, nil
}

// dedupSorted removes adjacent duplicates from a sorted id slice in place.
// Shards own disjoint ids at rest, but a scatter racing a cross-shard move
// can catch one id on both its old and new owner (the move is pinned-insert
// then delete); deduping here keeps the merged report shaped exactly like a
// single node's despite that transient.
func dedupSorted(ids []int) []int {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// merge folds per-shard reports into one, in the cached rule order. Tuple
// sets of the same rule are disjoint across shards (each id lives on
// exactly one shard), so unions are concatenate-and-sort — with a dedup
// guarding the mid-move transient (see dedupSorted).
func (c *Cluster) merge(docs []ViolationsDoc) (*MergedViolations, error) {
	c.mu.Lock()
	order := c.order
	c.mu.Unlock()
	known := make(map[string]int, len(order))
	for i, r := range order {
		known[r] = i
	}
	perRule := make([][]int, len(order))
	out := &MergedViolations{Epochs: make([]uint64, len(docs))}
	for i, doc := range docs {
		out.Epochs[i] = doc.Epoch
		for _, v := range doc.Violations {
			ri, ok := known[v.Rule]
			if !ok {
				return nil, fmt.Errorf("shard %s reports violations of rule %s, which the coordinator does not serve", c.shards[i].URL(), v.Rule)
			}
			perRule[ri] = append(perRule[ri], v.Tuples...)
		}
		out.Dirty = append(out.Dirty, doc.Dirty...)
	}
	for ri, tuples := range perRule {
		if len(tuples) == 0 {
			continue
		}
		sort.Ints(tuples)
		out.Violations = append(out.Violations, RuleTuples{Rule: order[ri], Tuples: dedupSorted(tuples)})
	}
	if out.Dirty == nil {
		out.Dirty = []int{}
	}
	sort.Ints(out.Dirty)
	out.Dirty = dedupSorted(out.Dirty)
	out.RulesChecked = len(order)
	return out, nil
}

// Suspects scatter-gathers the repair view. Suspect analysis is group-local
// (cleaning.Suspects reasons per LHS group), and groups are intact within
// their shard, so the sorted union equals the single-node suspect list.
func (c *Cluster) Suspects(ctx context.Context) ([]int, error) {
	docs := make([]SuspectsDoc, len(c.shards))
	if err := c.scatter("suspects", func(i int, s *ShardClient) error {
		var err error
		docs[i], err = s.Suspects(ctx)
		return err
	}); err != nil {
		return nil, err
	}
	out := []int{}
	for _, doc := range docs {
		out = append(out, doc.Suspects...)
	}
	sort.Ints(out)
	return dedupSorted(out), nil
}

// TuplesPage is one merged page of the cluster's live tuples.
type TuplesPage struct {
	Tuples []TupleDoc
	Total  int    // live tuples across the fleet at page time
	Next   string // cursor of the next page; "" on the last
}

// Tuples serves one page of the fleet's live tuples in ascending global id
// order. The limit and cursor are propagated to every shard: each shard
// returns its own first `limit` tuples at or past the cursor, which is a
// superset of the global first `limit`, and the merge keeps the smallest
// ids. Like the single node, the cursor is the id to resume from, so pages
// stay correct under concurrent mutations.
func (c *Cluster) Tuples(ctx context.Context, cursor, limit int) (*TuplesPage, error) {
	docs := make([]TuplesDoc, len(c.shards))
	if err := c.scatter("tuples", func(i int, s *ShardClient) error {
		var err error
		docs[i], err = s.Tuples(ctx, cursor, limit)
		return err
	}); err != nil {
		return nil, err
	}
	// The single node's next_cursor is the id of the next LIVE tuple (not
	// last+1), so the merged cursor must be too: the smallest live id beyond
	// this page, which is either the head of the truncated remainder or some
	// shard's own next cursor.
	page := &TuplesPage{Tuples: []TupleDoc{}}
	next := -1
	consider := func(id int) {
		if next < 0 || id < next {
			next = id
		}
	}
	// seen dedupes by id: a read racing a cross-shard move can catch one id
	// on both its old and new owner. The lower shard index wins, which keeps
	// the page deterministic for a given set of shard answers; Total can
	// still transiently count such an id twice (it is a point-in-time sum of
	// per-shard counts, documented as approximate under concurrent moves).
	seen := make(map[int]bool)
	for _, doc := range docs {
		page.Total += doc.Total
		for _, tup := range doc.Tuples {
			if seen[tup.ID] {
				continue
			}
			seen[tup.ID] = true
			page.Tuples = append(page.Tuples, tup)
		}
		if doc.NextCursor != "" {
			v, err := strconv.Atoi(doc.NextCursor)
			if err != nil {
				return nil, fmt.Errorf("%w: shard returned non-numeric cursor %q", ErrUnavailable, doc.NextCursor)
			}
			consider(v)
		}
	}
	sort.Slice(page.Tuples, func(a, b int) bool { return page.Tuples[a].ID < page.Tuples[b].ID })
	if limit > 0 && len(page.Tuples) > limit {
		consider(page.Tuples[limit].ID)
		page.Tuples = page.Tuples[:limit]
	}
	if next >= 0 {
		page.Next = strconv.Itoa(next)
	}
	return page, nil
}
