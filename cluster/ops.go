package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/violation"
)

// WriteResult summarises a routed write: the ids assigned to inserts (in op
// order) and the fleet tuple/dirty aggregates of the touched shards' answers
// (point-in-time approximations; Health has the authoritative sums).
type WriteResult struct {
	IDs []int
}

// owner locates the shard holding a live tuple id by scattering the point
// read. A definite miss everywhere is a 404 *APIError; an unreachable shard
// makes the answer unknowable and fails closed.
func (c *Cluster) owner(ctx context.Context, id int) (int, TupleDoc, error) {
	type hit struct {
		shard int
		doc   TupleDoc
	}
	var (
		mu    sync.Mutex
		found *hit
	)
	err := c.scatter("tuples", func(i int, s *ShardClient) error {
		doc, err := s.GetTuple(ctx, id)
		if err == nil {
			mu.Lock()
			found = &hit{shard: i, doc: doc}
			mu.Unlock()
			return nil
		}
		var api *APIError
		if errors.As(err, &api) && api.Status == http.StatusNotFound {
			return nil // a definite "not mine"
		}
		return err
	})
	if found != nil {
		// The owner answered; another shard being down cannot change the
		// answer (every id lives on exactly one shard).
		return found.shard, found.doc, nil
	}
	if err != nil {
		return 0, TupleDoc{}, err
	}
	return 0, TupleDoc{}, coordErr(http.StatusNotFound, "not_found", "violation: tuple %d: tuple not found", id)
}

// Get reads one tuple by global id.
func (c *Cluster) Get(ctx context.Context, id int) (TupleDoc, error) {
	_, doc, err := c.owner(ctx, id)
	return doc, err
}

// TupleViolations reads the rules one tuple currently violates.
func (c *Cluster) TupleViolations(ctx context.Context, id int) (TupleViolationsDoc, error) {
	shard, _, err := c.owner(ctx, id)
	if err != nil {
		return TupleViolationsDoc{}, err
	}
	return c.shards[shard].TupleViolations(ctx, id)
}

// checkArity validates rows against the schema before any id is consumed or
// any shard touched, mirroring the single node's all-or-nothing validation.
func (c *Cluster) checkArity(rows [][]string) error {
	c.mu.Lock()
	arity := len(c.part.Schema())
	c.mu.Unlock()
	for _, row := range rows {
		if len(row) != arity {
			return coordErr(http.StatusUnprocessableEntity, "unprocessable",
				"violation: tuple has %d values, schema has %d attributes", len(row), arity)
		}
	}
	return nil
}

// Insert routes rows to their owning shards, assigning global ids in row
// order exactly like a single node, and applies one atomic pinned batch per
// shard. A failure rolls the already-inserted rows back (deleting them from
// their shards); the burned ids are never reused. A coordinator crash
// mid-insert can leave a multi-shard insert partially applied — per-shard
// batches are atomic, the cross-shard composition is not.
func (c *Cluster) Insert(ctx context.Context, rows [][]string) (WriteResult, error) {
	if err := c.checkArity(rows); err != nil {
		return WriteResult{}, err
	}
	base := int(c.nextID.Add(int64(len(rows)))) - len(rows)
	ids := make([]int, len(rows))
	perShard := make(map[int][]violation.Op)
	for r, row := range rows {
		id := base + r
		ids[r] = id
		shard := c.route(row)
		at := id
		perShard[shard] = append(perShard[shard], violation.Op{Kind: violation.OpInsert, Values: row, At: &at})
	}
	var done []int // shards whose batch landed, in apply order
	for shard, ops := range perShard {
		if _, err := c.shards[shard].Batch(ctx, ops); err != nil {
			c.rollbackInserts(ctx, perShard, done)
			return WriteResult{}, err
		}
		done = append(done, shard)
	}
	return WriteResult{IDs: ids}, nil
}

// rollbackInserts deletes the rows of already-applied per-shard insert
// batches — best effort; a failure leaves orphans that a re-run of the
// failed insert cannot collide with (their ids are burned).
func (c *Cluster) rollbackInserts(ctx context.Context, perShard map[int][]violation.Op, done []int) {
	for _, shard := range done {
		var ops []violation.Op
		for _, op := range perShard[shard] {
			ops = append(ops, violation.Op{Kind: violation.OpDelete, ID: *op.At})
		}
		if _, err := c.shards[shard].Batch(ctx, ops); err != nil && c.obs != nil {
			c.obs.ObserveScatterError("rollback")
		}
	}
}

// Update replaces one tuple's values, keeping its id. When the new values
// hash to the tuple's current shard it is a plain in-place update; when
// they hash elsewhere the tuple moves — a pinned insert on the new shard,
// then a delete on the old, with a best-effort rollback of the insert if
// the delete fails. The move is not atomic under a coordinator crash; both
// halves are WAL-logged on their shards. The id's stripe lock is held for
// the whole locate-and-apply sequence, so concurrent mutations of one id
// through this coordinator serialise instead of racing a move half-done.
func (c *Cluster) Update(ctx context.Context, id int, values []string) error {
	if err := c.checkArity([][]string{values}); err != nil {
		return err
	}
	defer c.lockID(id)()
	from, _, err := c.owner(ctx, id)
	if err != nil {
		return err
	}
	return c.moveOrUpdate(ctx, id, from, values)
}

// moveOrUpdate applies an update whose current owner is already known.
// Callers must hold the id's stripe lock (lockID).
func (c *Cluster) moveOrUpdate(ctx context.Context, id, from int, values []string) error {
	to := c.route(values)
	if to == from {
		_, err := c.shards[from].Batch(ctx, []violation.Op{{Kind: violation.OpUpdate, ID: id, Values: values}})
		return err
	}
	at := id
	if _, err := c.shards[to].Batch(ctx, []violation.Op{{Kind: violation.OpInsert, Values: values, At: &at}}); err != nil {
		return err
	}
	if _, err := c.shards[from].Batch(ctx, []violation.Op{{Kind: violation.OpDelete, ID: id}}); err != nil {
		// Undo the insert so the id does not exist twice.
		if _, rbErr := c.shards[to].Batch(ctx, []violation.Op{{Kind: violation.OpDelete, ID: id}}); rbErr != nil {
			return fmt.Errorf("%w: moving tuple %d: delete on %s failed (%v) and rollback on %s failed (%v) — the id exists on both shards until repaired",
				ErrUnavailable, id, c.shards[from].URL(), err, c.shards[to].URL(), rbErr)
		}
		return err
	}
	return nil
}

// Delete removes one tuple by global id. Like Update it holds the id's
// stripe lock across locate-and-apply, so it cannot interleave with a
// concurrent move of the same id.
func (c *Cluster) Delete(ctx context.Context, id int) error {
	defer c.lockID(id)()
	shard, _, err := c.owner(ctx, id)
	if err != nil {
		return err
	}
	_, err = c.shards[shard].Batch(ctx, []violation.Op{{Kind: violation.OpDelete, ID: id}})
	return err
}

// Batch applies a mixed op sequence in order. Consecutive ops for the same
// shard coalesce into one atomic shard batch (one WAL record there); the
// cross-shard sequence is applied group by group and is NOT atomic — a
// failure leaves the already-flushed prefix applied and reports which op
// failed. Inserts are assigned global ids in op order, identical to a
// single node fed the same sequence; explicit "at" pins are refused (ids
// are the coordinator's to assign). Deletes and updates of ids assigned
// earlier in the same batch are resolved locally, so the usual
// insert-then-refine batches need no extra shard reads.
func (c *Cluster) Batch(ctx context.Context, ops []violation.Op) (WriteResult, error) {
	// Validate before consuming ids: op kinds, arity, no pins.
	for i, op := range ops {
		switch op.Kind {
		case violation.OpInsert:
			if op.At != nil {
				return WriteResult{}, coordErr(http.StatusUnprocessableEntity, "unprocessable",
					"batch op %d: the coordinator assigns ids; \"at\" is not accepted", i)
			}
			if err := c.checkArity([][]string{op.Values}); err != nil {
				return WriteResult{}, err
			}
		case violation.OpUpdate:
			if err := c.checkArity([][]string{op.Values}); err != nil {
				return WriteResult{}, err
			}
		case violation.OpDelete:
		default:
			return WriteResult{}, coordErr(http.StatusUnprocessableEntity, "unprocessable",
				"batch op %d: violation: unknown op kind %q", i, op.Kind)
		}
	}

	var res WriteResult
	owners := make(map[int]int) // ids this batch placed or located: id -> shard
	var pending []violation.Op
	pendingShard := -1
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		_, err := c.shards[pendingShard].Batch(ctx, pending)
		pending, pendingShard = nil, -1
		return err
	}
	enqueue := func(shard int, op violation.Op) error {
		if pendingShard != shard {
			if err := flush(); err != nil {
				return err
			}
			pendingShard = shard
		}
		pending = append(pending, op)
		return nil
	}
	locate := func(id int) (int, error) {
		if shard, ok := owners[id]; ok {
			return shard, nil
		}
		// The id predates this batch; ops touching it so far are flushed
		// before the scatter read so the read observes them.
		if err := flush(); err != nil {
			return 0, err
		}
		shard, _, err := c.owner(ctx, id)
		if err != nil {
			return 0, err
		}
		owners[id] = shard
		return shard, nil
	}
	for _, op := range ops {
		switch op.Kind {
		case violation.OpInsert:
			id := int(c.nextID.Add(1)) - 1
			shard := c.route(op.Values)
			at := id
			if err := enqueue(shard, violation.Op{Kind: violation.OpInsert, Values: op.Values, At: &at}); err != nil {
				return res, err
			}
			owners[id] = shard
			res.IDs = append(res.IDs, id)
		case violation.OpDelete:
			shard, err := locate(op.ID)
			if err != nil {
				return res, err
			}
			if err := enqueue(shard, op); err != nil {
				return res, err
			}
		case violation.OpUpdate:
			// The stripe lock is taken before the owner lookup so a concurrent
			// move of the same id cannot slip between locating the shard and
			// mutating it.
			unlock := c.lockID(op.ID)
			err := func() error {
				from, err := locate(op.ID)
				if err != nil {
					return err
				}
				to := c.route(op.Values)
				if to == from {
					return enqueue(from, op)
				}
				// A cross-shard move cannot coalesce: flush, then move.
				if err := flush(); err != nil {
					return err
				}
				if err := c.moveOrUpdate(ctx, op.ID, from, op.Values); err != nil {
					return err
				}
				owners[op.ID] = to
				return nil
			}()
			unlock()
			if err != nil {
				return res, err
			}
		}
	}
	return res, flush()
}
