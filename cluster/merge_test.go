package cluster

import (
	"reflect"
	"strings"
	"testing"
)

func mergeCluster(order ...string) *Cluster {
	return &Cluster{
		order: order,
		shards: []*ShardClient{
			NewShardClient("http://shard0", "0", 0, nil),
			NewShardClient("http://shard1", "1", 0, nil),
		},
	}
}

func TestMergeDeterministic(t *testing.T) {
	c := mergeCluster("r1", "r2", "r3")
	docs := []ViolationsDoc{
		{
			Epoch: 7,
			// Shard order must not matter for the merged rule order: this
			// shard reports r2 before r1.
			Violations: []RuleTuples{{Rule: "r2", Tuples: []int{9, 3}}, {Rule: "r1", Tuples: []int{5}}},
			Dirty:      []int{9, 3, 5},
		},
		{
			Epoch:      11,
			Violations: []RuleTuples{{Rule: "r1", Tuples: []int{2, 8}}},
			Dirty:      []int{2, 8},
		},
	}
	got, err := c.merge(docs)
	if err != nil {
		t.Fatal(err)
	}
	want := &MergedViolations{
		Epochs: []uint64{7, 11},
		Violations: []RuleTuples{
			{Rule: "r1", Tuples: []int{2, 5, 8}},
			{Rule: "r2", Tuples: []int{3, 9}},
		},
		Dirty:        []int{2, 3, 5, 8, 9},
		RulesChecked: 3,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
}

// TestMergeDedupesMidMoveDuplicate: a scatter racing a cross-shard move can
// catch one id on both its old and new owner; the merged report must still
// look like a single node's — each id listed once per rule, once in dirty.
func TestMergeDedupesMidMoveDuplicate(t *testing.T) {
	c := mergeCluster("r1")
	docs := []ViolationsDoc{
		{Epoch: 3, Violations: []RuleTuples{{Rule: "r1", Tuples: []int{4, 7}}}, Dirty: []int{4, 7}},
		{Epoch: 5, Violations: []RuleTuples{{Rule: "r1", Tuples: []int{7}}}, Dirty: []int{7}},
	}
	got, err := c.merge(docs)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{4, 7}; !reflect.DeepEqual(got.Violations[0].Tuples, want) || !reflect.DeepEqual(got.Dirty, want) {
		t.Fatalf("mid-move duplicate must merge deduped: tuples=%v dirty=%v, want %v", got.Violations[0].Tuples, got.Dirty, want)
	}
}

func TestMergeEmpty(t *testing.T) {
	c := mergeCluster("r1")
	got, err := c.merge([]ViolationsDoc{{Epoch: 1}, {Epoch: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Violations != nil {
		t.Fatalf("clean shards must merge to no violations, got %v", got.Violations)
	}
	// Dirty serialises as [] (not null), like the single-node response.
	if got.Dirty == nil || len(got.Dirty) != 0 {
		t.Fatalf("dirty = %#v, want empty non-nil", got.Dirty)
	}
	if got.RulesChecked != 1 {
		t.Fatalf("rules_checked = %d", got.RulesChecked)
	}
}

func TestMergeUnknownRule(t *testing.T) {
	c := mergeCluster("r1")
	_, err := c.merge([]ViolationsDoc{
		{},
		{Violations: []RuleTuples{{Rule: "rogue", Tuples: []int{1}}}},
	})
	if err == nil || !strings.Contains(err.Error(), "rogue") || !strings.Contains(err.Error(), "shard1") {
		t.Fatalf("unknown rule must name the rule and the shard, got %v", err)
	}
}
