package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/violation"
)

// ErrUnavailable is wrapped by every error that means a shard could not
// answer at all — transport failure, timeout, a 5xx response, or a circuit
// breaker still open from earlier failures. Correctness-bearing scatter
// reads propagate it instead of returning partial results; the coordinator
// maps it to 503 with the "unavailable" error code.
var ErrUnavailable = errors.New("cluster: shard unavailable")

// APIError is a shard's own error envelope, passed through so the
// coordinator can forward the shard's status and stable error code (a 404
// from the owning shard is the cluster's 404).
type APIError struct {
	Shard   string // shard base URL
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cluster: shard %s: %s (%d %s)", e.Shard, e.Message, e.Status, e.Code)
}

// Observer receives the coordinator's per-shard telemetry. Implementations
// must be safe for concurrent use; cmd/cfdserve adapts it onto the obs
// registry. A nil Observer is legal everywhere one is accepted.
type Observer interface {
	// ObserveShardRequest is called after every shard round trip (retries
	// count individually) with the shard's index label, the elapsed time,
	// and whether the shard failed to answer (transport/5xx; an API error
	// like 404 is an answer).
	ObserveShardRequest(shard string, seconds float64, failed bool)
	// ObserveShardHealth is called when a shard's breaker changes state.
	ObserveShardHealth(shard string, healthy bool)
	// ObserveScatterError is called when a whole scatter-gather fails, with
	// the operation name ("violations", "tuples", "swap", ...).
	ObserveScatterError(op string)
	// ObserveSwap is called once per coordinated rule swap with its outcome:
	// "committed", "rejected", "aborted" (rolled back cleanly) or "mixed"
	// (rollback failed; shards disagree until repaired).
	ObserveSwap(outcome string)
}

// breakerThreshold consecutive failures open a shard's circuit breaker;
// while open, requests fail fast with ErrUnavailable instead of waiting out
// a timeout per scatter. After breakerCooldown one trial request is let
// through (half-open); its success closes the breaker.
const (
	breakerThreshold = 3
	breakerCooldown  = 2 * time.Second
)

// ShardClient is the coordinator's HTTP client for one shard node: JSON
// round trips with a per-request timeout, one retry for idempotent reads
// that fail in transport, and a consecutive-failure circuit breaker.
type ShardClient struct {
	base  string // base URL, no trailing slash
	label string // shard index as a metrics label ("0", "1", ...)
	hc    *http.Client
	obs   Observer

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

// NewShardClient builds a client for the shard at base (e.g.
// "http://10.0.0.7:8081"). timeout bounds every round trip; label is the
// shard's index used in telemetry.
func NewShardClient(base string, label string, timeout time.Duration, obs Observer) *ShardClient {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &ShardClient{
		base:  strings.TrimRight(base, "/"),
		label: label,
		hc:    &http.Client{Timeout: timeout},
		obs:   obs,
	}
}

// URL returns the shard's base URL.
func (s *ShardClient) URL() string { return s.base }

// Healthy reports the breaker state: false while the shard is considered
// down (consecutive failures at or above the threshold and the cooldown not
// yet expired). Aggregated health surfaces it per shard.
func (s *ShardClient) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fails < breakerThreshold
}

// allow reports whether a request may go out: true when the breaker is
// closed, or open but past its cooldown (the half-open trial). Admitting a
// trial re-arms the cooldown, so half-open passes exactly one probe per
// window: concurrent callers keep failing fast until the probe resolves (a
// success closes the breaker) instead of fanning a full scatter's worth of
// requests at a still-dead shard, each waiting out the full timeout. A
// probe that never reports back (not a case do() can produce) merely costs
// one more cooldown before the next trial.
func (s *ShardClient) allow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails < breakerThreshold {
		return true
	}
	now := time.Now()
	if now.Before(s.openUntil) {
		return false
	}
	s.openUntil = now.Add(breakerCooldown)
	return true
}

// observe records a round trip's outcome in the breaker (and telemetry).
func (s *ShardClient) observe(failed bool) {
	s.mu.Lock()
	wasHealthy := s.fails < breakerThreshold
	if failed {
		s.fails++
		if s.fails >= breakerThreshold {
			s.openUntil = time.Now().Add(breakerCooldown)
		}
	} else {
		s.fails = 0
	}
	nowHealthy := s.fails < breakerThreshold
	s.mu.Unlock()
	if s.obs != nil && wasHealthy != nowHealthy {
		s.obs.ObserveShardHealth(s.label, nowHealthy)
	}
}

// do performs one JSON round trip. A non-2xx response is decoded into an
// *APIError; transport errors and 5xx responses trip the breaker and wrap
// ErrUnavailable. When retry is true (idempotent reads) one transport
// failure is retried immediately. bypassBreaker sends even while the
// breaker is open — the health probe uses it, so a downed shard keeps
// being probed.
func (s *ShardClient) do(ctx context.Context, method, path string, query url.Values, body []byte, header http.Header, out any, outHeader *http.Header, retry, bypassBreaker bool) error {
	if !bypassBreaker && !s.allow() {
		return fmt.Errorf("%w: %s: circuit open after %d consecutive failures", ErrUnavailable, s.base, breakerThreshold)
	}
	attempts := 1
	if retry {
		attempts = 2
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		u := s.base + path
		if len(query) > 0 {
			u += "?" + query.Encode()
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrUnavailable, s.base, err)
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		start := time.Now()
		resp, err := s.hc.Do(req)
		if err != nil {
			s.observe(true)
			if s.obs != nil {
				s.obs.ObserveShardRequest(s.label, time.Since(start).Seconds(), true)
			}
			lastErr = fmt.Errorf("%w: %s: %v", ErrUnavailable, s.base, err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			s.observe(true)
			if s.obs != nil {
				s.obs.ObserveShardRequest(s.label, time.Since(start).Seconds(), true)
			}
			lastErr = fmt.Errorf("%w: %s: reading response: %v", ErrUnavailable, s.base, err)
			continue
		}
		failed := resp.StatusCode >= 500
		s.observe(failed)
		if s.obs != nil {
			s.obs.ObserveShardRequest(s.label, time.Since(start).Seconds(), failed)
		}
		if failed {
			apiErr := decodeEnvelope(s.base, resp.StatusCode, data)
			return fmt.Errorf("%w: %s: %v", ErrUnavailable, s.base, apiErr)
		}
		if resp.StatusCode >= 300 {
			return decodeEnvelope(s.base, resp.StatusCode, data)
		}
		if outHeader != nil {
			*outHeader = resp.Header
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("%w: %s: undecodable response: %v", ErrUnavailable, s.base, err)
			}
		}
		return nil
	}
	return lastErr
}

// decodeEnvelope turns a shard's non-2xx body into an *APIError, falling
// back to the raw body when it is not the standard envelope.
func decodeEnvelope(shard string, status int, data []byte) *APIError {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		return &APIError{Shard: shard, Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	msg := string(data)
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return &APIError{Shard: shard, Status: status, Code: "internal", Message: msg}
}

// The wire documents of the shard endpoints the coordinator consumes —
// decoded subsets of the single-node API.md shapes.

// HealthDoc is GET /v1/health.
type HealthDoc struct {
	Status       string `json:"status"`
	Tuples       int    `json:"tuples"`
	Rules        int    `json:"rules"`
	Dirty        int    `json:"dirty"`
	Epoch        uint64 `json:"epoch"`
	RulesVersion string `json:"rules_version"`
	NextID       int    `json:"next_id"`
}

// RulesDoc is GET /v1/rules; Ruleset is kept raw so a rollback can re-PUT
// the exact document the shard served.
type RulesDoc struct {
	Attributes []string        `json:"attributes"`
	Ruleset    json.RawMessage `json:"ruleset"`
	Version    string          `json:"version"`
}

// SwapDoc is PUT /v1/rules.
type SwapDoc struct {
	Swapped bool            `json:"swapped"`
	Version string          `json:"version"`
	Rules   int             `json:"rules"`
	Delta   json.RawMessage `json:"delta"`
}

// RuleTuples is one per-rule entry of a violations report.
type RuleTuples struct {
	Rule   string `json:"rule"`
	Tuples []int  `json:"tuples"`
}

// ViolationsDoc is GET /v1/violations (full read, no pagination).
type ViolationsDoc struct {
	Epoch        uint64       `json:"epoch"`
	Violations   []RuleTuples `json:"violations"`
	Dirty        []int        `json:"dirty"`
	RulesChecked int          `json:"rules_checked"`
}

// SuspectsDoc is GET /v1/suspects (full read).
type SuspectsDoc struct {
	Suspects []int `json:"suspects"`
}

// TupleDoc is one tuple with its id.
type TupleDoc struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

// TuplesDoc is GET /v1/tuples.
type TuplesDoc struct {
	Tuples     []TupleDoc `json:"tuples"`
	Total      int        `json:"total"`
	NextCursor string     `json:"next_cursor"`
}

// TupleViolationsDoc is GET /v1/tuples/{id}/violations.
type TupleViolationsDoc struct {
	ID       int      `json:"id"`
	Violated []string `json:"violated"`
}

// BatchDoc is POST /v1/batch.
type BatchDoc struct {
	Applied int   `json:"applied"`
	IDs     []int `json:"ids"`
	Tuples  int   `json:"tuples"`
	Dirty   int   `json:"dirty"`
}

// Health probes GET /v1/health. It bypasses the circuit breaker — the
// aggregated health endpoint is how a downed shard's recovery is noticed.
func (s *ShardClient) Health(ctx context.Context) (HealthDoc, error) {
	var doc HealthDoc
	err := s.do(ctx, http.MethodGet, "/v1/health", nil, nil, nil, &doc, nil, false, true)
	return doc, err
}

// Rules fetches GET /v1/rules.
func (s *ShardClient) Rules(ctx context.Context) (RulesDoc, error) {
	var doc RulesDoc
	err := s.do(ctx, http.MethodGet, "/v1/rules", nil, nil, nil, &doc, nil, true, false)
	return doc, err
}

// PutRules uploads a rule file (text or rules.Set JSON) with an optional
// If-Match version guard — the per-shard CAS of the two-phase swap.
func (s *ShardClient) PutRules(ctx context.Context, body []byte, ifMatch string) (SwapDoc, error) {
	var doc SwapDoc
	h := http.Header{}
	if ifMatch != "" {
		h.Set("If-Match", `"`+ifMatch+`"`)
	}
	err := s.do(ctx, http.MethodPut, "/v1/rules", nil, body, h, &doc, nil, false, false)
	return doc, err
}

// Violations fetches the shard's full violation report.
func (s *ShardClient) Violations(ctx context.Context) (ViolationsDoc, error) {
	var doc ViolationsDoc
	err := s.do(ctx, http.MethodGet, "/v1/violations", nil, nil, nil, &doc, nil, true, false)
	return doc, err
}

// Suspects fetches the shard's full suspect list.
func (s *ShardClient) Suspects(ctx context.Context) (SuspectsDoc, error) {
	var doc SuspectsDoc
	err := s.do(ctx, http.MethodGet, "/v1/suspects", nil, nil, nil, &doc, nil, true, false)
	return doc, err
}

// Tuples fetches one page of the shard's live tuples from the given id
// cursor (limit <= 0 fetches all).
func (s *ShardClient) Tuples(ctx context.Context, cursor, limit int) (TuplesDoc, error) {
	q := url.Values{}
	if cursor > 0 {
		q.Set("cursor", strconv.Itoa(cursor))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var doc TuplesDoc
	err := s.do(ctx, http.MethodGet, "/v1/tuples", q, nil, nil, &doc, nil, true, false)
	return doc, err
}

// GetTuple fetches one tuple by id; a shard that does not own it answers
// 404 (*APIError).
func (s *ShardClient) GetTuple(ctx context.Context, id int) (TupleDoc, error) {
	var doc TupleDoc
	err := s.do(ctx, http.MethodGet, "/v1/tuples/"+strconv.Itoa(id), nil, nil, nil, &doc, nil, true, false)
	return doc, err
}

// TupleViolations fetches the rules one tuple currently violates.
func (s *ShardClient) TupleViolations(ctx context.Context, id int) (TupleViolationsDoc, error) {
	var doc TupleViolationsDoc
	err := s.do(ctx, http.MethodGet, "/v1/tuples/"+strconv.Itoa(id)+"/violations", nil, nil, nil, &doc, nil, true, false)
	return doc, err
}

// Batch applies ops as one atomic shard commit.
func (s *ShardClient) Batch(ctx context.Context, ops []violation.Op) (BatchDoc, error) {
	body, err := json.Marshal(struct {
		Ops []violation.Op `json:"ops"`
	}{ops})
	if err != nil {
		return BatchDoc{}, err
	}
	var doc BatchDoc
	err = s.do(ctx, http.MethodPost, "/v1/batch", nil, body, nil, &doc, nil, false, false)
	return doc, err
}
