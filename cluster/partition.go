package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/rules"
)

// Partitioner routes tuples to shards by hashing the values of a fixed
// subset of the schema — the partition key. The key is chosen once, when
// the cluster is formed, and every rule set the cluster serves must keep
// its rules' LHS a superset of the key (see Check): that containment is
// what makes per-shard violation detection exact.
type Partitioner struct {
	schema []string
	key    []string
	keyPos []int // positions of the key attributes in the schema
}

// NewPartitioner builds a partitioner over the given schema routing on the
// given key attributes. An empty key is legal and routes every tuple to
// shard 0 — the degenerate single-shard placement, still exact. Key
// attributes must exist in the schema; duplicates are rejected.
func NewPartitioner(schema, key []string) (*Partitioner, error) {
	pos := make(map[string]int, len(schema))
	for i, name := range schema {
		pos[name] = i
	}
	p := &Partitioner{schema: append([]string(nil), schema...)}
	seen := make(map[string]bool, len(key))
	for _, name := range key {
		i, ok := pos[name]
		if !ok {
			return nil, fmt.Errorf("cluster: partition key attribute %q is not in the schema", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: partition key attribute %q duplicated", name)
		}
		seen[name] = true
		p.key = append(p.key, name)
		p.keyPos = append(p.keyPos, i)
	}
	return p, nil
}

// DeriveKey returns the widest partition key usable for the given rule set:
// the intersection of every rule's LHS attributes, in schema order. With no
// rules the full schema is returned (any placement is exact when nothing
// groups tuples); if the rules share no LHS attribute the key is empty and
// every tuple routes to shard 0.
func DeriveKey(schema []string, set *rules.Set) []string {
	cfds := set.CFDs()
	if len(cfds) == 0 {
		return append([]string(nil), schema...)
	}
	common := make(map[string]int, len(schema))
	for _, r := range cfds {
		for _, a := range r.LHS {
			common[a]++
		}
	}
	var key []string
	for _, a := range schema {
		if common[a] == len(cfds) {
			key = append(key, a)
		}
	}
	return key
}

// Check reports whether the cluster can serve the rule set exactly under
// this partition key: every rule's LHS — constant and variable rules alike,
// since violating sets are whole LHS groups either way — must contain every
// key attribute. The error names the first offending rule.
func (p *Partitioner) Check(set *rules.Set) error {
	for _, r := range set.CFDs() {
		lhs := make(map[string]bool, len(r.LHS))
		for _, a := range r.LHS {
			lhs[a] = true
		}
		for _, a := range p.key {
			if !lhs[a] {
				return fmt.Errorf("cluster: rule %s does not contain partition key attribute %q in its LHS; the cluster partitioned by [%s] cannot serve it exactly",
					r, a, strings.Join(p.key, ", "))
			}
		}
	}
	return nil
}

// Key returns the partition key attributes in schema order.
func (p *Partitioner) Key() []string { return p.key }

// Schema returns the schema the partitioner was built over.
func (p *Partitioner) Schema() []string { return p.schema }

// Route returns the shard (in [0, shards)) owning a tuple with the given
// values (in schema order). The hash is FNV-1a over the length-prefixed key
// values, so it is stable across processes and releases, and placement —
// and therefore every shard's WAL — stays valid as long as the key does
// not change.
func (p *Partitioner) Route(values []string, shards int) int {
	if shards <= 1 || len(p.keyPos) == 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, i := range p.keyPos {
		v := values[i]
		n := len(v)
		for b := 0; b < 8; b++ {
			buf[b] = byte(n >> (8 * b))
		}
		h.Write(buf[:])
		h.Write([]byte(v))
	}
	return int(h.Sum64() % uint64(shards))
}
