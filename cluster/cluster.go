package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/rules"
)

// Config assembles a Cluster.
type Config struct {
	// Shards are the base URLs of the shard nodes, e.g.
	// ["http://10.0.0.7:8081", "http://10.0.0.8:8081"]. Shard order is part
	// of the cluster's identity: the partitioner routes by index.
	Shards []string
	// Key is the explicit partition key. Empty derives the widest usable key
	// from the rule set served at Init (DeriveKey). The key must stay the
	// same for the lifetime of the shards' data — tuples are placed by it.
	Key []string
	// Timeout bounds every shard round trip (default 5s).
	Timeout time.Duration
	// Observer receives per-shard telemetry; nil disables it.
	Observer Observer
}

// Cluster is the coordinator's view of the shard fleet: the shard clients,
// the partitioner, the global id counter, and a cache of the rule set every
// shard serves. It is safe for concurrent use.
type Cluster struct {
	shards []*ShardClient
	obs    Observer

	// nextID is the global tuple id counter: ids are assigned here, in
	// arrival order exactly like a single node's, and pinned on the owning
	// shard. Recovered at Init as the maximum next_id across shards.
	nextID atomic.Int64

	mu      sync.Mutex
	part    *Partitioner
	order   []string // served rule strings in set order (the merge order)
	version string   // served rules fingerprint

	// swapMu serialises coordinated rule swaps; concurrent swaps through one
	// coordinator would interleave their per-shard CAS sequences.
	swapMu sync.Mutex

	// idMu stripes per-id write locks. A cross-shard move is a pinned insert
	// on the new owner followed by a delete on the old — not atomic — so two
	// concurrent mutations of the same id must not interleave mid-move, or
	// the id can end up live on two shards (or on none). Every mutation of an
	// existing id takes its stripe for the whole locate-and-apply sequence;
	// fresh inserts need no lock (their ids are unique by construction).
	idMu [idStripes]sync.Mutex
}

// idStripes is the size of the per-id lock table; collisions only serialise
// unrelated mutations, they never affect correctness.
const idStripes = 128

// lockID takes the write lock for one tuple id and returns its release.
// Callers must never hold two stripes at once (single-id lock discipline —
// it is what makes the striping deadlock-free).
func (c *Cluster) lockID(id int) func() {
	mu := &c.idMu[uint(id)%idStripes]
	mu.Lock()
	return mu.Unlock
}

// New builds the cluster handle; call Init before serving.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard is required")
	}
	c := &Cluster{obs: cfg.Observer}
	for i, base := range cfg.Shards {
		c.shards = append(c.shards, NewShardClient(base, strconv.Itoa(i), cfg.Timeout, cfg.Observer))
	}
	if cfg.Key != nil {
		// The schema is unknown until Init; stash the key via a partitioner
		// with an empty schema placeholder? No — defer: remember the key.
		c.part = &Partitioner{key: append([]string(nil), cfg.Key...)}
	}
	return c, nil
}

// coordErr synthesizes a coordinator-side API error (no shard involved).
func coordErr(status int, code, format string, args ...any) *APIError {
	return &APIError{Shard: "coordinator", Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// Init contacts every shard — all must answer — verifies they serve one
// common rule set, builds the partitioner (checking the key against the
// rules), and recovers the global id counter as the maximum next_id across
// shards. Call it once before serving; a shard fleet still booting makes
// Init fail fast, so callers retry.
func (c *Cluster) Init(ctx context.Context) error {
	healths := make([]HealthDoc, len(c.shards))
	err := c.scatter("init", func(i int, s *ShardClient) error {
		doc, err := s.Health(ctx)
		healths[i] = doc
		return err
	})
	if err != nil {
		return err
	}
	next := 0
	for i, h := range healths {
		if h.NextID > next {
			next = h.NextID
		}
		if h.RulesVersion != healths[0].RulesVersion {
			return coordErr(http.StatusConflict, "conflict",
				"shards serve mixed rule sets (%s: %s, %s: %s); repair before forming the cluster",
				c.shards[0].URL(), healths[0].RulesVersion, c.shards[i].URL(), h.RulesVersion)
		}
	}
	c.nextID.Store(int64(next))
	doc, err := c.shards[0].Rules(ctx)
	if err != nil {
		return err
	}
	set, err := rules.Parse(string(doc.Ruleset))
	if err != nil {
		return fmt.Errorf("cluster: shard %s serves an unparseable rule set: %w", c.shards[0].URL(), err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	key := DeriveKey(doc.Attributes, set)
	if c.part != nil { // explicit Config.Key
		key = c.part.key
	}
	part, err := NewPartitioner(doc.Attributes, key)
	if err != nil {
		return err
	}
	if err := part.Check(set); err != nil {
		return err
	}
	c.part = part
	c.order = ruleStrings(set)
	c.version = doc.Version
	if c.obs != nil {
		for i := range c.shards {
			c.obs.ObserveShardHealth(strconv.Itoa(i), true)
		}
	}
	return nil
}

// ruleStrings renders a set's rules in set order — the deterministic merge
// order of every scattered report.
func ruleStrings(set *rules.Set) []string {
	cfds := set.CFDs()
	out := make([]string, len(cfds))
	for i, r := range cfds {
		out[i] = r.String()
	}
	return out
}

// Shards returns the number of shard nodes.
func (c *Cluster) Shards() int { return len(c.shards) }

// Key returns the partition key attributes.
func (c *Cluster) Key() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.part.Key()
}

// Schema returns the attribute names, in order, the cluster serves.
func (c *Cluster) Schema() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.part.Schema()
}

// NextID returns the next global tuple id the coordinator would assign.
func (c *Cluster) NextID() int { return int(c.nextID.Load()) }

// route returns the owning shard index for a tuple's values.
func (c *Cluster) route(values []string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.part.Route(values, len(c.shards))
}

// scatter runs fn once per shard concurrently and returns the most useful
// error: an *APIError if any shard rejected (a definite answer), otherwise
// the first unavailability. op names the operation for telemetry.
func (c *Cluster) scatter(op string, fn func(i int, s *ShardClient) error) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *ShardClient) {
			defer wg.Done()
			errs[i] = fn(i, s)
		}(i, s)
	}
	wg.Wait()
	var unavailable error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var api *APIError
		if errors.As(err, &api) && !errors.Is(err, ErrUnavailable) {
			if c.obs != nil {
				c.obs.ObserveScatterError(op)
			}
			return err
		}
		if unavailable == nil {
			unavailable = err
		}
	}
	if unavailable != nil && c.obs != nil {
		c.obs.ObserveScatterError(op)
	}
	return unavailable
}

// ShardStatus is one shard's slice of the aggregated health.
type ShardStatus struct {
	Index   int
	URL     string
	Healthy bool
	Err     string // why the shard is down; "" when healthy
	Doc     HealthDoc
}

// ClusterHealth is the aggregated fleet health. It never fails: a shard
// that cannot answer degrades Status instead.
type ClusterHealth struct {
	Status       string // "ok" or "degraded"
	Shards       []ShardStatus
	Tuples       int    // sum over answering shards
	Dirty        int    // sum of per-shard upper bounds
	RulesVersion string // the common served fingerprint; "" while mixed or unknown
	NextID       int
}

// Health probes every shard (bypassing circuit breakers — this is how a
// downed shard's recovery is noticed) and aggregates. Status degrades when
// any shard is unreachable or the fleet serves mixed rules versions.
func (c *Cluster) Health(ctx context.Context) ClusterHealth {
	out := ClusterHealth{Status: "ok", Shards: make([]ShardStatus, len(c.shards)), NextID: c.NextID()}
	_ = c.scatter("health", func(i int, s *ShardClient) error {
		doc, err := s.Health(ctx)
		st := ShardStatus{Index: i, URL: s.URL(), Healthy: err == nil, Doc: doc}
		if err != nil {
			st.Err = err.Error()
		}
		out.Shards[i] = st
		return nil // aggregation never fails
	})
	version := ""
	for _, st := range out.Shards {
		if !st.Healthy {
			out.Status = "degraded"
			continue
		}
		out.Tuples += st.Doc.Tuples
		out.Dirty += st.Doc.Dirty
		if version == "" {
			version = st.Doc.RulesVersion
		} else if version != st.Doc.RulesVersion {
			version = "mixed"
		}
	}
	if version == "mixed" {
		out.Status = "degraded"
	} else {
		out.RulesVersion = version
	}
	return out
}

// Rules returns the rule document the fleet serves, verifying every shard
// agrees on the fingerprint — a mixed fleet (possible only after a failed
// swap rollback or out-of-band edits) is unavailable until repaired.
func (c *Cluster) Rules(ctx context.Context) (RulesDoc, error) {
	docs := make([]RulesDoc, len(c.shards))
	err := c.scatter("rules", func(i int, s *ShardClient) error {
		var err error
		docs[i], err = s.Rules(ctx)
		return err
	})
	if err != nil {
		return RulesDoc{}, err
	}
	for i := 1; i < len(docs); i++ {
		if docs[i].Version != docs[0].Version {
			return RulesDoc{}, fmt.Errorf("%w: shards serve mixed rules versions (%s: %s, %s: %s)",
				ErrUnavailable, c.shards[0].URL(), docs[0].Version, c.shards[i].URL(), docs[i].Version)
		}
	}
	return docs[0], nil
}

// refreshRules re-reads the served rule set from shard 0 into the merge
// cache — the recovery path when a merge meets a rule string the cache does
// not know (rules changed out of band).
func (c *Cluster) refreshRules(ctx context.Context) error {
	doc, err := c.shards[0].Rules(ctx)
	if err != nil {
		return err
	}
	set, err := rules.Parse(string(doc.Ruleset))
	if err != nil {
		return fmt.Errorf("cluster: shard %s serves an unparseable rule set: %w", c.shards[0].URL(), err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.part.Check(set); err != nil {
		return err
	}
	c.order = ruleStrings(set)
	c.version = doc.Version
	return nil
}

// SwapResult is the outcome of a committed coordinated swap.
type SwapResult struct {
	Swapped bool   // false when every shard already served the set
	Version string // the new fingerprint
	Rules   int
	Shards  int // shards the set was committed to
}

// SwapRules replaces the rule set on every shard, all-or-nothing, with a
// two-phase fingerprint CAS:
//
//	prepare — every shard must answer GET /v1/rules; the captured version
//	          is the shard's CAS token and the captured ruleset document its
//	          rollback state. The uploaded set must parse and keep every
//	          rule's LHS a superset of the partition key (anything else is
//	          rejected before any shard changes). With a non-empty ifMatch,
//	          every shard's current version must appear in the list (the
//	          decoded tags of the client's If-Match header; match-any "*"
//	          decodes to an empty list, i.e. unconditional).
//	commit  — PUT the new set to each shard with If-Match <captured
//	          version>: a concurrent out-of-band swap loses the CAS and
//	          aborts the coordinated swap.
//	rollback — a commit failure at shard k restores the captured set on
//	          shards 0..k-1 with If-Match <new version>, so the fleet
//	          converges back to the old set and a mixed fleet is never left
//	          behind silently. If a rollback write itself fails the fleet is
//	          mixed: the error says so, aggregated health degrades (mixed
//	          versions), and reads through Rules refuse until repaired.
//
// The swap is not atomic with respect to concurrent reads — a scatter
// running mid-swap can observe shard A on the new set and shard B on the
// old — but it is never left partially applied: after SwapRules returns
// (success or error, short of the explicit mixed failure) every shard
// serves the same fingerprint it would without the attempt.
func (c *Cluster) SwapRules(ctx context.Context, body []byte, ifMatch []string) (SwapResult, error) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	outcome := func(res SwapResult, o string, err error) (SwapResult, error) {
		if c.obs != nil {
			c.obs.ObserveSwap(o)
		}
		return res, err
	}
	set, err := rules.Parse(string(body))
	if err != nil {
		return outcome(SwapResult{}, "rejected", coordErr(http.StatusBadRequest, "bad_request", "%v", err))
	}
	c.mu.Lock()
	part := c.part
	c.mu.Unlock()
	if err := part.Check(set); err != nil {
		return outcome(SwapResult{}, "rejected", coordErr(http.StatusUnprocessableEntity, "unprocessable", "%v", err))
	}

	// Prepare: capture every shard's CAS token and rollback state.
	captured := make([]RulesDoc, len(c.shards))
	if err := c.scatter("swap", func(i int, s *ShardClient) error {
		var err error
		captured[i], err = s.Rules(ctx)
		return err
	}); err != nil {
		return outcome(SwapResult{}, "aborted", err)
	}
	if len(ifMatch) > 0 {
		for i, doc := range captured {
			found := false
			for _, want := range ifMatch {
				if doc.Version == want {
					found = true
					break
				}
			}
			if !found {
				return outcome(SwapResult{}, "rejected", coordErr(http.StatusConflict, "conflict",
					"shard %s serves rules version %q, which does not match If-Match %q", c.shards[i].URL(), doc.Version, ifMatch))
			}
		}
	}

	// Commit sequentially: the first shard also validates the set against
	// the serving schema, so a semantic rejection aborts before any swap.
	var newVersion string
	var res SwapResult
	for i, s := range c.shards {
		doc, err := s.PutRules(ctx, body, captured[i].Version)
		if err == nil {
			newVersion = doc.Version
			res = SwapResult{Swapped: doc.Swapped, Version: doc.Version, Rules: doc.Rules, Shards: len(c.shards)}
			continue
		}
		// Roll the already-swapped shards back to their captured sets.
		var failed []string
		for j := 0; j < i; j++ {
			if _, rbErr := c.shards[j].PutRules(ctx, captured[j].Ruleset, newVersion); rbErr != nil {
				failed = append(failed, fmt.Sprintf("%s: %v", c.shards[j].URL(), rbErr))
			}
		}
		if len(failed) > 0 {
			return outcome(SwapResult{}, "mixed", fmt.Errorf(
				"%w: swap failed at shard %s (%v) and rollback failed on %s — the fleet serves mixed rule sets until repaired",
				ErrUnavailable, s.URL(), err, strings.Join(failed, "; ")))
		}
		return outcome(SwapResult{}, "aborted", fmt.Errorf("cluster: swap aborted, no shard changed: %w", err))
	}

	c.mu.Lock()
	c.order = ruleStrings(set)
	c.version = newVersion
	c.mu.Unlock()
	return outcome(res, "committed", nil)
}
