package cluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/rules"
)

// parse builds a rule set from the cfddiscover text format.
func parse(t *testing.T, text string) *rules.Set {
	t.Helper()
	set, err := rules.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

var custSchema = []string{"CC", "AC", "PN", "NM", "STR", "CT", "ZIP"}

func TestDeriveKey(t *testing.T) {
	cases := []struct {
		name  string
		rules string
		want  []string
	}{
		{
			// Intersection of {CC,AC} and {CC,ZIP}, in schema order.
			name:  "shared attribute",
			rules: "([CC,AC] -> CT, (_, _ || _))\n([CC,ZIP] -> STR, (_, _ || _))",
			want:  []string{"CC"},
		},
		{
			// A constant rule constrains the key exactly like a variable one:
			// its violating sets are whole LHS groups too.
			name:  "constant-only rule",
			rules: "([CC,AC] -> CT, (44, 131 || EDI))\n([CC,ZIP] -> STR, (_, _ || _))",
			want:  []string{"CC"},
		},
		{
			// Disjoint LHS attributes: no key is usable; everything must
			// co-locate on shard 0.
			name:  "disjoint LHS",
			rules: "([AC] -> CT, (131 || EDI))\n([CC,ZIP] -> STR, (_, _ || _))",
			want:  nil,
		},
		{
			// Identical LHS: the whole LHS is the key.
			name:  "identical LHS",
			rules: "([CC,ZIP] -> STR, (_, _ || _))\n([CC,ZIP] -> CT, (_, _ || _))",
			want:  []string{"CC", "ZIP"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DeriveKey(custSchema, parse(t, tc.rules))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("DeriveKey = %v, want %v", got, tc.want)
			}
		})
	}

	// No rules: any placement is exact, so the widest key — the full schema.
	empty := rules.New(nil, rules.Provenance{})
	if got := DeriveKey(custSchema, empty); !reflect.DeepEqual(got, custSchema) {
		t.Fatalf("DeriveKey(no rules) = %v, want the full schema", got)
	}
}

func TestNewPartitionerValidation(t *testing.T) {
	if _, err := NewPartitioner(custSchema, []string{"CC", "NOPE"}); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("unknown key attribute: err = %v", err)
	}
	if _, err := NewPartitioner(custSchema, []string{"CC", "CC"}); err == nil || !strings.Contains(err.Error(), "duplicated") {
		t.Fatalf("duplicate key attribute: err = %v", err)
	}
	if _, err := NewPartitioner(custSchema, nil); err != nil {
		t.Fatalf("empty key must be legal: %v", err)
	}
}

func TestCheck(t *testing.T) {
	p, err := NewPartitioner(custSchema, []string{"CC"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(parse(t, "([CC,AC] -> CT, (_, _ || _))\n([CC,ZIP] -> STR, (_, _ || _))")); err != nil {
		t.Fatalf("rules containing the key must pass: %v", err)
	}
	// A rule whose LHS misses the key cannot be served exactly: its groups
	// would span shards.
	err = p.Check(parse(t, "([AC] -> CT, (131 || EDI))"))
	if err == nil || !strings.Contains(err.Error(), `"CC"`) {
		t.Fatalf("rule missing the key attribute: err = %v", err)
	}

	// The empty key accepts everything (all tuples co-locate).
	p0, err := NewPartitioner(custSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.Check(parse(t, "([AC] -> CT, (131 || EDI))\n([CC,ZIP] -> STR, (_, _ || _))")); err != nil {
		t.Fatalf("empty key must accept any rules: %v", err)
	}
}

// TestRouteStability pins the placement function. These values must NEVER
// change: every shard's on-disk state (WAL + snapshots) is laid out by them,
// so a routing change silently orphans tuples on restart.
func TestRouteStability(t *testing.T) {
	one, err := NewPartitioner(custSchema, []string{"CC"})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewPartitioner(custSchema, []string{"CC", "ZIP"})
	if err != nil {
		t.Fatal(err)
	}
	row := func(cc, zip string) []string {
		return []string{cc, "908", "1111111", "Mike", "Tree Ave.", "MH", zip}
	}
	cases := []struct {
		p            *Partitioner
		cc, zip      string
		want3, want5 int
	}{
		{one, "01", "07974", 2, 2},
		{one, "44", "EH4 1DT", 0, 4},
		{two, "01", "07974", 0, 3},
		{two, "01", "01202", 2, 3},
		{two, "44", "EH4 1DT", 2, 1},
	}
	for _, tc := range cases {
		if got := tc.p.Route(row(tc.cc, tc.zip), 3); got != tc.want3 {
			t.Errorf("Route(key=%v, cc=%s zip=%s, 3 shards) = %d, want %d", tc.p.Key(), tc.cc, tc.zip, got, tc.want3)
		}
		if got := tc.p.Route(row(tc.cc, tc.zip), 5); got != tc.want5 {
			t.Errorf("Route(key=%v, cc=%s zip=%s, 5 shards) = %d, want %d", tc.p.Key(), tc.cc, tc.zip, got, tc.want5)
		}
	}
}

// TestRouteLengthPrefix: the length prefix keeps distinct key value lists
// from colliding by concatenation ("ab"+"" vs "a"+"b").
func TestRouteLengthPrefix(t *testing.T) {
	schema := []string{"A", "B"}
	p, err := NewPartitioner(schema, schema)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 5
	if a, b := p.Route([]string{"a", "b"}, shards), p.Route([]string{"ab", ""}, shards); a == b {
		t.Fatalf("concatenation collision: both route to %d", a)
	}
}

func TestRouteDegenerate(t *testing.T) {
	p, err := NewPartitioner(custSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := []string{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"}
	if got := p.Route(row, 3); got != 0 {
		t.Fatalf("empty key must route everything to shard 0, got %d", got)
	}
	full, err := NewPartitioner(custSchema, []string{"CC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Route(row, 1); got != 0 {
		t.Fatalf("single shard must be 0, got %d", got)
	}
}
