#!/bin/sh
# Coverage floor check, run by `make cover` and the CI coverage job:
# fails when the total statement coverage of a profile drops below the
# ratcheted floor recorded in the Makefile.
#
# Usage: check_coverage.sh <profile> <floor-percent> <name>
set -eu

profile=$1
floor=$2
name=$3

total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')"
[ -n "$total" ] || { echo "coverage: FAIL: no total in $profile" >&2; exit 1; }

if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit (t >= f) ? 0 : 1 }'; then
	echo "coverage: FAIL: $name at $total%, below the ratcheted floor of $floor%" >&2
	echo "coverage: add tests (or, if statements were deliberately removed, re-ratchet the floor in the Makefile)" >&2
	exit 1
fi
echo "coverage: $name $total% (floor $floor%)"
