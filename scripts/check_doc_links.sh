#!/bin/sh
# Documentation link checker, run by `make docs-check` and the CI docs job:
# every relative markdown link in the checked documents must point at a file
# (or file#anchor) that exists in the repository, and the load-bearing
# cross-references between README.md, ARCHITECTURE.md, API.md and doc.go must
# be present. External http(s) links are not fetched.
set -eu

DOCS="README.md ARCHITECTURE.md API.md"
status=0

fail() {
	echo "docs-check: FAIL: $*" >&2
	status=1
}

for doc in $DOCS; do
	[ -f "$doc" ] || { fail "$doc is missing"; continue; }
	# Markdown inline link targets: [text](target). One per line (read, not
	# word-split, so targets containing spaces survive), ignoring images and
	# external/in-page links.
	grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' | while IFS= read -r target; do
		case "$target" in
		'' | http://* | https://* | mailto:*) continue ;;
		\#*) continue ;; # in-page anchor; heading drift is caught below for the ones we pin
		../*) continue ;; # host-relative GitHub URL (the CI badge), not a repo file
		esac
		file="${target%%#*}"
		if [ ! -e "$file" ]; then
			echo "docs-check: FAIL: $doc links to missing file $target" >&2
			exit 1
		fi
	done || status=1
done

# Load-bearing cross-references: the README and doc.go must route readers to
# the architecture document and back, and the HTTP API contract must be
# reachable from both entry documents.
grep -q 'ARCHITECTURE.md' README.md || fail "README.md must link ARCHITECTURE.md"
grep -q 'README' ARCHITECTURE.md || fail "ARCHITECTURE.md must link back to the README"
grep -q 'ARCHITECTURE.md' doc.go || fail "doc.go must mention ARCHITECTURE.md"
grep -q 'API.md' README.md || fail "README.md must link API.md"
grep -q 'API.md' ARCHITECTURE.md || fail "ARCHITECTURE.md must link API.md"
grep -q 'README' API.md || fail "API.md must link back to the README"

# Anchored deep links: for every intra-repo link with a #fragment, the target
# document must contain a heading that slugifies to the fragment.
for doc in $DOCS; do
	grep -o '](\([^)]*#[^)]*\))' "$doc" | sed 's/^](//; s/)$//' | while IFS= read -r target; do
		file="${target%%#*}"
		anchor="${target#*#}"
		case "$file" in
		'' | http://* | https://*) continue ;;
		esac
		[ -f "$file" ] || continue # missing files already reported above
		found=0
		# Slugify each heading the way GitHub does (lowercase, drop
		# punctuation, spaces to dashes) and compare. Fenced code blocks are
		# stripped first so shell comments in examples don't pass as
		# headings.
		while IFS= read -r heading; do
			slug="$(printf '%s' "$heading" \
				| sed 's/^#*[[:space:]]*//' \
				| tr '[:upper:]' '[:lower:]' \
				| sed 's/[^a-z0-9 -]//g; s/ /-/g')"
			[ "$slug" = "$anchor" ] && found=1
		done <<-EOF
		$(awk '/^```/ { fence = !fence; next } !fence' "$file" | grep '^#')
		EOF
		if [ "$found" -ne 1 ]; then
			echo "docs-check: FAIL: $doc links to $target but $file has no matching heading" >&2
			exit 1
		fi
	done || status=1
done

[ "$status" -eq 0 ] && echo "docs-check: OK"
exit "$status"
