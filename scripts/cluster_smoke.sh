#!/bin/sh
# Smoke test for the cfdserve cluster mode, run by `make cluster-smoke` and
# the CI job of the same name: boot three shard nodes plus a coordinator AND
# a single-node oracle, drive the same writes through both, and assert the
# merged coordinator reports are byte-identical to the oracle's. Then swap
# rules through the two-phase protocol, SIGKILL a shard to check degraded
# health and the fail-closed 503 envelope, and restart the shard from its
# state directory to check recovery (tuples and the swapped rules replayed
# from the WAL).
set -eu

COORD_ADDR="127.0.0.1:18090"
S0_ADDR="127.0.0.1:18091"
S1_ADDR="127.0.0.1:18092"
S2_ADDR="127.0.0.1:18093"
ORACLE_ADDR="127.0.0.1:18094"
COORD="http://$COORD_ADDR"
ORACLE="http://$ORACLE_ADDR"

TMP="$(mktemp -d)"
BIN="$TMP/cfdserve"
RULES="$TMP/rules.txt"
RULES2="$TMP/rules_v2.txt"
BADRULES="$TMP/rules_bad.txt"
STATE2="$TMP/shard2-state"
SCHEMA="CC,AC,PN,NM,STR,CT,ZIP"

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	exit 1
}

# flat canonicalises a JSON body for comparison: whitespace stripped, and the
# epoch counters dropped — the coordinator reports one epoch per shard where
# the single node reports one, and per-node epochs advance at different rates.
flat() {
	tr -d ' \n' | sed 's/"epochs":\[[0-9,]*\],//;s/"epoch":[0-9]*,//g'
}

go build -o "$BIN" ./cmd/cfdserve

# Both rules share CC on the LHS, so the derived partition key is [CC] and a
# three-shard cluster actually spreads the groups (the serve-smoke fixture's
# rules have disjoint LHS attributes, which would collapse everything onto
# shard 0).
cat >"$RULES" <<'EOF'
([CC,AC] -> CT, (_, _ || _))
([CC,ZIP] -> STR, (_, _ || _))
EOF
cat >"$RULES2" <<'EOF'
([CC,ZIP] -> STR, (_, _ || _))
EOF
cat >"$BADRULES" <<'EOF'
([AC] -> CT, (131 || EDI))
EOF

# Shards 0 and 1 are memory-only; shard 2 is durable so the SIGKILL/restart
# leg can recover its slice. The oracle is a plain single node on the same
# rules and schema.
"$BIN" -addr "$S0_ADDR" -rules "$RULES" -schema "$SCHEMA" &
S0_PID=$!
"$BIN" -addr "$S1_ADDR" -rules "$RULES" -schema "$SCHEMA" &
S1_PID=$!
"$BIN" -addr "$S2_ADDR" -rules "$RULES" -schema "$SCHEMA" -state "$STATE2" &
S2_PID=$!
"$BIN" -addr "$ORACLE_ADDR" -rules "$RULES" -schema "$SCHEMA" &
ORACLE_PID=$!
trap 'kill "$S0_PID" "$S1_PID" "$S2_PID" "$ORACLE_PID" "${COORD_PID:-}" 2>/dev/null || true' EXIT

for a in "$S0_ADDR" "$S1_ADDR" "$S2_ADDR" "$ORACLE_ADDR"; do
	i=0
	until curl -fs "http://$a/v1/health" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -lt 50 ] || fail "node on $a did not come up"
		sleep 0.1
	done
done

# Satellite: a second process must refuse to open the live state directory.
if "$BIN" -addr 127.0.0.1:18099 -state "$STATE2" >"$TMP/dup.log" 2>&1; then
	fail "double-open of a live -state directory was not refused"
fi
grep -q "already in use by a live process" "$TMP/dup.log" \
	|| fail "lockfile refusal missing from $(cat "$TMP/dup.log")"

"$BIN" -coordinator -shards "http://$S0_ADDR,http://$S1_ADDR,http://$S2_ADDR" \
	-addr "$COORD_ADDR" &
COORD_PID=$!
i=0
until curl -fs "$COORD/v1/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "coordinator did not come up on $COORD_ADDR"
	sleep 0.1
done

health="$(curl -fs "$COORD/v1/health")"
echo "$health" | grep -q '"mode": "coordinator"' || fail "not a coordinator: $health"
echo "$health" | grep -q '"status": "ok"' || fail "cluster not healthy: $health"
echo "$health" | flat | grep -q '"partition_key":\["CC"\]' \
	|| fail "partition key not derived as [CC]: $health"

# The same eight rows through the coordinator and the oracle: the assigned
# ids must match, and from here on every read must merge byte-identically.
ROWS='{"rows":[
  ["01","908","1111111","Mike","Tree Ave.","MH","07974"],
  ["01","908","1111111","Rick","Tree Ave.","MH","07974"],
  ["01","212","2222222","Joe","5th Ave","NYC","01202"],
  ["01","908","2222222","Jim","Elm Str.","MH","07974"],
  ["44","131","3333333","Ben","High St.","EDI","EH4 1DT"],
  ["44","131","4444444","Ian","High St.","EDI","EH4 1DT"],
  ["44","908","4444444","Ian","Port PI","MH","01202"],
  ["01","131","5555555","Sean","3rd Str.","UN","01202"]
]}'
for base in "$COORD" "$ORACLE"; do
	post="$(curl -fs -X POST "$base/v1/tuples" -H 'Content-Type: application/json' -d "$ROWS")"
	echo "$post" | flat | grep -q '"ids":\[0,1,2,3,4,5,6,7\]' \
		|| fail "unexpected insert response from $base: $post"
done

compare() {
	path="$1"
	c="$(curl -fs "$COORD$path" | flat)" || fail "coordinator GET $path failed"
	o="$(curl -fs "$ORACLE$path" | flat)" || fail "oracle GET $path failed"
	[ "$c" = "$o" ] || fail "GET $path diverged:
  coordinator: $c
  oracle:      $o"
}

compare /v1/violations
compare /v1/suspects
curl -fs "$COORD/v1/violations" | flat | grep -q '"dirty":\[0,1,2,3,7\]' \
	|| fail "unexpected merged dirty set"

# A cross-shard move (CC 44 -> 01 changes the tuple's owning shard) and a
# delete, through both, then compare again — including the paged listing.
for base in "$COORD" "$ORACLE"; do
	curl -fs -X PUT "$base/v1/tuples/4" -H 'Content-Type: application/json' \
		-d '{"values":["01","908","7777777","Ben","Elm Str.","MH","07974"]}' >/dev/null \
		|| fail "update through $base failed"
	curl -fs -X DELETE "$base/v1/tuples/5" >/dev/null || fail "delete through $base failed"
done
compare /v1/violations
compare /v1/suspects
compare "/v1/tuples?limit=5"
compare "/v1/tuples?cursor=5&limit=5"
compare /v1/tuples/4
compare /v1/tuples/4/violations

# Two-phase rule swap. A rule set that cannot be partitioned by the cluster
# key is rejected up front (no shard sees it) ...
code="$(curl -s -o "$TMP/swap.json" -w '%{http_code}' -X PUT "$COORD/v1/rules" --data-binary @"$BADRULES")"
[ "$code" = "422" ] || fail "unpartitionable rules: status $code, want 422"
grep -q '"unprocessable"' "$TMP/swap.json" || fail "unexpected 422 envelope: $(cat "$TMP/swap.json")"

# ... and a good one commits on every shard, leaving a uniform fingerprint.
curl -fs -X PUT "$COORD/v1/rules" --data-binary @"$RULES2" >"$TMP/swap.json" \
	|| fail "two-phase swap failed: $(cat "$TMP/swap.json")"
v0="$(curl -fs "http://$S0_ADDR/v1/health" | flat | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
for a in "$S1_ADDR" "$S2_ADDR"; do
	v="$(curl -fs "http://$a/v1/health" | flat | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
	[ "$v" = "$v0" ] || fail "shard $a serves rules $v, shard 0 serves $v0 after swap"
done
curl -fs -X PUT "$ORACLE/v1/rules" --data-binary @"$RULES2" >/dev/null
compare /v1/violations

# SIGKILL shard 2: health degrades (but stays 200), correctness-bearing
# reads fail closed with the 503 "unavailable" envelope.
kill -KILL "$S2_PID"
wait "$S2_PID" 2>/dev/null || true
i=0
until curl -fs "$COORD/v1/health" | grep -q '"status": "degraded"'; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "coordinator never reported degraded health"
	sleep 0.1
done
code="$(curl -s -o "$TMP/deg.json" -w '%{http_code}' "$COORD/v1/violations")"
[ "$code" = "503" ] || fail "degraded read: status $code, want 503"
grep -q '"unavailable"' "$TMP/deg.json" || fail "unexpected 503 envelope: $(cat "$TMP/deg.json")"

# Writes routed to live shards still land (CC=44 routes to shard 0) ...
for base in "$COORD" "$ORACLE"; do
	post="$(curl -fs -X POST "$base/v1/tuples" -H 'Content-Type: application/json' \
		-d '{"rows":[["44","131","6666666","Amy","High St.","EDI","EH4 1DT"]]}')"
	echo "$post" | flat | grep -q '"ids":\[8\]' || fail "degraded-mode insert via $base: $post"
done
# ... while writes routed to the dead shard fail closed (CC=01 -> shard 2).
code="$(curl -s -o "$TMP/dead.json" -w '%{http_code}' -X POST "$COORD/v1/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"rows":[["01","212","8888888","Eve","5th Ave","NYC","01202"]]}')"
[ "$code" = "503" ] || fail "write to the dead shard: status $code, want 503"
grep -q '"unavailable"' "$TMP/dead.json" || fail "unexpected 503 envelope: $(cat "$TMP/dead.json")"

# Restart shard 2 from its state directory: the WAL replays its tuple slice
# AND the swapped rule set (-rules is ignored once a snapshot exists), the
# coordinator notices recovery through the health probe, and merged reads
# come back identical to the oracle.
"$BIN" -addr "$S2_ADDR" -rules "$RULES" -schema "$SCHEMA" -state "$STATE2" &
S2_PID=$!
i=0
until curl -fs "http://$S2_ADDR/v1/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "shard 2 did not restart"
	sleep 0.1
done
v="$(curl -fs "http://$S2_ADDR/v1/health" | flat | sed -n 's/.*"rules_version":"\([^"]*\)".*/\1/p')"
[ "$v" = "$v0" ] || fail "restarted shard lost the swapped rules: serves $v, want $v0"
i=0
until curl -fs "$COORD/v1/health" | grep -q '"status": "ok"'; do
	i=$((i + 1))
	[ "$i" -lt 100 ] || fail "coordinator never recovered after the shard restart"
	sleep 0.1
done
# The shard client's circuit breaker may still be in its cooldown window
# right after recovery; reads must come back within it.
i=0
until curl -fs "$COORD/v1/violations" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 100 ] || fail "merged reads did not recover after the shard restart"
	sleep 0.1
done
compare /v1/violations
compare /v1/suspects
compare "/v1/tuples?limit=20"

# Coordinator telemetry: per-shard gauges and the swap/scatter counters.
metrics="$(curl -fs "$COORD/metrics")"
echo "$metrics" | grep -q 'cfd_coord_shard_up{shard="2"} 1' || fail "shard 2 gauge not back to 1"
echo "$metrics" | grep -q 'cfd_coord_rule_swaps_total{outcome="committed"} 1' \
	|| fail "committed swap not counted"
echo "$metrics" | grep -q 'cfd_coord_rule_swaps_total{outcome="rejected"} 1' \
	|| fail "rejected swap not counted"
echo "$metrics" | grep -q 'cfd_coord_scatter_errors_total' || fail "scatter errors family missing"
echo "$metrics" | grep -q 'cfd_coord_shard_requests_total{shard="0",result="ok"}' \
	|| fail "per-shard request counter missing"

# Graceful shutdown: SIGTERM, clean exit.
kill -TERM "$COORD_PID"
wait "$COORD_PID" || fail "coordinator did not exit cleanly on SIGTERM"
COORD_PID=""

echo "cluster-smoke: OK"
