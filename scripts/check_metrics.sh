#!/bin/sh
# Metric naming checker, run by `make obs-smoke` and CI: the metric catalogue
# in ARCHITECTURE.md must match the names actually registered in the source
# (both directions), and every name must follow the conventions the catalogue
# documents — cfd_ prefix, counters end in _total, histograms carry a unit
# suffix (_seconds, _bytes, _ops), gauges never end in _total.
set -eu

status=0
fail() {
	echo "check-metrics: FAIL: $*" >&2
	status=1
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The catalogue: rows of the ARCHITECTURE.md table whose first cell is a
# cfd_ name. Columns: name | type | labels | layer.
awk -F'|' '/^\| `cfd_/ {
	name = $2; type = $3
	gsub(/[` ]/, "", name); gsub(/ /, "", type)
	print name, type
}' ARCHITECTURE.md | sort >"$tmp/catalogue"
[ -s "$tmp/catalogue" ] || fail "no metric catalogue rows found in ARCHITECTURE.md"

# The source: every metric name registered in non-test Go files of the obs
# package and the serving layer.
grep -ho '"cfd_[a-z0-9_]*"' obs/collectors.go cmd/cfdserve/metrics.go \
	| tr -d '"' | sort -u >"$tmp/registered"
[ -s "$tmp/registered" ] || fail "no registered metric names found in the source"

# Both directions: documented but never registered, registered but undocumented.
cut -d' ' -f1 "$tmp/catalogue" >"$tmp/documented"
if ! comm -23 "$tmp/documented" "$tmp/registered" >"$tmp/ghost" || [ -s "$tmp/ghost" ]; then
	fail "documented in ARCHITECTURE.md but not registered in the source: $(tr '\n' ' ' <"$tmp/ghost")"
fi
if ! comm -13 "$tmp/documented" "$tmp/registered" >"$tmp/undoc" || [ -s "$tmp/undoc" ]; then
	fail "registered in the source but missing from the ARCHITECTURE.md catalogue: $(tr '\n' ' ' <"$tmp/undoc")"
fi

# Naming conventions, validated against the catalogue's declared type.
while read -r name type; do
	case "$name" in
	cfd_*) ;;
	*) fail "$name: every metric must carry the cfd_ prefix" ;;
	esac
	case "$type" in
	counter)
		case "$name" in
		*_total) ;;
		*) fail "$name: counters must end in _total" ;;
		esac
		;;
	histogram)
		case "$name" in
		*_seconds | *_bytes | *_ops) ;;
		*) fail "$name: histograms must carry a unit suffix (_seconds, _bytes, _ops)" ;;
		esac
		;;
	gauge)
		case "$name" in
		*_total) fail "$name: gauges must not end in _total" ;;
		esac
		;;
	*) fail "$name: unknown type \"$type\" in the catalogue (want counter, gauge or histogram)" ;;
	esac
done <"$tmp/catalogue"

[ "$status" -eq 0 ] && echo "check-metrics: OK ($(wc -l <"$tmp/catalogue" | tr -d ' ') metrics)"
exit "$status"
