#!/bin/sh
# Smoke test for cmd/cfdserve, run by `make serve-smoke` and the CI job of the
# same name: start the server on fixture rules + data, exercise the API with
# curl, assert the violation counts, and check graceful shutdown on SIGTERM.
set -eu

ADDR="${CFDSERVE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/cfdserve"

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	exit 1
}

go build -o "$BIN" ./cmd/cfdserve

"$BIN" -addr "$ADDR" \
	-rules cmd/cfdserve/testdata/rules.txt \
	-data cmd/cfdserve/testdata/cust.csv &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the server to come up.
i=0
until curl -fs "$BASE/health" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -lt 50 ] || fail "server did not come up on $ADDR"
	sleep 0.1
done

# Rules loaded, data bulk loaded, violations present.
health="$(curl -fs "$BASE/health")"
echo "$health" | grep -q '"rules": 2' || fail "expected 2 rules in $health"
echo "$health" | grep -q '"tuples": 8' || fail "expected 8 tuples in $health"

# The fixture's exact dirty set.
viols="$(curl -fs "$BASE/violations")"
echo "$viols" | tr -d ' \n' | grep -q '"dirty":\[0,1,2,3,4,5,7\]' \
	|| fail "unexpected dirty set in $viols"

# POST a batch: Ann splits the (01, 01202) street group further.
post="$(curl -fs -X POST "$BASE/tuples" \
	-H 'Content-Type: application/json' \
	-d '{"rows":[["01","212","9999999","Ann","5th Ave","NYC","01202"]]}')"
echo "$post" | tr -d ' \n' | grep -q '"ids":\[8\]' || fail "unexpected insert response $post"

viols="$(curl -fs "$BASE/violations")"
echo "$viols" | tr -d ' \n' | grep -q '"dirty":\[0,1,2,3,4,5,7,8\]' \
	|| fail "dirty set did not grow after insert: $viols"

# Per-tuple lookup on the freshly inserted tuple.
curl -fs "$BASE/tuples/8/violations" | grep -q 'STR' \
	|| fail "tuple 8 should violate the street FD"

# Graceful shutdown: SIGTERM, clean exit.
kill -TERM "$PID"
wait "$PID" || fail "server did not exit cleanly on SIGTERM"
trap - EXIT

echo "serve-smoke: OK"
